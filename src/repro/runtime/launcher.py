"""The :class:`Job` object and the SPMD launcher.

A job is one SPMD run: ``num_pes`` PEs executing the same function on a
simulated machine.  The job owns everything the PEs share — the
topology and network cost model, each PE's remotely-accessible memory,
the collectively-managed symmetric heap allocator, the job-wide barrier,
and the communication-layer instances (:mod:`repro.shmem`,
:mod:`repro.gasnet`, ...) registered on it.

*How* the PEs execute is owned by the job's
:class:`~repro.engine.base.Engine` (``engine=`` parameter):

* ``engine=None`` (default) — the pooled thread-per-PE
  :class:`~repro.engine.threaded.ThreadedEngine`, bit-identical to the
  historical launcher;
* ``scheduler=Scheduler(...)`` — cooperative deterministic
  interleavings (wrapped in a
  :class:`~repro.engine.cooperative.CooperativeEngine`; the
  ``scheduler=`` parameter keeps working unchanged);
* ``engine="event"`` — the thread-free discrete-event
  :class:`~repro.engine.event.EventEngine` for weak-scaling runs at
  thousands of PEs (PE bodies as step programs).

Failure handling: if any PE raises, the job aborts — every blocking
primitive polls the abort flag — and the launcher raises a
:class:`JobFailure` carrying *every* per-PE failure record after all
PE bodies have exited, so a crash in one image can never deadlock the
run and no failure is silently discarded.

Fault injection: ``Job(..., faults=FaultPlan(...))`` attaches a
deterministic :class:`~repro.sim.faults.FaultInjector`; the engines
consult it per operation.  ``watchdog_s`` configures the wall-clock
stall deadline of the always-on :class:`~repro.sim.faults.Watchdog`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.runtime.sync import VirtualBarrier
from repro.sim.faults import FaultInjector, FaultPlan, Watchdog
from repro.sim.machines import get_machine
from repro.sim.netmodel import NetworkModel
from repro.sim.topology import Machine, Topology
from repro.util.allocator import FreeListAllocator

DEFAULT_HEAP_BYTES = 4 * 1024 * 1024
#: Ceiling for thread-backed engines (one OS thread per PE).  Engines
#: declare their own ``max_pes``; the event engine raises this to
#: :data:`~repro.engine.base.Engine.max_pes` of its class (16384).
MAX_PES = 4096


class JobAborted(RuntimeError):
    """Raised inside surviving PEs when a sibling PE has failed."""


class JobFailure(RuntimeError):
    """One or more PEs failed; carries every per-PE failure record.

    ``failures`` is a list of ``(pe, exception)`` tuples sorted by PE
    rank.  The exception message keeps the historical
    ``PE {pe} failed: {exc!r}`` prefix (for the lowest-ranked failing
    PE) and the instance is raised ``from`` that PE's exception, so
    ``__cause__`` preserves the root cause's type and traceback.
    """

    def __init__(self, failures: Sequence[tuple[int, BaseException]]) -> None:
        if not failures:
            raise ValueError("JobFailure requires at least one failure record")
        self.failures = sorted(failures, key=lambda f: f[0])
        pe, exc = self.failures[0]
        extra = ""
        if len(self.failures) > 1:
            extra = f" (+{len(self.failures) - 1} more PE failure(s))"
        super().__init__(f"PE {pe} failed: {exc!r}{extra}")

    @property
    def pe(self) -> int:
        """Rank of the lowest-numbered failing PE."""
        return self.failures[0][0]


class Job:
    """Shared state of one SPMD run."""

    def __init__(
        self,
        num_pes: int,
        machine: Machine | str = "stampede",
        *,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
        faults: FaultPlan | FaultInjector | None = None,
        watchdog_s: float | None = None,
        scheduler: Any = None,
        engine: Any = None,
        survivable: bool = False,
    ) -> None:
        # Resolve the engine before sizing anything: the PE ceiling is
        # the engine's (4096 threads for the thread-backed engines, more
        # for the thread-free event engine), and per-PE memories must
        # not be allocated for a count we are about to reject.
        from repro.engine import resolve_engine

        self.engine = resolve_engine(engine, scheduler)
        max_pes = getattr(self.engine, "max_pes", MAX_PES)
        if not 1 <= num_pes <= max_pes:
            raise ValueError(
                f"num_pes must be in [1, {max_pes}] "
                f"(engine {self.engine.name!r})"
            )
        if isinstance(machine, str):
            machine = get_machine(machine)
        self.num_pes = num_pes
        self.machine = machine
        self.topology = Topology(machine, num_pes)
        self.heap_bytes = heap_bytes
        # Cross-process engines allocate shared segments here, before
        # any state that must live inside them exists.
        self.engine.prepare(
            num_pes=num_pes,
            heap_bytes=heap_bytes,
            num_nodes=self.topology.num_nodes,
        )
        self.network = NetworkModel(
            self.topology, timeline_factory=self.engine.timeline_factory
        )
        self.memories = self.engine.make_memories(num_pes, heap_bytes)
        # One shared allocator: symmetric allocation means every PE gets
        # the same offset, which a single metadata instance guarantees
        # (cross-process engines rely on SPMD determinism of its
        # per-process replicas instead).
        self.symmetric_allocator = FreeListAllocator(heap_bytes)
        self._abort = self.engine.make_abort()
        self.barrier = VirtualBarrier(
            num_pes,
            aborted=self.aborted,
            state=self.engine.make_barrier_state((-1,)),
        )
        self.collectives = self.engine.make_collectives(
            num_pes, aborted=self.aborted
        )
        # Failed-images model (Fortran 2018): with survivable=True an
        # injected crash (or real child-process death on the process
        # engine) marks the PE failed here instead of aborting the job.
        # The registry always exists — failed_images() is just empty in
        # the default mode — but layers skip every registry check unless
        # survivable, keeping the clean-abort baseline byte-for-byte.
        from repro.runtime.failures import FailedImageRegistry

        self.survivable = bool(survivable)
        self.failed = FailedImageRegistry(
            num_pes, state=self.engine.make_failed_state(num_pes)
        )
        #: Callables ``hook(pe)`` run on the dying PE when it becomes a
        #: failed image (before barrier excision) — e.g. CAF lock
        #: recovery registers here.
        self.failure_hooks: list[Callable[[int], None]] = []
        # Subset synchronization (OpenSHMEM active sets, CAF teams).
        from repro.runtime.groups import GroupRegistry

        self.groups = GroupRegistry(self)
        self.layers: dict[str, Any] = {}
        #: Live per-PE contexts, registered by :class:`PEContext` as PE
        #: tasks start — lets clock-aware schedule strategies
        #: (``VirtualTimeOrder``) read every PE's virtual clock.
        self.pe_contexts: dict[int, Any] = {}
        # Optional communication tracer (repro.trace.attach installs one).
        self.tracer = None
        # Optional deterministic fault injection (the engines gate all
        # fault logic behind one bound-at-bind dispatch).
        if faults is None:
            self.faults: FaultInjector | None = None
        elif isinstance(faults, FaultInjector):
            if faults.num_pes != num_pes:
                raise ValueError(
                    f"FaultInjector was built for {faults.num_pes} PEs, "
                    f"job has {num_pes}"
                )
            self.faults = faults
        else:
            self.faults = FaultInjector(faults, num_pes)
        # Optional deterministic cooperative scheduler
        # (:class:`repro.explore.Scheduler`), kept as an attribute for
        # existing callers; execution-wise it lives inside the engine.
        self.scheduler = scheduler
        # Always-on hang detection; wall-clock only, so it has zero
        # effect on virtual times unless it fires.
        self.watchdog = Watchdog(self, deadline_s=watchdog_s)
        if self.scheduler is None:
            # An explicitly-passed CooperativeEngine carries the
            # scheduler; surface it so layer/runtime introspection and
            # the scheduler's own bind still work.
            self.scheduler = getattr(self.engine, "scheduler", None)
        self.engine.bind(self)
        if self.scheduler is not None:
            self.scheduler.bind(self)

    # ------------------------------------------------------------------
    def aborted(self) -> bool:
        return self._abort.is_set()

    def abort(self) -> None:
        self._abort.set()

    def get_layer(self, name: str) -> Any:
        try:
            return self.layers[name]
        except KeyError:
            raise RuntimeError(
                f"communication layer {name!r} is not attached to this job; "
                f"attached: {sorted(self.layers)}"
            ) from None

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        """Run ``fn(*args, **kwargs)`` on every PE; return per-PE results.

        The function executes with a :class:`PEContext` installed so the
        module-level PGAS APIs resolve to this job.  If any PE fails, a
        :class:`JobFailure` carrying every ``(pe, exc)`` record is
        raised after all PE bodies have exited, with ``__cause__`` set
        to the lowest-ranked PE's exception.  Execution is delegated to
        the job's engine; bodies returning
        :class:`~repro.engine.steps.Step` programs are trampolined.
        """
        return self.engine.run(self, fn, args, kwargs)


def run_spmd(
    fn: Callable[..., Any],
    num_pes: int,
    machine: Machine | str = "stampede",
    *,
    heap_bytes: int = DEFAULT_HEAP_BYTES,
    faults: FaultPlan | FaultInjector | None = None,
    watchdog_s: float | None = None,
    scheduler: Any = None,
    engine: Any = None,
    survivable: bool = False,
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
) -> list[Any]:
    """One-shot convenience: build a :class:`Job` and run ``fn`` on it.

    ``faults``, ``watchdog_s``, ``scheduler``, ``engine``, and
    ``survivable`` are forwarded to the :class:`Job` (historically
    ``faults``/``watchdog_s`` were silently dropped here).
    """
    job = Job(
        num_pes,
        machine,
        heap_bytes=heap_bytes,
        faults=faults,
        watchdog_s=watchdog_s,
        scheduler=scheduler,
        engine=engine,
        survivable=survivable,
    )
    try:
        return job.run(fn, args=args, kwargs=kwargs)
    finally:
        # One-shot job: release engine-held resources (shared-memory
        # segments on engine="process") deterministically.
        job.engine.cleanup()
