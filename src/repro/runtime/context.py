"""Per-thread PE context.

Each SPMD thread carries exactly one :class:`PEContext` identifying
which PE it is, which job it belongs to, and its virtual clock.  The
module-level APIs of :mod:`repro.shmem` and :mod:`repro.caf` resolve
the current context through :func:`current`, which is what makes user
code read like real SPMD programs.
"""

from __future__ import annotations

import threading
import typing

from repro.sim.clock import VirtualClock

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job

_tls = threading.local()


class NotInSpmdRegion(RuntimeError):
    """Raised when a PGAS API is called outside a launched SPMD function."""


class PEContext:
    """Identity and virtual clock of one PE thread."""

    __slots__ = ("job", "pe", "clock", "_collective_seq")

    def __init__(self, job: "Job", pe: int) -> None:
        self.job = job
        self.pe = pe
        self.clock = VirtualClock()
        self._collective_seq = 0
        # Registry for clock-aware schedule strategies; guarded for
        # detached contexts built outside a Job (tests, tools).
        registry = getattr(job, "pe_contexts", None)
        if registry is not None:
            registry[pe] = self

    def next_collective_seq(self) -> int:
        """Sequence number of this PE's next collective call.

        SPMD semantics require every PE to execute the same sequence of
        collectives; the sequence number is the agreement key.
        """
        seq = self._collective_seq
        self._collective_seq += 1
        return seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PEContext(pe={self.pe}, t={self.clock.now:.3f}us)"


def set_current(ctx: PEContext | None) -> None:
    _tls.ctx = ctx


def current() -> PEContext:
    """The calling thread's PE context; raises outside SPMD regions."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise NotInSpmdRegion(
            "this API must be called from inside a function launched with "
            "shmem.launch()/caf.launch()/run_spmd()"
        )
    return ctx


def current_or_none() -> PEContext | None:
    return getattr(_tls, "ctx", None)
