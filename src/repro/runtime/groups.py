"""Synchronization over PE subsets.

OpenSHMEM's collectives take *active sets* (``PE_start``,
``logPE_stride``, ``PE_size``) and Fortran 2018 teams partition images;
both need barriers and agreement over subsets of a job's PEs.  This
module provides:

* :class:`GroupRegistry` — lazily-created, reusable
  :class:`~repro.runtime.sync.VirtualBarrier` and
  :class:`~repro.runtime.sync.CollectiveState` instances keyed by the
  (sorted) member tuple, shared by all members;
* :func:`active_set_pes` — the OpenSHMEM triplet expansion.

Subset collectives carry their own sequence space: each PE keeps one
collective counter *per group*, so group collectives interleave safely
with job-wide ones.
"""

from __future__ import annotations

import threading
import typing

from repro.runtime.sync import VirtualBarrier

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job


def active_set_pes(pe_start: int, log_pe_stride: int, pe_size: int, num_pes: int) -> tuple[int, ...]:
    """Expand an OpenSHMEM active-set triplet into PE indices."""
    if pe_size < 1:
        raise ValueError("PE_size must be >= 1")
    if log_pe_stride < 0:
        raise ValueError("logPE_stride must be >= 0")
    stride = 1 << log_pe_stride
    pes = tuple(pe_start + i * stride for i in range(pe_size))
    if pes[0] < 0 or pes[-1] >= num_pes:
        raise ValueError(
            f"active set ({pe_start}, {log_pe_stride}, {pe_size}) escapes "
            f"[0, {num_pes})"
        )
    return pes


class _GroupSync:
    """Barrier + collective agreement + per-PE sequence for one group."""

    def __init__(self, job: "Job", members: tuple[int, ...]) -> None:
        self.members = members
        self.barrier = VirtualBarrier(
            len(members),
            aborted=job.aborted,
            state=job.engine.make_barrier_state(members),
            members=members,
        )
        # A group formed after an image has already failed must not wait
        # for the dead member (survivable mode only; the set is final at
        # failure time — later deaths excise via Engine.on_pe_failed).
        if job.survivable:
            for pe in members:
                if job.failed.is_failed(pe):
                    self.barrier.exclude(pe)
        self.collectives = job.engine.make_collectives(
            len(members), aborted=job.aborted, group=True
        )
        # Per-member collective sequence numbers for this group (indexed
        # by position in `members`; each slot touched only by its owner).
        self._seq = {pe: 0 for pe in members}

    def next_seq(self, pe: int) -> int:
        seq = self._seq[pe]
        self._seq[pe] = seq + 1
        return seq


class GroupRegistry:
    """Job-wide registry of subset synchronization state."""

    def __init__(self, job: "Job") -> None:
        self._job = job
        self._groups: dict[tuple[int, ...], _GroupSync] = {}
        self._lock = threading.Lock()

    def get(self, members: tuple[int, ...] | list[int]) -> _GroupSync:
        """The (shared) sync state for a member set; created on first
        use.  Every member must pass the same set."""
        key = tuple(sorted(set(int(m) for m in members)))
        if not key:
            raise ValueError("a group needs at least one member")
        if key[0] < 0 or key[-1] >= self._job.num_pes:
            raise ValueError(f"group members {key} escape [0, {self._job.num_pes})")
        with self._lock:
            group = self._groups.get(key)
            if group is None:
                group = _GroupSync(self._job, key)
                self._groups[key] = group
            return group

    def barriers(self) -> list[VirtualBarrier]:
        """Snapshot of every group barrier (for failed-PE excision)."""
        with self._lock:
            return [g.barrier for g in self._groups.values()]
