"""POSH-style shared-memory backing for cross-process PEs.

The :class:`~repro.engine.process.ProcessEngine` runs every PE as a
forked OS process; for one-sided RMA to stay a plain ``memcpy`` into
the peer's heap (the POSH model — one symmetric heap per PE in real
shared memory), all state that PEs mutate on each other must live in
:mod:`multiprocessing.shared_memory` segments instead of process-local
Python objects.  :class:`SharedHeap` owns exactly two segments:

* the **data segment** — ``num_pes`` symmetric heaps back to back; each
  PE's :class:`SharedPEMemory` is a NumPy view over its slice, so the
  existing gather/scatter/strided fast paths of
  :class:`~repro.runtime.memory.PEMemory` execute unchanged as
  zero-copy cross-process writes;
* the **control segment** — the scalar runtime state the in-process
  engines keep in plain attributes: the abort flag, per-PE virtual
  clocks and last-write timestamps, per-PE atomic word-time/sequence
  tables, barrier episode state (keyed slots so lazily-created group
  barriers resolve to the same slot in every process), and the network
  model's per-node timeline accumulators.

Cross-process blocking replaces condition variables with a
polling/futex-style protocol: writers publish under the target's
``multiprocessing.Lock`` and never notify; waiters re-check their
predicate on a short sleep cadence (:class:`_SharedCond`).  Virtual
time is untouched by this — polls cost wall clock only, which is why
the process engine stays bit-identical to the threaded engine in
simulated time.

Segment lifetime: the creating process unlinks both segments when the
heap is closed, garbage-collected, or the interpreter exits
(``weakref.finalize``); forked children never unlink (guarded by the
creator PID), so an aborted job cannot leak ``/dev/shm`` entries.
"""

from __future__ import annotations

import os
import time
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.runtime.memory import PEMemory
from repro.sim.resources import Timeline, _chain_starts

#: Linear-probe hash slots per PE for atomic word timestamps/sequences.
#: Words under atomics are lock/event/counter cells — a handful per PE.
WORD_SLOTS = 1024

#: Keyed barrier-state slots shared by the job barrier and every lazily
#: created group barrier (OpenSHMEM active sets).
BARRIER_SLOTS = 256

_U64 = 0xFFFFFFFFFFFFFFFF


def _fingerprint(key: tuple[int, ...]) -> int:
    """Deterministic 63-bit FNV-1a over an int tuple; never 0.

    Barrier slots are claimed lazily from *any* process, so the key must
    hash identically everywhere — Python's ``hash`` is avoided on
    principle (and strings are rejected outright: their hashes are
    per-interpreter randomized).
    """
    h = 1469598103934665603
    for v in key:
        if not isinstance(v, int):
            raise TypeError(f"barrier keys must be int tuples, got {v!r}")
        h ^= (v + 0x9E3779B97F4A7C15) & _U64
        h = (h * 1099511628211) & _U64
    return (h & 0x7FFFFFFFFFFFFFFF) | 1


class _SharedCond:
    """Condition-variable stand-in over a ``multiprocessing.Lock``.

    ``notify_all`` is a no-op — there is no cheap cross-process wakeup
    without a real futex, so waiters poll: :meth:`wait` releases the
    lock, naps briefly, and reacquires.  The nap is capped well below
    the in-process poll interval because a missed wakeup here costs
    latency on every ``wait_until``/``sync_images`` handoff.
    """

    __slots__ = ("_lock",)

    #: Upper bound on one poll nap (seconds).
    MAX_NAP_S = 0.0005

    def __init__(self, lock) -> None:
        self._lock = lock

    def __enter__(self) -> "_SharedCond":
        self._lock.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()

    def acquire(self) -> None:
        self._lock.acquire()

    def release(self) -> None:
        self._lock.release()

    def notify_all(self) -> None:
        pass

    def wait(self, timeout: float | None = None) -> None:
        self._lock.release()
        try:
            nap = self.MAX_NAP_S if timeout is None else min(timeout, self.MAX_NAP_S)
            time.sleep(max(nap, 0.0))
        finally:
            self._lock.acquire()


class SharedAbortEvent:
    """``threading.Event``-shaped abort flag over a shared int64 slot.

    Setting is a single aligned store and clearing never happens
    mid-run, so no lock is needed: the flag is monotonic within a run.
    """

    __slots__ = ("_slot",)

    def __init__(self, slot: np.ndarray) -> None:
        self._slot = slot

    def is_set(self) -> bool:
        return bool(self._slot[0])

    def set(self) -> None:
        self._slot[0] = 1

    def clear(self) -> None:
        self._slot[0] = 0


class SharedFailedState:
    """Failed-image flags over shared int64 slots (one per PE).

    Backs :class:`~repro.runtime.failures.FailedImageRegistry` on the
    process engine: marking is an idempotent set-once under the job sync
    lock; reads are single aligned loads (monotonic flags, like abort).
    """

    __slots__ = ("_flags", "_lock")

    def __init__(self, flags: np.ndarray, lock) -> None:
        self._flags = flags
        self._lock = lock

    def mark(self, pe: int) -> bool:
        with self._lock:
            if int(self._flags[pe]):
                return False
            self._flags[pe] = 1
            return True

    def is_failed(self, pe: int) -> bool:
        return bool(self._flags[pe])

    def snapshot(self) -> tuple[int, ...]:
        """The failed PE indices (not the raw flags)."""
        return tuple(int(p) for p in np.flatnonzero(self._flags))


class SharedBarrierState:
    """One barrier episode's state in the control segment.

    Mirrors the in-process :class:`~repro.runtime.sync.VirtualBarrier`
    arrival arithmetic exactly (same comparisons, same float adds) so
    release times are bit-identical to the threaded engine.  All slots
    update under one job-wide sync lock; waiters poll ``generation``
    unlocked (a single aligned int64 read).
    """

    __slots__ = ("_gen", "_count", "_max", "_rel", "_lock", "_excl", "_cost")

    def __init__(self, gen, count, max_arrival, release, lock,
                 excluded, cost) -> None:
        self._gen = gen
        self._count = count
        self._max = max_arrival
        self._rel = release
        self._lock = lock
        self._excl = excluded
        self._cost = cost

    @property
    def generation(self) -> int:
        return int(self._gen[0])

    @property
    def release_time(self) -> float:
        # Stable unlocked read: generation g's release time can only be
        # overwritten after every PE departed g (same argument as the
        # in-process barrier).
        return float(self._rel[0])

    def arrive(self, num_pes: int, now: float, cost: float) -> tuple[int, bool]:
        with self._lock:
            gen = int(self._gen[0])
            if now > self._max[0]:
                self._max[0] = now
            self._count[0] += 1
            self._cost[0] = cost
            released = int(self._count[0]) >= num_pes - int(self._excl[0])
            if released:
                self._rel[0] = float(self._max[0]) + cost
                self._count[0] = 0
                self._max[0] = 0.0
                self._gen[0] = gen + 1
        return gen, released

    def exclude(self, num_pes: int) -> bool:
        """Excise one failed participant (survivable jobs).

        The exclusion count lives in the shared slot — per-process
        ``VirtualBarrier`` replicas keep passing their original
        ``num_pes``, so every process sees the same shrunken quorum.
        """
        with self._lock:
            self._excl[0] += 1
            required = num_pes - int(self._excl[0])
            released = 0 < required <= int(self._count[0])
            if released:
                self._rel[0] = float(self._max[0]) + float(self._cost[0])
                self._count[0] = 0
                self._max[0] = 0.0
                self._gen[0] = int(self._gen[0]) + 1
        return released


class SharedTimeline(Timeline):
    """A :class:`~repro.sim.resources.Timeline` whose accumulators live
    in the control segment, so NIC/CPU contention state is one FCFS
    queue across all PE processes.

    Replays the base class's float arithmetic operation for operation
    (scalar ``max``/add, ``cumsum`` chains) under a
    ``multiprocessing.Lock`` — required for the bit-identity oracle on
    multi-node topologies where several processes share a node's
    injection/reception engines.
    """

    __slots__ = ("_vals",)

    def __init__(self, name: str, vals: np.ndarray, lock) -> None:
        super().__init__(name)
        self._vals = vals  # [next_free, busy_time, reservations]
        self._lock = lock

    def reserve(self, earliest: float, duration: float) -> tuple[float, float]:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if earliest < 0:
            raise ValueError("earliest must be non-negative")
        with self._lock:
            v = self._vals
            start = max(earliest, float(v[0]))
            end = start + duration
            v[0] = end
            v[1] = float(v[1]) + duration
            v[2] += 1
            return start, end

    def reserve_batch(self, earliest: np.ndarray, duration: float) -> np.ndarray:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        n = earliest.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.float64)
        with self._lock:
            v = self._vals
            starts = _chain_starts(earliest, duration, float(v[0]))
            v[0] = float(starts[-1] + duration)
            busy = np.empty(n + 1, dtype=np.float64)
            busy[0] = float(v[1])
            busy[1:] = duration
            v[1] = float(np.cumsum(busy)[-1])
            v[2] += n
            return starts

    def push_batch(self, final_next_free: float, count: int, duration: float) -> None:
        if count <= 0:
            return
        with self._lock:
            v = self._vals
            if final_next_free > float(v[0]):
                v[0] = float(final_next_free)
            busy = np.empty(count + 1, dtype=np.float64)
            busy[0] = float(v[1])
            busy[1:] = duration
            v[1] = float(np.cumsum(busy)[-1])
            v[2] += count

    @property
    def next_free(self) -> float:
        with self._lock:
            return float(self._vals[0])

    @property
    def busy_time(self) -> float:
        with self._lock:
            return float(self._vals[1])

    @property
    def reservations(self) -> int:
        with self._lock:
            return int(self._vals[2])

    def reset(self) -> None:
        with self._lock:
            self._vals[:] = 0


class SharedPEMemory(PEMemory):
    """A :class:`PEMemory` whose buffer and notification state live in
    the shared heap; see the module docstring for the wait protocol."""

    def __init__(
        self,
        nbytes: int,
        *,
        buf: np.ndarray,
        lock,
        lwt: np.ndarray,
        word_keys: np.ndarray,
        word_times: np.ndarray,
        word_seqs: np.ndarray,
    ) -> None:
        # Stash the backing state first: the base __init__ calls the
        # _make_buf/_make_cond hooks, which read these attributes.
        self._shared_buf = buf
        self._mp_lock = lock
        self._lwt = lwt
        self._wkeys = word_keys
        self._wtimes = word_times
        self._wseqs = word_seqs
        super().__init__(nbytes)

    # -- backing hooks --------------------------------------------------
    def _make_buf(self, nbytes: int) -> np.ndarray:
        return self._shared_buf

    def _make_cond(self):
        return _SharedCond(self._mp_lock)

    def _note_write(self, timestamp: float) -> None:
        if timestamp > self._lwt[0]:
            self._lwt[0] = timestamp

    def _read_write_time(self) -> float:
        return float(self._lwt[0])

    def _word_update(self, offset: int, timestamp: float) -> tuple[float, int]:
        # Linear probe keyed by offset+1 (0 marks an empty slot); runs
        # under the memory lock, so claim/update is race-free.
        keys = self._wkeys
        n = keys.shape[0]
        key = offset + 1
        i = (offset * 2654435761) % n
        for _ in range(n):
            cur = int(keys[i])
            if cur == key:
                break
            if cur == 0:
                keys[i] = key
                break
            i = (i + 1) % n
        else:  # pragma: no cover - WORD_SLOTS distinct atomic words
            raise RuntimeError(
                f"shared atomic word table full ({n} slots); raise WORD_SLOTS"
            )
        prev_time = float(self._wtimes[i])
        self._wtimes[i] = max(timestamp, prev_time)
        seq = int(self._wseqs[i]) + 1
        self._wseqs[i] = seq
        return prev_time, seq

    def _read_word_time(self, offset: int) -> float:
        # Read-only probe: never claims a slot (a miss means the word
        # was never atomically updated).
        keys = self._wkeys
        n = keys.shape[0]
        key = offset + 1
        i = (offset * 2654435761) % n
        for _ in range(n):
            cur = int(keys[i])
            if cur == key:
                return float(self._wtimes[i])
            if cur == 0:
                return 0.0
            i = (i + 1) % n
        return 0.0


def _unlink(data: shared_memory.SharedMemory,
            ctrl: shared_memory.SharedMemory, owner_pid: int) -> None:
    """Finalizer: close + unlink both segments, creator process only.

    Forked children inherit the finalizer registration; the PID guard
    keeps a child's exit from unlinking segments the parent still uses.
    """
    if os.getpid() != owner_pid:
        return
    for seg in (data, ctrl):
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - teardown best effort
            pass


class SharedHeap:
    """Owner of the two shared segments and their carved-up views."""

    def __init__(
        self,
        num_pes: int,
        heap_bytes: int,
        *,
        num_timelines: int,
        mp_context,
        word_slots: int = WORD_SLOTS,
        barrier_slots: int = BARRIER_SLOTS,
    ) -> None:
        if num_pes <= 0 or heap_bytes <= 0:
            raise ValueError("num_pes and heap_bytes must be positive")
        self.num_pes = num_pes
        self.heap_bytes = heap_bytes
        self._word_slots = word_slots
        self._barrier_slots = barrier_slots
        self._data = shared_memory.SharedMemory(
            create=True, size=num_pes * heap_bytes
        )
        # Control layout, all 8-byte fields (offsets in slots):
        #   abort[1] | failed[P] | clocks[P] | lwt[P]
        #   | word keys/times/seqs[P*W]
        #   | barrier keys[B] + gen/count/max/rel/excl/cost[B]
        #   | timelines[T*3]
        slots = (
            1 + 3 * num_pes + 3 * num_pes * word_slots
            + 7 * barrier_slots + 3 * num_timelines
        )
        self._ctrl = shared_memory.SharedMemory(create=True, size=8 * slots)
        np.ndarray((slots,), dtype=np.int64, buffer=self._ctrl.buf)[:] = 0

        def carve(n, dtype):
            nonlocal off
            a = np.ndarray((n,), dtype=dtype, buffer=self._ctrl.buf, offset=8 * off)
            off += n
            return a

        off = 0
        self._abort = carve(1, np.int64)
        self._failed = carve(num_pes, np.int64)
        self._clocks = carve(num_pes, np.float64)
        self._lwt = carve(num_pes, np.float64)
        self._wkeys = carve(num_pes * word_slots, np.int64)
        self._wtimes = carve(num_pes * word_slots, np.float64)
        self._wseqs = carve(num_pes * word_slots, np.int64)
        self._bkeys = carve(barrier_slots, np.int64)
        self._bgen = carve(barrier_slots, np.int64)
        self._bcount = carve(barrier_slots, np.int64)
        self._bmax = carve(barrier_slots, np.float64)
        self._brel = carve(barrier_slots, np.float64)
        self._bexcl = carve(barrier_slots, np.int64)
        self._bcost = carve(barrier_slots, np.float64)
        self._tvals = carve(3 * num_timelines, np.float64)

        self._mem_locks = [mp_context.Lock() for _ in range(num_pes)]
        self.sync_lock = mp_context.Lock()
        self._timeline_locks = [mp_context.Lock() for _ in range(num_timelines)]
        self._next_timeline = 0
        self._owner_pid = os.getpid()
        self.segment_names = (self._data.name, self._ctrl.name)
        self._finalizer = weakref.finalize(
            self, _unlink, self._data, self._ctrl, self._owner_pid
        )

    # ------------------------------------------------------------------
    def memory(self, pe: int) -> SharedPEMemory:
        w = self._word_slots
        buf = np.ndarray(
            (self.heap_bytes,), dtype=np.uint8, buffer=self._data.buf,
            offset=pe * self.heap_bytes,
        )
        return SharedPEMemory(
            self.heap_bytes,
            buf=buf,
            lock=self._mem_locks[pe],
            lwt=self._lwt[pe : pe + 1],
            word_keys=self._wkeys[pe * w : (pe + 1) * w],
            word_times=self._wtimes[pe * w : (pe + 1) * w],
            word_seqs=self._wseqs[pe * w : (pe + 1) * w],
        )

    def abort_event(self) -> SharedAbortEvent:
        return SharedAbortEvent(self._abort)

    def clock_slot(self, pe: int) -> np.ndarray:
        return self._clocks[pe : pe + 1]

    def clock_now(self, pe: int) -> float:
        """Parent-side view of a PE's published virtual time."""
        return float(self._clocks[pe])

    def barrier_state(self, key: tuple[int, ...]) -> SharedBarrierState:
        """Find-or-claim the barrier slot for ``key`` (any process).

        Slots are claimed under the job sync lock and looked up by the
        key's deterministic fingerprint, so processes creating the same
        group in different orders still converge on one slot.
        """
        fp = _fingerprint(tuple(key))
        n = self._barrier_slots
        i = fp % n
        with self.sync_lock:
            for _ in range(n):
                cur = int(self._bkeys[i])
                if cur == fp:
                    break
                if cur == 0:
                    self._bkeys[i] = fp
                    break
                i = (i + 1) % n
            else:
                raise RuntimeError(
                    f"shared barrier table full ({n} slots); raise BARRIER_SLOTS"
                )
        return SharedBarrierState(
            self._bgen[i : i + 1],
            self._bcount[i : i + 1],
            self._bmax[i : i + 1],
            self._brel[i : i + 1],
            self.sync_lock,
            self._bexcl[i : i + 1],
            self._bcost[i : i + 1],
        )

    def failed_state(self) -> "SharedFailedState":
        """The failed-image flag array (survivable jobs), shared so a
        child's crash marks the PE failed in every process at once."""
        return SharedFailedState(self._failed, self.sync_lock)

    def timeline(self, name: str) -> SharedTimeline:
        """Next timeline's shared accumulators (creation is pre-fork, in
        the parent, in deterministic NetworkModel construction order)."""
        if os.getpid() != self._owner_pid:
            raise RuntimeError("shared timelines must be created pre-fork")
        i = self._next_timeline
        if i >= len(self._timeline_locks):
            raise RuntimeError("shared heap sized for fewer timelines")
        self._next_timeline = i + 1
        return SharedTimeline(
            name, self._tvals[3 * i : 3 * i + 3], self._timeline_locks[i]
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink both segments now (idempotent; creator process only)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive


__all__ = [
    "BARRIER_SLOTS",
    "WORD_SLOTS",
    "SharedAbortEvent",
    "SharedBarrierState",
    "SharedFailedState",
    "SharedHeap",
    "SharedPEMemory",
    "SharedTimeline",
]
