"""SPMD execution runtime.

Images/PEs are Python threads; each owns a virtual clock and a slab of
remotely-accessible memory.  This package provides:

* :mod:`repro.runtime.context` — the per-thread PE context;
* :mod:`repro.runtime.memory` — a PE's remotely-accessible memory with
  write notification (backing ``shmem_wait_until`` and the MCS lock's
  local spin);
* :mod:`repro.runtime.sync` — virtual-time barriers and the collective
  agreement helper (symmetric allocation requires all PEs to observe
  identical offsets);
* :mod:`repro.runtime.launcher` — the :class:`Job` object and the
  thread-per-PE SPMD launcher.
"""

from repro.runtime.context import PEContext, current, current_or_none
from repro.runtime.memory import PEMemory
from repro.runtime.sync import VirtualBarrier, CollectiveState, CollectiveMismatch
from repro.runtime.launcher import Job, JobAborted, run_spmd

__all__ = [
    "PEContext",
    "current",
    "current_or_none",
    "PEMemory",
    "VirtualBarrier",
    "CollectiveState",
    "CollectiveMismatch",
    "Job",
    "JobAborted",
    "run_spmd",
]
