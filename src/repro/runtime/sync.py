"""Virtual-time synchronization building blocks.

* :class:`VirtualBarrier` — a reusable barrier that also reconciles
  virtual clocks: every participant leaves with
  ``max(arrival times) + cost`` where ``cost`` comes from the network
  model's dissemination-barrier pricing.
* :class:`CollectiveState` — SPMD collective agreement.  Symmetric
  allocation (``shmalloc``) must return the same offset on every PE;
  the first PE to reach collective *k* computes the result, the rest
  adopt it, and a fingerprint check catches mismatched collectives
  (different sizes passed to the "same" shmalloc, a classic SPMD bug).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable

from repro.runtime.context import PEContext


class CollectiveMismatch(RuntimeError):
    """PEs disagreed about the arguments of a collective call."""


class VirtualBarrier:
    """Reusable barrier over ``num_pes`` threads with clock reconciliation."""

    _ids = itertools.count(1)

    def __init__(self, num_pes: int, *, aborted: Callable[[], bool]) -> None:
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        self.num_pes = num_pes
        self._aborted = aborted
        self._cond = threading.Condition()
        self._generation = 0
        self._count = 0
        self._max_arrival = 0.0
        self._release_time = 0.0
        #: Job-unique identity; with the generation number it names one
        #: barrier *episode* for the sanitizer's happens-before graph.
        self.sync_id = next(VirtualBarrier._ids)

    def wait(self, ctx: PEContext, cost: float = 0.0) -> float:
        """Arrive at the barrier; returns the common departure time.

        ``cost`` is the virtual duration of the barrier algorithm itself
        (e.g. ``NetworkModel.barrier_cost``); the last arriver's value
        is used — callers pass the same constant.
        """
        return self.wait_gen(ctx, cost)[0]

    def wait_gen(self, ctx: PEContext, cost: float = 0.0) -> tuple[float, int]:
        """Like :meth:`wait`, also returning the episode's generation.

        The generation is captured at arrival (the last arriver bumps it
        after capture), so every participant of one episode sees the
        same number.
        """
        from repro.runtime.launcher import JobAborted

        sched = getattr(ctx.job, "scheduler", None)
        if sched is not None:
            return self._wait_gen_cooperative(ctx, cost, sched)
        with self._cond:
            gen = self._generation
            self._max_arrival = max(self._max_arrival, ctx.clock.now)
            self._count += 1
            if self._count == self.num_pes:
                self._release_time = self._max_arrival + cost
                self._count = 0
                self._max_arrival = 0.0
                self._generation += 1
                self._cond.notify_all()
            else:
                wd = getattr(ctx.job, "watchdog", None)
                guard = (
                    wd.watch(ctx.pe, f"barrier(sync_id={self.sync_id}, gen={gen})")
                    if wd is not None
                    else None
                )
                try:
                    if guard is not None:
                        guard.__enter__()
                    while self._generation == gen:
                        if self._aborted():
                            raise JobAborted("job aborted while in barrier")
                        if guard is not None:
                            guard.poll()
                        self._cond.wait(timeout=0.05)
                finally:
                    if guard is not None:
                        guard.__exit__(None, None, None)
            departure = self._release_time
        ctx.clock.merge(departure)
        return departure, gen

    def _wait_gen_cooperative(self, ctx: PEContext, cost: float, sched) -> tuple[float, int]:
        """Scheduler-mode arrival: same bookkeeping, but non-final
        arrivers park in the cooperative scheduler instead of the
        condition variable (only one thread runs at a time, so a cond
        wait here would deadlock the whole schedule)."""
        with self._cond:
            gen = self._generation
            self._max_arrival = max(self._max_arrival, ctx.clock.now)
            self._count += 1
            released = self._count == self.num_pes
            if released:
                self._release_time = self._max_arrival + cost
                self._count = 0
                self._max_arrival = 0.0
                self._generation += 1
        if not released:
            sched.block_until(
                ctx.pe,
                lambda: self._generation != gen,
                f"barrier(sync_id={self.sync_id}, gen={gen})",
            )
        departure = self._release_time
        ctx.clock.merge(departure)
        return departure, gen


class CollectiveState:
    """First-arriver-computes agreement for collective operations."""

    def __init__(self, num_pes: int, *, aborted: Callable[[], bool]) -> None:
        self.num_pes = num_pes
        self._aborted = aborted
        self._lock = threading.Lock()
        # seq -> (fingerprint, result, pes_served)
        self._entries: dict[int, tuple[str, Any, int]] = {}

    def agree(
        self,
        ctx: PEContext,
        fingerprint: str,
        compute: Callable[[], Any],
        seq: int | None = None,
    ) -> Any:
        """Return the agreed result of this PE's next collective.

        The first PE to arrive runs ``compute()``; later PEs receive the
        stored result.  ``fingerprint`` must match across PEs or
        :class:`CollectiveMismatch` is raised (on the mismatching PE).
        Entries are garbage-collected once all PEs have been served.

        ``seq`` overrides the PE's job-wide collective counter — subset
        groups supply their own per-group sequence so group collectives
        interleave safely with job-wide ones.
        """
        if seq is None:
            seq = ctx.next_collective_seq()
        with self._lock:
            entry = self._entries.get(seq)
            if entry is None:
                result = compute()
                served = 1
                if self.num_pes > 1:
                    self._entries[seq] = (fingerprint, result, served)
                return result
            fp, result, served = entry
            if fp != fingerprint:
                raise CollectiveMismatch(
                    f"collective #{seq}: PE {ctx.pe} called {fingerprint!r} "
                    f"but the first arriver called {fp!r}"
                )
            served += 1
            if served == self.num_pes:
                del self._entries[seq]
            else:
                self._entries[seq] = (fp, result, served)
            return result
