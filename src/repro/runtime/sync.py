"""Virtual-time synchronization building blocks.

* :class:`VirtualBarrier` — a reusable barrier that also reconciles
  virtual clocks: every participant leaves with
  ``max(arrival times) + cost`` where ``cost`` comes from the network
  model's dissemination-barrier pricing.
* :class:`CollectiveState` — SPMD collective agreement.  Symmetric
  allocation (``shmalloc``) must return the same offset on every PE;
  the first PE to reach collective *k* computes the result, the rest
  adopt it, and a fingerprint check catches mismatched collectives
  (different sizes passed to the "same" shmalloc, a classic SPMD bug).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable

from repro.runtime.context import PEContext


class CollectiveMismatch(RuntimeError):
    """PEs disagreed about the arguments of a collective call."""


class VirtualBarrier:
    """Reusable barrier over ``num_pes`` PEs with clock reconciliation.

    Arrival bookkeeping (:meth:`arrive`) is engine-neutral float
    arithmetic under one lock; *how* a non-final arriver parks until
    release is the engine's business
    (:meth:`~repro.engine.base.Engine.barrier_wait` — a condition-variable
    wait on the threaded engine, a scheduler ``block_until`` on the
    cooperative engine, a heap-parked continuation on the event engine).

    The release time read at departure is stable without further
    locking: generation ``g``'s ``_release_time`` can only be
    overwritten by generation ``g+1``'s release, which requires every
    PE — including all of ``g``'s parked departers — to have arrived
    again, i.e. to have already departed ``g``.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        num_pes: int,
        *,
        aborted: Callable[[], bool],
        state: Any = None,
        members: tuple | None = None,
    ) -> None:
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        self.num_pes = num_pes
        self._aborted = aborted
        #: Participating PEs (``None`` = all job PEs).  Survivable jobs
        #: consult this when excising a failed PE: only barriers the
        #: dead PE belonged to shrink.
        self.members = members
        #: Optional external episode state (cross-process engines back
        #: it with shared-memory slots — see
        #: :class:`repro.runtime.sharedheap.SharedBarrierState`); ``None``
        #: keeps the historical in-process fields below, which the
        #: threaded engine's ``barrier_wait`` reaches into directly.
        self._shared = state
        if state is None:
            self._cond = threading.Condition()
            self._generation = 0
            self._count = 0
            self._max_arrival = 0.0
            self._release_time = 0.0
            self._last_cost = 0.0
        #: Job-unique identity; with the generation number it names one
        #: barrier *episode* for the sanitizer's happens-before graph.
        self.sync_id = next(VirtualBarrier._ids)

    @property
    def generation(self) -> int:
        """Current episode number (bumped at each release)."""
        if self._shared is not None:
            return self._shared.generation
        return self._generation

    def arrive(self, ctx: PEContext, cost: float = 0.0) -> tuple[int, bool]:
        """Record one arrival; returns ``(generation, released)``.

        The final arriver computes the common release time
        ``max(arrival times) + cost``, resets the episode, bumps the
        generation, and gets ``released=True``; everyone else must park
        via the engine until the generation moves past theirs, then
        call :meth:`depart`.
        """
        if self._shared is not None:
            return self._shared.arrive(self.num_pes, ctx.clock.now, cost)
        with self._cond:
            gen = self._generation
            self._max_arrival = max(self._max_arrival, ctx.clock.now)
            self._count += 1
            self._last_cost = cost
            released = self._count >= self.num_pes
            if released:
                self._release_time = self._max_arrival + cost
                self._count = 0
                self._max_arrival = 0.0
                self._generation += 1
                self._cond.notify_all()
        return gen, released

    def exclude(self, pe: int) -> bool:
        """Permanently excise a failed participant from the episode
        arithmetic; returns True if this released the current episode.

        The survivor release time is unchanged by *when* the exclusion
        lands relative to the survivors' arrivals: every arriver of one
        barrier passes the same ``cost``, so whether the last survivor's
        ``arrive`` or this ``exclude`` completes the episode, the
        release time is ``max(survivor arrivals) + cost`` — survivable
        runs stay bit-identical across engines.  (A crashing PE never
        holds an open arrival: the injected crash fires in the barrier's
        jitter pricing, *before* ``arrive``.)
        """
        if self.members is not None and pe not in self.members:
            return False
        if self._shared is not None:
            # The exclusion count lives in the shared slot; this
            # process's num_pes replica stays at its original value.
            return self._shared.exclude(self.num_pes)
        with self._cond:
            self.num_pes -= 1
            released = 0 < self.num_pes <= self._count
            if released:
                self._release_time = self._max_arrival + self._last_cost
                self._count = 0
                self._max_arrival = 0.0
                self._generation += 1
                self._cond.notify_all()
        return released

    def depart(self, ctx: PEContext, gen: int) -> float:
        """Merge the episode's release time into ``ctx``'s clock and
        return it (see the class docstring for why the unlocked read
        is safe)."""
        if self._shared is not None:
            departure = self._shared.release_time
        else:
            departure = self._release_time
        ctx.clock.merge(departure)
        return departure

    def wait(self, ctx: PEContext, cost: float = 0.0) -> float:
        """Arrive at the barrier; returns the common departure time.

        ``cost`` is the virtual duration of the barrier algorithm itself
        (e.g. ``NetworkModel.barrier_cost``); the last arriver's value
        is used — callers pass the same constant.
        """
        return self.wait_gen(ctx, cost)[0]

    def wait_gen(self, ctx: PEContext, cost: float = 0.0) -> tuple[float, int]:
        """Like :meth:`wait`, also returning the episode's generation.

        The generation is captured at arrival (the last arriver bumps it
        after capture), so every participant of one episode sees the
        same number.  Non-final arrivers park through the job engine's
        ``barrier_wait`` hook.
        """
        gen, released = self.arrive(ctx, cost)
        if not released:
            ctx.job.engine.barrier_wait(ctx, self, gen)
        return self.depart(ctx, gen), gen


class CollectiveState:
    """First-arriver-computes agreement for collective operations."""

    def __init__(self, num_pes: int, *, aborted: Callable[[], bool]) -> None:
        self.num_pes = num_pes
        self._aborted = aborted
        self._lock = threading.Lock()
        # seq -> (fingerprint, result, pes_served)
        self._entries: dict[int, tuple[str, Any, int]] = {}

    def agree(
        self,
        ctx: PEContext,
        fingerprint: str,
        compute: Callable[[], Any],
        seq: int | None = None,
    ) -> Any:
        """Return the agreed result of this PE's next collective.

        The first PE to arrive runs ``compute()``; later PEs receive the
        stored result.  ``fingerprint`` must match across PEs or
        :class:`CollectiveMismatch` is raised (on the mismatching PE).
        Entries are garbage-collected once all PEs have been served.

        ``seq`` overrides the PE's job-wide collective counter — subset
        groups supply their own per-group sequence so group collectives
        interleave safely with job-wide ones.
        """
        if seq is None:
            seq = ctx.next_collective_seq()
        with self._lock:
            entry = self._entries.get(seq)
            if entry is None:
                result = compute()
                served = 1
                if self.num_pes > 1:
                    self._entries[seq] = (fingerprint, result, served)
                return result
            fp, result, served = entry
            if fp != fingerprint:
                raise CollectiveMismatch(
                    f"collective #{seq}: PE {ctx.pe} called {fingerprint!r} "
                    f"but the first arriver called {fp!r}"
                )
            served += 1
            if served == self.num_pes:
                del self._entries[seq]
            else:
                self._entries[seq] = (fp, result, served)
            return result
