"""The failed-images model: surviving the loss of a PE.

Fortran 2018 introduced *failed images*: an image that stops
participating (a node crash, an OOM kill) no longer takes the whole
program down — surviving images observe the failure through
``failed_images()`` / ``image_status()`` / ``stat=STAT_FAILED_IMAGE``
and continue in degraded mode.  DART-MPI carves the same survivability
axis out of MPI-3 for PGAS runtimes, and POSH's process-per-PE model is
what makes single-PE death realistic (see PAPERS.md).  This module is
the job-side half of that model:

* :class:`FailedImageRegistry` — the per-job failed-PE set.  Like the
  abort flag and barrier state it is engine-hook-backed
  (:meth:`~repro.engine.base.Engine.make_failed_state`): in-process
  engines keep a plain flag list, the process engine backs it with a
  shared-memory slot array so every PE process sees one truth.
* :class:`ImageFailedError` — the structured, initiator-side error for
  an operation targeting a failed PE (RMA, AMO, lock, AM, or a wait
  whose partner died).  Detection is *priced*: the initiator's virtual
  clock advances by the registry's ``detect_us`` before the error is
  raised, modeling the conduit's failure-detection latency (a NACK
  timeout, a health-check round trip).
* ``STAT_FAILED_IMAGE`` / ``STAT_STOPPED_IMAGE`` — the Fortran 2018
  ``stat=`` values surfaced by ``caf.sync_all(stat=True)`` and friends.

Only a job launched with ``survivable=True`` ever marks a PE failed
(an :class:`~repro.sim.faults.InjectedCrash`, or a real child-process
death under ``engine="process"``).  With the default
``survivable=False`` the registry stays empty and every check below is
one ``is None`` test — behavior is byte-for-byte the clean-abort
baseline.
"""

from __future__ import annotations

import threading
from typing import Iterable

#: ``stat=`` values (Fortran 2018 ``iso_fortran_env``).  The standard
#: only requires them to be positive and distinct; these particular
#: values are ours.
STAT_STOPPED_IMAGE = 6000
STAT_FAILED_IMAGE = 6001

#: Default failure-detection latency in virtual microseconds: what an
#: initiator pays to learn its target is dead (modeled as a NACK
#: timeout on the conduit, far above a round trip, far below a retry
#: budget's worth of backoff).
DEFAULT_DETECT_US = 25.0


class ImageFailedError(RuntimeError):
    """An operation targeted (or waited on) a failed PE.

    ``op`` names the operation, ``pe`` the initiator, ``target`` the
    failed PE (both 0-based).  Raised only in ``survivable=True`` jobs;
    callers like the replicated DHT catch it to fail over.
    """

    def __init__(self, op: str, pe: int, target: int) -> None:
        super().__init__(
            f"PE {pe}: {op} targets failed PE {target} "
            f"(image {target + 1} has failed)"
        )
        self.op = op
        self.pe = pe
        self.target = target


class FailedImageRegistry:
    """The per-job set of failed PEs.

    In-process backing is a plain flag list under one lock; a
    cross-process engine passes ``state`` — an object with
    ``mark(pe) -> bool`` and ``snapshot() -> sequence-of-ints`` over a
    shared-memory slot array (see
    :meth:`repro.runtime.sharedheap.SharedHeap.failed_state`) — so all
    PE processes observe one failed set.

    ``is_failed`` is the hot-path read: a single list/array index.  The
    communication layers additionally skip the registry entirely when
    the job is not survivable, so the fault-free fast path is untouched.
    """

    def __init__(self, num_pes: int, *, state=None,
                 detect_us: float = DEFAULT_DETECT_US) -> None:
        self.num_pes = num_pes
        self.detect_us = detect_us
        self._state = state
        if state is None:
            self._flags = [False] * num_pes
            self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def mark_failed(self, pe: int) -> bool:
        """Record ``pe`` as failed; returns True if newly marked."""
        if not 0 <= pe < self.num_pes:
            raise ValueError(f"PE {pe} out of range [0, {self.num_pes})")
        if self._state is not None:
            return self._state.mark(pe)
        with self._lock:
            if self._flags[pe]:
                return False
            self._flags[pe] = True
            return True

    def is_failed(self, pe: int) -> bool:
        if self._state is not None:
            return self._state.is_failed(pe)
        return self._flags[pe]

    @property
    def count(self) -> int:
        if self._state is not None:
            return len(self._state.snapshot())
        return sum(self._flags)

    def failed_pes(self) -> tuple[int, ...]:
        """Sorted 0-based PEs currently marked failed."""
        if self._state is not None:
            return tuple(sorted(int(p) for p in self._state.snapshot()))
        with self._lock:
            return tuple(p for p, f in enumerate(self._flags) if f)

    def survivors(self, members: Iterable[int] | None = None) -> tuple[int, ...]:
        """Members (default: all PEs) not currently failed, in order."""
        pes = range(self.num_pes) if members is None else members
        return tuple(p for p in pes if not self.is_failed(p))

    # ------------------------------------------------------------------
    def price_detection(self, ctx) -> None:
        """Advance the initiator's virtual clock by the detection
        latency (called once per raised :class:`ImageFailedError`)."""
        ctx.clock.advance(self.detect_us)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailedImageRegistry(num_pes={self.num_pes}, "
            f"failed={self.failed_pes()})"
        )


def raise_image_failed(ctx, op: str, target: int, registry: FailedImageRegistry,
                       tracer=None) -> None:
    """Price the detection latency, trace a ``fail`` record, and raise
    :class:`ImageFailedError` — the one code path every initiator-side
    detection site (RMA, AMO, AM, lock spin, targeted wait) goes
    through, so detection costs the same virtual time everywhere."""
    t0 = ctx.clock.now
    registry.price_detection(ctx)
    if tracer is not None:
        tracer.record(
            ctx.pe, "fail", target, 0, t0, ctx.clock.now,
            internal=True, meta=("f", op),
        )
    raise ImageFailedError(op, ctx.pe, target)


__all__ = [
    "DEFAULT_DETECT_US",
    "FailedImageRegistry",
    "ImageFailedError",
    "STAT_FAILED_IMAGE",
    "STAT_STOPPED_IMAGE",
    "raise_image_failed",
]
