"""A PE's remotely-accessible memory.

One :class:`PEMemory` per PE backs its symmetric heap.  Remote writers
deposit bytes with :meth:`write` (our stand-in for RDMA into a
registered segment); local and remote readers copy out with
:meth:`read`.  Every write publishes a virtual timestamp and notifies a
condition variable, which is how blocking primitives
(``shmem_wait_until``, the MCS lock's local spin on its qnode's
``locked`` field) sleep without busy-waiting and how the waiter's
virtual clock learns *when* the awaited value arrived.

Atomic read-modify-write operations take the same lock as plain
accesses, so atomics are atomic with respect to everything — a stronger
guarantee than hardware gives, but the paper's algorithms only require
atomicity among AMOs on the same 8-byte word.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np


class PEMemory:
    """Byte-addressable, notification-capable memory of one PE."""

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("memory size must be positive")
        self.nbytes = nbytes
        self._buf = self._make_buf(nbytes)
        self._cond = self._make_cond()
        self._last_write_time = 0.0
        # Virtual timestamps of the last atomic update per word offset:
        # an atomic that *observes* a value cannot logically complete
        # before the write that produced it (lock handoff causality).
        self._word_times: dict[int, float] = {}
        # Wall-order sequence number of atomic updates per word; the
        # sanitizer chains same-word atomics into happens-before edges.
        self._word_seq: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Backing hooks.  The defaults keep everything process-local; the
    # cross-process subclass (repro.runtime.sharedheap.SharedPEMemory)
    # redirects the buffer, the lock/notify protocol, and the published
    # timestamps into shared-memory segments.  All hooks that touch
    # state are called with ``self._cond`` held.
    # ------------------------------------------------------------------
    def _make_buf(self, nbytes: int) -> np.ndarray:
        return np.zeros(nbytes, dtype=np.uint8)

    def _make_cond(self):
        return threading.Condition()

    def _note_write(self, timestamp: float) -> None:
        """Publish a write's virtual completion timestamp."""
        if timestamp > self._last_write_time:
            self._last_write_time = timestamp

    def _read_write_time(self) -> float:
        return self._last_write_time

    def _read_word_time(self, offset: int) -> float:
        return self._word_times.get(offset, 0.0)

    def _word_update(self, offset: int, timestamp: float) -> tuple[float, int]:
        """Record an atomic update to ``offset``; returns the previous
        update's timestamp and this update's 1-based sequence number."""
        prev_time = self._word_times.get(offset, 0.0)
        self._word_times[offset] = max(timestamp, prev_time)
        seq = self._word_seq.get(offset, 0) + 1
        self._word_seq[offset] = seq
        return prev_time, seq

    # ------------------------------------------------------------------
    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise IndexError(
                f"access [{offset}, {offset + length}) outside heap of {self.nbytes} bytes"
            )

    def _check_strided(
        self,
        offset: int,
        stride_bytes: int,
        elem_size: int,
        nelems: int,
        kind: str = "write",
    ) -> None:
        """Bounds check for a strided access, computed arithmetically —
        no index array is materialized just to take its min/max."""
        last = offset + (nelems - 1) * stride_bytes
        lo = offset if offset <= last else last
        hi = (offset if offset >= last else last) + elem_size
        if lo < 0 or hi > self.nbytes:
            raise IndexError(f"strided {kind} escapes the heap")

    # ------------------------------------------------------------------
    def write(self, offset: int, data: np.ndarray | bytes, timestamp: float) -> None:
        """Deposit ``data`` at ``offset`` and wake any waiters.

        ``timestamp`` is the virtual remote-completion time of the
        transfer; waiters whose predicate becomes true merge it into
        their clocks.
        """
        raw = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._check_range(offset, raw.size)
        with self._cond:
            self._buf[offset : offset + raw.size] = raw
            self._note_write(timestamp)
            self._cond.notify_all()

    def write_strided(
        self,
        offset: int,
        stride_bytes: int,
        elem_size: int,
        data: np.ndarray | bytes,
        timestamp: float,
    ) -> None:
        """Scatter ``nelems`` elements of ``elem_size`` bytes starting at
        ``offset`` with a byte stride, under one lock acquisition — the
        functional half of a native ``shmem_iput``."""
        raw = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        )
        if elem_size <= 0 or raw.size % elem_size:
            raise ValueError("data length must be a multiple of elem_size")
        nelems = raw.size // elem_size
        if nelems == 0:
            return
        self._check_strided(offset, stride_bytes, elem_size, nelems)
        with self._cond:
            if stride_bytes >= elem_size:
                dst = np.lib.stride_tricks.as_strided(
                    self._buf[offset:],
                    shape=(nelems, elem_size),
                    strides=(stride_bytes, 1),
                )
                dst[:, :] = raw.reshape(nelems, elem_size)
            else:
                idx = (offset + np.arange(nelems) * stride_bytes)[:, None] + np.arange(elem_size)[None, :]
                self._buf[idx.ravel()] = raw
            self._note_write(timestamp)
            self._cond.notify_all()

    def read_strided(
        self, offset: int, stride_bytes: int, elem_size: int, nelems: int
    ) -> np.ndarray:
        """Gather ``nelems`` strided elements into a contiguous copy —
        the functional half of a native ``shmem_iget``."""
        if nelems < 0 or elem_size <= 0:
            raise ValueError("nelems must be >= 0 and elem_size > 0")
        if nelems == 0:
            return np.empty(0, dtype=np.uint8)
        self._check_strided(offset, stride_bytes, elem_size, nelems, kind="read")
        with self._cond:
            if stride_bytes >= elem_size:
                src = np.lib.stride_tricks.as_strided(
                    self._buf[offset:],
                    shape=(nelems, elem_size),
                    strides=(stride_bytes, 1),
                )
                return np.ascontiguousarray(src).reshape(-1)
            idx = (offset + np.arange(nelems) * stride_bytes)[:, None] + np.arange(elem_size)[None, :]
            return self._buf[idx.ravel()].copy()

    _VIEW_DTYPES = {2: np.uint16, 4: np.uint32, 8: np.uint64}

    def _scatter_index(self, offsets: np.ndarray, elem_size: int) -> np.ndarray:
        """Byte-expand element offsets for the unaligned fallback."""
        return (offsets[:, None] + np.arange(elem_size)[None, :]).ravel()

    def _check_at(self, offsets: np.ndarray, elem_size: int) -> None:
        lo = int(offsets.min())
        hi = int(offsets.max()) + elem_size
        if lo < 0 or hi > self.nbytes:
            raise IndexError(
                f"batched access [{lo}, {hi}) outside heap of {self.nbytes} bytes"
            )

    def write_at(
        self,
        offsets: np.ndarray,
        elem_size: int,
        data: np.ndarray | bytes,
        timestamp: float,
        *,
        aligned: bool | None = None,
    ) -> None:
        """Scatter one ``elem_size``-byte element per entry of ``offsets``
        (absolute byte offsets) under a **single** lock acquisition and
        one ``notify_all`` — the functional half of a whole batched
        transfer plan.

        ``aligned`` may assert that every offset is a multiple of
        ``elem_size`` (callers with cached index arrays know this);
        ``None`` means check here.
        """
        raw = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        )
        if elem_size <= 0 or raw.size != offsets.shape[0] * elem_size:
            raise ValueError("data length must equal len(offsets) * elem_size")
        if offsets.shape[0] == 0:
            return
        self._check_at(offsets, elem_size)
        if aligned is None:
            aligned = elem_size in self._VIEW_DTYPES and not (offsets % elem_size).any()
        with self._cond:
            if elem_size == 1:
                self._buf[offsets] = raw
            elif aligned and elem_size in self._VIEW_DTYPES:
                dt = self._VIEW_DTYPES[elem_size]
                usable = self.nbytes - self.nbytes % elem_size
                self._buf[:usable].view(dt)[offsets // elem_size] = raw.view(dt)
            else:
                self._buf[self._scatter_index(offsets, elem_size)] = raw
            self._note_write(timestamp)
            self._cond.notify_all()

    def read_at(
        self,
        offsets: np.ndarray,
        elem_size: int,
        *,
        aligned: bool | None = None,
    ) -> np.ndarray:
        """Gather one element per entry of ``offsets`` into a contiguous
        ``uint8`` copy (element order preserved), under one lock."""
        if elem_size <= 0:
            raise ValueError("elem_size must be positive")
        if offsets.shape[0] == 0:
            return np.empty(0, dtype=np.uint8)
        self._check_at(offsets, elem_size)
        if aligned is None:
            aligned = elem_size in self._VIEW_DTYPES and not (offsets % elem_size).any()
        with self._cond:
            # Fancy indexing already yields a fresh contiguous copy.
            if elem_size == 1:
                return self._buf[offsets]
            if aligned and elem_size in self._VIEW_DTYPES:
                dt = self._VIEW_DTYPES[elem_size]
                usable = self.nbytes - self.nbytes % elem_size
                out = self._buf[:usable].view(dt)[offsets // elem_size]
                return out.view(np.uint8).reshape(-1)
            return self._buf[self._scatter_index(offsets, elem_size)]

    def scatter_at(
        self,
        index: np.ndarray,
        data: np.ndarray,
        timestamp: float,
        *,
        elem_size: int,
        lo: int,
        hi: int,
        expanded: bool = False,
    ) -> None:
        """Scatter a whole precompiled plan as one fancy-indexed copy.

        The vectorized counterpart of :meth:`write_at` for callers that
        hold a *precomputed* index array (a cached
        :class:`~repro.comm.base.BatchSpec`): ``index`` is already in
        the granularity the copy needs — element indices into the
        ``elem_size``-wide view of the heap (``expanded=False``; byte
        offsets when ``elem_size == 1``), or per-byte offsets
        (``expanded=True``, the path for unaligned bases and view-less
        element sizes).  ``[lo, hi)`` are the absolute byte bounds of
        the access, also precomputed, so the range check is O(1) — no
        per-call min/max/divmod over the index array.
        """
        if lo < 0 or hi > self.nbytes:
            raise IndexError(
                f"batched access [{lo}, {hi}) outside heap of {self.nbytes} bytes"
            )
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        with self._cond:
            if expanded or elem_size == 1:
                self._buf[index] = raw
            else:
                dt = self._VIEW_DTYPES[elem_size]
                usable = self.nbytes - self.nbytes % elem_size
                self._buf[:usable].view(dt)[index] = raw.view(dt)
            self._note_write(timestamp)
            self._cond.notify_all()

    def gather_at(
        self,
        index: np.ndarray,
        *,
        elem_size: int,
        lo: int,
        hi: int,
        expanded: bool = False,
    ) -> np.ndarray:
        """Gather a whole precompiled plan into a contiguous ``uint8``
        copy — the vectorized counterpart of :meth:`read_at`; see
        :meth:`scatter_at` for the ``index``/bounds contract."""
        if lo < 0 or hi > self.nbytes:
            raise IndexError(
                f"batched access [{lo}, {hi}) outside heap of {self.nbytes} bytes"
            )
        with self._cond:
            # Fancy indexing already yields a fresh contiguous copy.
            if expanded or elem_size == 1:
                return self._buf[index]
            dt = self._VIEW_DTYPES[elem_size]
            usable = self.nbytes - self.nbytes % elem_size
            return self._buf[:usable].view(dt)[index].view(np.uint8).reshape(-1)

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Copy ``nbytes`` starting at ``offset`` out of the heap."""
        self._check_range(offset, nbytes)
        with self._cond:
            return self._buf[offset : offset + nbytes].copy()

    def read_scalar(self, offset: int, dtype: np.dtype) -> np.generic:
        """Read one scalar of ``dtype`` at ``offset`` (atomic snapshot)."""
        dt = np.dtype(dtype)
        self._check_range(offset, dt.itemsize)
        with self._cond:
            return self._buf[offset : offset + dt.itemsize].view(dt)[0]

    def local_view(self, offset: int, nbytes: int) -> np.ndarray:
        """A zero-copy view for the *owning* PE's local accesses.

        Mutating the view does not notify waiters; local stores that a
        remote PE may be spinning on must go through :meth:`write`.
        """
        self._check_range(offset, nbytes)
        return self._buf[offset : offset + nbytes]

    # ------------------------------------------------------------------
    def atomic_rmw(
        self,
        offset: int,
        dtype: np.dtype,
        fn: Callable[[np.generic], np.generic | int | float],
        timestamp: float,
    ) -> np.generic:
        """Atomically apply ``fn(old) -> new`` to the scalar at ``offset``.

        Returns the old value.  Waiters are notified because lock
        hand-off protocols (MCS) release by atomically updating words
        other PEs wait on.
        """
        old, _, _ = self.atomic_rmw_timed(offset, dtype, fn, timestamp)
        return old

    def atomic_rmw_timed(
        self,
        offset: int,
        dtype: np.dtype,
        fn: Callable[[np.generic], np.generic | int | float],
        timestamp: float,
    ) -> tuple[np.generic, float, int]:
        """Like :meth:`atomic_rmw`, additionally returning the virtual
        timestamp of the previous atomic update to this word and this
        update's per-word sequence number (1-based, wall order).

        The caller uses the timestamp for causality: an atomic that
        observed a value deposited at time T cannot complete before T
        plus the response leg — this is what makes lock handoff chains
        (MCS release->acquire, test-and-set release->winning retry)
        consume virtual time instead of being free.  The sequence number
        feeds the sanitizer's same-word atomic ordering edges.
        """
        dt = np.dtype(dtype)
        self._check_range(offset, dt.itemsize)
        with self._cond:
            view = self._buf[offset : offset + dt.itemsize].view(dt)
            old = view[0].copy()
            view[0] = fn(old)
            prev_time, seq = self._word_update(offset, timestamp)
            self._note_write(timestamp)
            self._cond.notify_all()
            return old, prev_time, seq

    def accumulate(
        self,
        offset: int,
        dtype: np.dtype,
        data: np.ndarray,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray],
        timestamp: float,
    ) -> None:
        """Element-wise atomic update (MPI_Accumulate): apply
        ``op(current, data)`` to contiguous elements under one lock."""
        dt = np.dtype(dtype)
        arr = np.ascontiguousarray(data, dtype=dt).reshape(-1)
        self._check_range(offset, arr.nbytes)
        with self._cond:
            view = self._buf[offset : offset + arr.nbytes].view(dt)
            view[:] = op(view, arr)
            self._note_write(timestamp)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def wait_until(
        self,
        predicate: Callable[[], bool],
        *,
        aborted: Callable[[], bool],
        poll_interval: float = 0.05,
        watch: Callable[[], None] | None = None,
    ) -> float:
        """Block until ``predicate()`` holds; return the virtual timestamp
        of the last write observed when it did.

        ``aborted`` is polled so that a crashed sibling PE cannot leave
        this thread blocked forever; it raises through the caller.
        ``watch`` (a watchdog guard's ``poll``) is called once per loop
        iteration and raises past the wall-clock stall deadline.
        """
        with self._cond:
            while not predicate():
                if aborted():
                    from repro.runtime.launcher import JobAborted

                    raise JobAborted("job aborted while waiting on memory")
                if watch is not None:
                    watch()
                self._cond.wait(timeout=poll_interval)
            return self._read_write_time()

    @property
    def last_write_time(self) -> float:
        with self._cond:
            return self._read_write_time()

    def word_time(self, offset: int) -> float:
        """Virtual timestamp of the last *atomic* update to the word at
        ``offset`` (0.0 if never atomically touched).

        Unlike :attr:`last_write_time` this is per-word: a waiter whose
        protocol guarantees strict post/consume alternation on one flag
        word can merge this instead of the memory-global maximum, making
        its merged clock independent of whether unrelated writes to
        *other* words landed first — the property the collective
        library's trace-digest stability rests on.
        """
        with self._cond:
            return self._read_word_time(offset)
