"""Shared benchmark machinery.

* :class:`CafConfig` — one line of a paper figure: a labeled CAF
  runtime configuration (backend, conduit profile, strided policy,
  lock algorithm).  The module-level constants name the exact
  configurations the paper's figures compare.
* :class:`BenchFigure` — a collected figure: labeled series over a
  common x-axis, renderable as the table a figure's plot encodes.
* Pair-placement helpers for the "N pairs across two nodes" layout the
  microbenchmarks use (members of a pair are always on different
  nodes, paper Section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.tables import Series, render_figure


@dataclass(frozen=True, slots=True)
class CafConfig:
    """A labeled CAF runtime configuration (one figure line)."""

    label: str
    backend: str  # shmem | gasnet | mpi | craycaf
    profile: str | None = None  # conduit override (None = backend default)
    strided: str | None = None  # strided policy override
    lock_algorithm: str | None = None

    def launch_kwargs(self) -> dict[str, Any]:
        kw: dict[str, Any] = {"backend": self.backend}
        if self.profile is not None:
            kw["profile"] = self.profile
        if self.strided is not None:
            kw["strided"] = self.strided
        if self.lock_algorithm is not None:
            kw["lock_algorithm"] = self.lock_algorithm
        return kw


# The configurations the paper's figures name. --------------------------------

CRAY_CAF = CafConfig("Cray-CAF", backend="craycaf")
UHCAF_GASNET = CafConfig("UHCAF-GASNet", backend="gasnet")
UHCAF_CRAY_SHMEM = CafConfig(
    "UHCAF-Cray-SHMEM", backend="shmem", profile="cray-shmem"
)
UHCAF_CRAY_SHMEM_NAIVE = CafConfig(
    "UHCAF-Cray-SHMEM-naive", backend="shmem", profile="cray-shmem", strided="naive"
)
UHCAF_CRAY_SHMEM_2DIM = CafConfig(
    "UHCAF-Cray-SHMEM-2dim", backend="shmem", profile="cray-shmem", strided="2dim"
)
UHCAF_MV2X_SHMEM = CafConfig(
    "UHCAF-MVAPICH2-X-SHMEM", backend="shmem", profile="mvapich2x-shmem"
)
UHCAF_MV2X_SHMEM_NAIVE = CafConfig(
    "UHCAF-MVAPICH2-X-SHMEM-naive",
    backend="shmem",
    profile="mvapich2x-shmem",
    strided="naive",
)
UHCAF_MV2X_SHMEM_2DIM = CafConfig(
    "UHCAF-MVAPICH2-X-SHMEM-2dim",
    backend="shmem",
    profile="mvapich2x-shmem",
    strided="2dim",
)


@dataclass
class BenchFigure:
    """One reproduced figure: series over a shared x-axis."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def add_series(self, label: str, xs: Sequence[Any], ys: Sequence[float]) -> None:
        s = Series(label)
        for x, y in zip(xs, ys):
            s.add(x, y)
        self.series.append(s)

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r}; have {[s.label for s in self.series]}")

    def render(self) -> str:
        return render_figure(self.title, self.x_label, self.y_label, self.series)

    def __str__(self) -> str:
        return self.render()


# ---------------------------------------------------------------------------
# Pair placement (paper Section III: members of a pair are always on
# two different nodes; 1 or 16 pairs across two compute nodes)
# ---------------------------------------------------------------------------


def pair_world_size(pairs: int, cores_per_node: int = 16) -> int:
    """PE count for a two-node pair benchmark (idle PEs fill node 0)."""
    if not 1 <= pairs <= cores_per_node:
        raise ValueError(f"pairs must be in [1, {cores_per_node}]")
    return cores_per_node + pairs


def pair_partner(pe: int, pairs: int, cores_per_node: int = 16) -> int | None:
    """The partner PE of an *initiator* ``pe``, or None for idle PEs.

    Initiators are PEs ``0..pairs-1`` on node 0; partners are PEs
    ``cores_per_node..cores_per_node+pairs-1`` on node 1.
    """
    if pe < pairs:
        return cores_per_node + pe
    return None


def bandwidth_MBps(nbytes: int, elapsed_us: float) -> float:
    """Bandwidth in MB/s from bytes moved in virtual microseconds."""
    if elapsed_us <= 0:
        raise ValueError("elapsed time must be positive")
    return nbytes / elapsed_us  # bytes/us == MB/s
