"""The PGAS Microbenchmark suite in CAF (paper Section V-B, Figs 6-8).

Three tests, each parameterized by a :class:`~repro.bench.harness.CafConfig`:

* **Contiguous put bandwidth** — co-indexed whole-slice assignment
  between pairs on two different nodes (Figs 6/7 plots a, b).
* **Multi-dimensional strided put bandwidth** — a 2-D strided section
  ``a(0:R:2, 0:C:stride)[partner]`` whose stride length is the x-axis
  (Figs 6/7 plots c, d).  The row dimension deliberately has more
  selected elements than the column dimension at large strides, so the
  base-dimension choice (``2dim``) pays off exactly as in the paper.
* **Lock contention** — every image repeatedly acquires and releases a
  lock on image 1 (Fig 8).
"""

from __future__ import annotations

import numpy as np

from repro import caf
from repro.bench.harness import (
    CafConfig,
    bandwidth_MBps,
    pair_partner,
    pair_world_size,
)
from repro.runtime.context import current

INT_SIZE = 4  # the suite's "# of integers" x-axes count 4-byte integers


def caf_put_bandwidth(
    machine: str,
    config: CafConfig,
    nbytes: int,
    pairs: int = 1,
    iters: int = 10,
) -> float:
    """Contiguous co-indexed put bandwidth in MB/s (Figs 6/7 a-b).

    CAF ordering holds: every assignment statement completes remotely
    before the next (the runtime's Section IV-B quiet insertion), so
    bandwidth is statement bandwidth, not pipelined NIC bandwidth.
    """
    num_pes = pair_world_size(pairs)
    nelems = max(1, nbytes // INT_SIZE)
    heap = max(1 << 22, 4 * nelems * INT_SIZE + (1 << 18))

    def kernel() -> float | None:
        ctx = current()
        me = ctx.pe
        a = caf.coarray((nelems,), np.int32)
        a[:] = me
        caf.sync_all()
        partner = pair_partner(me, pairs)
        if partner is None:
            caf.sync_all()
            return None
        partner_image = partner + 1
        payload = np.full(nelems, me, dtype=np.int32)
        t0 = ctx.clock.now
        for _ in range(iters):
            a.on(partner_image)[:] = payload
        elapsed = ctx.clock.now - t0
        caf.sync_all()
        return bandwidth_MBps(nelems * INT_SIZE * iters, elapsed)

    results = caf.launch(
        kernel, num_pes, machine, heap_bytes=heap, **config.launch_kwargs()
    )
    return min(r for r in results if r is not None)


def caf_get_bandwidth(
    machine: str,
    config: CafConfig,
    nbytes: int,
    pairs: int = 1,
    iters: int = 10,
) -> float:
    """Contiguous co-indexed *get* bandwidth in MB/s (the suite's get
    test; gets are blocking round trips, so no quiet is involved)."""
    num_pes = pair_world_size(pairs)
    nelems = max(1, nbytes // INT_SIZE)
    heap = max(1 << 22, 4 * nelems * INT_SIZE + (1 << 18))

    def kernel() -> float | None:
        ctx = current()
        me = ctx.pe
        a = caf.coarray((nelems,), np.int32)
        a[:] = me
        caf.sync_all()
        partner = pair_partner(me, pairs)
        if partner is None:
            caf.sync_all()
            return None
        partner_image = partner + 1
        t0 = ctx.clock.now
        for _ in range(iters):
            a.on(partner_image)[...]
        elapsed = ctx.clock.now - t0
        caf.sync_all()
        return bandwidth_MBps(nelems * INT_SIZE * iters, elapsed)

    results = caf.launch(
        kernel, num_pes, machine, heap_bytes=heap, **config.launch_kwargs()
    )
    return min(r for r in results if r is not None)


def caf_strided_get_bandwidth(
    machine: str,
    config: CafConfig,
    stride: int,
    pairs: int = 1,
    iters: int = 5,
    rows: int = 128,
    cols: int = 1024,
) -> float:
    """2-D strided co-indexed get bandwidth in MB/s (suite get test)."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    num_pes = pair_world_size(pairs)
    heap = max(1 << 22, 4 * rows * cols * INT_SIZE + (1 << 18))
    n_rows = rows // 2
    n_cols = max(1, -(-cols // stride))
    payload_elems = n_rows * n_cols

    def kernel() -> float | None:
        ctx = current()
        me = ctx.pe
        a = caf.coarray((rows, cols), np.int32)
        a[:] = me
        caf.sync_all()
        partner = pair_partner(me, pairs)
        if partner is None:
            caf.sync_all()
            return None
        partner_image = partner + 1
        t0 = ctx.clock.now
        for _ in range(iters):
            a.on(partner_image)[0:rows:2, 0:cols:stride]
        elapsed = ctx.clock.now - t0
        caf.sync_all()
        return bandwidth_MBps(payload_elems * INT_SIZE * iters, elapsed)

    results = caf.launch(
        kernel, num_pes, machine, heap_bytes=heap, **config.launch_kwargs()
    )
    return min(r for r in results if r is not None)


def caf_strided_put_bandwidth(
    machine: str,
    config: CafConfig,
    stride: int,
    pairs: int = 1,
    iters: int = 5,
    rows: int = 128,
    cols: int = 1024,
) -> float:
    """2-D strided co-indexed put bandwidth in MB/s (Figs 6/7 c-d).

    Section: ``a(0:rows:2, 0:cols:stride)`` — ``rows/2`` selected rows,
    ``cols/stride`` selected columns.  Bandwidth counts payload bytes
    (the selected elements), as the suite does.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    num_pes = pair_world_size(pairs)
    heap = max(1 << 22, 4 * rows * cols * INT_SIZE + (1 << 18))
    n_rows = rows // 2
    n_cols = max(1, -(-cols // stride))
    payload_elems = n_rows * n_cols

    def kernel() -> float | None:
        ctx = current()
        me = ctx.pe
        a = caf.coarray((rows, cols), np.int32)
        a[:] = 0
        caf.sync_all()
        partner = pair_partner(me, pairs)
        if partner is None:
            caf.sync_all()
            return None
        partner_image = partner + 1
        payload = np.full((n_rows, n_cols), me + 1, dtype=np.int32)
        t0 = ctx.clock.now
        for _ in range(iters):
            a.on(partner_image)[0:rows:2, 0:cols:stride] = payload
        elapsed = ctx.clock.now - t0
        caf.sync_all()
        return bandwidth_MBps(payload_elems * INT_SIZE * iters, elapsed)

    results = caf.launch(
        kernel, num_pes, machine, heap_bytes=heap, **config.launch_kwargs()
    )
    return min(r for r in results if r is not None)


def lock_contention_time(
    machine: str,
    config: CafConfig,
    num_images: int,
    acquires: int = 4,
) -> float:
    """Fig 8 cell: every image acquires+releases ``lck[1]`` ``acquires``
    times; returns total elapsed virtual microseconds (max over images)."""
    if num_images < 1:
        raise ValueError("num_images must be >= 1")

    def kernel() -> float:
        ctx = current()
        lck = caf.lock_type()
        caf.sync_all()
        t0 = ctx.clock.now
        for _ in range(acquires):
            caf.lock(lck, 1)
            caf.unlock(lck, 1)
        caf.sync_all()
        return ctx.clock.now - t0

    results = caf.launch(kernel, num_images, machine, **config.launch_kwargs())
    return max(results)
