"""Distributed hash table over coarray locks (paper Section V-C, Fig 9).

The DHT (after Maynard's one-sided comparison code the paper cites) is
both a benchmark and a small reusable data structure built purely on
the public CAF API:

* the table is a pair of coarrays (``keys``, ``values``), each image
  owning ``slots_per_image`` slots;
* a key hashes to an owning image and a home slot there; collisions
  probe linearly within the owner;
* every update takes the *coarray lock at the owning image* guarding
  the key's bucket (``lock(lck[owner])``) — the paper's "some form of
  atomicity ... achieved using coarray locks" — then read-modify-writes
  the slot with co-indexed accesses.

Under the MCS implementation, contended updates to one image queue
fairly; under the test-and-set baseline they hammer the owner's atomic
unit — the Fig 9 gap.
"""

from __future__ import annotations

import numpy as np

from repro import caf
from repro.bench.harness import CafConfig
from repro.runtime.context import current
from repro.runtime.failures import ImageFailedError

EMPTY_KEY = -1


class DhtFullError(RuntimeError):
    """An image's slot region is full (probe wrapped around)."""


def _mix(key: int) -> int:
    """64-bit splitmix-style hash (deterministic across images)."""
    z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class DistributedHashTable:
    """An integer-keyed counting hash table distributed across images.

    Collective constructor: every image must create it together.
    ``update(key, delta)`` adds ``delta`` to the key's counter
    (inserting it on first touch); ``lookup(key)`` reads the counter.
    """

    def __init__(self, slots_per_image: int, locks_per_image: int = 1) -> None:
        if slots_per_image < 1 or locks_per_image < 1:
            raise ValueError("slots_per_image and locks_per_image must be >= 1")
        if locks_per_image > slots_per_image:
            raise ValueError("cannot have more locks than slots")
        self.slots_per_image = slots_per_image
        self.locks_per_image = locks_per_image
        self.keys = caf.coarray((slots_per_image,), np.int64)
        self.values = caf.coarray((slots_per_image,), np.int64)
        self.locks = caf.lock_type((locks_per_image,))
        self.keys[:] = EMPTY_KEY
        self.values[:] = 0
        caf.sync_all()

    # ------------------------------------------------------------------
    def home(self, key: int) -> tuple[int, int]:
        """(owning image, home slot) of ``key``."""
        h = _mix(int(key))
        image = h % caf.num_images() + 1
        slot = (h >> 20) % self.slots_per_image
        return image, slot

    def _lock_index(self, slot: int) -> int:
        return slot * self.locks_per_image // self.slots_per_image

    def _lock_span(self, lock_idx: int) -> int:
        """Number of slots guarded by bucket ``lock_idx``.

        When ``slots_per_image`` is not a multiple of ``locks_per_image``
        the spans are uneven, so the span must be counted from the slot
        mapping rather than derived from the floor quotient.
        """
        s, n = self.slots_per_image, self.locks_per_image
        first = (lock_idx * s + n - 1) // n
        end = ((lock_idx + 1) * s + n - 1) // n
        return end - first

    def update(self, key: int, delta: int = 1) -> int:
        """Add ``delta`` to ``key``'s counter; returns the new value.

        Takes the owner-image bucket lock for the whole probe sequence,
        so concurrent updates to colliding keys stay consistent.
        """
        key = int(key)
        if key == EMPTY_KEY:
            raise ValueError(f"key {EMPTY_KEY} is reserved for empty slots")
        image, home = self.home(key)
        lock_idx = self._lock_index(home)
        with self.locks.guard(image, lock_idx):
            slot = home
            for _ in range(self.slots_per_image):
                k = int(self.keys.on(image)[slot])
                if k == key:
                    new = int(self.values.on(image)[slot]) + delta
                    self.values.on(image)[slot] = new
                    return new
                if k == EMPTY_KEY:
                    self.keys.on(image)[slot] = key
                    self.values.on(image)[slot] = delta
                    return delta
                nxt = (slot + 1) % self.slots_per_image
                # Linear probing may cross into another lock's bucket;
                # keep the single-bucket locking discipline valid by
                # restricting probes to the home bucket's lock span.
                if self._lock_index(nxt) != lock_idx:
                    break
                slot = nxt
        raise DhtFullError(
            f"bucket {lock_idx} on image {image} is full "
            f"({self._lock_span(lock_idx)} slots)"
        )

    def lookup(self, key: int) -> int | None:
        """Current counter of ``key`` (locked read), or None if absent."""
        key = int(key)
        image, home = self.home(key)
        lock_idx = self._lock_index(home)
        with self.locks.guard(image, lock_idx):
            slot = home
            for _ in range(self.slots_per_image):
                k = int(self.keys.on(image)[slot])
                if k == key:
                    return int(self.values.on(image)[slot])
                if k == EMPTY_KEY:
                    return None
                nxt = (slot + 1) % self.slots_per_image
                if self._lock_index(nxt) != lock_idx:
                    return None
                slot = nxt
        return None

    def local_totals(self) -> tuple[int, int]:
        """(occupied slots, sum of counters) on this image."""
        keys = self.keys.local
        vals = self.values.local
        occupied = int(np.count_nonzero(keys != EMPTY_KEY))
        return occupied, int(vals[keys != EMPTY_KEY].sum())


# ---------------------------------------------------------------------------
# Replicated DHT (failed-images case study)
# ---------------------------------------------------------------------------

#: Region indices into the replicated table's lock array.
_PRIMARY = 0
_REPLICA = 1


class ReplicatedHashTable:
    """A k=2 replicated DHT that survives the failure of any one image.

    Built purely on the public CAF API plus the failed-images model
    (``survivable=True`` launches): every bucket lives on its *primary*
    image and is mirrored into a *replica* region on the next image on
    the ring.  Updates write both copies (primary first, each under its
    own bucket lock — sequential, never nested, so a crash can strand
    at most one lock); reads prefer the primary and fail over to the
    replica when the primary has failed (``ImageFailedError``).  When a
    primary dies, its buckets are *re-homed*: the ring successor's
    replica region becomes authoritative and absorbs all further
    writes.

    An update is **acknowledged** — appended to the per-image ``acked``
    ledger and its new value returned — only once at least one copy
    landed on an image that was live at that moment.  A write that
    raised on one region may still have physically landed there, but
    only when that region's host died mid-operation, i.e. on a copy no
    reader will ever consult; counting it unacked is therefore safe.
    With both copies dead (two failures; beyond k=2) the update raises
    ``ImageFailedError`` and nothing is acked.

    Survivable jobs should launch with ``lock_algorithm="tas"``: TAS
    recovery from a dead holder is unconditional (central-word steal),
    while MCS has an unrecoverable queued-behind-a-live-holder case
    (see docs/MODEL.md §12).
    """

    def __init__(self, slots_per_image: int, locks_per_image: int = 1) -> None:
        if caf.num_images() < 2:
            raise ValueError("ReplicatedHashTable needs at least 2 images")
        if slots_per_image < 1 or locks_per_image < 1:
            raise ValueError("slots_per_image and locks_per_image must be >= 1")
        if locks_per_image > slots_per_image:
            raise ValueError("cannot have more locks than slots")
        self.slots_per_image = slots_per_image
        self.locks_per_image = locks_per_image
        # region 0 = primary buckets owned here; region 1 = mirror of
        # the ring predecessor's primary buckets.
        self.keys = caf.coarray((2, slots_per_image), np.int64)
        self.values = caf.coarray((2, slots_per_image), np.int64)
        self.locks = caf.lock_type((2, locks_per_image))
        self.keys[:] = EMPTY_KEY
        self.values[:] = 0
        #: Per-image ledger of acknowledged writes ``(key, delta)`` —
        #: the chaos gate's "zero lost acked writes" evidence.
        self.acked: list[tuple[int, int]] = []
        caf.sync_all()

    # ------------------------------------------------------------------
    def home(self, key: int) -> tuple[int, int]:
        """(primary image, home slot) of ``key``."""
        h = _mix(int(key))
        image = h % caf.num_images() + 1
        slot = (h >> 20) % self.slots_per_image
        return image, slot

    def secondary(self, image: int) -> int:
        """The replica host for ``image``'s buckets: next on the ring."""
        return image % caf.num_images() + 1

    def _lock_index(self, slot: int) -> int:
        return slot * self.locks_per_image // self.slots_per_image

    # ------------------------------------------------------------------
    def _apply(self, image: int, region: int, home: int, key: int,
               delta: int) -> int:
        """Read-modify-write one copy under its bucket lock; returns the
        new value.  Raises ``ImageFailedError`` if ``image`` is (or
        becomes) failed, ``DhtFullError`` if the bucket is full."""
        lock_idx = self._lock_index(home)
        with self.locks.guard(image, (region, lock_idx)):
            slot = home
            for _ in range(self.slots_per_image):
                k = int(self.keys.on(image)[region, slot])
                if k == key:
                    new = int(self.values.on(image)[region, slot]) + delta
                    self.values.on(image)[region, slot] = new
                    return new
                if k == EMPTY_KEY:
                    self.keys.on(image)[region, slot] = key
                    self.values.on(image)[region, slot] = delta
                    return delta
                nxt = (slot + 1) % self.slots_per_image
                if self._lock_index(nxt) != lock_idx:
                    break
                slot = nxt
        raise DhtFullError(
            f"bucket {lock_idx} (region {region}) on image {image} is full"
        )

    def _probe(self, image: int, region: int, home: int, key: int) -> int | None:
        """Locked read of one copy; None if absent."""
        lock_idx = self._lock_index(home)
        with self.locks.guard(image, (region, lock_idx)):
            slot = home
            for _ in range(self.slots_per_image):
                k = int(self.keys.on(image)[region, slot])
                if k == key:
                    return int(self.values.on(image)[region, slot])
                if k == EMPTY_KEY:
                    return None
                nxt = (slot + 1) % self.slots_per_image
                if self._lock_index(nxt) != lock_idx:
                    return None
                slot = nxt
        return None

    # ------------------------------------------------------------------
    def update(self, key: int, delta: int = 1) -> int:
        """Add ``delta`` to ``key``'s counter on both copies; returns
        the new value from the authoritative copy.

        Acks (ledger append) once either copy is written; raises
        ``ImageFailedError`` only when both copy hosts have failed.
        """
        key = int(key)
        if key == EMPTY_KEY:
            raise ValueError(f"key {EMPTY_KEY} is reserved for empty slots")
        primary, home = self.home(key)
        new: int | None = None
        try:
            new = self._apply(primary, _PRIMARY, home, key, delta)
        except ImageFailedError:
            pass  # primary dead: the replica copy is now authoritative
        try:
            rnew = self._apply(self.secondary(primary), _REPLICA, home, key, delta)
            if new is None:
                new = rnew
        except ImageFailedError:
            if new is None:
                raise  # both copies lost — cannot acknowledge
        self.acked.append((key, delta))
        return new

    def lookup(self, key: int) -> int | None:
        """Counter of ``key`` (locked read, primary preferred), or None."""
        key = int(key)
        primary, home = self.home(key)
        try:
            return self._probe(primary, _PRIMARY, home, key)
        except ImageFailedError:
            return self._probe(self.secondary(primary), _REPLICA, home, key)

    # ------------------------------------------------------------------
    def acked_totals(self) -> dict[int, int]:
        """This image's acked writes folded per key."""
        totals: dict[int, int] = {}
        for key, delta in self.acked:
            totals[key] = totals.get(key, 0) + delta
        return totals

    def verify_acked(self) -> list[tuple[int, int, int | None]]:
        """Re-read every acked key; returns the mismatches
        ``(key, expected, found)`` — empty means zero lost acked writes
        (valid when this image's key space is disjoint from other
        writers', as in the chaos kernels)."""
        bad = []
        for key, expected in self.acked_totals().items():
            found = self.lookup(key)
            if found != expected:
                bad.append((key, expected, found))
        return bad

    def authoritative_items(self) -> list[tuple[int, int]]:
        """This image's authoritative (key, value) pairs: its primary
        region, plus its replica region when the ring predecessor has
        failed (those buckets re-homed here).  Sorted; collected from
        local memory only, so survivors can build a global digest
        without touching failed images."""
        me = caf.this_image()
        n = caf.num_images()
        regions = [_PRIMARY]
        pred = (me - 2) % n + 1
        if caf.image_status(pred) == caf.STAT_FAILED_IMAGE:
            regions.append(_REPLICA)
        pairs: list[tuple[int, int]] = []
        karr = self.keys.local
        varr = self.values.local
        for region in regions:
            mask = karr[region] != EMPTY_KEY
            pairs.extend(
                zip(karr[region][mask].tolist(), varr[region][mask].tolist())
            )
        return sorted(pairs)


# ---------------------------------------------------------------------------
# The Fig 9 benchmark
# ---------------------------------------------------------------------------


def dht_benchmark(
    machine: str,
    config: CafConfig,
    num_images: int,
    updates_per_image: int = 16,
    slots_per_image: int = 64,
    key_space: int = 1 << 30,
    seed: int = 2015,
    sanitize: bool = False,
    single_writer: bool = False,
    faults=None,
    watchdog_s: float | None = None,
) -> float:
    """Fig 9 cell: each image applies ``updates_per_image`` random
    updates; returns total elapsed virtual microseconds (max over
    images).

    With ``single_writer=True`` only image 1 runs the update loop (the
    others host table slots and idle in the barriers).  The per-update
    code path — bucket lock protocol, remote atomics, probing
    gets/puts across images — is identical, but every timed resource
    reservation is issued by one thread in program order, so the
    elapsed virtual time is independent of host thread scheduling.
    (With concurrent writers, contended locks, atomic units, and
    barrier fan-in resolve in wall-clock arrival order, which the OS
    scheduler reorders freely between runs.)  For the same reason the
    single-writer measurement advances past the setup barrier's
    resource residue first and stops *before* the closing barrier.
    The wall-clock benchmark suite uses this mode because it compares
    virtual times bitwise across execution engines.
    """

    def kernel() -> float:
        ctx = current()
        table = DistributedHashTable(slots_per_image)
        rng = np.random.default_rng(seed + caf.this_image())
        if single_writer and caf.this_image() != 1:
            keys = np.empty(0, dtype=np.int64)
        else:
            keys = rng.integers(0, key_space, size=updates_per_image)
        caf.sync_all()
        if single_writer:
            # Jump past the setup traffic's timeline reservations: the
            # construction barrier leaves scheduler-dependent
            # ``next_free`` residue on shared node resources, which
            # would otherwise leak into the first measured operations.
            ctx.clock.advance(1e4)
        t0 = ctx.clock.now
        for k in keys:
            table.update(int(k))
        t1 = ctx.clock.now
        caf.sync_all()
        return (t1 if single_writer else ctx.clock.now) - t0

    results = caf.launch(
        kernel, num_images, machine, sanitize=sanitize,
        faults=faults, watchdog_s=watchdog_s, **config.launch_kwargs()
    )
    return max(results)
