"""Distributed hash table over coarray locks (paper Section V-C, Fig 9).

The DHT (after Maynard's one-sided comparison code the paper cites) is
both a benchmark and a small reusable data structure built purely on
the public CAF API:

* the table is a pair of coarrays (``keys``, ``values``), each image
  owning ``slots_per_image`` slots;
* a key hashes to an owning image and a home slot there; collisions
  probe linearly within the owner;
* every update takes the *coarray lock at the owning image* guarding
  the key's bucket (``lock(lck[owner])``) — the paper's "some form of
  atomicity ... achieved using coarray locks" — then read-modify-writes
  the slot with co-indexed accesses.

Under the MCS implementation, contended updates to one image queue
fairly; under the test-and-set baseline they hammer the owner's atomic
unit — the Fig 9 gap.
"""

from __future__ import annotations

import numpy as np

from repro import caf
from repro.bench.harness import CafConfig
from repro.runtime.context import current
from repro.runtime.failures import ImageFailedError

EMPTY_KEY = -1
#: Tombstone left by a reshard migration (or explicit delete): probes
#: continue past it, inserts may reuse it.
DELETED_KEY = -2


class DhtFullError(RuntimeError):
    """An image's slot region is full (probe wrapped around)."""


class DataLossError(RuntimeError):
    """Both replicas of some bucket range live on failed images: the
    data is unrecoverable and must not be silently dropped."""


def _mix(key: int) -> int:
    """64-bit splitmix-style hash (deterministic across images)."""
    z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class DistributedHashTable:
    """An integer-keyed counting hash table distributed across images.

    Collective constructor: every image must create it together.
    ``update(key, delta)`` adds ``delta`` to the key's counter
    (inserting it on first touch); ``lookup(key)`` reads the counter.
    """

    def __init__(self, slots_per_image: int, locks_per_image: int = 1) -> None:
        if slots_per_image < 1 or locks_per_image < 1:
            raise ValueError("slots_per_image and locks_per_image must be >= 1")
        if locks_per_image > slots_per_image:
            raise ValueError("cannot have more locks than slots")
        self.slots_per_image = slots_per_image
        self.locks_per_image = locks_per_image
        self.keys = caf.coarray((slots_per_image,), np.int64)
        self.values = caf.coarray((slots_per_image,), np.int64)
        self.locks = caf.lock_type((locks_per_image,))
        self.keys[:] = EMPTY_KEY
        self.values[:] = 0
        caf.sync_all()

    # ------------------------------------------------------------------
    def home(self, key: int) -> tuple[int, int]:
        """(owning image, home slot) of ``key``."""
        h = _mix(int(key))
        image = h % caf.num_images() + 1
        slot = (h >> 20) % self.slots_per_image
        return image, slot

    def _lock_index(self, slot: int) -> int:
        return slot * self.locks_per_image // self.slots_per_image

    def _lock_span(self, lock_idx: int) -> int:
        """Number of slots guarded by bucket ``lock_idx``.

        When ``slots_per_image`` is not a multiple of ``locks_per_image``
        the spans are uneven, so the span must be counted from the slot
        mapping rather than derived from the floor quotient.
        """
        s, n = self.slots_per_image, self.locks_per_image
        first = (lock_idx * s + n - 1) // n
        end = ((lock_idx + 1) * s + n - 1) // n
        return end - first

    def update(self, key: int, delta: int = 1) -> int:
        """Add ``delta`` to ``key``'s counter; returns the new value.

        Takes the owner-image bucket lock for the whole probe sequence,
        so concurrent updates to colliding keys stay consistent.
        """
        key = int(key)
        if key == EMPTY_KEY:
            raise ValueError(f"key {EMPTY_KEY} is reserved for empty slots")
        image, home = self.home(key)
        lock_idx = self._lock_index(home)
        with self.locks.guard(image, lock_idx):
            slot = home
            for _ in range(self.slots_per_image):
                k = int(self.keys.on(image)[slot])
                if k == key:
                    new = int(self.values.on(image)[slot]) + delta
                    self.values.on(image)[slot] = new
                    return new
                if k == EMPTY_KEY:
                    self.keys.on(image)[slot] = key
                    self.values.on(image)[slot] = delta
                    return delta
                nxt = (slot + 1) % self.slots_per_image
                # Linear probing may cross into another lock's bucket;
                # keep the single-bucket locking discipline valid by
                # restricting probes to the home bucket's lock span.
                if self._lock_index(nxt) != lock_idx:
                    break
                slot = nxt
        raise DhtFullError(
            f"bucket {lock_idx} on image {image} is full "
            f"({self._lock_span(lock_idx)} slots)"
        )

    def lookup(self, key: int) -> int | None:
        """Current counter of ``key`` (locked read), or None if absent."""
        key = int(key)
        image, home = self.home(key)
        lock_idx = self._lock_index(home)
        with self.locks.guard(image, lock_idx):
            slot = home
            for _ in range(self.slots_per_image):
                k = int(self.keys.on(image)[slot])
                if k == key:
                    return int(self.values.on(image)[slot])
                if k == EMPTY_KEY:
                    return None
                nxt = (slot + 1) % self.slots_per_image
                if self._lock_index(nxt) != lock_idx:
                    return None
                slot = nxt
        return None

    def local_totals(self) -> tuple[int, int]:
        """(occupied slots, sum of counters) on this image."""
        keys = self.keys.local
        vals = self.values.local
        occupied = int(np.count_nonzero(keys != EMPTY_KEY))
        return occupied, int(vals[keys != EMPTY_KEY].sum())


# ---------------------------------------------------------------------------
# Replicated DHT (failed-images case study)
# ---------------------------------------------------------------------------

#: Region indices into the replicated table's lock array.
_PRIMARY = 0
_REPLICA = 1

#: Ring-state word layout: ``epoch << 32 | active_images``, stored in a
#: single int64 on image 1 so one atomic fetch reads a consistent pair.
_RING_EPOCH_SHIFT = 32
_RING_MASK = (1 << _RING_EPOCH_SHIFT) - 1
#: Reshard history depth (epoch 0 = construction).
_RING_MAX_EPOCHS = 8


def _ring_encode(epoch: int, m: int) -> int:
    return (epoch << _RING_EPOCH_SHIFT) | m


def _ring_decode(word: int) -> tuple[int, int]:
    return word >> _RING_EPOCH_SHIFT, word & _RING_MASK


class _HomeMoved(Exception):
    """A write validated its bucket under a stale ring epoch; retry."""


class ReplicatedHashTable:
    """A k=2 replicated DHT that survives the failure of any one image.

    Built purely on the public CAF API plus the failed-images model
    (``survivable=True`` launches): every bucket lives on its *primary*
    image and is mirrored into a *replica* region on the next image on
    the ring.  Updates write both copies (primary first, each under its
    own bucket lock — sequential, never nested, so a crash can strand
    at most one lock); reads prefer the primary and fail over to the
    replica when the primary has failed (``ImageFailedError``).  When a
    primary dies, its buckets are *re-homed*: the ring successor's
    replica region becomes authoritative and absorbs all further
    writes.

    An update is **acknowledged** — appended to the per-image ``acked``
    ledger and its new value returned — only once at least one copy
    landed on an image that was live at that moment.  A write that
    raised on one region may still have physically landed there, but
    only when that region's host died mid-operation, i.e. on a copy no
    reader will ever consult; counting it unacked is therefore safe.
    With both copies dead (two failures; beyond k=2) the update raises
    ``ImageFailedError`` and nothing is acked.

    Survivable jobs should launch with ``lock_algorithm="tas"``: TAS
    recovery from a dead holder is unconditional (central-word steal),
    while MCS has an unrecoverable queued-behind-a-live-holder case
    (see docs/MODEL.md §12).

    Beyond the PR-9 counter API (``update``/``lookup``), the table
    offers a last-writer-wins KV API (``put``/``get``) with two service
    hooks (docs/MODEL.md §13):

    * **per-bucket versions** — every mutation bumps an atomic version
      word for its bucket; ``get_versioned`` pairs the value with the
      version read under the same bucket lock, and ``probe_version``
      re-reads it with a single remote atomic.  An initiator-side cache
      entry is valid exactly while the version is unchanged.
    * **live resharding** — with ``ring_images=m`` keys initially home
      onto images ``1..m`` only; ``grow_ring(new_m)`` (one caller)
      bumps a shared epoch word, after which writers re-home, readers
      fall back through older ring sizes, and every image migrates its
      own re-homed items out via ``reshard_drain`` (freeze bucket →
      push-if-absent to the new home → tombstone the old copy) while
      clients keep issuing ops.  Ring-enabled tables are LWW-only:
      ``update`` raises (a counter delta cannot be migrated
      idempotently).
    """

    def __init__(self, slots_per_image: int, locks_per_image: int = 1,
                 ring_images: int | None = None) -> None:
        if caf.num_images() < 2:
            raise ValueError("ReplicatedHashTable needs at least 2 images")
        if slots_per_image < 1 or locks_per_image < 1:
            raise ValueError("slots_per_image and locks_per_image must be >= 1")
        if locks_per_image > slots_per_image:
            raise ValueError("cannot have more locks than slots")
        if ring_images is not None and not 1 <= ring_images <= caf.num_images():
            raise ValueError(
                f"ring_images must be in [1, {caf.num_images()}], got {ring_images}"
            )
        self.slots_per_image = slots_per_image
        self.locks_per_image = locks_per_image
        # region 0 = primary buckets owned here; region 1 = mirror of
        # the ring predecessor's primary buckets.
        self.keys = caf.coarray((2, slots_per_image), np.int64)
        self.values = caf.coarray((2, slots_per_image), np.int64)
        self.locks = caf.lock_type((2, locks_per_image))
        #: Per-bucket version words (flat: region * locks_per_image +
        #: lock index), bumped under the bucket lock on every mutation.
        self.versions = caf.coarray((2 * locks_per_image,), np.int64)
        self.keys[:] = EMPTY_KEY
        self.values[:] = 0
        self.versions[:] = 0
        self._ring_enabled = ring_images is not None
        #: Ring sizes by epoch, as far as this image has observed.
        self._ms: list[int] = [ring_images if self._ring_enabled
                               else caf.num_images()]
        self._epoch = 0
        if self._ring_enabled:
            self._ring = caf.coarray((1,), np.int64)
            self._hist = caf.coarray((_RING_MAX_EPOCHS,), np.int64)
            self._ring[:] = 0
            self._hist[:] = 0
            if caf.this_image() == 1:
                self._ring.local[0] = _ring_encode(0, ring_images)
                self._hist.local[0] = ring_images
        #: Per-image ledger of acknowledged counter writes
        #: ``(key, delta)`` — the chaos gate's "zero lost acked writes"
        #: evidence.
        self.acked: list[tuple[int, int]] = []
        #: Per-image ledger of acknowledged LWW puts ``(key, value)``.
        self.put_acked: list[tuple[int, int]] = []
        caf.sync_all()

    # ------------------------------------------------------------------
    # Ring state
    # ------------------------------------------------------------------

    def active_images(self) -> int:
        """Ring size under this image's current view."""
        return self._ms[self._epoch]

    def ring_epoch(self) -> int:
        """This image's view of the reshard epoch (0 = construction)."""
        return self._epoch

    def _absorb_ring(self, epoch: int, m: int) -> bool:
        """Fold a freshly-read ring word into the local view; returns
        True when the epoch advanced (backfilling skipped epochs from
        the history so readers can probe every historical home)."""
        if epoch <= self._epoch:
            return False
        for e in range(len(self._ms), epoch):
            self._ms.append(int(caf.atomic_ref(self._hist, 1, index=e)))
        if len(self._ms) == epoch:
            self._ms.append(m)
        self._epoch = epoch
        return True

    def refresh_ring(self) -> bool:
        """Re-read the shared ring word (one remote atomic); returns
        True when a reshard has happened since this image last looked.
        A failed ring host reads as "no news": the host is the only
        image that can publish a grow, so the last absorbed view is
        final once it is gone."""
        if not self._ring_enabled:
            return False
        try:
            epoch, m = _ring_decode(int(caf.atomic_ref(self._ring, 1)))
        except ImageFailedError:
            return False
        return self._absorb_ring(epoch, m)

    def grow_ring(self, new_m: int) -> int:
        """Grow the bucket ring to ``new_m`` home images (one caller —
        the reshard coordinator).  Publishes the new epoch; data moves
        as each image subsequently runs :meth:`reshard_drain`.  Returns
        the new epoch."""
        if not self._ring_enabled:
            raise ValueError("table was built without ring_images")
        self.refresh_ring()
        m = self.active_images()
        if not m < new_m <= caf.num_images():
            raise ValueError(
                f"new ring size {new_m} must grow beyond {m} and stay "
                f"within {caf.num_images()} images"
            )
        epoch = self._epoch + 1
        if epoch >= _RING_MAX_EPOCHS:
            raise ValueError(f"reshard history full ({_RING_MAX_EPOCHS} epochs)")
        # History first, then the epoch word: an image that sees the new
        # epoch can always resolve every intermediate ring size.
        caf.atomic_define(self._hist, 1, new_m, index=epoch)
        caf.atomic_define(self._ring, 1, _ring_encode(epoch, new_m))
        self._absorb_ring(epoch, new_m)
        return epoch

    def _home_under(self, key: int, m: int) -> tuple[int, int]:
        h = _mix(int(key))
        return h % m + 1, (h >> 20) % self.slots_per_image

    def home(self, key: int) -> tuple[int, int]:
        """(primary image, home slot) of ``key`` under the current ring
        (the home *slot* is ring-independent; only the image moves)."""
        return self._home_under(key, self.active_images())

    def secondary(self, image: int) -> int:
        """The replica host for ``image``'s buckets: next on the ring."""
        return image % caf.num_images() + 1

    def _lock_index(self, slot: int) -> int:
        return slot * self.locks_per_image // self.slots_per_image

    def _lock_span(self, lock_idx: int) -> tuple[int, int]:
        """[first slot, end slot) guarded by bucket ``lock_idx``."""
        s, n = self.slots_per_image, self.locks_per_image
        first = (lock_idx * s + n - 1) // n
        end = ((lock_idx + 1) * s + n - 1) // n
        return first, end

    # ------------------------------------------------------------------
    def _bump_version(self, image: int, region: int, lock_idx: int) -> None:
        caf.atomic_add(
            self.versions, image, 1, index=region * self.locks_per_image + lock_idx
        )

    def _validate_home(self, key: int, expect_primary: int) -> None:
        """Under-lock ring re-validation for client writes: re-read the
        shared epoch word; if a reshard re-homed ``key`` away from the
        bucket this write locked, raise :class:`_HomeMoved` (the caller
        releases and retries at the new home).  Reading the word while
        *holding* the bucket lock is what freezes a drained bucket: any
        writer that still lands here must have read a pre-grow epoch,
        and the drain serializes with it through this same lock."""
        try:
            epoch, m = _ring_decode(int(caf.atomic_ref(self._ring, 1)))
        except ImageFailedError:
            return  # dead ring host ⇒ the absorbed view is final
        self._absorb_ring(epoch, m)
        if self._home_under(key, self._ms[self._epoch])[0] != expect_primary:
            raise _HomeMoved

    def _mutate(self, image: int, region: int, home: int, key: int,
                op: str, operand: int | None,
                validate_primary: int | None = None) -> tuple[bool, int | None]:
        """Locked read-modify-write of one copy.

        ``op`` is ``add`` (counter delta), ``put`` (LWW set),
        ``put_if_absent`` (reshard migrate-in: an existing entry is
        newer and wins), or ``delete`` (tombstone, reshard migrate-out).
        Returns ``(mutated, value)``; bumps the bucket version word on
        every actual mutation.  Raises ``ImageFailedError`` if ``image``
        is (or becomes) failed, ``_HomeMoved`` if ``validate_primary``
        is given and a concurrent reshard re-homed ``key``, and
        ``DhtFullError`` when an insert finds no free slot."""
        lock_idx = self._lock_index(home)
        first, end = self._lock_span(lock_idx)
        with self.locks.guard(image, (region, lock_idx)):
            if validate_primary is not None and self._ring_enabled:
                self._validate_home(key, validate_primary)
            slot, tomb = home, -1
            for _ in range(end - first):
                k = int(self.keys.on(image)[region, slot])
                if k == key:
                    if op == "add":
                        new = int(self.values.on(image)[region, slot]) + operand
                        self.values.on(image)[region, slot] = new
                    elif op == "put":
                        new = operand
                        self.values.on(image)[region, slot] = new
                    elif op == "put_if_absent":
                        return False, int(self.values.on(image)[region, slot])
                    else:  # delete
                        new = None
                        self.keys.on(image)[region, slot] = DELETED_KEY
                        self.values.on(image)[region, slot] = 0
                    self._bump_version(image, region, lock_idx)
                    return True, new
                if k == EMPTY_KEY:
                    break
                if k == DELETED_KEY and tomb < 0:
                    tomb = slot
                nxt = slot + 1 if slot + 1 < end else first
                if nxt == home:
                    slot = -1  # wrapped: span exhausted
                    break
                slot = nxt
            else:
                slot = -1
            if op == "delete":
                return False, None
            if tomb >= 0:  # reuse the first tombstone seen on the probe path
                slot = tomb
            if slot >= 0:
                self.keys.on(image)[region, slot] = key
                self.values.on(image)[region, slot] = operand
                self._bump_version(image, region, lock_idx)
                return True, operand
        raise DhtFullError(
            f"bucket {lock_idx} (region {region}) on image {image} is full"
        )

    def _probe(self, image: int, region: int, home: int, key: int) -> int | None:
        """Locked read of one copy; None if absent."""
        return self._probe_versioned(image, region, home, key)[0]

    def _probe_versioned(
        self, image: int, region: int, home: int, key: int
    ) -> tuple[int | None, int | None]:
        """Locked read of one copy, paired with the bucket version read
        under the same lock (the pair a cache entry needs)."""
        lock_idx = self._lock_index(home)
        first, end = self._lock_span(lock_idx)
        found: int | None = None
        with self.locks.guard(image, (region, lock_idx)):
            slot = home
            for _ in range(end - first):
                k = int(self.keys.on(image)[region, slot])
                if k == key:
                    found = int(self.values.on(image)[region, slot])
                    break
                if k == EMPTY_KEY:
                    break
                nxt = slot + 1 if slot + 1 < end else first
                if nxt == home:
                    break
                slot = nxt
            if found is None:
                return None, None
            version = int(caf.atomic_ref(
                self.versions, image,
                index=region * self.locks_per_image + lock_idx,
            ))
        return found, version

    # ------------------------------------------------------------------
    @staticmethod
    def _check_key(key: int) -> int:
        key = int(key)
        if key < 0:
            raise ValueError(
                f"keys must be >= 0 ({EMPTY_KEY}/{DELETED_KEY} are reserved)"
            )
        return key

    def update(self, key: int, delta: int = 1) -> int:
        """Add ``delta`` to ``key``'s counter on both copies; returns
        the new value from the authoritative copy.

        Acks (ledger append) once either copy is written; raises
        ``ImageFailedError`` only when both copy hosts have failed.
        Unavailable on ring-enabled tables: a counter delta applied
        through the ``_HomeMoved`` retry loop is not idempotent, so a
        reshard could double-count it — use :meth:`put` instead.
        """
        if self._ring_enabled:
            raise ValueError(
                "update() is unavailable on ring-enabled tables "
                "(counter deltas cannot be migrated idempotently); use put()"
            )
        key = self._check_key(key)
        primary, home = self.home(key)
        new: int | None = None
        try:
            _, new = self._mutate(primary, _PRIMARY, home, key, "add", delta)
        except ImageFailedError:
            pass  # primary dead: the replica copy is now authoritative
        try:
            _, rnew = self._mutate(
                self.secondary(primary), _REPLICA, home, key, "add", delta
            )
            if new is None:
                new = rnew
        except ImageFailedError:
            if new is None:
                raise  # both copies lost — cannot acknowledge
        self.acked.append((key, delta))
        return new

    def put(self, key: int, value: int) -> None:
        """Last-writer-wins set of ``key`` on both copies; acks (ledger
        append) once either copy landed on a then-live image.

        Ring-aware: the primary write re-validates the ring epoch under
        the bucket lock, so a write racing a reshard either commits at
        the old home *before* the drain freezes that bucket (and is
        migrated), or observes the new epoch and retries at the new
        home.  Retrying a put is idempotent, which is why ring-enabled
        tables are LWW-only."""
        key = self._check_key(key)
        self.refresh_ring()
        while True:
            primary, home = self.home(key)
            written = False
            try:
                self._mutate(primary, _PRIMARY, home, key, "put", value,
                             validate_primary=primary)
                written = True
            except _HomeMoved:
                continue  # a reshard re-homed the key; retry there
            except ImageFailedError:
                pass
            try:
                self._mutate(
                    self.secondary(primary), _REPLICA, home, key, "put", value
                )
                written = True
            except ImageFailedError:
                if not written:
                    raise  # both copies lost — cannot acknowledge
            self.put_acked.append((key, value))
            return

    def get(self, key: int) -> int | None:
        """Value of ``key`` (locked read, primary copy preferred), or
        None.  Ring-aware: probes the current home first, then the home
        under every older ring size (a reshard drain may not have moved
        the key yet), then the current home once more — closing the
        race where the drain moved the key between the first two
        probes."""
        key = self._check_key(key)
        self.refresh_ring()
        ms = [self._ms[self._epoch]]
        ms += [m for m in reversed(self._ms[:-1]) if m not in ms]
        if len(ms) > 1:
            ms.append(ms[0])
        result = None
        for m in ms:
            result = self._get_under(key, m)
            if result is not None:
                return result
        return result

    def _get_under(self, key: int, m: int) -> int | None:
        primary, home = self._home_under(key, m)
        try:
            return self._probe(primary, _PRIMARY, home, key)
        except ImageFailedError:
            return self._probe(self.secondary(primary), _REPLICA, home, key)

    def lookup(self, key: int) -> int | None:
        """Counter of ``key`` (locked read, primary preferred), or None."""
        key = self._check_key(key)
        primary, home = self.home(key)
        try:
            return self._probe(primary, _PRIMARY, home, key)
        except ImageFailedError:
            return self._probe(self.secondary(primary), _REPLICA, home, key)

    # ------------------------------------------------------------------
    # Hot-key cache hooks
    # ------------------------------------------------------------------

    def get_versioned(self, key: int):
        """Like :meth:`get`, but additionally returns an opaque cache
        token when the value was read from a live primary copy under
        the current ring view: ``(value, token)``.  The token pairs the
        value with its bucket's version word, read under the same lock;
        :meth:`probe_version` later revalidates it with a single remote
        atomic read.  Returns ``(value, None)`` when the read fell back
        to a replica or an older ring epoch (not worth caching)."""
        key = self._check_key(key)
        self.refresh_ring()
        primary, home = self.home(key)
        lock_idx = self._lock_index(home)
        try:
            value, version = self._probe_versioned(primary, _PRIMARY, home, key)
        except ImageFailedError:
            return self.get(key), None
        if value is not None:
            token = (primary, _PRIMARY * self.locks_per_image + lock_idx,
                     version, self._epoch)
            return value, token
        return self.get(key), None

    def probe_version(self, token) -> bool:
        """Revalidate a cache token: True iff the cached value is still
        current.  Two checks, both needed:

        * **Epoch** (ring-enabled tables; one remote atomic): the ring
          epoch must still equal the token's.  A grown ring re-homes
          keys to images whose writes do not touch the old bucket — its
          version only changes when the drain's tombstone lands, so a
          version probe alone would serve stale hits through the
          grow→drain window.  The ring word is a single atomic: any
          write that re-homed *and completed* before this probe had to
          observe the new epoch before it wrote, so a probe that still
          reads the token's epoch can linearize before every such write.
        * **Bucket version** (one remote atomic): every mutation of any
          key in the bucket — including the drain's migrate-out
          tombstone — bumps the word under the bucket lock, so a match
          proves the bucket unchanged since :meth:`get_versioned`
          (versions are monotonic; no ABA).

        The version read is the cache hit's linearization point.  A
        failed host reads as False (the caller drops the entry and
        misses)."""
        image, vindex, version, epoch = token
        if self._ring_enabled:
            self.refresh_ring()
            if self._epoch != epoch:
                return False
        try:
            return int(caf.atomic_ref(self.versions, image, index=vindex)) == version
        except ImageFailedError:
            return False

    # ------------------------------------------------------------------
    # Live resharding
    # ------------------------------------------------------------------

    def reshard_drain(self) -> int:
        """Move every local primary entry whose home changed under the
        current ring view to its new home; returns the count moved.

        Per bucket: take the bucket lock once (after the grow is
        visible this *freezes* the bucket — any later client write
        re-validates the epoch under this same lock and retries at the
        new home instead), snapshot the entries that re-homed, release,
        then push each with put-if-absent to the new primary+replica (a
        client's LWW put that already raced ahead is newer and wins)
        and tombstone the old copies.  Locks are never nested, and the
        old entry is only deleted after the new copies landed, so a
        reader always finds the key at the new home, the old home, or
        both — never neither (readers probe new → old → new)."""
        if not self._ring_enabled:
            raise ValueError("table was built without ring_images")
        self.refresh_ring()
        me = caf.this_image()
        m = self.active_images()
        moved = 0
        for lock_idx in range(self.locks_per_image):
            first, end = self._lock_span(lock_idx)
            outgoing: list[tuple[int, int]] = []
            with self.locks.guard(me, (_PRIMARY, lock_idx)):
                for slot in range(first, end):
                    k = int(self.keys.local[_PRIMARY, slot])
                    if k < 0:
                        continue
                    if self._home_under(k, m)[0] != me:
                        outgoing.append((k, int(self.values.local[_PRIMARY, slot])))
            for key, value in outgoing:
                new_primary, new_home = self._home_under(key, m)
                landed = False
                try:
                    self._mutate(new_primary, _PRIMARY, new_home, key,
                                 "put_if_absent", value)
                    landed = True
                except ImageFailedError:
                    pass
                try:
                    self._mutate(self.secondary(new_primary), _REPLICA,
                                 new_home, key, "put_if_absent", value)
                    landed = True
                except ImageFailedError:
                    if not landed:
                        raise  # both new copies lost — abort, keep old copy
                home = self.home(key)[1]  # the home slot is ring-independent
                self._mutate(me, _PRIMARY, home, key, "delete", None)
                try:
                    self._mutate(self.secondary(me), _REPLICA, home, key,
                                 "delete", None)
                except ImageFailedError:
                    pass  # stale mirror on a dead image is unreachable
                moved += 1
        return moved

    # ------------------------------------------------------------------
    def acked_totals(self) -> dict[int, int]:
        """This image's acked writes folded per key."""
        totals: dict[int, int] = {}
        for key, delta in self.acked:
            totals[key] = totals.get(key, 0) + delta
        return totals

    def verify_acked(self) -> list[tuple[int, int, int | None]]:
        """Re-read every acked key; returns the mismatches
        ``(key, expected, found)`` — empty means zero lost acked writes
        (valid when this image's key space is disjoint from other
        writers', as in the chaos kernels)."""
        bad = []
        for key, expected in self.acked_totals().items():
            found = self.lookup(key)
            if found != expected:
                bad.append((key, expected, found))
        return bad

    def verify_acked_puts(self) -> list[tuple[int, int, int | None]]:
        """Re-read every key this image acked a put for; expected is the
        last acked value.  Returns mismatches ``(key, expected, found)``
        — empty means zero lost acked writes (valid when this image's
        key space is disjoint from other writers', as in the chaos and
        reshard-sweep kernels)."""
        last: dict[int, int] = {}
        for key, value in self.put_acked:
            last[key] = value
        bad = []
        for key, expected in sorted(last.items()):
            found = self.get(key)
            if found != expected:
                bad.append((key, expected, found))
        return bad

    def authoritative_items(self) -> list[tuple[int, int]]:
        """This image's authoritative (key, value) pairs: its primary
        region, plus its replica region when the ring predecessor has
        failed (those buckets re-homed here).  Sorted; collected from
        local memory only, so survivors can build a global digest
        without touching failed images.  Tombstoned slots are not
        items.  Raises :class:`DataLossError` when some failed image's
        replica host has *also* failed — that bucket range is gone and
        must not be silently dropped from the digest."""
        me = caf.this_image()
        n = caf.num_images()
        for f in caf.failed_images():
            if caf.image_status(self.secondary(f)) == caf.STAT_FAILED_IMAGE:
                raise DataLossError(
                    f"images {f} and {self.secondary(f)} both failed: the "
                    f"buckets homed on image {f} have no surviving copy"
                )
        regions = [_PRIMARY]
        pred = (me - 2) % n + 1
        if caf.image_status(pred) == caf.STAT_FAILED_IMAGE:
            regions.append(_REPLICA)
        pairs: list[tuple[int, int]] = []
        karr = self.keys.local
        varr = self.values.local
        for region in regions:
            mask = karr[region] >= 0
            pairs.extend(
                zip(karr[region][mask].tolist(), varr[region][mask].tolist())
            )
        return sorted(pairs)


# ---------------------------------------------------------------------------
# The Fig 9 benchmark
# ---------------------------------------------------------------------------


def dht_benchmark(
    machine: str,
    config: CafConfig,
    num_images: int,
    updates_per_image: int = 16,
    slots_per_image: int = 64,
    key_space: int = 1 << 30,
    seed: int = 2015,
    sanitize: bool = False,
    single_writer: bool = False,
    faults=None,
    watchdog_s: float | None = None,
) -> float:
    """Fig 9 cell: each image applies ``updates_per_image`` random
    updates; returns total elapsed virtual microseconds (max over
    images).

    With ``single_writer=True`` only image 1 runs the update loop (the
    others host table slots and idle in the barriers).  The per-update
    code path — bucket lock protocol, remote atomics, probing
    gets/puts across images — is identical, but every timed resource
    reservation is issued by one thread in program order, so the
    elapsed virtual time is independent of host thread scheduling.
    (With concurrent writers, contended locks, atomic units, and
    barrier fan-in resolve in wall-clock arrival order, which the OS
    scheduler reorders freely between runs.)  For the same reason the
    single-writer measurement advances past the setup barrier's
    resource residue first and stops *before* the closing barrier.
    The wall-clock benchmark suite uses this mode because it compares
    virtual times bitwise across execution engines.
    """

    def kernel() -> float:
        ctx = current()
        table = DistributedHashTable(slots_per_image)
        rng = np.random.default_rng(seed + caf.this_image())
        if single_writer and caf.this_image() != 1:
            keys = np.empty(0, dtype=np.int64)
        else:
            keys = rng.integers(0, key_space, size=updates_per_image)
        caf.sync_all()
        if single_writer:
            # Jump past the setup traffic's timeline reservations: the
            # construction barrier leaves scheduler-dependent
            # ``next_free`` residue on shared node resources, which
            # would otherwise leak into the first measured operations.
            ctx.clock.advance(1e4)
        t0 = ctx.clock.now
        for k in keys:
            table.update(int(k))
        t1 = ctx.clock.now
        caf.sync_all()
        return (t1 if single_writer else ctx.clock.now) - t0

    results = caf.launch(
        kernel, num_images, machine, sanitize=sanitize,
        faults=faults, watchdog_s=watchdog_s, **config.launch_kwargs()
    )
    return max(results)
