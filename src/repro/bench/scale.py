"""Weak-scaling benchmark: the event engine at thousands of PEs.

The thread-per-PE engine tops out around a few hundred PEs (OS thread
stacks, context-switch storms); the discrete-event engine runs the same
virtual-time model with one Python frame per runnable PE.  This module
measures that: two communication workloads expressed as step programs
(:mod:`repro.engine.steps`), swept over 64/256/1024/4096 PEs on the
event engine, with host wall-clock *per PE step* as the figure of merit.

Workloads
---------

* ``himeno`` — the Himeno halo-exchange cadence: a ring exchange of
  face buffers in two half-duplex phases (all PEs put right, barrier;
  all put left, barrier) followed by a ``gosa`` allreduce priced with
  :meth:`~repro.sim.netmodel.NetworkModel.reduction_cost`.  The
  half-duplex split keeps every ``tx``/``rx`` timeline single-writer
  per phase, so threaded execution is schedule-independent and the
  64-PE equivalence gate can demand *bit-identical* virtual times.
* ``dht`` — the Fig 9 distributed-hash-table update loop: a remote
  fetch-add reserving a slot plus a put of the value.  The gate variant
  rotates writers (one active PE per node per sub-phase) so the per-node
  atomic-unit timelines stay single-writer; the scale variant lets every
  PE update a hashed owner each round (multi-writer — event-engine only,
  where heap order makes it deterministic anyway).

Equivalence gate
----------------

``--gate`` (default on) runs both workloads at 64 PEs on the threaded
and event engines and requires identical per-PE results (including each
PE's final virtual clock) and identical trace digests — the engines
must agree bit-for-bit wherever both can run.

Output
------

Results land in the ``scale`` section of ``BENCH_wallclock.json`` (or
``--out``); ``--baseline FILE --max-regression 0.25`` compares the
measured ``wall_us_per_pe_step`` against a committed envelope and fails
the run on regression (the CI ``scale-smoke`` job).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.engine.steps import BarrierStep, Done, alloc_array_step
from repro.explore.harness import trace_digest
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.shmem import attach as shmem_attach
from repro.trace.events import attach as trace_attach

#: Symmetric heap per PE for scale runs — the workloads are tiny on
#: purpose (a 4096-PE job allocates one of these per PE).
SCALE_HEAP_BYTES = 1 << 15

DEFAULT_PES = (64, 256, 1024, 4096)
GATE_PES = 64

_DHT_SLOTS = 32


def _mix64(x: int) -> int:
    """splitmix64 finalizer (deterministic owner hashing)."""
    z = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


# ---------------------------------------------------------------------------
# Workload step programs
# ---------------------------------------------------------------------------


def make_himeno_body(layer, iters: int, face_elems: int, slots: list) -> Callable:
    """Ring halo exchange + gosa reduction as a step program.

    ``slots`` is a job-shared list (one cell per PE) carrying the local
    gosa contributions between the deposit barrier and the index-order
    sum — the Python stand-in for the reduction's data plane, whose
    virtual cost is charged via ``reduction_cost``.
    """
    job = layer.job
    n = job.num_pes
    red_cost = job.network.reduction_cost(n, 8, layer.profile)

    def body():
        ctx = current()
        pe = ctx.pe
        right = (pe + 1) % n
        left = (pe - 1) % n
        face_r = np.full(face_elems, pe + 0.25, dtype=np.float64)
        face_l = np.full(face_elems, pe + 0.75, dtype=np.float64)

        def iterate(ghosts, it: int, gosa: float):
            if it == iters:
                return Done((round(gosa, 9), ctx.clock.now))
            # Phase 1 (half-duplex): everyone sends its right face into
            # the right neighbour's low ghost region.  Only the last PE
            # of each node crosses nodes — one writer per tx/rx timeline.
            layer.put(ghosts, face_r, right, offset=0)
            return BarrierStep(layer, lambda: phase2(ghosts, it, gosa))

        def phase2(ghosts, it: int, gosa: float):
            # Phase 2: everyone sends its left face the other way.
            layer.put(ghosts, face_l, left, offset=face_elems)
            return BarrierStep(layer, lambda: local_residual(ghosts, it))

        def local_residual(ghosts, it: int):
            # Jacobi-ish residual over the received ghosts.
            g = ghosts.local
            slots[pe] = float(g.sum()) / face_elems
            return BarrierStep(layer, lambda: combine(ghosts, it))

        def combine(ghosts, it: int):
            gosa = 0.0
            for v in slots:  # index order: float sum is reproducible
                gosa += v
            ctx.clock.advance(red_cost)
            return BarrierStep(layer, lambda: iterate(ghosts, it + 1, gosa))

        return alloc_array_step(
            layer, (2 * face_elems,), np.float64, lambda g: iterate(g, 0, 0.0)
        )

    return body


def himeno_steps_per_pe(iters: int) -> int:
    """Engine slices per PE: the allocation barrier plus four barriers
    per iteration (two halo phases, deposit, combine)."""
    return 1 + 4 * iters


def make_dht_body(layer, rounds: int, single_writer: bool) -> Callable:
    """Fig-9 DHT update loop (fetch-add + put) as a step program.

    ``single_writer=True`` is the equivalence-gate variant: sub-phases
    rotate through ``cores_per_node`` residues so at most one PE per
    node issues an atomic per sub-phase (per-node ``amo`` timelines stay
    single-writer ⇒ threaded runs are schedule-independent).
    ``single_writer=False`` is the weak-scaling variant: every PE
    updates a hashed owner every round.
    """
    job = layer.job
    n = job.num_pes
    width = job.machine.cores_per_node if single_writer else 1
    val = np.array([1], dtype=np.int64)

    def body():
        ctx = current()
        pe = ctx.pe

        def update(counts, table, rnd: int) -> None:
            if single_writer:
                owner = (pe + 1 + rnd) % n
            else:
                owner = _mix64(pe * 1000003 + rnd) % n
            slot = (pe + rnd) % _DHT_SLOTS
            layer.atomic(counts, owner, slot, "fadd", 1)
            layer.put(table, val, owner, offset=slot)

        def run_phase(counts, table, rnd: int, sub: int):
            if rnd == rounds:
                total = int(counts.local.sum())
                return Done((total, ctx.clock.now))
            if pe % width == sub:
                update(counts, table, rnd)
            nxt_sub = sub + 1
            if nxt_sub == width:
                return BarrierStep(
                    layer, lambda: run_phase(counts, table, rnd + 1, 0)
                )
            return BarrierStep(
                layer, lambda: run_phase(counts, table, rnd, nxt_sub)
            )

        return alloc_array_step(
            layer, (_DHT_SLOTS,), np.int64,
            lambda counts: alloc_array_step(
                layer, (_DHT_SLOTS,), np.int64,
                lambda table: run_phase(counts, table, 0, 0),
            ),
        )

    return body


def dht_steps_per_pe(rounds: int, single_writer: bool, cores_per_node: int) -> int:
    width = cores_per_node if single_writer else 1
    return 2 + rounds * width


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


def run_workload(
    workload: str,
    num_pes: int,
    *,
    engine: Any = "event",
    iters: int = 2,
    machine: str = "stampede",
    with_trace: bool = False,
    single_writer: bool = False,
) -> dict:
    """Build a job, run one workload, and return results + timings."""
    job = Job(num_pes, machine, heap_bytes=SCALE_HEAP_BYTES, engine=engine)
    layer = shmem_attach(job)
    tracer = trace_attach(job) if with_trace else None
    if workload == "himeno":
        slots = [0.0] * num_pes
        body = make_himeno_body(layer, iters, 64, slots)
        steps_per_pe = himeno_steps_per_pe(iters)
    elif workload == "dht":
        body = make_dht_body(layer, iters, single_writer)
        steps_per_pe = dht_steps_per_pe(
            iters, single_writer, job.machine.cores_per_node
        )
    else:
        raise ValueError(f"unknown workload {workload!r}; expected himeno/dht")
    t0 = time.perf_counter()
    results = job.run(body)
    wall_s = time.perf_counter() - t0
    total_steps = num_pes * steps_per_pe
    return {
        "workload": workload,
        "pes": num_pes,
        "engine": job.engine.name,
        "results": results,
        "wall_s": round(wall_s, 4),
        "steps_per_pe": steps_per_pe,
        "wall_us_per_pe_step": round(wall_s * 1e6 / total_steps, 3),
        "max_virtual_us": round(max(r[1] for r in results), 6),
        "digest": trace_digest(tracer) if tracer is not None else None,
    }


def equivalence_gate(num_pes: int = GATE_PES, iters: int = 2) -> dict:
    """Threaded-vs-event bitwise agreement on the shared sizes.

    Raises :class:`AssertionError` on any mismatch; returns the gate
    record for the JSON report.
    """
    gate: dict = {"pes": num_pes, "iters": iters, "workloads": {}}
    for workload, kwargs in (
        ("himeno", {}),
        ("dht", {"single_writer": True}),
    ):
        runs = {
            name: run_workload(
                workload, num_pes, engine=name, iters=iters,
                with_trace=True, **kwargs,
            )
            for name in ("threaded", "event")
        }
        t, e = runs["threaded"], runs["event"]
        if t["results"] != e["results"]:
            diverged = [
                pe for pe, (a, b) in enumerate(zip(t["results"], e["results"]))
                if a != b
            ]
            raise AssertionError(
                f"{workload}@{num_pes}: threaded/event results diverge on "
                f"PE(s) {diverged[:8]}: "
                f"{t['results'][diverged[0]]} != {e['results'][diverged[0]]}"
            )
        if t["digest"] != e["digest"]:
            raise AssertionError(
                f"{workload}@{num_pes}: trace digests diverge "
                f"({t['digest'][:16]} != {e['digest'][:16]})"
            )
        gate["workloads"][workload] = {
            "virtual_identical": True,
            "digest_identical": True,
            "digest": t["digest"],
            "max_virtual_us": t["max_virtual_us"],
        }
    return gate


def sweep(
    pes_list=DEFAULT_PES, *, iters: int = 2, quick: bool = False
) -> list[dict]:
    """Event-engine weak-scaling sweep; one record per (workload, size)."""
    if quick:
        iters = min(iters, 2)
    records: list[dict] = []
    for num_pes in pes_list:
        for workload, kwargs in (("himeno", {}), ("dht", {"single_writer": False})):
            rec = run_workload(
                workload, num_pes, engine="event", iters=iters, **kwargs
            )
            rec.pop("results")
            rec.pop("digest")
            records.append(rec)
    return records


# ---------------------------------------------------------------------------
# JSON plumbing + regression gate
# ---------------------------------------------------------------------------


def update_bench_json(path: str | Path, section: dict) -> Path:
    """Merge the ``scale`` section into the wallclock JSON in place."""
    path = Path(path)
    doc = json.loads(path.read_text()) if path.exists() else {
        "benchmark": "wallclock", "cases": [],
    }
    doc["scale"] = section
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


def check_regression(
    records: list[dict], baseline_path: str | Path, max_regression: float
) -> list[str]:
    """Compare ``wall_us_per_pe_step`` against a committed envelope.

    Returns human-readable violation strings (empty = pass).  Sweep
    points missing from the baseline pass (new sizes are not
    regressions).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    envelope = {
        (b["workload"], b["pes"]): b["wall_us_per_pe_step"]
        for b in baseline.get("sweep", [])
    }
    violations = []
    for rec in records:
        limit = envelope.get((rec["workload"], rec["pes"]))
        if limit is None:
            continue
        allowed = limit * (1.0 + max_regression)
        if rec["wall_us_per_pe_step"] > allowed:
            violations.append(
                f"{rec['workload']}@{rec['pes']}: "
                f"{rec['wall_us_per_pe_step']:.3f} us/step > "
                f"{allowed:.3f} (baseline {limit:.3f} "
                f"+{max_regression:.0%})"
            )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.scale",
        description="Event-engine weak-scaling sweep + engine equivalence gate",
    )
    parser.add_argument(
        "--pes", default=None,
        help="comma-separated PE counts (default 64,256,1024,4096)",
    )
    parser.add_argument("--iters", type=int, default=2, help="iterations/rounds")
    parser.add_argument(
        "--quick", action="store_true",
        help="smallest meaningful run (CI smoke)",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="skip the 64-PE threaded-vs-event bitwise gate",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON",
        help="write/merge the scale section into this wallclock JSON",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="committed scale baseline to compare against",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional per-PE-step slowdown vs baseline",
    )
    ns = parser.parse_args(argv)

    if ns.pes is not None:
        pes_list = tuple(int(p) for p in ns.pes.split(","))
    elif ns.quick:
        pes_list = (64, 1024)
    else:
        pes_list = DEFAULT_PES

    section: dict = {
        "generated_by": "python -m repro.bench.scale",
        "engine": "event",
    }
    if not ns.no_gate:
        gate = equivalence_gate(min(GATE_PES, min(pes_list)), iters=ns.iters)
        section["gate"] = gate
        for workload, rec in gate["workloads"].items():
            print(
                f"gate {workload}@{gate['pes']}: virtual times and trace "
                f"digests identical (threaded == event)"
            )
    records = sweep(pes_list, iters=ns.iters, quick=ns.quick)
    section["sweep"] = records
    for rec in records:
        print(
            f"{rec['workload']:>7} pes={rec['pes']:>5} wall={rec['wall_s']:>8.3f}s "
            f"{rec['wall_us_per_pe_step']:>8.3f} us/PE-step "
            f"virtual_max={rec['max_virtual_us']:.1f}us"
        )
    if ns.out:
        path = update_bench_json(ns.out, section)
        print(f"scale section written to {path}")
    if ns.baseline:
        violations = check_regression(records, ns.baseline, ns.max_regression)
        if violations:
            for v in violations:
                print(f"REGRESSION: {v}")
            return 1
        print(f"regression gate passed (max +{ns.max_regression:.0%} vs baseline)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
