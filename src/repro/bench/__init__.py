"""The paper's evaluation, reproduced.

One module per benchmark family, mirroring Section V:

* :mod:`repro.bench.motivation` — raw one-sided library comparison
  (SHMEM vs GASNet vs MPI-3.0 put latency/bandwidth; Figs 2-3).
* :mod:`repro.bench.microbench` — the PGAS Microbenchmark suite in CAF:
  contiguous put bandwidth, multi-dimensional strided put bandwidth,
  and the lock contention test (Figs 6-8).
* :mod:`repro.bench.dht` — the distributed hash table benchmark and the
  reusable :class:`~repro.bench.dht.DistributedHashTable` it exercises
  (Fig 9).
* :mod:`repro.bench.himeno` — the CAF Himeno (Jacobi/Poisson) benchmark
  (Fig 10).
* :mod:`repro.bench.figures` — one driver per paper table/figure that
  runs the sweep and renders the same rows/series the paper plots.

All results are in *virtual* time from the machine models; shapes (who
wins, by what factor, where crossovers fall) are the reproduction
target, not absolute numbers.
"""

from repro.bench.harness import BenchFigure, CafConfig
from repro.bench.dht import DistributedHashTable

__all__ = ["BenchFigure", "CafConfig", "DistributedHashTable"]
