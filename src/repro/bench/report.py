"""Markdown report generation.

``python -m repro.bench --report out.md`` regenerates the requested
figures and writes a self-contained markdown report: every figure's
series as a fenced table, plus computed headline ratios for the
figures that carry the paper's quantitative claims (Figs 6-10).  This
is how EXPERIMENTS.md's measured numbers were produced.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.bench import figures
from repro.bench.harness import BenchFigure
from repro.util.stats import geomean


def _headlines(target: str, figs: list[BenchFigure]) -> list[str]:
    """Computed claim lines for a figure's results (empty if none apply)."""
    out: list[str] = []
    try:
        if target == "fig6":
            contiguous, strided = figs[0], figs[1]
            gain = geomean(
                u / c
                for u, c in zip(
                    contiguous.get("UHCAF-Cray-SHMEM").ys,
                    contiguous.get("Cray-CAF").ys,
                )
            )
            out.append(
                f"UHCAF-Cray-SHMEM over Cray-CAF (contiguous): "
                f"{(gain - 1) * 100:.1f} % (paper: ~8 %)"
            )
            vs_naive = geomean(
                t / n
                for t, n in zip(
                    strided.get("UHCAF-Cray-SHMEM-2dim").ys,
                    strided.get("UHCAF-Cray-SHMEM-naive").ys,
                )
            )
            vs_cray = geomean(
                t / c
                for t, c in zip(
                    strided.get("UHCAF-Cray-SHMEM-2dim").ys,
                    strided.get("Cray-CAF").ys,
                )
            )
            out.append(f"2dim over naive (strided): {vs_naive:.1f}x (paper: ~9x)")
            out.append(f"2dim over Cray-CAF (strided): {vs_cray:.1f}x (paper: ~3x)")
        elif target == "fig8":
            fig = figs[0]
            shmem = fig.get("UHCAF-Cray-SHMEM").ys
            vs_cray = geomean(c / s for c, s in zip(fig.get("Cray-CAF").ys[1:], shmem[1:]))
            vs_gas = geomean(
                g / s for g, s in zip(fig.get("UHCAF-GASNet").ys[1:], shmem[1:])
            )
            out.append(
                f"locks: {(vs_cray - 1) * 100:.0f} % faster than Cray-CAF "
                f"(paper: 22 %), {(vs_gas - 1) * 100:.0f} % faster than "
                f"UHCAF-GASNet (paper: ~10 %)"
            )
        elif target == "fig9":
            fig = figs[0]
            shmem = fig.get("UHCAF-Cray-SHMEM").ys
            vs_cray = geomean(c / s for c, s in zip(fig.get("Cray-CAF").ys, shmem))
            vs_gas = geomean(g / s for g, s in zip(fig.get("UHCAF-GASNet").ys, shmem))
            out.append(
                f"DHT: {(vs_cray - 1) * 100:.0f} % faster than Cray-CAF "
                f"(paper: 28 %), {(vs_gas - 1) * 100:.0f} % faster than "
                f"UHCAF-GASNet (paper: 18 %)"
            )
        elif target == "fig10":
            fig = figs[0]
            gains = [
                s / g
                for s, g in zip(
                    fig.get("UHCAF-MVAPICH2-X-SHMEM").ys, fig.get("UHCAF-GASNet").ys
                )
            ]
            out.append(
                f"Himeno: SHMEM over GASNet gain {(min(gains) - 1) * 100:.1f} %"
                f"..{(max(gains) - 1) * 100:.1f} % rising with images "
                f"(paper: avg 6 %, max 22 %)"
            )
    except (KeyError, IndexError):
        out.append("(headline computation skipped: series missing)")
    return out


def generate_report(
    targets: Iterable[str] = ("tables", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10"),
    quick: bool = True,
) -> str:
    """Run the targets and return the markdown report text."""
    lines = [
        "# Reproduction report",
        "",
        f"Sweep mode: {'quick' if quick else 'full'}.  All times are",
        "virtual microseconds from the calibrated machine models; see",
        "docs/MODEL.md.",
        "",
    ]
    for target in targets:
        lines.append(f"## {target}")
        lines.append("")
        if target == "wallclock":
            from repro.bench import wallclock

            lines.append("```")
            lines.append(wallclock.render(wallclock.run_suite(quick=quick)))
            lines.append("```")
            lines.append("")
            continue
        if target == "kvservice":
            from repro.bench import kvservice

            section = kvservice.run_suite(quick=quick)
            lines.append("```")
            lines.append(json.dumps(section, indent=1))
            lines.append("```")
            lines.append("")
            cmp_ = section["cache_comparison"]
            lines.append(
                f"* hot-key caching cut open-loop p99 from "
                f"{cmp_['uncached_p99_us']} us to {cmp_['cached_p99_us']} us "
                f"({cmp_['p99_speedup']}x) on the skewed read-heavy mix"
            )
            lines.append(
                f"* live reshard moved {section['reshard']['moved']} entries "
                f"with {len(section['reshard']['lost'])} lost acked writes"
            )
            lines.append("")
            continue
        if target == "tables":
            results = figures.tables()
        else:
            r = getattr(figures, target)(quick=quick)
            results = r if isinstance(r, list) else [r]
        for item in results:
            lines.append("```")
            lines.append(item.render())
            lines.append("```")
            lines.append("")
        if target != "tables":
            for claim in _headlines(target, results):
                lines.append(f"* {claim}")
            lines.append("")
    return "\n".join(lines)
