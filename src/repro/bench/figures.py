"""One driver per paper table/figure.

Each ``figN()`` runs the sweep behind that figure and returns a
:class:`~repro.bench.harness.BenchFigure` (or list of them) whose
series carry the same labels the paper's legends use.  ``quick=True``
(the default) runs a reduced sweep sized for CI; ``quick=False``
approaches the paper's ranges (minutes of wall time).

The per-figure parameter choices and how measured shapes compare to the
paper are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench import dht as dht_bench
from repro.bench import himeno as himeno_bench
from repro.bench import microbench, motivation
from repro.bench.harness import (
    BenchFigure,
    CRAY_CAF,
    UHCAF_CRAY_SHMEM,
    UHCAF_CRAY_SHMEM_2DIM,
    UHCAF_CRAY_SHMEM_NAIVE,
    UHCAF_GASNET,
    UHCAF_MV2X_SHMEM,
    UHCAF_MV2X_SHMEM_2DIM,
    UHCAF_MV2X_SHMEM_NAIVE,
)
from repro.util.tables import format_bytes

SMALL_SIZES_QUICK = (8, 64, 512, 4096)
SMALL_SIZES_FULL = tuple(2**k for k in range(3, 14))
LARGE_SIZES_QUICK = (16384, 262144, 1048576)
LARGE_SIZES_FULL = tuple(2**k for k in range(14, 23))


def _machines(quick: bool) -> tuple[str, ...]:
    return ("stampede",) if quick else ("stampede", "titan")


# ---------------------------------------------------------------------------
# Figure 2: put latency, SHMEM vs MPI-3.0 vs GASNet
# ---------------------------------------------------------------------------


def fig2(quick: bool = True) -> list[BenchFigure]:
    """Put latency comparison using two nodes (paper Fig 2)."""
    figures = []
    iters = 10 if quick else 30
    small = SMALL_SIZES_QUICK if quick else SMALL_SIZES_FULL
    large = LARGE_SIZES_QUICK if quick else LARGE_SIZES_FULL
    for machine in _machines(quick):
        for label, sizes in (("Small Datasizes", small), ("Large Datasizes", large)):
            fig = BenchFigure(
                title=f"Fig 2 ({machine}): Put 1-pair latency, {label}",
                x_label="size",
                y_label="latency (us)",
            )
            for lib in motivation.LIBRARIES:
                ys = [
                    motivation.put_latency(machine, lib, n, pairs=1, iters=iters)
                    for n in sizes
                ]
                fig.add_series(
                    motivation.library_label(lib, machine),
                    [format_bytes(n) for n in sizes],
                    ys,
                )
            figures.append(fig)
    return figures


# ---------------------------------------------------------------------------
# Figure 3: put bandwidth, 1 and 16 pairs
# ---------------------------------------------------------------------------


def fig3(quick: bool = True) -> list[BenchFigure]:
    """Put bandwidth comparison using two nodes (paper Fig 3)."""
    figures = []
    iters = 5 if quick else 20
    sizes = (
        (4096, 65536, 1048576) if quick else tuple(2**k for k in range(10, 23))
    )
    for machine in _machines(quick):
        for pairs in (1, 16):
            fig = BenchFigure(
                title=f"Fig 3 ({machine}): Put bandwidth, {pairs} pair(s)",
                x_label="size",
                y_label="bandwidth (MB/s)",
            )
            for lib in motivation.LIBRARIES:
                ys = [
                    motivation.put_bandwidth(machine, lib, n, pairs=pairs, iters=iters)
                    for n in sizes
                ]
                fig.add_series(
                    motivation.library_label(lib, machine),
                    [format_bytes(n) for n in sizes],
                    ys,
                )
            figures.append(fig)
    return figures


# ---------------------------------------------------------------------------
# Figures 6 and 7: CAF contiguous + strided put bandwidth
# ---------------------------------------------------------------------------


def _caf_bandwidth_figure(
    machine: str, configs, pairs: int, sizes, iters: int
) -> BenchFigure:
    fig = BenchFigure(
        title=f"CAF contiguous put bandwidth ({machine}), {pairs} pair(s)",
        x_label="size",
        y_label="bandwidth (MB/s)",
    )
    for cfg in configs:
        ys = [
            microbench.caf_put_bandwidth(machine, cfg, n, pairs=pairs, iters=iters)
            for n in sizes
        ]
        fig.add_series(cfg.label, [format_bytes(n) for n in sizes], ys)
    return fig


def _caf_strided_figure(
    machine: str, configs, pairs: int, strides, iters: int
) -> BenchFigure:
    fig = BenchFigure(
        title=f"CAF 2-D strided put bandwidth ({machine}), {pairs} pair(s)",
        x_label="stride (# of integers)",
        y_label="bandwidth (MB/s)",
    )
    for cfg in configs:
        ys = [
            microbench.caf_strided_put_bandwidth(
                machine, cfg, s, pairs=pairs, iters=iters
            )
            for s in strides
        ]
        fig.add_series(cfg.label, list(strides), ys)
    return fig


def fig6(quick: bool = True) -> list[BenchFigure]:
    """PGAS microbenchmarks on Cray XC30 (paper Fig 6): Cray-CAF vs
    UHCAF-Cray-SHMEM (contiguous); + naive/2dim (strided)."""
    sizes = (64, 4096, 262144) if quick else tuple(2**k for k in range(3, 21))
    strides = (2, 8, 32) if quick else (2, 4, 8, 16, 32, 64)
    iters = 5 if quick else 20
    pair_list = (1,) if quick else (1, 16)
    figures = []
    for pairs in pair_list:
        figures.append(
            _caf_bandwidth_figure(
                "cray-xc30", (CRAY_CAF, UHCAF_CRAY_SHMEM), pairs, sizes, iters
            )
        )
    for pairs in pair_list:
        figures.append(
            _caf_strided_figure(
                "cray-xc30",
                (CRAY_CAF, UHCAF_CRAY_SHMEM_NAIVE, UHCAF_CRAY_SHMEM_2DIM),
                pairs,
                strides,
                iters,
            )
        )
    return figures


def fig7(quick: bool = True) -> list[BenchFigure]:
    """PGAS microbenchmarks on Stampede (paper Fig 7): UHCAF-GASNet vs
    UHCAF-MVAPICH2-X-SHMEM (contiguous); + naive/2dim (strided)."""
    sizes = (64, 4096, 262144) if quick else tuple(2**k for k in range(3, 21))
    strides = (2, 8, 32) if quick else (2, 4, 8, 16, 32, 64)
    iters = 5 if quick else 20
    pair_list = (1,) if quick else (1, 16)
    figures = []
    for pairs in pair_list:
        figures.append(
            _caf_bandwidth_figure(
                "stampede", (UHCAF_GASNET, UHCAF_MV2X_SHMEM), pairs, sizes, iters
            )
        )
    for pairs in pair_list:
        figures.append(
            _caf_strided_figure(
                "stampede",
                (UHCAF_GASNET, UHCAF_MV2X_SHMEM_NAIVE, UHCAF_MV2X_SHMEM_2DIM),
                pairs,
                strides,
                iters,
            )
        )
    return figures


# ---------------------------------------------------------------------------
# Figure 8: lock microbenchmark on Titan
# ---------------------------------------------------------------------------


def fig8(quick: bool = True) -> BenchFigure:
    """All images repeatedly acquire/release a lock on image 1
    (paper Fig 8; paper sweeps 2..1024 images over 64 nodes)."""
    image_counts = (2, 8, 24, 48) if quick else (2, 4, 8, 16, 32, 64, 128, 256)
    acquires = 3 if quick else 8
    fig = BenchFigure(
        title="Fig 8: lock microbenchmark (Titan), lock on image 1",
        x_label="images",
        y_label="time (us)",
    )
    for cfg in (CRAY_CAF, UHCAF_GASNET, UHCAF_CRAY_SHMEM):
        ys = [
            microbench.lock_contention_time("titan", cfg, n, acquires=acquires)
            for n in image_counts
        ]
        fig.add_series(cfg.label, list(image_counts), ys)
    return fig


# ---------------------------------------------------------------------------
# Figure 9: distributed hash table on Titan
# ---------------------------------------------------------------------------


def fig9(quick: bool = True) -> BenchFigure:
    """Random DHT updates under coarray locks (paper Fig 9)."""
    image_counts = (2, 8, 24) if quick else (2, 4, 8, 16, 32, 64, 128)
    updates = 8 if quick else 32
    fig = BenchFigure(
        title="Fig 9: distributed hash table (Titan)",
        x_label="images",
        y_label="time (us)",
    )
    for cfg in (CRAY_CAF, UHCAF_GASNET, UHCAF_CRAY_SHMEM):
        ys = [
            dht_bench.dht_benchmark(
                "titan", cfg, n, updates_per_image=updates, slots_per_image=64
            )
            for n in image_counts
        ]
        fig.add_series(cfg.label, list(image_counts), ys)
    return fig


# ---------------------------------------------------------------------------
# Figure 10: Himeno on Stampede
# ---------------------------------------------------------------------------


def fig10(quick: bool = True) -> BenchFigure:
    """CAF Himeno MFLOPS (paper Fig 10; paper sweeps to 2048 cores)."""
    if quick:
        image_counts = (4, 16, 30)
        grid = "XS"
        iterations = 3
    else:
        image_counts = (4, 8, 16, 32, 62)
        grid = "S"
        iterations = 6
    fig = BenchFigure(
        title=f"Fig 10: CAF Himeno ({grid} grid, Stampede)",
        x_label="images",
        y_label="MFLOPS",
    )
    for cfg in (UHCAF_GASNET, UHCAF_MV2X_SHMEM):
        ys = [
            himeno_bench.himeno_caf(
                "stampede", cfg, n, grid=grid, iterations=iterations
            ).mflops
            for n in image_counts
        ]
        fig.add_series(cfg.label, list(image_counts), ys)
    return fig


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def tables() -> list:
    """Tables I-III as renderable objects."""
    from repro.caf import registry

    return [registry.table1(), registry.table2(), registry.table3()]
