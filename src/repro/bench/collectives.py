"""Team-scoped collective sweep: auto-selection vs fixed algorithms.

The collective library (:mod:`repro.collectives`) picks an algorithm per
(payload, team size, team shape, machine) through the closed-form cost
model.  This benchmark sweeps team-scoped allreduce on the event engine
over 64-4096 PEs with two team shapes — ``block`` (a contiguous half of
the PEs: whole nodes, node-aligned rank order) and ``strided`` (every
third PE: multi-node and *node-misaligned*, so tree rank distances
cross node boundaries at every level) — at a latency-bound payload
(8 B) and a bandwidth-bound one (8 KiB), running every applicable fixed
algorithm plus auto-selection at each point.

The figure of merit is *virtual* completion time (max member clock):
that is what the cost model predicts and what selection optimizes.
Host wall-clock per run is recorded alongside as the engine-throughput
envelope.

Gates (``--no-gate`` to skip):

* **auto never loses** — at every sweep point the auto-selected run's
  virtual time must not exceed the best *measured* fixed algorithm's
  (auto runs one of the fixed candidates, so equality up to float fuzz
  is the expectation; a violation means the cost model mispredicts the
  ranking).
* **hierarchy pays off** — on the misaligned multi-node (``strided``)
  shape at 1024+ PEs the two-level ``hier`` algorithm must beat the
  flat ``binomial`` tree, the paper-motivated reason this library
  exists.  (On the node-aligned ``block`` shape a flat tree is already
  effectively hierarchical — its low rounds stay on-node — so the flat
  algorithms legitimately win there; the cost model knows.)

The ring algorithm costs O(m) rounds per member (O(m^2) engine events);
it is swept only up to ``RING_MAX_MEMBERS`` members and the skip is
logged — at larger m the per-member chunk of these payloads is tiny and
the cost model prices ring out of contention anyway.

Results land in the ``collectives`` section of ``BENCH_wallclock.json``
(or ``--out``); the CI ``collective-smoke`` job runs ``--quick``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.collectives import selector_for, team_reduce_step
from repro.collectives.comm import get_team_comm
from repro.collectives.select import REDUCE_ALGORITHMS
from repro.engine.steps import Done
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.shmem import attach as shmem_attach

DEFAULT_PES = (64, 256, 1024, 4096)
QUICK_PES = (64, 1024)

#: int64 element counts per payload class: 8 B (latency-bound) and
#: 8 KiB (bandwidth-bound).
PAYLOAD_ELEMS = (1, 1024)

#: Ring does 2(m-1) post/wait rounds per member — O(m^2) engine events.
#: Beyond this team size it is skipped (and logged); the cost model
#: never selects it there for the swept payloads (chunk = payload/m).
RING_MAX_MEMBERS = 128

MACHINE = "stampede"


def team_shapes(num_pes: int) -> dict[str, tuple[int, ...]]:
    """``block`` packs whole nodes (node-aligned rank order); ``strided``
    takes every third PE — stride 3 does not divide the 16-core node
    width, so team ranks interleave across node boundaries and tree
    exchanges cross the NIC at every rank distance."""
    return {
        "block": tuple(range(num_pes // 2)),
        "strided": tuple(range(0, num_pes, 3)),
    }


def _heap_bytes(m: int, nelems: int) -> int:
    """Per-PE symmetric heap: flag bank (2m int64) + generous scratch
    headroom for the payload, rounded up to a 4 KiB multiple."""
    need = (1 << 15) + 2 * m * 8 + 16 * nelems * 8
    return (need + 4095) & ~4095


def run_point(
    num_pes: int,
    shape: str,
    members: tuple[int, ...],
    nelems: int,
    algo: str | None,
) -> dict:
    """One allreduce on the event engine; returns the sweep record."""
    m = len(members)
    job = Job(
        num_pes, MACHINE, heap_bytes=_heap_bytes(m, nelems), engine="event"
    )
    layer = shmem_attach(job)
    member_set = frozenset(members)
    expect = sum(members)  # sum over members of data[0] == pe

    def body():
        ctx = current()
        if ctx.pe not in member_set:
            return Done((None, None, ctx.clock.now))
        data = np.arange(nelems, dtype=np.int64)
        data[0] = ctx.pe
        pick = None
        if algo is None and ctx.pe == members[0]:
            comm = get_team_comm(layer, members)
            pick = selector_for(layer).choose("reduce", comm, nelems * 8)
        fin = lambda res: Done((int(np.asarray(res)[0]), pick, ctx.clock.now))
        return team_reduce_step(
            layer, members, data, np.add, fin, algorithm=algo
        )

    t0 = time.perf_counter()
    results = job.run(body)
    wall_s = time.perf_counter() - t0
    for pe in members:
        got = results[pe][0]
        if got != expect:
            raise AssertionError(
                f"allreduce wrong: pes={num_pes} shape={shape} "
                f"algo={algo or 'auto'} PE {pe}: {got} != {expect}"
            )
    return {
        "pes": num_pes,
        "team": m,
        "shape": shape,
        "payload_bytes": nelems * 8,
        "algo": algo or "auto",
        "auto_pick": results[members[0]][1],
        "virtual_us": round(max(results[pe][2] for pe in members), 6),
        "wall_s": round(wall_s, 4),
    }


def sweep(pes_list=DEFAULT_PES) -> tuple[list[dict], list[str]]:
    """Run every (size, shape, payload, algorithm) point.

    Returns ``(records, skipped)`` where ``skipped`` names the points
    not run (ring beyond RING_MAX_MEMBERS) — no silent truncation.
    """
    records: list[dict] = []
    skipped: list[str] = []
    for num_pes in pes_list:
        for shape, members in team_shapes(num_pes).items():
            m = len(members)
            for nelems in PAYLOAD_ELEMS:
                algos: list[str | None] = [None, *REDUCE_ALGORITHMS]
                for algo in algos:
                    if algo == "ring" and m > RING_MAX_MEMBERS:
                        skipped.append(
                            f"ring@pes={num_pes},shape={shape},"
                            f"payload={nelems * 8}B (m={m} > "
                            f"{RING_MAX_MEMBERS})"
                        )
                        continue
                    records.append(
                        run_point(num_pes, shape, members, nelems, algo)
                    )
    return records, skipped


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------


def check_auto_vs_fixed(records: list[dict], fuzz: float = 1e-6) -> list[str]:
    """Auto-selection must not be slower than the best measured fixed
    algorithm at any sweep point."""
    points: dict[tuple, dict[str, float]] = {}
    for r in records:
        key = (r["pes"], r["shape"], r["payload_bytes"])
        points.setdefault(key, {})[r["algo"]] = r["virtual_us"]
    violations = []
    for (pes, shape, payload), by_algo in sorted(points.items()):
        auto = by_algo.get("auto")
        fixed = {a: v for a, v in by_algo.items() if a != "auto"}
        if auto is None or not fixed:
            continue
        best_algo = min(fixed, key=fixed.get)
        if auto > fixed[best_algo] * (1.0 + fuzz):
            violations.append(
                f"auto loses at pes={pes} shape={shape} payload={payload}B: "
                f"auto={auto:.3f}us > {best_algo}={fixed[best_algo]:.3f}us"
            )
    return violations


def check_hier_beats_binomial(
    records: list[dict], min_pes: int = 1024
) -> list[str]:
    """On the misaligned multi-node (``strided``) shape at ``min_pes``+
    the two-level hierarchy must beat the flat binomial tree.  The
    node-aligned ``block`` shape is excluded: there a flat tree's low
    rounds already stay on-node (it is effectively hierarchical), so
    flat algorithms legitimately win it."""
    points: dict[tuple, dict[str, float]] = {}
    for r in records:
        if r["pes"] < min_pes or r["shape"] != "strided":
            continue
        key = (r["pes"], r["shape"], r["payload_bytes"])
        points.setdefault(key, {})[r["algo"]] = r["virtual_us"]
    violations = []
    for (pes, shape, payload), by_algo in sorted(points.items()):
        hier, binom = by_algo.get("hier"), by_algo.get("binomial")
        if hier is None or binom is None:
            continue
        if hier >= binom:
            violations.append(
                f"hier does not beat binomial at pes={pes} shape={shape} "
                f"payload={payload}B: hier={hier:.3f}us >= "
                f"binomial={binom:.3f}us"
            )
    return violations


# ---------------------------------------------------------------------------
# JSON plumbing / CLI
# ---------------------------------------------------------------------------


def update_bench_json(path: str | Path, section: dict) -> Path:
    """Merge the ``collectives`` section into the wallclock JSON."""
    path = Path(path)
    doc = json.loads(path.read_text()) if path.exists() else {
        "benchmark": "wallclock", "cases": [],
    }
    doc["collectives"] = section
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.collectives",
        description="Team-scoped collective sweep: auto vs fixed algorithms",
    )
    parser.add_argument(
        "--pes", default=None,
        help="comma-separated PE counts (default 64,256,1024,4096)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 64 and 1024 PEs only",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="skip the auto-vs-fixed and hier-vs-binomial gates",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON",
        help="write/merge the collectives section into this wallclock JSON",
    )
    ns = parser.parse_args(argv)

    if ns.pes is not None:
        pes_list = tuple(int(p) for p in ns.pes.split(","))
    elif ns.quick:
        pes_list = QUICK_PES
    else:
        pes_list = DEFAULT_PES

    records, skipped = sweep(pes_list)
    for msg in skipped:
        print(f"skipped {msg}")
    for rec in records:
        pick = f" ->{rec['auto_pick']}" if rec["auto_pick"] else ""
        print(
            f"pes={rec['pes']:>5} team={rec['team']:>5} {rec['shape']:>8} "
            f"{rec['payload_bytes']:>5}B {rec['algo']:>9}{pick:<11} "
            f"virtual={rec['virtual_us']:>10.3f}us wall={rec['wall_s']:>8.3f}s"
        )

    section = {
        "generated_by": "python -m repro.bench.collectives",
        "engine": "event",
        "machine": MACHINE,
        "sweep": records,
        "skipped": skipped,
    }
    rc = 0
    if not ns.no_gate:
        violations = check_auto_vs_fixed(records)
        hier = check_hier_beats_binomial(records)
        section["gate"] = {
            "auto_never_worse": not violations,
            "hier_beats_binomial_at_1024": not hier,
        }
        for v in violations + hier:
            print(f"GATE FAILURE: {v}")
        if violations or hier:
            rc = 1
        else:
            print(
                "gates passed: auto matches the best fixed algorithm at "
                "every point; hier beats binomial on the misaligned "
                "multi-node shape at 1024+ PEs"
            )
    if ns.out:
        path = update_bench_json(ns.out, section)
        print(f"collectives section written to {path}")
    return rc


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
