"""The "Why OpenSHMEM?" library comparison (paper Section III, Figs 2-3).

Raw put latency and bandwidth of the three candidate one-sided
libraries — OpenSHMEM, GASNet, and MPI-3.0 — between PE pairs placed on
two different nodes, with 1 pair (no contention) and 16 pairs (full
inter-node contention).

Per machine, the libraries are the ones the paper used:

* Stampede: MVAPICH2-X SHMEM, GASNet (IBV conduit), MVAPICH2-X MPI-3.0;
* Titan / Cray XC30: Cray SHMEM, GASNet (Gemini/Aries conduit),
  Cray MPICH.
"""

from __future__ import annotations

import numpy as np

from repro import gasnet as gasnet_mod
from repro import mpirma as mpirma_mod
from repro import shmem as shmem_mod
from repro.bench.harness import bandwidth_MBps, pair_partner, pair_world_size
from repro.runtime.context import current
from repro.runtime.launcher import Job

#: library name -> (attach function, conduit per machine kind)
LIBRARIES = ("shmem", "gasnet", "mpi3")


def library_label(lib: str, machine: str) -> str:
    """The name the paper's legend uses for ``lib`` on ``machine``."""
    cray = machine.lower() != "stampede"
    return {
        "shmem": "Cray SHMEM" if cray else "MVAPICH2-X SHMEM",
        "gasnet": "GASNet",
        "mpi3": "Cray MPICH" if cray else "MVAPICH2-X MPI-3.0",
    }[lib]


def _profile_for(lib: str, machine: str) -> str:
    cray = machine.lower() != "stampede"
    return {
        "shmem": "cray-shmem" if cray else "mvapich2x-shmem",
        "gasnet": "gasnet",
        "mpi3": "cray-mpich" if cray else "mpi3",
    }[lib]


def _attach(job: Job, lib: str, machine: str):
    profile = _profile_for(lib, machine)
    if lib == "shmem":
        return shmem_mod.attach(job, profile)
    if lib == "gasnet":
        return gasnet_mod.attach(job, profile)
    if lib == "mpi3":
        return mpirma_mod.attach(job, profile)
    raise ValueError(f"unknown library {lib!r}; expected {LIBRARIES}")


def _run_put_test(
    machine: str,
    lib: str,
    nbytes: int,
    pairs: int,
    iters: int,
    mode: str,
) -> float:
    """One cell of Fig 2/3.

    ``mode="latency"``: each iteration is put + wait-for-remote-
    completion; returns mean microseconds per operation (max over
    pairs).  ``mode="bandwidth"``: back-to-back puts with one final
    completion wait; returns per-pair MB/s (min over pairs, i.e. the
    contended rate).
    """
    if mode not in ("latency", "bandwidth"):
        raise ValueError("mode must be latency or bandwidth")
    num_pes = pair_world_size(pairs)
    heap = max(1 << 20, 2 * nbytes + (1 << 16))
    job = Job(num_pes, machine, heap_bytes=heap)
    layer = _attach(job, lib, machine)

    def kernel() -> float | None:
        ctx = current()
        me = ctx.pe
        nelems = max(1, nbytes)
        buf = layer.alloc_array((nelems,), np.uint8)
        data = np.full(nelems, me % 251, dtype=np.uint8)
        partner = pair_partner(me, pairs)
        layer.barrier_all()
        if partner is None:
            layer.barrier_all()
            return None
        t0 = ctx.clock.now
        if mode == "latency":
            for _ in range(iters):
                layer.put(buf, data, partner)
                layer.quiet()
            elapsed = ctx.clock.now - t0
            result = elapsed / iters
        else:
            for _ in range(iters):
                layer.put(buf, data, partner)
            layer.quiet()
            elapsed = ctx.clock.now - t0
            result = bandwidth_MBps(nbytes * iters, elapsed)
        layer.barrier_all()
        return result

    results = [r for r in job.run(kernel) if r is not None]
    # Latency: report the slowest pair (contention tail); bandwidth:
    # the per-pair achieved rate under contention.
    return max(results) if mode == "latency" else min(results)


def put_latency(
    machine: str, lib: str, nbytes: int, pairs: int = 1, iters: int = 20
) -> float:
    """Mean put latency in microseconds (Fig 2 cell)."""
    return _run_put_test(machine, lib, nbytes, pairs, iters, "latency")


def put_bandwidth(
    machine: str, lib: str, nbytes: int, pairs: int = 1, iters: int = 20
) -> float:
    """Per-pair put bandwidth in MB/s (Fig 3 cell)."""
    return _run_put_test(machine, lib, nbytes, pairs, iters, "bandwidth")


def atomic_latency(machine: str, lib: str, pairs: int = 1, iters: int = 20) -> float:
    """Mean fetch-add round-trip latency in microseconds.

    The suite's atomics test; the property behind the paper's Section
    III remark that "availability of certain features like remote
    atomics in OpenSHMEM also provides an edge over GASNet".
    """
    num_pes = pair_world_size(pairs)
    job = Job(num_pes, machine)
    layer = _attach(job, lib, machine)

    def kernel() -> float | None:
        ctx = current()
        me = ctx.pe
        word = layer.alloc_array((1,), np.int64)
        partner = pair_partner(me, pairs)
        layer.barrier_all()
        if partner is None:
            layer.barrier_all()
            return None
        t0 = ctx.clock.now
        for _ in range(iters):
            layer.atomic(word, partner, 0, "fadd", 1)
        elapsed = ctx.clock.now - t0
        layer.barrier_all()
        return elapsed / iters

    results = [r for r in job.run(kernel) if r is not None]
    return max(results)
