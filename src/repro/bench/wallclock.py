"""Wall-clock benchmarks of the batched RMA engine.

Every case runs the same workload twice — batching on (the default) and
off (``REPRO_NO_BATCH=1``) — and reports host wall-clock seconds for
each, the speedup, and whether the two runs produced identical virtual
times and stats counters (they must: the fast path is required to be
bit-identical in simulated time).

Cases, per the paper's own motivating example (Section IV-C):

* ``naive-50x40x25`` — the 3-D section ``A(1:100:2, 1:80:2, 1:100:4)``
  under the ``naive`` strided policy: 50 x 40 x 25 = 50,000 logical RMA
  calls for one assignment, the workload the batched path exists for.
* ``2dim-sweep`` — the Figs 6/7 2-D strided put over several strides
  with the ``2dim`` translation (few calls, each a strided line).
* ``himeno-quick`` — a small Himeno run (halo-exchange cadence).

``python -m repro.bench.wallclock`` writes ``BENCH_wallclock.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import caf
from repro.bench import microbench
from repro.bench.harness import (
    CafConfig,
    UHCAF_CRAY_SHMEM_2DIM,
    UHCAF_CRAY_SHMEM_NAIVE,
    pair_partner,
    pair_world_size,
)
from repro.bench.himeno import himeno_caf
from repro.runtime.context import current


@dataclass
class WallclockCase:
    """One workload, timed with batching on and off."""

    name: str
    description: str
    batched_s: float
    unbatched_s: float
    speedup: float
    virtual_identical: bool
    stats_identical: bool


def _timed(fn, *, no_batch: bool):
    """Run ``fn`` with batching forced on/off; return (seconds, result)."""
    saved = os.environ.pop("REPRO_NO_BATCH", None)
    try:
        if no_batch:
            os.environ["REPRO_NO_BATCH"] = "1"
        t0 = time.perf_counter()
        result = fn()
        return time.perf_counter() - t0, result
    finally:
        os.environ.pop("REPRO_NO_BATCH", None)
        if saved is not None:
            os.environ["REPRO_NO_BATCH"] = saved


def _case(name, description, fn, *, virtual_eq, stats_eq) -> WallclockCase:
    batched_s, batched = _timed(fn, no_batch=False)
    unbatched_s, oracle = _timed(fn, no_batch=True)
    return WallclockCase(
        name=name,
        description=description,
        batched_s=round(batched_s, 4),
        unbatched_s=round(unbatched_s, 4),
        speedup=round(unbatched_s / batched_s, 2) if batched_s > 0 else float("inf"),
        virtual_identical=virtual_eq(batched, oracle),
        stats_identical=stats_eq(batched, oracle),
    )


# ---------------------------------------------------------------------------
# Case 1: the Section IV-C naive 50x40x25 section assignment
# ---------------------------------------------------------------------------


def _section_put_fingerprints(
    shape: tuple[int, ...],
    key: tuple[slice, ...],
    config: CafConfig,
    machine: str = "stampede",
    dtype=np.float32,
    iters: int = 1,
):
    """One inter-node pair; image 1 assigns ``a[key]`` on its partner
    ``iters`` times (as a figure sweep would).

    Returns per-image ``(clock_now, stats, checksum)`` fingerprints.
    """
    num_pes = pair_world_size(1)
    nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    heap = max(1 << 22, 2 * nbytes + (1 << 18))

    def kernel():
        ctx = current()
        a = caf.coarray(shape, dtype)
        a[...] = 0
        caf.sync_all()
        partner = pair_partner(ctx.pe, 1)
        if partner is not None:
            for _ in range(iters):
                a.on(partner + 1)[key] = 7
        caf.sync_all()
        from repro.caf.runtime import current_runtime

        stats = {
            k: v
            for k, v in current_runtime().my_stats.items()
            if not k.startswith("plan_cache")
        }
        return ctx.clock.now, stats, float(a.local.sum())

    return caf.launch(kernel, num_pes, machine, heap_bytes=heap, **config.launch_kwargs())


def naive_section_case(quick: bool = False) -> WallclockCase:
    """The paper's 50,000-call example (scaled down when ``quick``)."""
    if quick:
        shape, key, calls = (20, 16, 20), np.s_[0:20:2, 0:16:2, 0:20:4], 10 * 8 * 5
        iters = 2
    else:
        shape, key, calls = (100, 80, 100), np.s_[0:100:2, 0:80:2, 0:100:4], 50 * 40 * 25
        iters = 10
    counts = "x".join(str(len(range(*s.indices(d)))) for s, d in zip(key, shape))
    fn = lambda: _section_put_fingerprints(shape, key, UHCAF_CRAY_SHMEM_NAIVE, iters=iters)
    return _case(
        f"naive-{counts}",
        f"3-D section {counts} under the naive policy: {calls} logical puts "
        f"per assignment x {iters} assignments (paper Section IV-C)",
        fn,
        virtual_eq=lambda a, b: all(x[0] == y[0] for x, y in zip(a, b)),
        stats_eq=lambda a, b: all(x[1] == y[1] and x[2] == y[2] for x, y in zip(a, b)),
    )


# ---------------------------------------------------------------------------
# Case 2: the Figs 6/7 2-D strided sweep under the 2dim translation
# ---------------------------------------------------------------------------


def strided_2dim_sweep_case(quick: bool = False) -> WallclockCase:
    strides = (2, 16) if quick else (2, 16, 128)
    rows, cols = (32, 128) if quick else (128, 1024)
    iters = 2 if quick else 5

    def fn():
        return [
            microbench.caf_strided_put_bandwidth(
                "stampede", UHCAF_CRAY_SHMEM_2DIM, s, iters=iters, rows=rows, cols=cols
            )
            for s in strides
        ]

    return _case(
        "2dim-sweep",
        f"2-D strided puts (rows={rows}, cols={cols}) over strides {strides} "
        "with the 2dim translation (Figs 6/7)",
        fn,
        virtual_eq=lambda a, b: a == b,  # bandwidths derive from virtual time
        stats_eq=lambda a, b: True,
    )


# ---------------------------------------------------------------------------
# Case 3: a quick Himeno run
# ---------------------------------------------------------------------------


def himeno_case(quick: bool = False) -> WallclockCase:
    grid = (17, 17, 17) if quick else (33, 33, 65)
    iters = 2 if quick else 4

    def fn():
        return himeno_caf(
            machine="stampede",
            config=UHCAF_CRAY_SHMEM_2DIM,
            num_images=4,
            grid=grid,
            iterations=iters,
        )

    return _case(
        "himeno-quick",
        f"Himeno {grid[0]}x{grid[1]}x{grid[2]}, 4 images, {iters} iterations "
        "(halo-exchange cadence)",
        fn,
        virtual_eq=lambda a, b: a.elapsed_us == b.elapsed_us and a.gosa == b.gosa,
        stats_eq=lambda a, b: a.mflops == b.mflops,
    )


# ---------------------------------------------------------------------------
# Suite driver
# ---------------------------------------------------------------------------

CASES = {
    "naive": naive_section_case,
    "2dim": strided_2dim_sweep_case,
    "himeno": himeno_case,
}


def run_suite(quick: bool = False, cases=None) -> list[WallclockCase]:
    names = list(CASES) if cases is None else list(cases)
    return [CASES[n](quick=quick) for n in names]


def write_json(results: list[WallclockCase], path: str | Path) -> Path:
    path = Path(path)
    doc = {
        "benchmark": "wallclock",
        "generated_by": "python -m repro.bench.wallclock",
        "cases": [asdict(c) for c in results],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def render(results: list[WallclockCase]) -> str:
    lines = [
        f"{'case':<18} {'batched (s)':>12} {'unbatched (s)':>14} {'speedup':>8}  invariant"
    ]
    for c in results:
        ok = "yes" if (c.virtual_identical and c.stats_identical) else "NO"
        lines.append(
            f"{c.name:<18} {c.batched_s:>12.4f} {c.unbatched_s:>14.4f} "
            f"{c.speedup:>7.2f}x  {ok}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.wallclock",
        description="Wall-clock timings of the batched RMA engine vs REPRO_NO_BATCH=1.",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument(
        "--out", default="BENCH_wallclock.json", help="output JSON path"
    )
    parser.add_argument(
        "--cases", nargs="*", choices=sorted(CASES), help="subset of cases to run"
    )
    args = parser.parse_args(argv)
    results = run_suite(quick=args.quick, cases=args.cases)
    print(render(results))
    out = write_json(results, args.out)
    print(f"\nwrote {out}")
    bad = [c.name for c in results if not (c.virtual_identical and c.stats_identical)]
    if bad:
        print(f"ERROR: virtual-time invariance broken in: {bad}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
