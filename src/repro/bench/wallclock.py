"""Wall-clock benchmarks of the batched + vectorized RMA engine.

Every case runs the same workload three ways — the full fast path (the
default), the plain batched engine (``REPRO_NO_VECTOR=1``), and the
per-call oracle (``REPRO_NO_BATCH=1``) — and reports host wall-clock
seconds for each (best of ``--repeats`` runs, to damp scheduler and
allocator noise), the speedups, and whether all runs produced identical
virtual times and stats counters (they must: both fast paths are
required to be bit-identical in simulated time).

Cases, per the paper's own motivating example (Section IV-C) and the
Figs 8/9 synchronization benchmarks:

* ``naive-50x40x25`` — the 3-D section ``A(1:100:2, 1:80:2, 1:100:4)``
  under the ``naive`` strided policy: 50 x 40 x 25 = 50,000 logical RMA
  calls for one assignment, the workload the batched path exists for.
* ``2dim-sweep`` — the Figs 6/7 2-D strided put over several strides
  with the ``2dim`` translation (few calls, each a strided line).
* ``himeno-quick`` — a small Himeno run (halo-exchange cadence).
* ``locks`` — the Fig 8 lock microbenchmark (contended acquires; the
  remote-atomic path).
* ``dht`` — the Fig 9 distributed-hash-table update loop (atomics +
  fine-grained puts/gets under bucket locks).

``python -m repro.bench.wallclock`` writes ``BENCH_wallclock.json``;
``--min-speedup X`` makes the CLI fail when any case's batched-vs-oracle
speedup lands below ``X``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import caf
from repro.bench import microbench
from repro.bench.dht import dht_benchmark
from repro.bench.harness import (
    CafConfig,
    UHCAF_CRAY_SHMEM,
    UHCAF_CRAY_SHMEM_2DIM,
    UHCAF_CRAY_SHMEM_NAIVE,
    pair_partner,
    pair_world_size,
)
from repro.bench.himeno import himeno_caf
from repro.runtime.context import current


@dataclass
class WallclockCase:
    """One workload, timed on the fast path and against both oracles.

    ``speedup`` is fast path vs the per-call oracle (``REPRO_NO_BATCH``);
    ``vector_speedup`` is fast path vs the plain batched engine
    (``REPRO_NO_VECTOR``) — the before/after of the vectorized data
    plane alone.

    The ``procs_*`` fields are filled by the ``*-procs`` cases, which
    time the threaded engine against ``engine="process"`` instead of
    the batching escape hatches: ``batched_s`` then holds the threaded
    time, ``procs_s`` the process-engine time, ``procs_speedup`` their
    ratio (> 1 means the process engine wins — expect that only on
    multi-core hosts; see ``host_cores`` in the JSON), and
    ``procs_identical`` whether both engines produced bit-identical
    virtual times and stats.  ``unbatched_s`` stays 0 for these cases,
    which exempts them from ``--min-speedup``.
    """

    name: str
    description: str
    batched_s: float
    unbatched_s: float
    speedup: float
    virtual_identical: bool
    stats_identical: bool
    novector_s: float = 0.0
    vector_speedup: float = 0.0
    procs_s: float = 0.0
    procs_speedup: float = 0.0
    procs_identical: bool = True


#: Wall-clock repeats per mode; the minimum is reported (scheduler and
#: allocator noise only ever adds time).
DEFAULT_REPEATS = 3

_FLAGS = ("REPRO_NO_BATCH", "REPRO_NO_VECTOR")


def _timed(fn, *, no_batch: bool, no_vector: bool = False, repeats: int = 1):
    """Run ``fn`` with the escape hatches forced on/off; returns
    ``(best seconds, result)`` over ``repeats`` runs."""
    saved = {f: os.environ.pop(f, None) for f in _FLAGS}
    try:
        if no_batch:
            os.environ["REPRO_NO_BATCH"] = "1"
        if no_vector:
            os.environ["REPRO_NO_VECTOR"] = "1"
        best = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result
    finally:
        for f in _FLAGS:
            os.environ.pop(f, None)
            if saved[f] is not None:
                os.environ[f] = saved[f]


def _case(name, description, fn, *, virtual_eq, stats_eq,
          repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    # One untimed pass first: the batched mode is measured first, and
    # without this it alone pays import, worker-pool spawn, and numpy
    # first-touch costs — which read as a phantom vector-path slowdown.
    _timed(fn, no_batch=False, repeats=1)
    batched_s, batched = _timed(fn, no_batch=False, repeats=repeats)
    novector_s, novector = _timed(fn, no_batch=False, no_vector=True, repeats=repeats)
    unbatched_s, oracle = _timed(fn, no_batch=True, repeats=repeats)
    return WallclockCase(
        name=name,
        description=description,
        batched_s=round(batched_s, 4),
        unbatched_s=round(unbatched_s, 4),
        speedup=round(unbatched_s / batched_s, 2) if batched_s > 0 else float("inf"),
        virtual_identical=virtual_eq(batched, oracle) and virtual_eq(batched, novector),
        stats_identical=stats_eq(batched, oracle) and stats_eq(batched, novector),
        novector_s=round(novector_s, 4),
        vector_speedup=round(novector_s / batched_s, 2) if batched_s > 0 else float("inf"),
    )


def _procs_case(name, description, fn_engine, *,
                virtual_eq, stats_eq, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    """Time ``fn_engine(None)`` (threaded) against ``fn_engine("process")``.

    Both engines get one untimed warmup pass (imports, worker-pool
    spawn / fork machinery, numpy first-touch), then best-of-repeats
    timings.  The bit-identity comparison rides the existing
    ``virtual_identical``/``stats_identical`` gate, so a divergence
    fails the CLI the same way a broken batching invariant does.
    """
    def best_of(engine):
        fn_engine(engine)  # warmup
        best = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = fn_engine(engine)
            best = min(best, time.perf_counter() - t0)
        return best, result

    threaded_s, threaded = best_of(None)
    procs_s, procs = best_of("process")
    same_virtual = virtual_eq(threaded, procs)
    same_stats = stats_eq(threaded, procs)
    return WallclockCase(
        name=name,
        description=description,
        batched_s=round(threaded_s, 4),
        unbatched_s=0.0,
        speedup=0.0,
        virtual_identical=same_virtual,
        stats_identical=same_stats,
        procs_s=round(procs_s, 4),
        procs_speedup=round(threaded_s / procs_s, 2) if procs_s > 0 else float("inf"),
        procs_identical=same_virtual and same_stats,
    )


# ---------------------------------------------------------------------------
# Case 1: the Section IV-C naive 50x40x25 section assignment
# ---------------------------------------------------------------------------


def _section_put_fingerprints(
    shape: tuple[int, ...],
    key: tuple[slice, ...],
    config: CafConfig,
    machine: str = "stampede",
    dtype=np.float32,
    iters: int = 1,
):
    """One inter-node pair; image 1 assigns ``a[key]`` on its partner
    ``iters`` times (as a figure sweep would).

    Returns per-image ``(clock_now, stats, checksum)`` fingerprints.
    """
    num_pes = pair_world_size(1)
    nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    heap = max(1 << 22, 2 * nbytes + (1 << 18))

    def kernel():
        ctx = current()
        a = caf.coarray(shape, dtype)
        a[...] = 0
        caf.sync_all()
        partner = pair_partner(ctx.pe, 1)
        if partner is not None:
            for _ in range(iters):
                a.on(partner + 1)[key] = 7
        caf.sync_all()
        from repro.caf.runtime import current_runtime

        stats = {
            k: v
            for k, v in current_runtime().my_stats.items()
            if not k.startswith("plan_cache")
        }
        return ctx.clock.now, stats, float(a.local.sum())

    return caf.launch(kernel, num_pes, machine, heap_bytes=heap, **config.launch_kwargs())


def naive_section_case(quick: bool = False, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    """The paper's 50,000-call example (scaled down when ``quick``).

    Both sizes run 10 assignments so the measurement is dominated by the
    data plane, not by spawning the 17 PE threads.
    """
    if quick:
        shape, key, calls = (20, 16, 20), np.s_[0:20:2, 0:16:2, 0:20:4], 10 * 8 * 5
    else:
        shape, key, calls = (100, 80, 100), np.s_[0:100:2, 0:80:2, 0:100:4], 50 * 40 * 25
    iters = 10
    counts = "x".join(str(len(range(*s.indices(d)))) for s, d in zip(key, shape))
    fn = lambda: _section_put_fingerprints(shape, key, UHCAF_CRAY_SHMEM_NAIVE, iters=iters)
    return _case(
        f"naive-{counts}",
        f"3-D section {counts} under the naive policy: {calls} logical puts "
        f"per assignment x {iters} assignments (paper Section IV-C)",
        fn,
        virtual_eq=lambda a, b: all(x[0] == y[0] for x, y in zip(a, b)),
        stats_eq=lambda a, b: all(x[1] == y[1] and x[2] == y[2] for x, y in zip(a, b)),
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Case 2: the Figs 6/7 2-D strided sweep under the 2dim translation
# ---------------------------------------------------------------------------


def strided_2dim_sweep_case(quick: bool = False, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    strides = (2, 16) if quick else (2, 16, 128)
    rows, cols = (32, 128) if quick else (128, 1024)
    iters = 2 if quick else 5

    def fn():
        return [
            microbench.caf_strided_put_bandwidth(
                "stampede", UHCAF_CRAY_SHMEM_2DIM, s, iters=iters, rows=rows, cols=cols
            )
            for s in strides
        ]

    return _case(
        "2dim-sweep",
        f"2-D strided puts (rows={rows}, cols={cols}) over strides {strides} "
        "with the 2dim translation (Figs 6/7)",
        fn,
        virtual_eq=lambda a, b: a == b,  # bandwidths derive from virtual time
        stats_eq=lambda a, b: True,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Case 3: a quick Himeno run
# ---------------------------------------------------------------------------


def himeno_case(quick: bool = False, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    grid = (17, 17, 17) if quick else (33, 33, 65)
    iters = 2 if quick else 4

    def fn():
        return himeno_caf(
            machine="stampede",
            config=UHCAF_CRAY_SHMEM_2DIM,
            num_images=4,
            grid=grid,
            iterations=iters,
        )

    return _case(
        "himeno-quick",
        f"Himeno {grid[0]}x{grid[1]}x{grid[2]}, 4 images, {iters} iterations "
        "(halo-exchange cadence)",
        fn,
        virtual_eq=lambda a, b: a.elapsed_us == b.elapsed_us and a.gosa == b.gosa,
        stats_eq=lambda a, b: a.mflops == b.mflops,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Case 4: the Fig 8 lock microbenchmark (remote-atomic path)
# ---------------------------------------------------------------------------


def locks_case(quick: bool = False, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    """Contended-lock wall-clock cost (Fig 8 shape).

    Every image does identical work on the one shared lock, so the max
    elapsed virtual time is invariant under the (scheduler-dependent)
    MCS queue order — safe to compare bitwise across engines.
    """
    images = 4 if quick else 8
    acquires = 64 if quick else 128

    def fn():
        return microbench.lock_contention_time(
            "stampede", UHCAF_CRAY_SHMEM, images, acquires=acquires
        )

    return _case(
        "locks",
        f"MCS lock contention, {images} images x {acquires} acquires "
        "(Fig 8 shape); scalar atomics only, no vectorizable transfers, "
        "so vector_speedup is a noise-floor indicator (~1.0)",
        fn,
        virtual_eq=lambda a, b: a == b,  # elapsed virtual microseconds
        stats_eq=lambda a, b: True,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Case 5: the Fig 9 DHT insert/update loop
# ---------------------------------------------------------------------------


def dht_case(quick: bool = False, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    """DHT update-loop wall-clock cost (Fig 9 shape).

    Runs in ``single_writer`` mode — same lock/atomic/probe code path
    against a table spread over all images, but one image issues every
    timed operation in program order, so elapsed virtual time is
    independent of thread scheduling and can be compared bitwise
    across engines (concurrent random updates resolve contention in
    wall-clock arrival order, which differs run to run).
    """
    images = 4 if quick else 8
    updates = 192 if quick else 512
    # Size the table for a <=0.5 load factor: with the default 64
    # slots/image, the full case's 512 updates equal the table's total
    # capacity and some image's bucket must overflow (DhtFullError).
    slots = 128

    def fn():
        return dht_benchmark(
            "stampede", UHCAF_CRAY_SHMEM, images,
            updates_per_image=updates, slots_per_image=slots,
            single_writer=True,
        )

    return _case(
        "dht",
        f"DHT, {images} images, {updates} single-writer random "
        "inserts/updates (Fig 9 shape); scalar puts/atomics only, no "
        "vectorizable transfers, so vector_speedup is a noise-floor "
        "indicator (~1.0)",
        fn,
        virtual_eq=lambda a, b: a == b,  # elapsed virtual microseconds
        stats_eq=lambda a, b: True,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Cases 6/7: threaded vs engine="process" (the ``procs`` column)
# ---------------------------------------------------------------------------


def _ring_section_fingerprints(
    shape: tuple[int, ...],
    key: tuple[slice, ...],
    config: CafConfig,
    engine=None,
    num_images: int = 8,
    machine: str = "stampede",
    dtype=np.float32,
    iters: int = 1,
):
    """Every image assigns ``a[key]`` on its ring neighbour ``iters``
    times — all PEs drive the data plane simultaneously, the shape
    where the process engine's true parallelism shows.  ``num_images``
    stays within one node (intra-node transfers don't queue on the
    NIC timelines), so virtual times are schedule-independent and safe
    to compare bitwise across engines.
    """
    nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    heap = max(1 << 22, 2 * nbytes + (1 << 18))

    def kernel():
        ctx = current()
        a = caf.coarray(shape, dtype)
        a[...] = 0
        caf.sync_all()
        partner = caf.this_image() % caf.num_images() + 1
        for _ in range(iters):
            a.on(partner)[key] = 7
        caf.sync_all()
        from repro.caf.runtime import current_runtime

        stats = {
            k: v
            for k, v in current_runtime().my_stats.items()
            if not k.startswith("plan_cache")
        }
        return ctx.clock.now, stats, float(a.local.sum())

    return caf.launch(
        kernel, num_images, machine, heap_bytes=heap, engine=engine,
        **config.launch_kwargs(),
    )


def naive_procs_case(quick: bool = False, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    """Ring section puts at 8 PEs, threaded vs ``engine="process"``."""
    if quick:
        shape, key = (20, 16, 20), np.s_[0:20:2, 0:16:2, 0:20:4]
        iters = 4
    else:
        shape, key = (100, 80, 100), np.s_[0:100:2, 0:80:2, 0:100:4]
        iters = 10
    counts = "x".join(str(len(range(*s.indices(d)))) for s, d in zip(key, shape))
    fn = lambda engine: _ring_section_fingerprints(
        shape, key, UHCAF_CRAY_SHMEM_NAIVE, engine=engine, iters=iters
    )
    return _procs_case(
        "naive-procs",
        f"3-D section {counts} ring puts under the naive policy, 8 images "
        f"x {iters} assignments each: threaded vs engine='process'",
        fn,
        virtual_eq=lambda a, b: all(x[0] == y[0] for x, y in zip(a, b)),
        stats_eq=lambda a, b: all(x[1] == y[1] and x[2] == y[2] for x, y in zip(a, b)),
        repeats=repeats,
    )


def himeno_procs_case(quick: bool = False, repeats: int = DEFAULT_REPEATS) -> WallclockCase:
    """Himeno at 8 images, threaded vs ``engine="process"``."""
    grid = (17, 17, 17) if quick else (33, 33, 65)
    iters = 2 if quick else 4

    def fn(engine):
        return himeno_caf(
            machine="stampede",
            config=UHCAF_CRAY_SHMEM_2DIM,
            num_images=8,
            grid=grid,
            iterations=iters,
            engine=engine,
        )

    return _procs_case(
        "himeno-procs",
        f"Himeno {grid[0]}x{grid[1]}x{grid[2]}, 8 images, {iters} iterations: "
        "threaded vs engine='process'",
        fn,
        virtual_eq=lambda a, b: a.elapsed_us == b.elapsed_us and a.gosa == b.gosa,
        stats_eq=lambda a, b: a.mflops == b.mflops,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Suite driver
# ---------------------------------------------------------------------------

CASES = {
    "naive": naive_section_case,
    "2dim": strided_2dim_sweep_case,
    "himeno": himeno_case,
    "locks": locks_case,
    "dht": dht_case,
    "naive-procs": naive_procs_case,
    "himeno-procs": himeno_procs_case,
}


def run_suite(quick: bool = False, cases=None,
              repeats: int = DEFAULT_REPEATS) -> list[WallclockCase]:
    names = list(CASES) if cases is None else list(cases)
    return [CASES[n](quick=quick, repeats=repeats) for n in names]


def write_json(results: list[WallclockCase], path: str | Path) -> Path:
    path = Path(path)
    doc: dict = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    # Replace our section, preserve others (repro.bench.scale merges a
    # "scale" section into the same file).
    doc.update(
        benchmark="wallclock",
        generated_by="python -m repro.bench.wallclock",
        # Wall-clock context for the procs column: the process engine
        # cannot beat threaded on a single-core host, and the CI gate
        # only makes sense where cores exist.
        host_cores=os.cpu_count(),
        cases=[asdict(c) for c in results],
    )
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def render(results: list[WallclockCase]) -> str:
    lines = [
        f"{'case':<18} {'fast (s)':>10} {'novector (s)':>13} {'unbatched (s)':>14} "
        f"{'speedup':>8} {'vs novec':>9} {'procs (s)':>10} {'procs':>7}  invariant"
    ]
    for c in results:
        ok = "yes" if (c.virtual_identical and c.stats_identical) else "NO"
        procs_s = f"{c.procs_s:>10.4f}" if c.procs_s else f"{'-':>10}"
        procs_x = f"{c.procs_speedup:>6.2f}x" if c.procs_s else f"{'-':>7}"
        lines.append(
            f"{c.name:<18} {c.batched_s:>10.4f} {c.novector_s:>13.4f} "
            f"{c.unbatched_s:>14.4f} {c.speedup:>7.2f}x {c.vector_speedup:>8.2f}x "
            f"{procs_s} {procs_x}  {ok}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.wallclock",
        description=(
            "Wall-clock timings of the vectorized RMA engine vs "
            "REPRO_NO_VECTOR=1 and REPRO_NO_BATCH=1."
        ),
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument(
        "--out", default="BENCH_wallclock.json", help="output JSON path"
    )
    parser.add_argument(
        "--cases", nargs="*", choices=sorted(CASES), help="subset of cases to run"
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="wall-clock repeats per mode (minimum is reported)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) if any batching case's speedup is below X",
    )
    parser.add_argument(
        "--min-procs-speedup", type=float, default=None, metavar="X",
        help=(
            "fail (exit 1) if any *-procs case's threaded-vs-process "
            "speedup is below X (only meaningful on multi-core hosts)"
        ),
    )
    args = parser.parse_args(argv)
    results = run_suite(quick=args.quick, cases=args.cases, repeats=args.repeats)
    print(render(results))
    out = write_json(results, args.out)
    print(f"\nwrote {out}")
    bad = [c.name for c in results if not (c.virtual_identical and c.stats_identical)]
    if bad:
        print(f"ERROR: virtual-time invariance broken in: {bad}", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        # The *-procs cases don't run the per-call oracle (unbatched_s
        # stays 0); they are gated by --min-procs-speedup instead.
        slow = [
            c.name for c in results
            if c.unbatched_s > 0 and c.speedup < args.min_speedup
        ]
        if slow:
            print(
                f"ERROR: speedup below {args.min_speedup} in: {slow}",
                file=sys.stderr,
            )
            return 1
    if args.min_procs_speedup is not None:
        slow = [
            c.name for c in results
            if c.procs_s > 0 and c.procs_speedup < args.min_procs_speedup
        ]
        if slow:
            print(
                f"ERROR: procs speedup below {args.min_procs_speedup} in: "
                f"{slow} (host_cores={os.cpu_count()})",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
