"""The CAF Himeno benchmark (paper Section V-D, Fig 10).

Himeno measures an incompressible-fluid pressure solve: Jacobi
iterations of a 19-point stencil for Poisson's equation, reporting
MFLOPS (34 floating-point operations per interior cell per iteration,
the benchmark's official count).

The CAF version decomposes the grid along the second axis (``j``), so
each halo plane ``p[:, j, :]`` is a *matrix-oriented* strided section:
many contiguous pencils of length ``nz`` separated by a row stride —
exactly the access pattern of paper Section V-D, where one ``putmem``
per contiguous pencil (the ``matrix``/naive decomposition) beats
strided ``iput`` lines and the ``2dim`` optimization does not help.

Compute time is charged to the virtual clock from a per-machine
achieved-MFLOPS figure (Jacobi stencils run far below peak; values are
documented below), so the MFLOPS curve reflects the compute/halo
balance the way the paper's does: below one node (<= 16 images) the
backends tie, past it the inter-node halo exchange separates them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import caf
from repro.bench.harness import CafConfig
from repro.runtime.context import current

#: Official Himeno flop count per interior cell per iteration.
FLOPS_PER_CELL = 34

#: Achieved per-core MFLOPS on the Jacobi kernel (memory-bound; far
#: below peak).  Sandy Bridge ~1400, Opteron (Titan) ~900.
CPU_MFLOPS = {
    "Stampede": 1400.0,
    "Cray XC30": 1400.0,
    "Titan (OLCF)": 900.0,
}

#: Himeno's named grid sizes (whole-problem, interior + boundary).
GRID_SIZES = {
    "XS": (32, 32, 64),
    "S": (64, 64, 128),
    "M": (128, 128, 256),
}


@dataclass(frozen=True, slots=True)
class HimenoResult:
    mflops: float
    gosa: float
    iterations: int
    elapsed_us: float


@dataclass(frozen=True, slots=True)
class HimenoCoefficients:
    """The benchmark's stencil coefficient fields, as scalars.

    Himeno carries arrays a(4), b(3), c(3), plus wrk1 and bnd; the
    official initialization makes them spatially constant — a =
    (1, 1, 1, 1/6), b = 0, c = 1, wrk1 = 0, bnd = 1 — which reduces the
    19-point stencil to the 6-neighbour sum, but the full formula (and
    its 34 flops/cell count) is what gets evaluated here so non-standard
    coefficients exercise every term.
    """

    a0: float = 1.0
    a1: float = 1.0
    a2: float = 1.0
    a3: float = 1.0 / 6.0
    b0: float = 0.0
    b1: float = 0.0
    b2: float = 0.0
    c0: float = 1.0
    c1: float = 1.0
    c2: float = 1.0
    wrk1: float = 0.0
    bnd: float = 1.0


STANDARD_COEFFICIENTS = HimenoCoefficients()


def _jacobi_sweep(
    p: np.ndarray, omega: float, coef: HimenoCoefficients = STANDARD_COEFFICIENTS
) -> tuple[np.ndarray, float]:
    """One Jacobi sweep over the interior of ``p``; returns the new
    interior and the squared-residual sum (gosa contribution).

    The full Himeno 19-point stencil:

        s0 = a0*E + a1*N + a2*U
           + b0*(EN - ES - WN + WS) + b1*(NU - SU - ND + SD)
           + b2*(EU - WU - ED + WD)
           + c0*W + c1*S + c2*D + wrk1
        ss = (s0*a3 - p) * bnd
    """
    c = p[1:-1, 1:-1, 1:-1]
    s0 = (
        coef.a0 * p[2:, 1:-1, 1:-1]
        + coef.a1 * p[1:-1, 2:, 1:-1]
        + coef.a2 * p[1:-1, 1:-1, 2:]
        + coef.b0
        * (
            p[2:, 2:, 1:-1]
            - p[2:, :-2, 1:-1]
            - p[:-2, 2:, 1:-1]
            + p[:-2, :-2, 1:-1]
        )
        + coef.b1
        * (
            p[1:-1, 2:, 2:]
            - p[1:-1, :-2, 2:]
            - p[1:-1, 2:, :-2]
            + p[1:-1, :-2, :-2]
        )
        + coef.b2
        * (
            p[2:, 1:-1, 2:]
            - p[:-2, 1:-1, 2:]
            - p[2:, 1:-1, :-2]
            + p[:-2, 1:-1, :-2]
        )
        + coef.c0 * p[:-2, 1:-1, 1:-1]
        + coef.c1 * p[1:-1, :-2, 1:-1]
        + coef.c2 * p[1:-1, 1:-1, :-2]
        + coef.wrk1
    )
    ss = (s0 * coef.a3 - c) * coef.bnd
    gosa = float(np.sum(ss * ss))
    return c + omega * ss, gosa


def himeno_serial(
    grid: tuple[int, int, int],
    iterations: int,
    omega: float = 0.8,
    coef: HimenoCoefficients = STANDARD_COEFFICIENTS,
) -> tuple[np.ndarray, float]:
    """Reference solver (no decomposition); returns (pressure, last gosa)."""
    nx, ny, nz = grid
    p = _initial_pressure(nx, ny, nz)
    gosa = 0.0
    for _ in range(iterations):
        new, gosa = _jacobi_sweep(p, omega, coef)
        p[1:-1, 1:-1, 1:-1] = new
    return p, gosa


def _initial_pressure(nx: int, ny: int, nz: int) -> np.ndarray:
    """Himeno's init: p = (k / (nz-1))^2 along the third axis."""
    k = np.arange(nz, dtype=np.float64)
    plane = (k / (nz - 1)) ** 2
    return np.broadcast_to(plane, (nx, ny, nz)).copy()


def _split(extent: int, parts: int) -> list[tuple[int, int]]:
    """Near-even contiguous split of [0, extent) into ``parts`` ranges."""
    base, rem = divmod(extent, parts)
    out = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < rem else 0)
        out.append((lo, hi))
        lo = hi
    return out


def himeno_caf(
    machine: str,
    config: CafConfig,
    num_images: int,
    grid: tuple[int, int, int] | str = "XS",
    iterations: int = 4,
    omega: float = 0.8,
    strided_override: str | None = None,
    coef: HimenoCoefficients = STANDARD_COEFFICIENTS,
    sanitize: bool = False,
    faults=None,
    watchdog_s: float | None = None,
    scheduler=None,
    engine=None,
) -> HimenoResult:
    """Run the CAF Himeno and report MFLOPS (one Fig 10 cell).

    The grid is decomposed along axis 1 (``j``); each image holds its
    slab plus one halo plane per side and exchanges halos with
    co-indexed plane puts every iteration, then all images co_sum the
    residual (the benchmark's global ``gosa``).
    """
    if isinstance(grid, str):
        grid = GRID_SIZES[grid]
    nx, ny, nz = grid
    if num_images > ny - 2:
        raise ValueError(f"too many images ({num_images}) for ny={ny}")
    ranges = _split(ny - 2, num_images)  # interior j-planes per image
    try:
        core_mflops = CPU_MFLOPS[
            {"stampede": "Stampede", "cray-xc30": "Cray XC30", "titan": "Titan (OLCF)"}[
                machine.lower()
            ]
        ]
    except KeyError:
        raise KeyError(f"no CPU model for machine {machine!r}") from None

    def kernel() -> HimenoResult:
        ctx = current()
        me = caf.this_image()
        lo, hi = ranges[me - 1]
        local_j = hi - lo  # interior planes owned
        # Coarrays are symmetric: every image allocates the *largest*
        # slab (max planes + 2 halos) and uses its own prefix.
        max_j = max(h - l for l, h in ranges)
        slab = caf.coarray((nx, max_j + 2, nz), np.float64)
        full = _initial_pressure(nx, ny, nz)
        slab.local[:, : local_j + 2, :] = full[:, lo : hi + 2, :]
        caf.sync_all()

        interior_cells = (nx - 2) * local_j * (nz - 2)
        compute_us = interior_cells * FLOPS_PER_CELL / core_mflops
        left = me - 1 if me > 1 else None
        right = me + 1 if me < num_images else None
        t0 = ctx.clock.now
        gosa_total = 0.0
        for _ in range(iterations):
            p = slab.local[:, : local_j + 2, :]  # this image's used planes
            new, gosa = _jacobi_sweep(p, omega, coef)
            p[1:-1, 1:-1, 1:-1] = new
            ctx.clock.advance(compute_us)
            # Global residual, as the benchmark reports it.  co_sum also
            # synchronizes, so no image's halo puts below can land in a
            # plane a neighbour is still reading.
            g = np.array([gosa])
            caf.co_sum(g)
            gosa_total = float(g[0])
            # Halo exchange: my first/last interior planes become the
            # neighbours' halo planes (matrix-oriented strided puts).
            if left is not None:
                slab.on(left).put(
                    (slice(None), local_j_of(ranges, left) + 1, slice(None)),
                    p[:, 1, :],
                    algorithm=strided_override,
                )
            if right is not None:
                slab.on(right).put(
                    (slice(None), 0, slice(None)),
                    p[:, local_j, :],
                    algorithm=strided_override,
                )
            caf.sync_all()
        elapsed = ctx.clock.now - t0
        cells = (nx - 2) * (ny - 2) * (nz - 2)
        mflops = cells * FLOPS_PER_CELL * iterations / max(elapsed, 1e-9)
        return HimenoResult(
            mflops=mflops, gosa=gosa_total, iterations=iterations, elapsed_us=elapsed
        )

    def local_j_of(rs: list[tuple[int, int]], image: int) -> int:
        lo_, hi_ = rs[image - 1]
        return hi_ - lo_

    results = caf.launch(
        kernel,
        num_images,
        machine,
        heap_bytes=max(
            1 << 22,
            # slab coarray (max planes + halos) + scratch + managed heap
            3 * nx * (-(-(ny - 2) // num_images) + 2) * nz * 8 + (1 << 20),
        ),
        sanitize=sanitize,
        faults=faults,
        watchdog_s=watchdog_s,
        scheduler=scheduler,
        engine=engine,
        **config.launch_kwargs(),
    )
    # All images report the same global MFLOPS figure modulo clock skew;
    # take the slowest (the benchmark's wall time).
    slowest = min(results, key=lambda r: r.mflops)
    return slowest
