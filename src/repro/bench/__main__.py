"""Command-line figure runner: ``python -m repro.bench [target ...]``.

Targets: ``tables``, ``fig2`` ... ``fig10``, ``wallclock``,
``kvservice``, or ``all``.  Add ``--full`` for the paper-scale sweeps
(minutes of wall time) instead of the quick CI-sized ones.  Every
target reports the host wall-clock seconds it took alongside its
virtual-time results, so perf changes are measurable from one run.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import figures

TARGETS = (
    "tables", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
    "wallclock", "kvservice",
)


def _render(result) -> None:
    items = result if isinstance(result, list) else [result]
    for item in items:
        print(item.render() if hasattr(item, "render") else item)
        print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["all"],
        help=f"any of {', '.join(TARGETS)}, or 'all' (default)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweeps instead of quick ones (much slower)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="write a markdown reproduction report to FILE instead of printing",
    )
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if "all" in targets:
        targets = list(TARGETS)
    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        parser.error(f"unknown target(s) {unknown}; choose from {TARGETS}")

    quick = not args.full
    if args.report:
        from repro.bench.report import generate_report

        text = generate_report(targets, quick=quick)
        from pathlib import Path

        Path(args.report).write_text(text)
        print(f"wrote {args.report} ({len(text.splitlines())} lines)")
        return 0
    for target in targets:
        print(f"=== {target} " + "=" * (68 - len(target)))
        t0 = time.perf_counter()
        if target == "tables":
            _render(figures.tables())
        elif target == "wallclock":
            from repro.bench import wallclock

            results = wallclock.run_suite(quick=quick)
            print(wallclock.render(results))
            print(f"\nwrote {wallclock.write_json(results, 'BENCH_wallclock.json')}")
            print()
        elif target == "kvservice":
            from repro.bench import kvservice

            kvservice.main(["--quick"] if quick else [])
            print()
        else:
            _render(getattr(figures, target)(quick=quick))
        print(f"--- {target}: {time.perf_counter() - t0:.2f}s wall-clock")
    return 0


if __name__ == "__main__":
    sys.exit(main())
