"""Concurrent-history recording and linearizability checking for the
KV service workload (`repro.bench.kvservice`).

The recorder side is deliberately tiny: each PE appends one
:class:`HistRecord` per completed operation — operation kind, key, the
value written or observed, and the virtual-time invocation/response
interval.  After the job completes the per-PE histories are merged and
handed to :func:`check_linearizable`.

The checker is a Wing–Gong style search specialised to a key-value map
with per-key register semantics: operations on distinct keys commute,
so the global history is linearizable iff every per-key sub-history is
(the per-key projections inherit the real-time precedence order, and a
per-key witness order interleaves into a global one precisely because
cross-key operations never constrain each other's legal states).  Each
per-key search is a memoised DFS over (set of linearised ops, current
register value): pick any operation that is *minimal* — no other
pending operation's response strictly precedes its invocation — apply
it (a put sets the register, a get must observe it), and recurse.
Histories here are small (tens of ops per key), so the bounded search
is exact, not heuristic.

A scan in the service workload is a non-atomic multi-get and is
recorded as its individual ``get`` records — the service does not
promise snapshot isolation across keys, only per-key linearizability.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class HistRecord:
    """One completed operation in a PE's history.

    ``value`` is the value written (put) or observed (get; ``None``
    means the key was observed absent).  ``invoke``/``response`` are
    virtual times; two operations are concurrent unless one's response
    strictly precedes the other's invocation.  ``hit`` marks a get
    served from the initiator's hot-key cache — the checker treats it
    identically (a cache hit's version probe is its linearization
    point, so a stale-beyond-invalidation hit shows up as an
    unlinearizable read)."""

    pe: int
    op: str  # "get" | "put"
    key: int
    value: int | None
    invoke: float
    response: float
    hit: bool = False


class Recorder:
    """Per-PE history recorder; append-only, merged after the job."""

    def __init__(self, pe: int) -> None:
        self.pe = pe
        self.records: list[HistRecord] = []

    def record(self, op: str, key: int, value: int | None,
               invoke: float, response: float, hit: bool = False) -> None:
        if response < invoke:
            raise ValueError(f"response {response} precedes invoke {invoke}")
        self.records.append(
            HistRecord(self.pe, op, int(key), value, invoke, response, hit)
        )


def merge(histories) -> list[HistRecord]:
    """Flatten per-PE record lists (e.g. ``caf.launch`` results) into
    one history, ordered by invocation time for readability (the
    checker only uses the intervals, not the list order)."""
    out: list[HistRecord] = []
    for h in histories:
        if h:
            out.extend(h)
    return sorted(out, key=lambda r: (r.invoke, r.response, r.pe))


@dataclass
class LinReport:
    """Outcome of a linearizability check.

    ``ok`` is the verdict; on failure ``bad_key`` names the first key
    whose sub-history admits no linearisation and ``bad_ops`` holds its
    projected records.  On success ``witness`` maps each checked key to
    one legal linearisation order (indices into the key's projection)."""

    ok: bool
    checked_keys: int = 0
    total_ops: int = 0
    bad_key: int | None = None
    bad_ops: list[HistRecord] = field(default_factory=list)
    witness: dict[int, list[int]] = field(default_factory=dict)


def _check_key(ops: list[HistRecord]) -> list[int] | None:
    """Wing–Gong search for one key's sub-history.  Returns a witness
    linearisation (list of indices into ``ops``) or None."""
    n = len(ops)
    if n == 0:
        return []
    full = (1 << n) - 1
    dead: set[tuple[int, int | None]] = set()
    order: list[int] = []

    def dfs(done: int, state: int | None) -> bool:
        if done == full:
            return True
        if (done, state) in dead:
            return False
        for i in range(n):
            if done >> i & 1:
                continue
            inv = ops[i].invoke
            # Minimality: no pending op strictly precedes op i.
            if any(
                not (done >> j & 1) and ops[j].response < inv
                for j in range(n)
            ):
                continue
            if ops[i].op == "get":
                if ops[i].value != state:
                    continue
                nxt_state = state
            else:
                nxt_state = ops[i].value
            order.append(i)
            if dfs(done | (1 << i), nxt_state):
                return True
            order.pop()
        dead.add((done, state))
        return False

    return order if dfs(0, None) else None


def check_linearizable(records: list[HistRecord]) -> LinReport:
    """Check a merged history for per-key linearizability.

    Keys are checked independently (register semantics; distinct keys
    commute).  Returns a :class:`LinReport`; ``report.ok`` is the gate
    the test corpus asserts on."""
    by_key: dict[int, list[HistRecord]] = defaultdict(list)
    for r in records:
        by_key[r.key].append(r)
    report = LinReport(ok=True, checked_keys=len(by_key), total_ops=len(records))
    for key, ops in sorted(by_key.items()):
        ops.sort(key=lambda r: (r.invoke, r.response, r.pe))
        witness = _check_key(ops)
        if witness is None:
            report.ok = False
            report.bad_key = key
            report.bad_ops = ops
            return report
        report.witness[key] = witness
    return report
