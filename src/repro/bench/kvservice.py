"""YCSB-style KV service workload on the replicated DHT.

The source paper measures the Fig-9 DHT closed-loop: every image issues
its next update the instant the previous one completes.  Production KV
services are open-loop — requests arrive on their own schedule (here a
seeded Poisson process priced in virtual time), key popularity is
Zipf-skewed, and the mix of reads/writes/scans is a workload parameter.
This module builds that service on :class:`ReplicatedHashTable`:

* **Traffic generator** — :func:`generate_stream` is a pure function of
  ``(spec, pe)``: Zipf-skewed key ranks via inverse-CDF sampling, the
  read/write/scan mix honoured *exactly* over the stream
  (largest-remainder apportionment + a seeded shuffle), and Poisson
  arrivals as an exponential inter-arrival cumsum.  Same seed ⇒ the
  identical op stream on every engine.
* **Hot-key cache** — each initiator keeps a small map of
  ``key → (value, bucket-version token)``.  A hit revalidates with one
  remote atomic read (:meth:`ReplicatedHashTable.probe_version`) — the
  cache-coherence rule is *version match or miss*, and the initiator's
  own writes invalidate its entry.  On the skewed read-heavy mix this
  keeps the service ahead of the arrival process, which is what pulls
  the p99 down (open-loop latency includes queueing delay).
* **Live resharding** — mid-stream, image 1 grows the bucket ring
  (:meth:`grow_ring`) while every image keeps serving its stream;
  images drain re-homed entries opportunistically when they observe the
  new epoch.  The gate: zero lost acknowledged writes across the move.
* **History recording** — with ``record=True`` every op lands in a
  :class:`repro.bench.kvhistory.Recorder`; the linearizability corpus
  (``tests/integration/test_kv_linearizable.py``) replays these under
  schedule exploration and crash injection.

``python -m repro.bench.kvservice`` runs the percentile grid (two Zipf
skews × two mixes), the cache-on/off p99 comparison, the
reshard-under-load gate, and a threaded-vs-event engine gate (a
single-initiator step-program variant whose digests must agree
bitwise), then merges a ``kvservice`` section into
``BENCH_wallclock.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro import caf
from repro.bench.dht import ReplicatedHashTable, _mix
from repro.bench.kvhistory import Recorder
from repro.runtime.context import current

#: Default symmetric heap for service runs.
HEAP_BYTES = 1 << 19

_KINDS = ("read", "write", "scan")

_GATE_SLOTS = 64


# ---------------------------------------------------------------------------
# Traffic generator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One service workload configuration (shared by every initiator;
    the per-PE streams differ only through the PE's seed stream)."""

    ops: int = 128
    #: Distinct key ranks per initiator's popularity distribution.
    keyspace: int = 48
    #: Zipf exponent: rank r is drawn with weight 1/r**zipf_s.
    zipf_s: float = 1.1
    read_frac: float = 0.95
    write_frac: float = 0.05
    scan_frac: float = 0.0
    #: Consecutive ranks fetched by one scan (a non-atomic multi-get).
    scan_len: int = 4
    #: Mean of the exponential inter-arrival distribution (virtual µs).
    mean_interarrival_us: float = 300.0
    seed: int = 2015
    #: Offset each PE's keys into a disjoint range — required by the
    #: acked-ledger verification (and the reshard/chaos gates).
    disjoint: bool = False

    def fractions(self) -> tuple[float, float, float]:
        fr = (self.read_frac, self.write_frac, self.scan_frac)
        if any(f < 0 for f in fr) or abs(sum(fr) - 1.0) > 1e-9:
            raise ValueError(f"mix fractions must be >= 0 and sum to 1, got {fr}")
        return fr


@dataclass(frozen=True)
class KVOp:
    """One generated request: ``arrival`` is relative virtual µs since
    the stream epoch; ``rank`` is the popularity rank (0 = hottest) and
    ``key`` the table key it maps to."""

    kind: str  # "read" | "write" | "scan"
    rank: int
    key: int
    arrival: float


def kind_counts(spec: WorkloadSpec) -> tuple[int, int, int]:
    """Exact per-kind op counts: largest-remainder apportionment of the
    mix fractions over ``spec.ops`` (ties broken toward lower kind
    index), so the generated mix matches the spec exactly, not just in
    expectation."""
    fr = spec.fractions()
    raw = [f * spec.ops for f in fr]
    base = [math.floor(x) for x in raw]
    short = spec.ops - sum(base)
    order = sorted(range(3), key=lambda i: (-(raw[i] - base[i]), i))
    for i in order[:short]:
        base[i] += 1
    return tuple(base)


def zipf_cdf(keyspace: int, s: float) -> np.ndarray:
    """CDF over ranks 1..keyspace with weights 1/r**s."""
    w = 1.0 / np.arange(1, keyspace + 1, dtype=np.float64) ** s
    return np.cumsum(w) / w.sum()


def generate_stream(spec: WorkloadSpec, pe: int) -> list[KVOp]:
    """The PE's op stream — a pure function of ``(spec, pe)``.

    No engine, scheduler, or clock state is consulted, so the same
    seed yields the bit-identical stream under every execution engine
    (a property the test suite asserts by running this inside kernels
    on two engines)."""
    rng = np.random.default_rng([spec.seed, pe])
    counts = kind_counts(spec)
    kinds = np.repeat(np.arange(3), counts)
    kinds = kinds[rng.permutation(spec.ops)]
    cdf = zipf_cdf(spec.keyspace, spec.zipf_s)
    ranks = np.searchsorted(cdf, rng.random(spec.ops), side="right")
    arrivals = np.cumsum(rng.exponential(spec.mean_interarrival_us, spec.ops))
    offset = pe * spec.keyspace if spec.disjoint else 0
    return [
        KVOp(_KINDS[int(k)], int(r), offset + int(r), float(a))
        for k, r, a in zip(kinds, ranks, arrivals)
    ]


def percentiles(latencies) -> dict[str, float]:
    """Nearest-rank p50/p95/p99 (virtual µs)."""
    s = sorted(latencies)
    if not s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def pct(p: float) -> float:
        return round(s[min(len(s) - 1, math.ceil(p / 100 * len(s)) - 1)], 6)

    return {"p50": pct(50), "p95": pct(95), "p99": pct(99)}


# ---------------------------------------------------------------------------
# The service kernel (threaded / cooperative engines)
# ---------------------------------------------------------------------------


def _cached_get(table: ReplicatedHashTable, cache: dict | None, key: int,
                capacity: int, bug_stale: bool) -> tuple[int | None, bool]:
    """One read through the initiator's hot-key cache.

    Coherence rule: a hit must revalidate its bucket-version token with
    one remote atomic read; any mutation of the bucket (a write from
    any image, a reshard migration) bumps the version, so a match
    proves currency.  ``bug_stale=True`` is the seeded negative for the
    linearizability corpus: it serves the cached value *without* the
    probe, which the checker must reject once another image writes."""
    if cache is not None and key in cache:
        value, token = cache[key]
        if bug_stale or table.probe_version(token):
            return value, True
        del cache[key]
    value, token = table.get_versioned(key)
    if cache is not None:
        if token is not None and (key in cache or len(cache) < capacity):
            cache[key] = (value, token)
        else:
            cache.pop(key, None)
    return value, False


def _service_kernel(spec: WorkloadSpec, slots: int, locks: int,
                    ring_images: int | None, cache_capacity: int,
                    grow_to: int | None, grow_at: int | None,
                    record: bool, bug_stale: bool) -> dict:
    """One image's service loop: admit requests open-loop at their
    arrival times, serve against the replicated table, and (when a ring
    is configured) drain re-homed buckets as soon as the grown epoch is
    observed.  Latency of an op is response − arrival: when the service
    falls behind the arrival process the queueing delay is part of the
    number, exactly as a production tail-latency measurement."""
    me = caf.this_image()
    table = ReplicatedHashTable(slots, locks, ring_images=ring_images)
    stream = generate_stream(spec, me)
    rec = Recorder(me) if record else None
    cache: dict | None = {} if cache_capacity > 0 else None
    ctx = current()
    t0 = ctx.clock.now
    lat: list[float] = []
    kinds: list[str] = []
    hits = misses = moved = 0
    drained_epoch = table.ring_epoch()
    for idx, op in enumerate(stream):
        if grow_at is not None and idx == grow_at and me == 1:
            table.grow_ring(grow_to)
        arrival = t0 + op.arrival
        if ctx.clock.now < arrival:
            ctx.clock.advance(arrival - ctx.clock.now)
        invoke = ctx.clock.now
        if op.kind == "write":
            value = (me << 24) | (idx + 1)
            table.put(op.key, value)
            if cache is not None:
                cache.pop(op.key, None)  # write-invalidation of own entry
            if rec is not None:
                rec.record("put", op.key, value, invoke, ctx.clock.now)
        elif op.kind == "read":
            value, hit = _cached_get(table, cache, op.key, cache_capacity,
                                     bug_stale)
            hits += hit
            misses += not hit
            if rec is not None:
                rec.record("get", op.key, value, invoke, ctx.clock.now, hit=hit)
        else:  # scan: an uncached, non-atomic multi-get of consecutive ranks
            base = op.key - op.rank
            for j in range(spec.scan_len):
                k = base + (op.rank + j) % spec.keyspace
                inv_j = ctx.clock.now
                v = table.get(k)
                if rec is not None:
                    rec.record("get", k, v, inv_j, ctx.clock.now)
        lat.append(ctx.clock.now - arrival)
        kinds.append(op.kind)
        if ring_images is not None and table.ring_epoch() > drained_epoch:
            moved += table.reshard_drain()
            drained_epoch = table.ring_epoch()
    if ring_images is not None:
        table.refresh_ring()
        if table.ring_epoch() > drained_epoch:
            moved += table.reshard_drain()
    elapsed = ctx.clock.now - t0
    stat = [0]
    caf.sync_all(stat=stat)
    lost = table.verify_acked_puts() if spec.disjoint else []
    acked_last: dict[int, int] = {}
    for k, v in table.put_acked:
        acked_last[k] = v
    pairs = [(k, table.get(k)) for k in sorted(acked_last)]
    return {
        "lat": lat,
        "kinds": kinds,
        "ops": len(stream),
        "hits": hits,
        "misses": misses,
        "moved": moved,
        "elapsed": elapsed,
        "lost": lost,
        "acked": len(table.put_acked),
        "pairs": pairs,
        "stat": stat[0],
        "failed": list(caf.failed_images()),
        "epoch": table.ring_epoch(),
        "records": rec.records if rec is not None else None,
    }


def run_cell(
    spec: WorkloadSpec,
    *,
    images: int = 4,
    machine: str = "stampede",
    slots: int = 256,
    locks: int = 8,
    ring_images: int | None = None,
    cache_capacity: int = 16,
    grow_to: int | None = None,
    grow_at: int | None = None,
    record: bool = False,
    bug_stale: bool = False,
    engine: str = "vt",
    scheduler: Any = None,
    survivable: bool = False,
    faults: Any = None,
    watchdog_s: float | None = None,
) -> list:
    """Launch one service run; returns the per-image kernel dicts.

    The benchmark grid uses ``engine="vt"`` — cooperative execution
    under :class:`~repro.explore.VirtualTimeOrder`, which always runs
    the PE furthest behind in virtual time.  That is discrete-event
    order for the lock-based service code, so the open-loop latency
    percentiles are both physically meaningful (no phantom queueing
    from causality lifts across PEs with divergent clocks) and
    reproducible bit-for-bit run to run.  ``engine="cooperative"``
    instead takes a seeded random walk (one explored interleaving) and
    ``engine="threaded"`` free-runs."""
    kw: dict[str, Any] = {}
    if scheduler is not None:
        kw["scheduler"] = scheduler
    elif engine == "vt":
        from repro.explore import Scheduler, VirtualTimeOrder

        kw["scheduler"] = Scheduler(VirtualTimeOrder())
    elif engine == "cooperative":
        from repro.explore import RandomWalk, Scheduler

        kw["scheduler"] = Scheduler(RandomWalk(spec.seed))
    elif engine != "threaded":
        kw["engine"] = engine
    if survivable:
        kw["survivable"] = True
    if faults is not None:
        kw["faults"] = faults
    if watchdog_s is not None:
        kw["watchdog_s"] = watchdog_s
    return caf.launch(
        _service_kernel,
        images,
        machine,
        heap_bytes=HEAP_BYTES,
        lock_algorithm="tas",
        args=(spec, slots, locks, ring_images, cache_capacity,
              grow_to, grow_at, record, bug_stale),
        **kw,
    )


def aggregate(results: list, spec: WorkloadSpec) -> dict:
    """Fold per-image kernel dicts into one metrics record."""
    live = [r for r in results if r is not None]
    lat = [v for r in live for v in r["lat"]]
    read_lat = [
        v for r in live for v, k in zip(r["lat"], r["kinds"]) if k == "read"
    ]
    ops = sum(r["ops"] for r in live)
    elapsed = max(r["elapsed"] for r in live)
    hits = sum(r["hits"] for r in live)
    misses = sum(r["misses"] for r in live)
    return {
        "images": len(results),
        "ops": ops,
        "elapsed_us": round(elapsed, 3),
        "throughput_ops_per_s": round(ops / elapsed * 1e6, 1) if elapsed else 0.0,
        "latency_us": percentiles(lat),
        "read_latency_us": percentiles(read_lat),
        "cache_hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        "moved": sum(r["moved"] for r in live),
        "lost": [m for r in live for m in r["lost"]],
        "acked": sum(r["acked"] for r in live),
        "epoch": max(r["epoch"] for r in live),
    }


# ---------------------------------------------------------------------------
# Cross-engine gate: a single-initiator step-program variant
# ---------------------------------------------------------------------------


def _fold(digest: int, *words: int) -> int:
    for w in words:
        digest = _mix((digest ^ (w & 0xFFFFFFFFFFFFFFFF)) & 0xFFFFFFFFFFFFFFFF)
    return digest


def make_kv_step_body(layer, spec: WorkloadSpec):
    """The gate variant of the workload as a step program.

    The event engine runs CPS step programs only, and the full service
    (CAF bucket locks, replication) cannot execute there — so the gate
    runs the *same generated op stream* against a direct-mapped KV
    directory over the shmem layer: owner/slot from the key hash,
    writes are remote atomic sets, reads remote atomic fetches (scans
    fetch ``scan_len`` consecutive ranks).  PE 0 is the only initiator,
    so every timed resource is reserved in program order and the
    threaded and event engines must agree bit-for-bit — on the op
    digest *and* the final virtual clock."""
    from repro.engine.steps import Done, alloc_array_step

    job = layer.job
    n = job.num_pes
    stream = generate_stream(spec, 1)

    def body():
        ctx = current()
        pe = ctx.pe

        def locate(key: int) -> tuple[int, int]:
            h = _mix(key)
            return h % n, (h >> 20) % _GATE_SLOTS

        def run(table):
            if pe != 0:
                return Done((0, round(ctx.clock.now, 6)))
            digest = 0
            t0 = ctx.clock.now
            for idx, op in enumerate(stream):
                arrival = t0 + op.arrival
                if ctx.clock.now < arrival:
                    ctx.clock.advance(arrival - ctx.clock.now)
                if op.kind == "write":
                    owner, slot = locate(op.key)
                    layer.atomic(table, owner, slot, "set", (1 << 24) | (idx + 1))
                    digest = _fold(digest, idx, op.key)
                elif op.kind == "read":
                    owner, slot = locate(op.key)
                    old = layer.atomic(table, owner, slot, "fetch")
                    digest = _fold(digest, idx, op.key, int(old))
                else:
                    base = op.key - op.rank
                    for j in range(spec.scan_len):
                        k = base + (op.rank + j) % spec.keyspace
                        owner, slot = locate(k)
                        old = layer.atomic(table, owner, slot, "fetch")
                        digest = _fold(digest, k, int(old))
            return Done((digest, round(ctx.clock.now, 6)))

        return alloc_array_step(layer, (_GATE_SLOTS,), np.int64, run)

    return body


def engine_gate(spec: WorkloadSpec, *, num_pes: int = 8,
                machine: str = "stampede") -> dict:
    """Run the step-program variant on the threaded and event engines;
    raises :class:`AssertionError` unless the per-PE results (digest +
    final virtual clock) agree exactly."""
    from repro.runtime.launcher import Job
    from repro.shmem import attach as shmem_attach

    outcomes = {}
    for engine in ("threaded", "event"):
        job = Job(num_pes, machine, heap_bytes=HEAP_BYTES, engine=engine)
        layer = shmem_attach(job)
        outcomes[engine] = job.run(make_kv_step_body(layer, spec))
    if outcomes["threaded"] != outcomes["event"]:
        raise AssertionError(
            f"kvservice engine gate: threaded and event disagree: "
            f"{outcomes['threaded']} != {outcomes['event']}"
        )
    digest, final_vt = outcomes["threaded"][0]
    return {
        "pes": num_pes,
        "ops": spec.ops,
        "digest": f"{digest:016x}",
        "final_virtual_us": final_vt,
        "engines": ["threaded", "event"],
        "identical": True,
    }


# ---------------------------------------------------------------------------
# The benchmark suite
# ---------------------------------------------------------------------------

#: The percentile grid: two Zipf skews × two read/write mixes.
GRID_SKEWS = (1.1, 0.3)
GRID_MIXES = (
    ("read_heavy", (0.95, 0.05, 0.0)),
    ("balanced", (0.50, 0.45, 0.05)),
)


def _grid_spec(quick: bool, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        ops=48 if quick else 128,
        keyspace=48,
        mean_interarrival_us=300.0,
        seed=seed,
    )


def run_suite(*, quick: bool = False, seed: int = 2015, images: int = 4,
              machine: str = "stampede", gate: bool = True) -> dict:
    """Run the full kvservice benchmark; returns the JSON section.

    Raises :class:`AssertionError` when a gate fails: cache-on p99 must
    beat cache-off on the skewed read-heavy mix, the reshard run must
    move entries and lose zero acked writes, and the threaded/event
    step variant must agree bitwise."""
    t_start = time.perf_counter()
    base = _grid_spec(quick, seed)
    cells = []
    for skew in GRID_SKEWS:
        for mix_name, (r, w, s) in GRID_MIXES:
            spec = replace(base, zipf_s=skew, read_frac=r, write_frac=w,
                           scan_frac=s)
            agg = aggregate(run_cell(spec, images=images, machine=machine),
                            spec)
            agg.update(zipf_s=skew, mix=mix_name, cache="on")
            cells.append(agg)

    # Cache ablation on the skewed read-heavy mix: the arrival rate is
    # set between the cached and uncached service rates, so the
    # uncached run falls behind and its p99 inflates with queueing
    # delay while the cached run keeps up — the production tail-latency
    # story, measured open-loop.
    hot = replace(base, ops=96, zipf_s=GRID_SKEWS[0], keyspace=16,
                  read_frac=GRID_MIXES[0][1][0],
                  write_frac=GRID_MIXES[0][1][1], scan_frac=0.0,
                  mean_interarrival_us=3.0)
    cached = aggregate(run_cell(hot, images=images, machine=machine), hot)
    uncached = aggregate(
        run_cell(hot, images=images, machine=machine, cache_capacity=0), hot
    )
    cache_cmp = {
        "zipf_s": hot.zipf_s,
        "mix": "read_heavy",
        "cached_p99_us": cached["latency_us"]["p99"],
        "uncached_p99_us": uncached["latency_us"]["p99"],
        "cached_hit_rate": cached["cache_hit_rate"],
        "p99_speedup": round(
            uncached["latency_us"]["p99"] / cached["latency_us"]["p99"], 3
        ) if cached["latency_us"]["p99"] else None,
    }
    if not cached["latency_us"]["p99"] < uncached["latency_us"]["p99"]:
        raise AssertionError(
            f"hot-key cache did not reduce p99 on the skewed read-heavy "
            f"mix: {cache_cmp}"
        )

    # Reshard under load: disjoint keys (exact acked-ledger check),
    # grow the ring mid-stream while all images keep serving.
    reshard_spec = replace(base, disjoint=True, keyspace=32,
                           read_frac=0.5, write_frac=0.5, scan_frac=0.0)
    res = run_cell(reshard_spec, images=images, machine=machine,
                   ring_images=2, grow_to=images,
                   grow_at=max(2, reshard_spec.ops // 3))
    reshard = aggregate(res, reshard_spec)
    reshard.update(ring_images=2, grow_to=images)
    if reshard["lost"]:
        raise AssertionError(
            f"reshard under load lost acked writes: {reshard['lost'][:4]}"
        )
    if not (reshard["moved"] > 0 and reshard["epoch"] == 1):
        raise AssertionError(
            f"reshard did not happen under load: moved={reshard['moved']} "
            f"epoch={reshard['epoch']}"
        )

    section = {
        "images": images,
        "machine": machine,
        "quick": quick,
        "seed": seed,
        "cells": cells,
        "cache_comparison": cache_cmp,
        "reshard": reshard,
        "engine_gate": engine_gate(replace(base, scan_frac=0.05,
                                           read_frac=0.75, write_frac=0.20))
        if gate else None,
        "wall_s": None,
    }
    section["wall_s"] = round(time.perf_counter() - t_start, 3)
    return section


def update_bench_json(path: str | Path, section: dict) -> Path:
    """Merge the ``kvservice`` section into the wallclock JSON in place."""
    path = Path(path)
    doc = json.loads(path.read_text()) if path.exists() else {
        "benchmark": "wallclock", "cases": [],
    }
    doc["kvservice"] = section
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kvservice",
        description="KV service workload: open-loop Zipf traffic with "
                    "hot-key caching and live resharding on the "
                    "replicated DHT.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller streams (CI smoke)")
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--images", type=int, default=4)
    parser.add_argument("--machine", default="stampede")
    parser.add_argument("--out", default="BENCH_wallclock.json",
                        help="wallclock JSON to merge the kvservice "
                             "section into")
    parser.add_argument("--no-gate", action="store_true",
                        help="skip the threaded-vs-event step-program gate")
    args = parser.parse_args(argv)
    section = run_suite(quick=args.quick, seed=args.seed, images=args.images,
                        machine=args.machine, gate=not args.no_gate)
    out = update_bench_json(args.out, section)
    for cell in section["cells"]:
        lat = cell["latency_us"]
        print(f"zipf={cell['zipf_s']:<4} mix={cell['mix']:<11} "
              f"tput={cell['throughput_ops_per_s']:>9} ops/s  "
              f"p50={lat['p50']:>8.1f}  p95={lat['p95']:>8.1f}  "
              f"p99={lat['p99']:>8.1f} us  "
              f"hit={cell['cache_hit_rate']:.2f}")
    cmp_ = section["cache_comparison"]
    print(f"cache p99: {cmp_['cached_p99_us']} us vs uncached "
          f"{cmp_['uncached_p99_us']} us ({cmp_['p99_speedup']}x)")
    rs = section["reshard"]
    print(f"reshard: moved={rs['moved']} epoch={rs['epoch']} "
          f"acked={rs['acked']} lost={len(rs['lost'])}")
    if section["engine_gate"]:
        print(f"engine gate: digest {section['engine_gate']['digest']} "
              f"identical on threaded+event")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
