"""Continuation steps: the blocking protocol of the event engine.

The :class:`~repro.engine.event.EventEngine` has no thread to park, so a
PE body that needs to block returns a *step* describing the blocking
point plus a continuation to run once it clears — explicit
continuation-passing style, trampolined by the engine (no generators,
no greenlets).  Between steps the body is ordinary eager Python: it may
call any non-blocking layer API (``put``/``get``/``atomic``/``quiet``/
...) directly.

The same step programs run unchanged on the blocking engines
(:class:`ThreadedEngine`, :class:`CooperativeEngine`): their drivers
execute each step's blocking form inline via :func:`drive`, calling the
exact same layer arrive/depart primitives the event heap does — which
is what makes virtual times and traces bit-identical across engines by
construction.

Steps
-----

* :class:`Done` — the program finished; carries the PE's result value.
* :class:`BarrierStep` — arrive at the job barrier through ``layer``
  (jitter + quiet + dissemination cost, exactly ``layer.barrier_all``).
* :class:`WaitStep` — ``layer.wait_until(ivar, cmp, value, offset)``.
* :class:`DelayStep` — advance the PE's virtual clock by ``delay_us``
  then continue (spin-loop backoff: on the event heap this reschedules
  the PE, giving other PEs the interleaving a blocked thread would).

Helpers
-------

:func:`alloc_array_step` expresses the collective allocation (which
internally barriers) as a step; :func:`run_steps`/:func:`drive` are the
inline trampolines used by the blocking engines.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.context import current


class Step:
    """Base class of all continuation steps."""

    __slots__ = ()


class Done(Step):
    """Terminal step: the PE body finished with ``value``."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None) -> None:
        self.value = value


class BarrierStep(Step):
    """Arrive at a barrier through ``layer``; run ``cont()`` after
    release.

    By default this is the job-wide barrier (exactly
    ``layer.barrier_all``).  Team-scoped collectives pass an explicit
    ``barrier`` (a :class:`~repro.runtime.sync.VirtualBarrier` over the
    team, e.g. a group's) plus the member count ``npes`` that prices the
    dissemination rounds — the step form of ``layer.team_barrier``.
    """

    __slots__ = ("layer", "cont", "barrier", "npes")

    def __init__(self, layer, cont: Callable[[], Any], *,
                 barrier=None, npes: int | None = None) -> None:
        self.layer = layer
        self.cont = cont
        self.barrier = barrier
        self.npes = npes


class WaitStep(Step):
    """Block until ``ivar[offset] <cmp> value`` holds locally, then run
    ``cont()`` (the step form of ``layer.wait_until``).

    ``word=True`` merges the awaited *word's* atomic timestamp instead
    of the memory-global last-write time — valid only under strict
    post/consume alternation on that word (see
    :meth:`~repro.runtime.memory.PEMemory.word_time`).

    ``target`` names the remote PE whose write is awaited, when known:
    a survivable job then fails the wait with
    :class:`~repro.runtime.failures.ImageFailedError` if that PE dies,
    instead of parking forever.
    """

    __slots__ = ("layer", "ivar", "cmp", "value", "offset", "cont", "word",
                 "target")

    def __init__(self, layer, ivar, cmp: str, value, cont: Callable[[], Any],
                 offset: int = 0, word: bool = False,
                 target: int = -1) -> None:
        self.layer = layer
        self.ivar = ivar
        self.cmp = cmp
        self.value = value
        self.offset = offset
        self.cont = cont
        self.word = word
        self.target = target


class DelayStep(Step):
    """Advance this PE's clock by ``delay_us`` virtual microseconds and
    continue — the yield point of spin-retry loops."""

    __slots__ = ("delay_us", "cont")

    def __init__(self, delay_us: float, cont: Callable[[], Any]) -> None:
        self.delay_us = delay_us
        self.cont = cont


def alloc_array_step(layer, shape, dtype, cont: Callable[[Any], Any]) -> Step:
    """Collectively allocate a symmetric array as a step program.

    Runs the non-blocking half (fault check + collective agreement)
    eagerly, barriers, then passes the constructed array to ``cont``.
    Exactly equivalent to ``cont(layer.alloc_array(shape, dtype))``.
    """
    build = layer._alloc_prepare(shape, dtype)
    return BarrierStep(layer, lambda: cont(build()))


def drive(step: Any) -> Any:
    """Trampoline a step program on a *blocking* engine.

    Executes each step's blocking form inline — the same layer
    primitives the event heap dispatches — and returns the program's
    final value.  Non-step values pass straight through, so plain
    (non-CPS) PE bodies are unaffected.
    """
    while isinstance(step, Step):
        cls = type(step)
        if cls is Done:
            return step.value
        if cls is BarrierStep:
            if step.barrier is None:
                step.layer.barrier_all()
            else:
                step.layer.team_barrier(step.barrier, step.npes)
            step = step.cont()
        elif cls is WaitStep:
            step.layer.wait_until(
                step.ivar, step.cmp, step.value, step.offset, word=step.word,
                target=step.target,
            )
            step = step.cont()
        elif cls is DelayStep:
            current().clock.advance(step.delay_us)
            step = step.cont()
        else:  # pragma: no cover - future step kinds must extend drivers
            raise TypeError(f"unknown step type {cls.__name__}")
    return step


#: Alias kept for symmetry with the event engine's vocabulary.
run_steps = drive
