"""Execution engines: how a job's PEs actually run.

One :class:`Engine` instance per :class:`~repro.runtime.launcher.Job`
owns scheduling decisions, remote-deposit delivery, blocking, the fault
pipeline, and the SPMD driver loop.  See :mod:`repro.engine.base` for
the interface, and:

* :class:`ThreadedEngine` — one pooled OS thread per PE (default);
* :class:`CooperativeEngine` — deterministic interleavings under a
  :class:`repro.explore.Scheduler` (what ``scheduler=`` always meant);
* :class:`EventEngine` — a single-threaded virtual-time event heap
  driving continuation-passing step programs
  (:mod:`repro.engine.steps`); weak-scales to thousands of PEs.

Select with ``Job(..., engine="event")`` / ``run_spmd(..., engine=...)``
or by passing an instance.
"""

from repro.engine.base import Engine, EngineError, WouldBlock, resolve_engine
from repro.engine.cooperative import CooperativeEngine
from repro.engine.event import EventDeadlock, EventEngine
from repro.engine.pool import WorkerPool, shared_pool
from repro.engine.process import ProcessEngine, RemotePEFailure
from repro.engine.steps import (
    BarrierStep,
    DelayStep,
    Done,
    Step,
    WaitStep,
    alloc_array_step,
    drive,
    run_steps,
)
from repro.engine.threaded import ThreadedEngine

__all__ = [
    "BarrierStep",
    "CooperativeEngine",
    "DelayStep",
    "Done",
    "Engine",
    "EngineError",
    "EventDeadlock",
    "EventEngine",
    "ProcessEngine",
    "RemotePEFailure",
    "Step",
    "ThreadedEngine",
    "WaitStep",
    "WorkerPool",
    "WouldBlock",
    "alloc_array_step",
    "drive",
    "resolve_engine",
    "run_steps",
    "shared_pool",
]
