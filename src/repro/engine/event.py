"""The discrete-event engine: no OS threads, a virtual-time heap.

PE bodies are step programs (:mod:`repro.engine.steps`): eager Python
between blocking points, returning a :class:`Step` wherever a thread
engine would park.  The engine trampolines all PEs on one OS thread,
dispatching the runnable PE with the smallest ``(virtual time, pe)``
key off a binary heap — O(log n) per decision, so weak-scaling sweeps
at thousands of PEs cost thousands of Python frames, not thousands of
thread stacks.

Equivalence with the threaded engine is structural, not coincidental:
every step's handler calls the *same* layer primitives the blocking
driver runs inline (``_barrier_arrive``/``_barrier_depart``,
``wait_until``'s probe + ``last_write_time`` merge, ``clock.advance``),
so the float arithmetic — and therefore virtual times and trace
digests — is bit-identical on any program both engines can run.

Blocking semantics:

* **barrier** — arrivers park in a per-(barrier, generation) list; the
  releasing arrival departs itself, then departs and reschedules every
  parked PE at the common release time (ties broken by PE rank).
* **value wait** — parked waiters are re-polled after every dispatched
  event (only dispatched events can change memory).
* **failure** — a raising PE is recorded and the job aborts; already
  parked PEs whose barrier never releases are dropped exactly as a
  blocked thread observing the abort flag would be, and the engine
  raises the same :class:`~repro.runtime.launcher.JobFailure`.
* **deadlock** — an empty heap with parked PEs and no abort is reported
  as :class:`EventDeadlock` naming every parked PE (the event-engine
  analogue of the wall-clock watchdog, which never needs to arm here).

Calling an inline blocking primitive (``barrier_all`` as a non-final
arriver, ``wait_until`` on an unsatisfied value, a lock spin loop)
raises :class:`~repro.engine.base.WouldBlock` — express those points as
steps instead.
"""

from __future__ import annotations

import heapq
import typing

from repro.engine.base import Engine, EngineError, WouldBlock
from repro.engine.steps import BarrierStep, DelayStep, Done, Step, WaitStep
from repro.runtime.context import PEContext, set_current
from repro.runtime.failures import raise_image_failed
from repro.sim.faults import InjectedCrash

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job


class EventDeadlock(EngineError):
    """Every runnable PE is parked and no release can ever come."""


class _Parked:
    """A PE parked at a barrier (waiting for its generation's release)."""

    __slots__ = ("pe", "ctx", "layer", "t_start", "cont", "barrier")

    def __init__(self, pe, ctx, layer, t_start, cont, barrier) -> None:
        self.pe = pe
        self.ctx = ctx
        self.layer = layer
        self.t_start = t_start
        self.cont = cont
        self.barrier = barrier


class _Waiter:
    """A PE parked on a local-value predicate (WaitStep).

    ``word_offset`` is ``None`` for memory-global time merges, or the
    element offset whose per-word atomic timestamp to merge instead
    (``WaitStep(word=True)``).  ``target`` is the remote PE whose write
    is awaited (when known; -1 otherwise) — survivable jobs fail the
    wait with ``ImageFailedError`` if that PE dies.
    """

    __slots__ = ("pe", "ctx", "mem", "predicate", "cont", "word_offset",
                 "target")

    def __init__(self, pe, ctx, mem, predicate, cont, word_offset,
                 target=-1) -> None:
        self.pe = pe
        self.ctx = ctx
        self.mem = mem
        self.predicate = predicate
        self.cont = cont
        self.word_offset = word_offset
        self.target = target


def _make_wait_failure(w: _Waiter, dead: int, job):
    """Continuation that fails a parked waiter whose partner died.

    The predicate is re-checked first: the dead PE's failure hooks (lock
    handoff, forced releases) may have satisfied the wait while the
    crash was being processed — then the waiter resumes normally.
    """

    def thunk():
        if w.predicate():
            if w.word_offset is None:
                w.ctx.clock.merge(w.mem.last_write_time)
            else:
                w.ctx.clock.merge(w.mem.word_time(w.word_offset))
            return w.cont()
        raise_image_failed(w.ctx, "wait", dead, job.failed, job.tracer)

    return thunk


class EventEngine(Engine):
    """Single-threaded discrete-event execution over a virtual-time heap."""

    name = "event"
    eager_delivery = True
    max_pes = 16384

    # -- schedule hooks -------------------------------------------------
    def decision(self, ctx, op: str, target: int) -> None:
        pass  # eager execution between steps; nothing to decide

    def spin_yield(self, ctx, op: str, target: int) -> None:
        raise WouldBlock(
            f"EventEngine cannot spin inline on {op!r}; "
            f"return a DelayStep and retry in the continuation"
        )

    # -- blocking hooks (inline forms are errors here) ------------------
    def barrier_wait(self, ctx, barrier, gen: int) -> None:
        raise WouldBlock(
            "EventEngine cannot block inline in a barrier; return a "
            "BarrierStep (only the releasing arrival may call barrier_all "
            "directly, and which PE releases is schedule-dependent)"
        )

    def wait_value(self, ctx, mem, predicate, what: str,
                   target: int = -1) -> float:
        if predicate():
            return mem.last_write_time
        raise WouldBlock(
            f"EventEngine cannot block inline on {what}; return a WaitStep"
        )

    # ------------------------------------------------------------------
    def run(self, job: "Job", fn, args, kwargs) -> list:
        from repro.runtime.launcher import JobAborted, JobFailure

        kwargs = kwargs or {}
        n = job.num_pes
        results: list = [None] * n
        failures: list[tuple[int, BaseException]] = []
        ctxs = [PEContext(job, pe) for pe in range(n)]
        heap: list[tuple[float, int]] = [(0.0, pe) for pe in range(n)]
        pending: dict[int, object] = {
            pe: (lambda _pe=pe: fn(*args, **kwargs)) for pe in range(n)
        }
        parked: dict[tuple[int, int], list[_Parked]] = {}
        waiters: list[_Waiter] = []

        def schedule(pe: int, thunk, t: float) -> None:
            pending[pe] = thunk
            heapq.heappush(heap, (t, pe))

        def check_waiters() -> None:
            if not waiters:
                return
            still: list[_Waiter] = []
            for w in waiters:
                if w.predicate():
                    # Same merge a woken thread performs in wait_until.
                    if w.word_offset is None:
                        w.ctx.clock.merge(w.mem.last_write_time)
                    else:
                        w.ctx.clock.merge(w.mem.word_time(w.word_offset))
                    schedule(w.pe, w.cont, w.ctx.clock.now)
                else:
                    still.append(w)
            waiters[:] = still

        def dispatch(pe: int, ctx, step) -> None:
            """Route one step result; non-steps are final values."""
            while True:
                if not isinstance(step, Step):
                    results[pe] = step
                    return
                cls = type(step)
                if cls is Done:
                    results[pe] = step.value
                    return
                if cls is BarrierStep:
                    layer = step.layer
                    bar = step.barrier
                    if bar is None:
                        bar = layer.job.barrier
                    t_start, gen, released = layer._barrier_arrive(
                        ctx, step.barrier, step.npes
                    )
                    if not released:
                        parked.setdefault((bar.sync_id, gen), []).append(
                            _Parked(pe, ctx, layer, t_start, step.cont, bar)
                        )
                        return
                    layer._barrier_depart(ctx, t_start, gen, bar)
                    schedule(pe, step.cont, ctx.clock.now)
                    for p in parked.pop((bar.sync_id, gen), ()):
                        set_current(p.ctx)
                        p.layer._barrier_depart(p.ctx, p.t_start, gen, p.barrier)
                        schedule(p.pe, p.cont, p.ctx.clock.now)
                    set_current(ctx)
                    return
                if cls is WaitStep:
                    mem, predicate, elem_offset = step.layer._wait_probe(
                        step.ivar, step.cmp, step.value, step.offset
                    )
                    if predicate():
                        if step.word:
                            ctx.clock.merge(mem.word_time(elem_offset))
                        else:
                            ctx.clock.merge(mem.last_write_time)
                        step = step.cont()  # continue in this slice
                        continue
                    if (
                        step.target >= 0
                        and job.survivable
                        and job.failed.is_failed(step.target)
                    ):
                        raise_image_failed(
                            ctx, "wait", step.target, job.failed, job.tracer
                        )
                    waiters.append(_Waiter(
                        pe, ctx, mem, predicate, step.cont,
                        elem_offset if step.word else None,
                        step.target,
                    ))
                    return
                if cls is DelayStep:
                    ctx.clock.advance(step.delay_us)
                    schedule(pe, step.cont, ctx.clock.now)
                    return
                raise TypeError(f"unknown step type {cls.__name__}")

        try:
            while heap:
                _, pe = heapq.heappop(heap)
                thunk = pending.pop(pe)
                ctx = ctxs[pe]
                set_current(ctx)
                try:
                    # dispatch stays inside the guard: steps run layer
                    # code (barrier jitter, wait probes, continuations)
                    # that can fail exactly like the body itself.
                    dispatch(pe, ctx, thunk())
                except JobAborted:
                    continue  # secondary failure; root cause recorded
                except BaseException as exc:  # noqa: BLE001 - collect all
                    if job.survivable and isinstance(exc, InjectedCrash):
                        # Survivable mode: registry mark + barrier
                        # excision; an excision that released a barrier
                        # episode departs its parked survivors, and
                        # waiters on the dead PE fail with a structured
                        # ImageFailedError instead of deadlocking.
                        released = self.on_pe_failed(ctx, exc)
                        for bar, gen in released:
                            for p in parked.pop((bar.sync_id, gen), ()):
                                set_current(p.ctx)
                                p.layer._barrier_depart(
                                    p.ctx, p.t_start, gen, p.barrier
                                )
                                schedule(p.pe, p.cont, p.ctx.clock.now)
                        set_current(ctx)
                        still: list[_Waiter] = []
                        for w in waiters:
                            if w.target == pe:
                                schedule(
                                    w.pe,
                                    _make_wait_failure(w, pe, job),
                                    w.ctx.clock.now,
                                )
                            else:
                                still.append(w)
                        waiters[:] = still
                        check_waiters()
                        continue
                    failures.append((pe, exc))
                    job.abort()
                    continue
                check_waiters()
        finally:
            set_current(None)

        stuck = [p for plist in parked.values() for p in plist] + list(waiters)
        if stuck and not job.aborted():
            pes = sorted(p.pe for p in stuck)
            raise EventDeadlock(
                f"event heap drained with PE(s) {pes} still parked and no "
                f"failure recorded: a barrier or wait can never be released"
            )
        if failures:
            failure = JobFailure(failures)
            raise failure from failure.failures[0][1]
        return results
