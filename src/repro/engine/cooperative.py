"""The cooperative-scheduler engine (deterministic interleavings).

Wraps a :class:`repro.explore.Scheduler`: PE bodies still run on
(pooled) OS threads, but only the scheduler-chosen task executes at any
moment.  Every hook forwards to the scheduler's existing machinery —
``yield_point`` at decision points, per-initiator delivery queues for
remote deposits (weak completion made explicit), ``block_until`` for
parking — so schedule exploration semantics are exactly what
``Job(scheduler=...)`` produced before the engine abstraction.
"""

from __future__ import annotations

from repro.engine.base import Engine
from repro.engine.threaded import ThreadRunMixin


class CooperativeEngine(ThreadRunMixin, Engine):
    """Serializes PEs under an exploration scheduler strategy."""

    name = "cooperative"
    #: Puts become separately-schedulable deliveries (weak completion).
    eager_delivery = False

    def __init__(self, scheduler) -> None:
        super().__init__()
        if scheduler is None:
            raise ValueError("CooperativeEngine requires a scheduler")
        self.scheduler = scheduler

    # -- schedule hooks -------------------------------------------------
    def decision(self, ctx, op: str, target: int) -> None:
        self.scheduler.yield_point(ctx.pe, op, target)

    def spin_yield(self, ctx, op: str, target: int) -> None:
        self.scheduler.yield_point(ctx.pe, op, target, spin=True)

    def deposit(self, ctx, deliver) -> None:
        self.scheduler.post_put(ctx.pe, deliver)

    def drain(self, ctx) -> None:
        self.scheduler.flush(ctx.pe)

    # -- blocking hooks -------------------------------------------------
    def barrier_wait(self, ctx, barrier, gen: int) -> None:
        self.scheduler.block_until(
            ctx.pe,
            lambda: barrier._generation != gen,
            f"barrier(sync_id={barrier.sync_id}, gen={gen})",
        )

    def wait_value(self, ctx, mem, predicate, what: str,
                   target: int = -1) -> float:
        job = self.job
        if target >= 0 and job.survivable:
            # Unblock on either the awaited value or the target's death;
            # re-raising happens on this PE's own thread, not inside the
            # scheduler's predicate evaluation.
            registry = job.failed

            def value_or_failed() -> bool:
                return predicate() or registry.is_failed(target)

            self.scheduler.block_until(ctx.pe, value_or_failed, what)
            if not predicate() and registry.is_failed(target):
                from repro.runtime.failures import raise_image_failed

                raise_image_failed(ctx, "wait", target, registry, job.tracer)
            return mem.last_write_time
        self.scheduler.block_until(ctx.pe, predicate, what)
        return mem.last_write_time

    # -- run ------------------------------------------------------------
    def _task_start(self, pe: int) -> None:
        self.scheduler.start_task(pe)

    def _task_exit(self, pe: int) -> None:
        self.scheduler.task_exit(pe)

    def _collect_failures(self, failures: list) -> None:
        # A deadlock detected while a task was exiting has no thread of
        # its own to raise in; fold it into the failure records.
        sched_failure = self.scheduler.failure
        if sched_failure is not None:
            pe, exc = sched_failure
            if not any(p == pe for p, _ in failures):
                failures.append((pe, exc))
