"""The thread-per-PE engine (today's default behaviour, pooled).

Each PE body runs on its own OS thread (leased from the shared
:class:`~repro.engine.pool.WorkerPool`); blocking primitives park on
condition variables exactly as before, guarded by the job's wall-clock
:class:`~repro.sim.faults.Watchdog`.  Virtual times, trace contents,
and failure semantics are unchanged from the pre-engine launcher.
"""

from __future__ import annotations

import threading
import time
import typing

from repro.engine.base import Engine
from repro.engine.pool import shared_pool
from repro.engine.steps import Step, drive
from repro.runtime.context import PEContext, set_current
from repro.sim.faults import InjectedCrash

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job


class ThreadRunMixin:
    """Shared ``run`` implementation for thread-backed engines.

    Subclass hooks: :meth:`_task_start` / :meth:`_task_exit` bracket
    each PE body on its worker thread; :meth:`_collect_failures` may
    append engine-detected failures after all bodies exit.
    """

    def _task_start(self, pe: int) -> None:
        pass

    def _task_exit(self, pe: int) -> None:
        pass

    def _collect_failures(self, failures: list) -> None:
        pass

    def run(self, job: "Job", fn, args, kwargs) -> list:
        from repro.runtime.launcher import JobAborted, JobFailure

        kwargs = kwargs or {}
        results: list = [None] * job.num_pes
        failures: list[tuple[int, BaseException]] = []
        failures_lock = threading.Lock()
        done = threading.Event()
        remaining = [job.num_pes]

        def make_pe_main(pe: int):
            def pe_main() -> None:
                thread = threading.current_thread()
                saved_name = thread.name
                thread.name = f"pe-{pe}"
                ctx = PEContext(job, pe)
                set_current(ctx)
                try:
                    self._task_start(pe)
                    result = fn(*args, **kwargs)
                    if isinstance(result, Step):
                        result = drive(result)
                    results[pe] = result
                except JobAborted:
                    pass  # secondary failure; the root cause is recorded
                except BaseException as exc:  # noqa: BLE001 - must not leak
                    if job.survivable and isinstance(exc, InjectedCrash):
                        # Survivable mode: the crash makes this PE a
                        # failed image (registry mark, lock recovery,
                        # barrier excision) instead of aborting the job.
                        try:
                            self.on_pe_failed(ctx, exc)
                        except BaseException as handler_exc:  # noqa: BLE001
                            with failures_lock:
                                failures.append((pe, handler_exc))
                            job.abort()
                    else:
                        with failures_lock:
                            failures.append((pe, exc))
                        job.abort()
                finally:
                    self._task_exit(pe)
                    set_current(None)
                    thread.name = saved_name
                    with failures_lock:
                        remaining[0] -= 1
                        if remaining[0] == 0:
                            done.set()

            return pe_main

        pool = shared_pool()
        for pe in range(job.num_pes):
            pool.submit(make_pe_main(pe))
        done.wait()
        self._collect_failures(failures)
        if failures:
            failure = JobFailure(failures)
            raise failure from failure.failures[0][1]
        return results


class ThreadedEngine(ThreadRunMixin, Engine):
    """Free-running threads; no schedule control, eager delivery."""

    name = "threaded"
    eager_delivery = True

    # -- schedule hooks: free-running threads decide nothing -----------
    def decision(self, ctx, op: str, target: int) -> None:
        pass

    def spin_yield(self, ctx, op: str, target: int) -> None:
        # Let the lock holder's thread make progress before retrying.
        time.sleep(0.0002)

    # -- blocking hooks -------------------------------------------------
    def barrier_wait(self, ctx, barrier, gen: int) -> None:
        from repro.runtime.launcher import JobAborted

        wd = getattr(ctx.job, "watchdog", None)
        guard = (
            wd.watch(ctx.pe, f"barrier(sync_id={barrier.sync_id}, gen={gen})")
            if wd is not None
            else None
        )
        cond = barrier._cond
        with cond:
            try:
                if guard is not None:
                    guard.__enter__()
                while barrier._generation == gen:
                    if barrier._aborted():
                        raise JobAborted("job aborted while in barrier")
                    if guard is not None:
                        guard.poll()
                    cond.wait(timeout=0.05)
            finally:
                if guard is not None:
                    guard.__exit__(None, None, None)

    def wait_value(self, ctx, mem, predicate, what: str,
                   target: int = -1) -> float:
        job = ctx.job
        wd = job.watchdog
        if wd is None:
            return mem.wait_until(predicate, aborted=job.aborted)
        with wd.watch(ctx.pe, what, target, ctx) as guard:
            return mem.wait_until(predicate, aborted=job.aborted, watch=guard.poll)
