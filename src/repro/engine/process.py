"""The true-parallel process-per-PE engine (POSH-style).

Every in-process engine serializes the data plane on the GIL: virtual
time scales, wall clock does not.  :class:`ProcessEngine` runs each PE
as a forked ``multiprocessing`` process and backs everything PEs mutate
on each other with a :class:`~repro.runtime.sharedheap.SharedHeap` —
the symmetric heaps, last-write timestamps, atomic word tables, barrier
generations, the abort flag, per-PE clock mirrors, and the network
model's contention timelines all live in
``multiprocessing.shared_memory`` segments.  One-sided put/get is then
a real memcpy into the peer process's heap (the POSH shared-memory
OpenSHMEM model), so NumPy gather/scatter and batched transfer plans
use all host cores.

Execution model:

* **fork, not spawn** — children inherit the whole bound :class:`Job`
  (layers, pricers, allocator replica, tracer, fault injector) without
  pickling anything, and inherit the already-mapped shared segments.
  Platforms without ``fork`` (Windows, and macOS is unreliable with
  threads) are rejected at construction with a clear error.
* **SPMD determinism substitutes for shared Python state** — each
  process carries its own replica of the symmetric allocator and
  collective counters; since every PE executes the same collective
  sequence, all replicas evolve identically, so job-wide collective
  agreement computes locally (no cross-process fingerprint exchange).
  Subset collectives and CAF teams cannot use this trick and raise.
* **blocking is polling** — barrier waits poll the shared generation
  slot and ``wait_until`` polls under the target's process lock (see
  :mod:`repro.runtime.sharedheap`); both poll the shared abort flag and
  the in-child watchdog, so sibling failures and hangs unblock exactly
  as on the threaded engine.
* **results come home over pipes** — each child ships its result, its
  final virtual clock, its PE's materialized trace events, and its
  fault-injector counters; exceptions are pickled when possible and
  wrapped in :class:`RemotePEFailure` (repr + formatted traceback)
  when not.  A child that dies without reporting (SIGKILL, OOM) is
  turned into a ``RemotePEFailure`` by the parent's liveness watch.

Virtual time is the correctness oracle: on workloads whose threaded
execution is schedule-independent, this engine produces bit-identical
virtual times and trace digests to ``ThreadedEngine`` — the arithmetic
runs unchanged, only the memory it runs against moved segments.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
import typing

from repro.engine.base import Engine, EngineError
from repro.engine.steps import Step, drive

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job

#: Process ceiling: each PE is a whole OS process (fork + segments),
#: far heavier than a pooled thread.
MAX_PROCESS_PES = 64

#: Seconds between parent liveness sweeps over unreported children.
_POLL_S = 0.2


class RemotePEFailure(RuntimeError):
    """A PE process failed in a way its exception could not cross the
    pipe — unpicklable exception object, or the process died without
    reporting (killed, out of memory).  The message carries the
    original type and formatted traceback when available."""


class _LocalCollectiveState:
    """Job-wide collective agreement by local recomputation.

    SPMD programs execute the same collective sequence on every PE with
    deterministic ``compute`` callables (allocator mallocs, id counters,
    window construction), so each process running ``compute()`` against
    its own post-fork replica yields identical results on all PEs.  The
    first-arriver fingerprint cross-check is unavailable — a mismatched
    collective shows up as divergent state instead of a
    ``CollectiveMismatch``; run the threaded engine to localize those.
    """

    def __init__(self, num_pes: int, *, aborted) -> None:
        self.num_pes = num_pes
        self._aborted = aborted

    def agree(self, ctx, fingerprint: str, compute, seq: int | None = None):
        if seq is None:
            ctx.next_collective_seq()
        return compute()


class _GroupCollectivesUnsupported:
    """Subset (active-set / team) collective agreement needs genuinely
    shared state between a *subset* of PEs — local recomputation would
    desynchronize the non-members' replicas.  Group barriers work; group
    agreement raises."""

    def __init__(self, num_pes: int, *, aborted) -> None:
        self.num_pes = num_pes

    def agree(self, ctx, fingerprint: str, compute, seq: int | None = None):
        raise EngineError(
            "subset collective agreement (CAF teams, team allocation) is "
            "not supported on engine='process'; use the threaded or event "
            "engine for team workloads"
        )


class ProcessEngine(Engine):
    """One forked OS process per PE over a shared symmetric heap."""

    name = "process"
    max_pes = MAX_PROCESS_PES
    eager_delivery = True
    cross_process = True

    def __init__(self) -> None:
        super().__init__()
        if "fork" not in multiprocessing.get_all_start_methods():
            raise EngineError(
                "engine='process' requires the 'fork' start method "
                "(children must inherit the bound job without pickling); "
                "this platform only offers "
                f"{multiprocessing.get_all_start_methods()}"
            )
        self._mp = multiprocessing.get_context("fork")
        self._heap = None

    # ------------------------------------------------------------------
    # Runtime-state factories (consulted by Job.__init__)
    # ------------------------------------------------------------------
    def prepare(self, *, num_pes: int, heap_bytes: int, num_nodes: int) -> None:
        from repro.runtime.sharedheap import SharedHeap

        if self._heap is not None:
            # Instance reused for a new Job: release the old segments.
            self._heap.close()
        self._heap = SharedHeap(
            num_pes, heap_bytes,
            num_timelines=4 * num_nodes,  # tx/rx/amo/cpu per node
            mp_context=self._mp,
        )

    def timeline_factory(self, name: str):
        return self._heap.timeline(name)

    def make_memories(self, num_pes: int, heap_bytes: int) -> list:
        return [self._heap.memory(pe) for pe in range(num_pes)]

    def make_abort(self):
        return self._heap.abort_event()

    def make_barrier_state(self, key: tuple):
        return self._heap.barrier_state(key)

    def make_failed_state(self, num_pes: int):
        return self._heap.failed_state()

    def make_collectives(self, num_pes: int, *, aborted, group: bool = False):
        if group:
            return _GroupCollectivesUnsupported(num_pes, aborted=aborted)
        return _LocalCollectiveState(num_pes, aborted=aborted)

    # ------------------------------------------------------------------
    # Schedule / blocking hooks (threaded semantics, polling parks)
    # ------------------------------------------------------------------
    def decision(self, ctx, op: str, target: int) -> None:
        pass

    def spin_yield(self, ctx, op: str, target: int) -> None:
        time.sleep(0.0002)

    def barrier_wait(self, ctx, barrier, gen: int) -> None:
        from repro.runtime.launcher import JobAborted

        wd = getattr(ctx.job, "watchdog", None)
        guard = (
            wd.watch(ctx.pe, f"barrier(sync_id={barrier.sync_id}, gen={gen})")
            if wd is not None
            else None
        )
        try:
            if guard is not None:
                guard.__enter__()
            spins = 0
            while barrier.generation == gen:
                if barrier._aborted():
                    raise JobAborted("job aborted while in barrier")
                if guard is not None:
                    guard.poll()
                # Spin briefly (the release is one shared int away),
                # then back off to short naps.
                spins += 1
                if spins > 2000:
                    time.sleep(0.0002)
        finally:
            if guard is not None:
                guard.__exit__(None, None, None)

    def wait_value(self, ctx, mem, predicate, what: str, target: int = -1) -> float:
        job = ctx.job
        wd = job.watchdog
        if wd is None:
            return mem.wait_until(predicate, aborted=job.aborted)
        with wd.watch(ctx.pe, what, target, ctx) as guard:
            return mem.wait_until(predicate, aborted=job.aborted, watch=guard.poll)

    # ------------------------------------------------------------------
    # The SPMD driver: fork, collect, merge
    # ------------------------------------------------------------------
    def run(self, job: "Job", fn, args, kwargs) -> list:
        from multiprocessing.connection import wait as conn_wait

        from repro.runtime.launcher import JobFailure

        kwargs = kwargs or {}
        n = job.num_pes
        conns = {}
        procs = {}
        for pe in range(n):
            recv_end, send_end = self._mp.Pipe(duplex=False)
            p = self._mp.Process(
                target=self._child_main,
                args=(job, fn, args, kwargs, pe, send_end),
                name=f"repro-pe-{pe}",
                daemon=True,
            )
            p.start()
            send_end.close()
            conns[recv_end] = pe
            procs[pe] = p

        results: list = [None] * n
        failures: list[tuple[int, BaseException]] = []
        pending = dict(conns)  # conn -> pe, still unreported
        try:
            while pending:
                for conn in conn_wait(list(pending), timeout=_POLL_S):
                    pe = pending.pop(conn)
                    try:
                        payload = conn.recv()
                    except (EOFError, OSError):
                        payload = None
                    self._adopt(job, pe, payload, results, failures)
                    conn.close()
                # Liveness sweep: a child that exited without a payload
                # (SIGKILL, os._exit, OOM) would otherwise hang the join.
                for conn, pe in list(pending.items()):
                    p = procs[pe]
                    if not p.is_alive() and not conn.poll():
                        pending.pop(conn)
                        self._adopt(job, pe, None, results, failures)
                        conn.close()
        finally:
            for pe, p in procs.items():
                p.join(timeout=10.0)
                if p.is_alive():  # pragma: no cover - defensive
                    p.terminate()
                    p.join(timeout=5.0)
            if failures or job.aborted():
                # A failed job never runs again (the abort flag stays
                # set) — unlink the segments now so an aborted CI run
                # cannot leak /dev/shm entries.
                self.cleanup()
        if failures:
            failure = JobFailure(failures)
            raise failure from failure.failures[0][1]
        return results

    def cleanup(self) -> None:
        """Unlink the shared segments (idempotent, creator only)."""
        if self._heap is not None:
            self._heap.close()

    # ------------------------------------------------------------------
    def _adopt(self, job, pe: int, payload, results, failures) -> None:
        """Fold one child's report (or its absence) into the job."""
        if payload is None:
            if getattr(job, "survivable", False):
                # Real child death (SIGKILL, OOM, os._exit) in a
                # survivable job is a failed image, not a job failure:
                # mark the registry and excise the PE from every barrier
                # so the surviving processes complete without it.  The
                # dead child's failure hooks cannot run — survivors
                # recover held locks through the is_failed steal paths.
                if job.failed.mark_failed(pe):
                    barriers = [job.barrier]
                    if job.groups is not None:
                        barriers.extend(job.groups.barriers())
                    for bar in barriers:
                        bar.exclude(pe)
                return
            failures.append((
                pe,
                RemotePEFailure(
                    f"PE {pe} process died without reporting a result"
                ),
            ))
            job.abort()
            return
        status = payload.get("status")
        if status == "ok":
            results[pe] = payload.get("result")
        elif status == "failed":
            failures.append((pe, payload.get("error")))
        # "aborted": secondary failure, root cause recorded elsewhere.
        # "failed_image": survivable crash — the child already marked the
        # shared registry and excised itself; its result stays None.
        tracer = job.tracer
        if tracer is not None and "trace" in payload:
            tracer.adopt_events(pe, payload["trace"])
        inj = job.faults
        if inj is not None and "faults" in payload:
            op_count, stats = payload["faults"]
            inj.adopt(pe, op_count, stats)

    # ------------------------------------------------------------------
    def _child_main(self, job, fn, args, kwargs, pe, conn) -> None:
        """Runs in the forked child: one PE body, then report and exit."""
        import threading

        from repro.runtime.context import PEContext, set_current
        from repro.runtime.launcher import JobAborted
        from repro.sim.clock import SharedClock

        threading.current_thread().name = f"pe-{pe}"
        ctx = PEContext(job, pe)
        ctx.clock = SharedClock(self._heap.clock_slot(pe))
        payload: dict = {"status": "aborted"}
        set_current(ctx)
        try:
            result = fn(*args, **kwargs)
            if isinstance(result, Step):
                result = drive(result)
            payload = {"status": "ok", "result": result}
        except JobAborted:
            pass  # secondary failure; the root cause is recorded
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            from repro.sim.faults import InjectedCrash

            if job.survivable and isinstance(exc, InjectedCrash):
                try:
                    # Shared registry + barrier slots: the mark and the
                    # excisions are visible to every sibling process.
                    self.on_pe_failed(ctx, exc)
                    payload = {"status": "failed_image"}
                except BaseException as handler_exc:
                    job.abort()
                    payload = {
                        "status": "failed",
                        "error": self._portable(handler_exc, pe),
                    }
            else:
                job.abort()
                payload = {"status": "failed", "error": self._portable(exc, pe)}
        finally:
            set_current(None)
            payload["clock"] = ctx.clock.now
            tracer = job.tracer
            if tracer is not None:
                try:
                    payload["trace"] = list(tracer.events[pe])
                except Exception:  # pragma: no cover - defensive
                    payload["trace"] = []
            inj = job.faults
            if inj is not None:
                payload["faults"] = (inj._op_count[pe], inj._stats[pe])
            self._send(conn, payload, pe)
            conn.close()

    @staticmethod
    def _portable(exc: BaseException, pe: int) -> BaseException:
        """The exception itself when it pickles, else a wrapped record."""
        try:
            pickle.loads(pickle.dumps(exc))
            return exc
        except Exception:
            tb = "".join(traceback.format_exception(exc))
            return RemotePEFailure(
                f"PE {pe} raised unpicklable {type(exc).__name__}: {exc}\n{tb}"
            )

    @staticmethod
    def _send(conn, payload: dict, pe: int) -> None:
        try:
            conn.send(payload)
        except Exception as exc:
            # Unpicklable result (e.g. a SymmetricArray handle): downgrade
            # to a structured failure rather than hanging the parent.
            fallback = {
                "status": "failed",
                "clock": payload.get("clock", 0.0),
                "error": RemotePEFailure(
                    f"PE {pe} result could not cross the process boundary: "
                    f"{exc!r}; return plain picklable data from "
                    f"engine='process' kernels"
                ),
            }
            if "trace" in payload:
                fallback["trace"] = payload["trace"]
            if "faults" in payload:
                fallback["faults"] = payload["faults"]
            try:
                conn.send(fallback)
            except Exception:  # pragma: no cover - pipe gone
                pass


__all__ = ["MAX_PROCESS_PES", "ProcessEngine", "RemotePEFailure"]
