"""A process-wide reusable worker-thread pool.

``Job.run`` historically spawned ``num_pes`` fresh OS threads per
launch; benchmark ``--repeats`` loops and hypothesis-style suites pay
thread creation (stack allocation, scheduler registration) hundreds of
times over.  The :class:`WorkerPool` keeps finished workers parked on a
condition variable and hands them the next launch's PE bodies instead.

Sizing is demand-driven: a submission finding no idle worker starts a
new one, so the pool grows to the peak concurrent demand (including
nested ``Job.run`` calls from inside a PE body — those *must* get new
threads, never queue behind their own parent) and never schedules two
bodies onto one thread concurrently.  Idle workers retire after
:data:`IDLE_TIMEOUT_S` so long-lived processes shed peak capacity.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Callable

#: Idle workers park this long (seconds) before exiting.
IDLE_TIMEOUT_S = 30.0


class WorkerPool:
    """Grow-on-demand pool of daemon worker threads."""

    def __init__(self, idle_timeout_s: float = IDLE_TIMEOUT_S) -> None:
        self._cv = threading.Condition()
        self._work: deque[Callable[[], None]] = deque()
        self._idle = 0
        self._workers = 0
        self._spawned = 0
        self._failed = 0
        self._ids = itertools.count(1)
        self._idle_timeout_s = idle_timeout_s

    def submit(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` on some worker thread, never queueing behind a
        busy one: a new thread is started unless an idle worker is free
        to take this item.  The comparison is against the *queue depth*,
        not merely ``_idle > 0``: an idle worker already notified for an
        earlier submission still counts as idle until it wakes, and
        counting it twice would strand the second item (PE bodies block
        on each other, so a stranded body deadlocks the job)."""
        with self._cv:
            self._work.append(fn)
            if self._idle >= len(self._work):
                self._cv.notify()
            else:
                self._workers += 1
                self._spawned += 1
                threading.Thread(
                    target=self._worker,
                    name=f"repro-worker-{next(self._ids)}",
                    daemon=True,
                ).start()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Introspection for tests: live/idle/ever-spawned/failed counts."""
        with self._cv:
            return {
                "workers": self._workers,
                "idle": self._idle,
                "spawned": self._spawned,
                "failed": self._failed,
            }

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cv:
                self._idle += 1
                try:
                    while not self._work:
                        if not self._cv.wait(timeout=self._idle_timeout_s):
                            if self._work:
                                break  # work raced in at the timeout
                            self._workers -= 1
                            return  # retire this idle worker
                finally:
                    self._idle -= 1
                fn = self._work.popleft()
            try:
                fn()
            except Exception:
                # Submitters own ordinary failures (Job.run records them
                # per PE before its body returns); the pool only counts
                # the escape so non-Job submissions don't vanish silently.
                with self._cv:
                    self._failed += 1
            except BaseException:
                # KeyboardInterrupt / SystemExit must not be eaten: this
                # worker is going down, so take it off the books and let
                # the exception propagate to the thread boundary.
                with self._cv:
                    self._failed += 1
                    self._workers -= 1
                raise


_pool_lock = threading.Lock()
_pool: WorkerPool | None = None


def shared_pool() -> WorkerPool:
    """The process-wide pool used by the thread-backed engines.

    Check-and-create happens entirely under ``_pool_lock``: the
    lock-free first read of the old double-checked idiom could hand a
    racing first caller a half-published pool.  Creation is cheap and
    one-time, so the uncontended lock acquisition costs nothing
    measurable per launch.
    """
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = WorkerPool()
        return _pool
