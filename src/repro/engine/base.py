"""The :class:`Engine` interface.

An engine owns *how* the PEs of one :class:`~repro.runtime.launcher.Job`
execute: what happens at a schedule decision point, how a put's remote
deposit lands, how a PE blocks (barrier park, value wait, lock spin),
how the fault plan is consulted, and how the SPMD bodies themselves are
driven.  The communication layers are engine-agnostic — every former
``scheduler is None`` / ``faults is None`` branch is now a call through
the job's engine:

========================  =============================================
hook                      replaces
========================  =============================================
``decision``              ``if sched is not None: sched.yield_point``
``deposit`` / ``drain``   ``sched.post_put`` / ``sched.flush`` gates
``spin_yield``            the ``sleep(..) if sched is None else
                          yield_point(spin=True)`` idiom in lock loops
``barrier_wait``          the threaded cond-wait vs cooperative
                          ``block_until`` split in ``VirtualBarrier``
``wait_value``            the same split in ``OneSidedLayer.wait_until``
``priced`` / ``jitter`` / ``if self.faults is not None`` gating plus
``alloc_check``           the retransmission pipeline itself
``run``                   the thread-spawning body of ``Job.run``
========================  =============================================

Three engines exist:

* :class:`~repro.engine.threaded.ThreadedEngine` — today's behaviour:
  one (pooled) OS thread per PE, blocking on condition variables.
* :class:`~repro.engine.cooperative.CooperativeEngine` — wraps a
  :class:`repro.explore.Scheduler`; every hook forwards to the
  scheduler's decision/park/delivery machinery.
* :class:`~repro.engine.event.EventEngine` — no OS threads: PE bodies
  are step programs (see :mod:`repro.engine.steps`) driven off a
  virtual-time event heap.

The fault plane lives on the base class because it is engine-neutral:
the injector's decisions depend only on per-PE operation indices, and
retransmission backoff is priced in virtual time, so the same pipeline
serves all engines bit-identically.  When the job has no fault plan,
:meth:`bind` swaps the pipeline entry points for module-level
pass-throughs, keeping the no-fault fast path at one function call.
"""

from __future__ import annotations

import typing
from typing import Any, Callable

from repro.sim.faults import InjectedCrash, TransientCommError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job


class EngineError(RuntimeError):
    """Engine misuse or engine-detected execution failure."""


class WouldBlock(EngineError):
    """A blocking primitive was reached on a non-blocking engine.

    The :class:`~repro.engine.event.EventEngine` cannot suspend a PE
    mid-call (there is no thread to park); code running on it must
    express blocking points as :mod:`repro.engine.steps` objects
    instead.  Reaching an inline blocking primitive raises this.
    """


def _record_fault(layer, ctx, kind: str, op: str, target: int,
                  t_start: float, calls: int = 1) -> None:
    """Trace one ``fault``/``retry`` record (machinery, never data)."""
    tracer = layer.job.tracer
    if tracer is not None:
        tracer.record(
            ctx.pe, kind, target, 0, t_start, ctx.clock.now,
            calls=max(calls, 1), internal=True, meta=("f", op),
        )


# ---------------------------------------------------------------------------
# No-fault fast paths, installed by Engine.bind when the job carries no
# fault plan.  Module-level plain functions: assigning them to instance
# attributes costs no bound-method indirection at the call sites.
# ---------------------------------------------------------------------------

def _priced_nofaults(ctx, layer, op, target, price, fail_at):
    return price(ctx.clock.now)


def _jitter_nofaults(ctx, layer, op, target=-1):
    return None


def _alloc_check_nofaults(ctx):
    return None


class Engine:
    """Execution-engine interface; see the module docstring.

    Engines are single-job: :meth:`bind` is called once from
    ``Job.__init__`` and pins the engine to that job.
    """

    #: Engine name, as accepted by :func:`resolve_engine`.
    name = "base"

    #: Largest PE count this engine will drive.  Thread-backed engines
    #: keep the historical one-OS-thread-per-PE ceiling; the event
    #: engine raises it (a PE there is a heap entry, not a thread).
    max_pes = 4096

    #: Whether remote deposits land in the target memory during the
    #: initiating call (threaded/event) or become separately-schedulable
    #: deliveries (:meth:`deposit`, cooperative).  Layers cache this as
    #: a plain boolean so the eager hot path never builds a closure.
    eager_delivery = True

    #: True when PEs run as separate OS processes: job state the PEs
    #: mutate on each other must then live in shared memory, and
    #: features that rely on sharing Python objects across PEs (CAF
    #: teams, group collective agreement) are unavailable.
    cross_process = False

    #: Optional ``Timeline``-factory callable (``name -> Timeline``)
    #: handed to the :class:`~repro.sim.netmodel.NetworkModel`; ``None``
    #: keeps plain in-process timelines.
    timeline_factory = None

    def __init__(self) -> None:
        self.job: "Job | None" = None
        self.faults = None

    # ------------------------------------------------------------------
    def bind(self, job: "Job") -> None:
        """Attach this engine to its job (exactly once)."""
        if self.job is not None and self.job is not job:
            raise EngineError(
                f"{type(self).__name__} is already bound to another job; "
                f"engines are single-job — build a fresh instance"
            )
        self.job = job
        self.faults = job.faults
        if job.faults is None:
            self.priced = _priced_nofaults
            self.jitter = _jitter_nofaults
            self.alloc_check = _alloc_check_nofaults

    # ------------------------------------------------------------------
    # Runtime-state factories.  ``Job.__init__`` routes the construction
    # of everything PEs share through the engine, so a cross-process
    # engine can back it all with shared-memory segments while the
    # in-process engines keep today's plain Python objects.
    # ------------------------------------------------------------------
    def prepare(self, *, num_pes: int, heap_bytes: int, num_nodes: int) -> None:
        """Called once, before any factory below, with the job's final
        dimensions — the hook where a cross-process engine sizes and
        maps its shared segments."""

    def make_memories(self, num_pes: int, heap_bytes: int) -> list:
        from repro.runtime.memory import PEMemory

        return [PEMemory(heap_bytes) for _ in range(num_pes)]

    def make_abort(self):
        """The job-wide abort flag (``threading.Event`` shaped)."""
        import threading

        return threading.Event()

    def make_barrier_state(self, key: tuple):
        """External episode state for the barrier named by ``key`` (an
        int tuple: ``(-1,)`` for the job barrier, the member tuple for
        group barriers), or ``None`` for in-process state."""
        return None

    def make_failed_state(self, num_pes: int):
        """External backing for the job's
        :class:`~repro.runtime.failures.FailedImageRegistry`, or ``None``
        for the in-process flag list.  A cross-process engine returns a
        shared-memory slot view so every PE process sees one failed set.
        """
        return None

    def make_collectives(self, num_pes: int, *, aborted, group: bool = False):
        """Collective-agreement state (``group=True`` for PE subsets)."""
        from repro.runtime.sync import CollectiveState

        return CollectiveState(num_pes, aborted=aborted)

    def cleanup(self) -> None:
        """Release engine-held runtime resources (idempotent).

        The one-shot launch wrappers (``run_spmd``, ``caf.launch``,
        ``shmem.launch``) call this as soon as the run returns so a
        cross-process engine unlinks its shared-memory segments
        deterministically instead of waiting for GC.  In-process
        engines hold nothing external: no-op."""

    # ------------------------------------------------------------------
    # Fault injection and retransmission (engine-neutral; see module doc)
    # ------------------------------------------------------------------
    def priced(self, ctx, layer, op: str, target: int, price, fail_at):
        """Price one operation through the fault plan.

        ``price(now)`` prices a single attempt starting at virtual time
        ``now`` (pricers and the direct network methods are both valid
        — each call reserves its own timeline bandwidth, so a failed
        attempt consumes wire time like a real retransmission);
        ``fail_at(result)`` extracts the virtual instant the initiator
        learns the attempt failed.  Transient failures retry with
        capped exponential backoff in virtual time; an exhausted budget
        raises :class:`TransientCommError`; a scheduled crash raises
        :class:`InjectedCrash`.  Returns the successful attempt's
        pricing result.  Retry policy constants (``RETRY_LIMIT``,
        ``RETRY_BACKOFF_*``) are read from ``layer``.
        """
        inj = self.faults
        d = inj.decide(ctx.pe, op, target)
        if d is None:
            return price(ctx.clock.now)
        t0 = ctx.clock.now
        if d.crash:
            _record_fault(layer, ctx, "fault", op, target, t0)
            raise InjectedCrash(
                f"PE {ctx.pe} crashed by fault plan at {op} "
                f"(op #{inj.op_index(ctx.pe) - 1}, seed {inj.plan.seed})"
            )
        if d.extra_us:
            ctx.clock.advance(d.extra_us)
        failures = d.failures
        if not failures:
            return price(ctx.clock.now)
        attempts = 0
        backoff = layer.RETRY_BACKOFF_START_US
        while failures and attempts < layer.RETRY_LIMIT:
            # The failed attempt is fully priced: its timeline
            # reservations stand (the wire carried the doomed packet)
            # and the initiator waits until the NACK instant before
            # backing off and retrying.
            ctx.clock.merge(fail_at(price(ctx.clock.now)))
            ctx.clock.advance(backoff)
            backoff = min(backoff * 2.0, layer.RETRY_BACKOFF_MAX_US)
            attempts += 1
            failures -= 1
        if failures:
            inj.note(ctx.pe, "escalations")
            _record_fault(layer, ctx, "fault", op, target, t0, calls=attempts)
            raise TransientCommError(op, ctx.pe, target, attempts)
        result = price(ctx.clock.now)
        inj.note(ctx.pe, "retried_ops")
        inj.note(ctx.pe, "retries", attempts)
        _record_fault(layer, ctx, "retry", op, target, t0, calls=attempts)
        return result

    def jitter(self, ctx, layer, op: str, target: int = -1) -> None:
        """Latency-only injection for collectives (no retransmission:
        the barrier algorithm's own progress is what gets delayed)."""
        inj = self.faults
        d = inj.decide(ctx.pe, op, target)
        if d is None:
            return
        if d.crash:
            _record_fault(layer, ctx, "fault", op, target, ctx.clock.now)
            raise InjectedCrash(
                f"PE {ctx.pe} crashed by fault plan at {op} "
                f"(op #{inj.op_index(ctx.pe) - 1}, seed {inj.plan.seed})"
            )
        if d.extra_us:
            ctx.clock.advance(d.extra_us)

    def alloc_check(self, ctx) -> None:
        """Injected symmetric-heap exhaustion fails *this* PE before it
        reaches the collective, so the allocator metadata is never
        touched by the doomed allocation."""
        self.faults.alloc_check(ctx.pe)

    # ------------------------------------------------------------------
    # Schedule / delivery hooks
    # ------------------------------------------------------------------
    def decision(self, ctx, op: str, target: int) -> None:
        """A schedule decision point (every RMA/sync call).  Free-running
        engines do nothing; the cooperative engine hands control to the
        exploration scheduler here."""

    def spin_yield(self, ctx, op: str, target: int) -> None:
        """One iteration of a spin-retry loop (lock acquisition).  Must
        yield execution in whatever way the engine supports."""
        raise NotImplementedError

    def deposit(self, ctx, deliver: Callable[[], None]) -> None:
        """Hand over a put's remote-memory deposit.  Only consulted when
        :attr:`eager_delivery` is False (layers write through directly
        otherwise)."""
        deliver()

    def drain(self, ctx) -> None:
        """Force all of ``ctx.pe``'s handed-over deposits to land
        (the delivery half of ``quiet``)."""

    # ------------------------------------------------------------------
    # Blocking hooks
    # ------------------------------------------------------------------
    def barrier_wait(self, ctx, barrier, gen: int) -> None:
        """Park until barrier ``gen`` releases (non-final arrivers)."""
        raise NotImplementedError

    def wait_value(self, ctx, mem, predicate, what: str,
                   target: int = -1) -> float:
        """Block until ``predicate()`` holds over ``mem``; returns the
        virtual timestamp to merge (the satisfying write's time).

        ``target`` names the remote PE whose write is being waited for,
        when known: survivable jobs then fail the wait immediately with
        :class:`~repro.runtime.failures.ImageFailedError` if that PE is
        (or becomes) a failed image, instead of blocking forever.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Survivable failure handling (see repro.runtime.failures)
    # ------------------------------------------------------------------
    def on_pe_failed(self, ctx, exc) -> list:
        """Convert a survivable crash of ``ctx.pe`` into a failed image.

        Runs on the dying PE, from the engine's crash handler, while the
        PE's context is still current.  In order: mark the registry
        (idempotence guard — a PE dies once), run the job's registered
        failure hooks (e.g. CAF lock recovery releases the dead image's
        held locks, per the Fortran 2018 rule that a failed image's
        locks become unlocked), trace a ``fail`` record for the death
        itself, then excise the PE from the job barrier and every group
        barrier it belongs to so survivors' episode arithmetic completes
        without it.

        Returns the ``(barrier, released_generation)`` pairs whose
        current episode the excision released — the event engine departs
        the continuations parked on those episodes.
        """
        job = self.job
        pe = ctx.pe
        if not job.failed.mark_failed(pe):
            return []
        for hook in job.failure_hooks:
            try:
                hook(pe)
            except Exception:  # recovery must never mask the crash
                pass
        tracer = job.tracer
        if tracer is not None:
            tracer.record(
                ctx.pe, "fail", -1, 0, ctx.clock.now, ctx.clock.now,
                internal=True, meta=("f", "crash"),
            )
        released = []
        barriers = [job.barrier]
        if job.groups is not None:
            barriers.extend(job.groups.barriers())
        for bar in barriers:
            if bar.exclude(pe):
                released.append((bar, bar.generation - 1))
        return released

    # ------------------------------------------------------------------
    def run(self, job: "Job", fn, args, kwargs) -> list:
        """Execute ``fn(*args, **kwargs)`` as every PE; return per-PE
        results (the body of ``Job.run``)."""
        raise NotImplementedError


def resolve_engine(engine: Any, scheduler: Any = None) -> Engine:
    """Coerce the ``engine=`` / ``scheduler=`` launch parameters to an
    :class:`Engine` instance.

    * ``engine=None, scheduler=None`` — a fresh ``ThreadedEngine``;
    * ``engine=None, scheduler=S`` — a ``CooperativeEngine(S)``
      (back-compat: ``scheduler=`` keeps working unchanged);
    * ``engine="threaded" | "event"`` — a fresh instance by name;
    * an :class:`Engine` instance — used as-is (must be unbound).

    Passing both an engine and a scheduler is an error unless the
    engine is a ``CooperativeEngine`` already wrapping that scheduler.
    """
    from repro.engine.cooperative import CooperativeEngine
    from repro.engine.event import EventEngine
    from repro.engine.threaded import ThreadedEngine

    if engine is None:
        if scheduler is not None:
            return CooperativeEngine(scheduler)
        return ThreadedEngine()
    if isinstance(engine, Engine):
        if scheduler is not None and getattr(engine, "scheduler", None) is not scheduler:
            raise ValueError(
                "pass either engine= or scheduler=, not both "
                "(or a CooperativeEngine wrapping that scheduler)"
            )
        return engine
    if isinstance(engine, str):
        name = engine.lower()
        if name in ("threaded", "event", "process") and scheduler is not None:
            raise ValueError(
                f"engine={name!r} cannot be combined with scheduler=; "
                f"cooperative execution is selected by the scheduler itself"
            )
        if name == "threaded":
            return ThreadedEngine()
        if name == "event":
            return EventEngine()
        if name == "process":
            from repro.engine.process import ProcessEngine

            return ProcessEngine()
        if name == "cooperative":
            if scheduler is None:
                raise ValueError(
                    'engine="cooperative" requires scheduler=Scheduler(...)'
                )
            return CooperativeEngine(scheduler)
        raise ValueError(
            f"unknown engine {engine!r}; expected 'threaded', 'event', "
            f"'process', 'cooperative', or an Engine instance"
        )
    raise TypeError(f"engine must be a name or Engine instance, got {engine!r}")
