"""Per-PE virtual clocks.

Every processing element (CAF image / SHMEM PE) owns one
:class:`VirtualClock` measuring elapsed *virtual microseconds*.  Clocks
advance only when the owning PE performs work that the cost model
charges; they reconcile at synchronization points:

* a barrier sets every participant to the max arrival time plus the
  barrier cost;
* a blocking wait on remotely-written data merges the writer's
  completion timestamp (``merge``).

Clocks are owned by exactly one thread; ``merge`` may race with nothing
because only the owner mutates its clock — remote writers publish their
timestamps through the runtime's memory-notification channel instead.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual time in microseconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` microseconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def merge(self, t: float) -> float:
        """Reconcile with an external timestamp: ``now = max(now, t)``."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, t: float = 0.0) -> None:
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.3f}us)"
