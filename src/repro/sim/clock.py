"""Per-PE virtual clocks.

Every processing element (CAF image / SHMEM PE) owns one
:class:`VirtualClock` measuring elapsed *virtual microseconds*.  Clocks
advance only when the owning PE performs work that the cost model
charges; they reconcile at synchronization points:

* a barrier sets every participant to the max arrival time plus the
  barrier cost;
* a blocking wait on remotely-written data merges the writer's
  completion timestamp (``merge``).

Clocks are owned by exactly one thread; ``merge`` may race with nothing
because only the owner mutates its clock — remote writers publish their
timestamps through the runtime's memory-notification channel instead.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual time in microseconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` microseconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def merge(self, t: float) -> float:
        """Reconcile with an external timestamp: ``now = max(now, t)``."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, t: float = 0.0) -> None:
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.3f}us)"


class SharedClock(VirtualClock):
    """A :class:`VirtualClock` that publishes every mutation to a shared
    float64 slot.

    Used by the process engine: each PE process keeps the hot reads on
    the local ``_now`` float (identical arithmetic to the base class)
    and mirrors the value into its control-segment slot, so the parent
    can observe per-PE virtual progress live and report the final clock
    of a PE whose process died.  The slot store is a single aligned
    8-byte write; only the owning PE ever writes it.
    """

    __slots__ = ("_slot",)

    def __init__(self, slot, start: float = 0.0) -> None:
        self._slot = slot
        super().__init__(start)
        self._slot[0] = self._now

    def advance(self, dt: float) -> float:
        now = super().advance(dt)
        self._slot[0] = now
        return now

    def merge(self, t: float) -> float:
        now = super().merge(t)
        self._slot[0] = now
        return now

    def reset(self, t: float = 0.0) -> None:
        super().reset(t)
        self._slot[0] = self._now
