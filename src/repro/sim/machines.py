"""The paper's three experimental platforms (Table III).

Interconnect parameters are *calibrated*, not measured: they are set to
published ballpark characteristics of each fabric (FDR InfiniBand on
Stampede, Aries/Dragonfly on the XC30, Gemini on Titan) so that the
relative shapes the paper reports — latency orderings, bandwidth
saturation points, atomic-operation costs — come out of the model.
Absolute values are documented here and in EXPERIMENTS.md.

Calibration notes
-----------------
* Aries (XC30) is the lowest-latency, highest-bandwidth fabric of the
  three; Gemini (Titan) has slightly higher latency than FDR InfiniBand
  and comparable bandwidth; this matches the paper's Fig 2 where Titan's
  small-message latencies are a bit above Stampede's.
* ``amo_process_us`` is small on all three: SHMEM atomics are
  NIC-offloaded (IB verbs atomics on Stampede, DMAPP AMOs on Cray).
* ``cpu_am_process_us``/``am_attentiveness_us`` model active-message
  handling through the target CPU, the only way GASNet (without NIC
  atomics) can implement remote atomic updates; this is what makes
  GASNet-backed locks slower in Fig 8.
"""

from __future__ import annotations

from repro.sim.topology import Machine

STAMPEDE = Machine(
    name="Stampede",
    nodes=6400,
    processor="Intel Xeon E5 (Sandy Bridge)",
    cores_per_node=16,
    interconnect="InfiniBand Mellanox Switches/HCAs",
    link_latency_us=1.10,
    link_bandwidth_Bpus=6000.0,  # ~6 GB/s FDR injection
    intra_latency_us=0.25,
    intra_bandwidth_Bpus=12000.0,
    amo_process_us=0.25,
    cpu_am_process_us=0.55,
    am_attentiveness_us=0.80,
)

CRAY_XC30 = Machine(
    name="Cray XC30",
    nodes=64,
    processor="Intel Xeon E5 (Sandy Bridge)",
    cores_per_node=16,
    interconnect="Dragonfly interconnect with Aries",
    link_latency_us=0.85,
    link_bandwidth_Bpus=10000.0,  # ~10 GB/s Aries injection
    intra_latency_us=0.25,
    intra_bandwidth_Bpus=12000.0,
    amo_process_us=0.15,
    cpu_am_process_us=0.40,
    am_attentiveness_us=0.40,
)

TITAN = Machine(
    name="Titan (OLCF)",
    nodes=18688,
    processor="AMD Opteron",
    cores_per_node=16,
    interconnect="Cray Gemini interconnect",
    link_latency_us=1.40,
    link_bandwidth_Bpus=5500.0,  # ~5.5 GB/s Gemini injection
    intra_latency_us=0.30,
    intra_bandwidth_Bpus=9000.0,
    amo_process_us=0.18,
    cpu_am_process_us=0.45,
    am_attentiveness_us=0.40,
)

MACHINES: dict[str, Machine] = {
    "stampede": STAMPEDE,
    "cray-xc30": CRAY_XC30,
    "titan": TITAN,
}


def get_machine(name: str) -> Machine:
    """Look up a machine by case-insensitive short name."""
    key = name.lower().replace("_", "-").replace(" ", "-")
    try:
        return MACHINES[key]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from None
