"""Machine descriptions and PE placement.

:class:`Machine` encodes one row of the paper's Table III plus the
interconnect parameters the cost engine needs.  :class:`Topology` maps
PEs onto nodes the way the paper's job launcher did: blocked placement,
``cores_per_node`` consecutive PEs per node (all three machines have 16
cores per node).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Machine:
    """One experimental platform (paper Table III + cost parameters).

    Bandwidths are bytes per microsecond (1000 B/us == ~1 GB/s);
    latencies are one-way microseconds.
    """

    name: str
    nodes: int
    processor: str
    cores_per_node: int
    interconnect: str
    # --- interconnect cost parameters -------------------------------
    link_latency_us: float  # one-way wire + switch latency
    link_bandwidth_Bpus: float  # per-NIC, per-direction injection bandwidth
    intra_latency_us: float  # shared-memory transfer latency within a node
    intra_bandwidth_Bpus: float  # memcpy bandwidth within a node
    amo_process_us: float  # NIC atomic unit service time per operation
    cpu_am_process_us: float  # target-CPU service time per active message
    am_attentiveness_us: float  # mean delay before target CPU notices an AM

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.cores_per_node <= 0:
            raise ValueError("nodes and cores_per_node must be positive")
        for field_name in (
            "link_latency_us",
            "link_bandwidth_Bpus",
            "intra_latency_us",
            "intra_bandwidth_Bpus",
            "amo_process_us",
            "cpu_am_process_us",
            "am_attentiveness_us",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


class Topology:
    """Blocked placement of ``num_pes`` PEs onto a machine's nodes."""

    def __init__(self, machine: Machine, num_pes: int) -> None:
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        needed_nodes = -(-num_pes // machine.cores_per_node)
        if needed_nodes > machine.nodes:
            raise ValueError(
                f"{num_pes} PEs need {needed_nodes} nodes; "
                f"{machine.name} has only {machine.nodes}"
            )
        self.machine = machine
        self.num_pes = num_pes
        self.num_nodes = needed_nodes

    def node_of(self, pe: int) -> int:
        """Node index hosting PE ``pe`` (0-based PE numbering)."""
        if not 0 <= pe < self.num_pes:
            raise ValueError(f"PE {pe} out of range [0, {self.num_pes})")
        return pe // self.machine.cores_per_node

    def same_node(self, pe_a: int, pe_b: int) -> bool:
        return self.node_of(pe_a) == self.node_of(pe_b)

    def pes_on_node(self, node: int) -> list[int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        start = node * self.machine.cores_per_node
        return list(range(start, min(start + self.machine.cores_per_node, self.num_pes)))
