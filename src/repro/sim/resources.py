"""Serialized virtual-time resources.

A :class:`Timeline` models a resource that can serve one request at a
time — a NIC injection engine, a NIC atomic unit, a link direction, or a
target CPU servicing active messages.  Requests *reserve* an interval;
overlapping demand queues up in virtual time, which is how the model
produces contention (e.g. the paper's 16-pairs-per-node runs share one
NIC per node and see lower per-pair bandwidth).

Timelines are shared between PE threads and therefore thread-safe.
"""

from __future__ import annotations

import threading


class Timeline:
    """First-come-first-served resource reservation in virtual time."""

    __slots__ = ("name", "_next_free", "_busy_time", "_reservations", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._next_free = 0.0
        self._busy_time = 0.0
        self._reservations = 0
        self._lock = threading.Lock()

    def reserve(self, earliest: float, duration: float) -> tuple[float, float]:
        """Reserve ``duration`` microseconds starting no earlier than
        ``earliest``; returns ``(start, end)``.

        The resource is strictly serialized: the reservation starts at
        ``max(earliest, next_free)`` and pushes ``next_free`` to its end.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if earliest < 0:
            raise ValueError("earliest must be non-negative")
        with self._lock:
            start = max(earliest, self._next_free)
            end = start + duration
            self._next_free = end
            self._busy_time += duration
            self._reservations += 1
            return start, end

    @property
    def next_free(self) -> float:
        with self._lock:
            return self._next_free

    @property
    def busy_time(self) -> float:
        """Total reserved virtual time (utilization numerator)."""
        with self._lock:
            return self._busy_time

    @property
    def reservations(self) -> int:
        with self._lock:
            return self._reservations

    def reset(self) -> None:
        with self._lock:
            self._next_free = 0.0
            self._busy_time = 0.0
            self._reservations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timeline({self.name!r}, next_free={self._next_free:.3f}us)"
