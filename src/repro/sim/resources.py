"""Serialized virtual-time resources.

A :class:`Timeline` models a resource that can serve one request at a
time — a NIC injection engine, a NIC atomic unit, a link direction, or a
target CPU servicing active messages.  Requests *reserve* an interval;
overlapping demand queues up in virtual time, which is how the model
produces contention (e.g. the paper's 16-pairs-per-node runs share one
NIC per node and see lower per-pair bandwidth).

Timelines are shared between PE threads and therefore thread-safe.
"""

from __future__ import annotations

import threading

import numpy as np


def _chain_starts(
    earliest: np.ndarray, duration: float, next_free: float
) -> np.ndarray:
    """Start times of back-to-back FCFS reservations, bit-for-bit equal
    to calling :meth:`Timeline.reserve` once per element.

    The recurrence is ``start[k] = max(earliest[k], start[k-1] +
    duration)`` with ``start[-1] + duration`` seeded by ``next_free``.
    Floating-point addition is not associative, so a closed form like
    ``start[0] + k*duration`` would drift by ULPs from the sequential
    path.  The array is instead consumed as alternating stretches:

    * **queue-bound** stretches (each element waits on its predecessor)
      are materialized with ``np.cumsum``, whose running sum performs
      exactly the repeated additions the scalar loop would;
    * **earliest-bound** stretches (each element's earliest time is at
      or past the previous reservation's end, the shape produced by the
      network model's self-synchronized chains) copy ``earliest``
      verbatim, which is what the scalar ``max`` would pick.

    Stretch boundaries for the earliest-bound case come from one O(n)
    precomputed comparison vector plus a binary search per stretch, so
    even pathological alternation stays near-linear — the previous
    pass-per-stretch scheme degenerated to a pass per *element* on
    fully self-synchronized chains (the 2dim-sweep wallclock
    regression).
    """
    n = earliest.shape[0]
    out = np.empty(n, dtype=np.float64)
    free = float(next_free)
    # Positions j where earliest[j+1] < earliest[j] + duration, i.e.
    # where an earliest-bound stretch must end.  Built lazily: fully
    # queue-bound inputs never need it.
    bad = None
    i = 0
    while i < n:
        e0 = earliest[i]
        start = e0 if e0 >= free else free
        out[i] = start
        if i + 1 == n:
            return out
        if earliest[i + 1] >= start + duration:
            # Earliest-bound stretch: out[k] = earliest[k] while each
            # element clears its predecessor's end (identical values,
            # identical comparisons — the adds below replay the scalar
            # path's ``start + duration``).
            if bad is None:
                cons = earliest[1:] >= earliest[:-1] + duration
                bad = np.nonzero(~cons)[0]
            j = int(np.searchsorted(bad, i + 1))
            m = int(bad[j]) + 1 if j < bad.size else n
            out[i + 1 : m] = earliest[i + 1 : m]
            free = float(earliest[m - 1] + duration)
            i = m
            continue
        # Queue-bound stretch: chain[j] assumes the queue never drains;
        # valid while the next element's earliest does not exceed it.
        seg = np.empty(n - i, dtype=np.float64)
        seg[0] = start
        seg[1:] = duration
        chain = np.cumsum(seg)
        late = np.nonzero(earliest[i + 1 : n] > chain[1:])[0]
        if late.size == 0:
            out[i:] = chain
            return out
        j = int(late[0]) + 1
        out[i : i + j] = chain[:j]
        free = float(chain[j])  # == chain[j-1] + duration, the drained queue end
        i += j
    return out


class Timeline:
    """First-come-first-served resource reservation in virtual time."""

    __slots__ = ("name", "_next_free", "_busy_time", "_reservations", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._next_free = 0.0
        self._busy_time = 0.0
        self._reservations = 0
        self._lock = threading.Lock()

    def reserve(self, earliest: float, duration: float) -> tuple[float, float]:
        """Reserve ``duration`` microseconds starting no earlier than
        ``earliest``; returns ``(start, end)``.

        The resource is strictly serialized: the reservation starts at
        ``max(earliest, next_free)`` and pushes ``next_free`` to its end.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if earliest < 0:
            raise ValueError("earliest must be non-negative")
        with self._lock:
            start = max(earliest, self._next_free)
            end = start + duration
            self._next_free = end
            self._busy_time += duration
            self._reservations += 1
            return start, end

    def reserve_batch(self, earliest: np.ndarray, duration: float) -> np.ndarray:
        """Reserve ``len(earliest)`` back-to-back intervals of ``duration``
        each; returns the array of start times.

        Bit-identical to calling :meth:`reserve` once per element in
        order (same ``_next_free``, ``_busy_time`` and start times), but
        under one lock acquisition and vectorized chain arithmetic.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        n = earliest.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.float64)
        with self._lock:
            starts = _chain_starts(earliest, duration, self._next_free)
            self._next_free = float(starts[-1] + duration)
            # busy_time accumulates by repeated addition in the scalar
            # path; replay the same additions via cumsum.
            busy = np.empty(n + 1, dtype=np.float64)
            busy[0] = self._busy_time
            busy[1:] = duration
            self._busy_time = float(np.cumsum(busy)[-1])
            self._reservations += n
            return starts

    def push_batch(self, final_next_free: float, count: int, duration: float) -> None:
        """Account ``count`` reservations whose start times the caller
        already computed (self-synchronized chains that provably never
        queue behind ``_next_free``).

        ``final_next_free`` is the end of the last reservation; the
        caller guarantees it is ``>=`` the current ``_next_free``.
        """
        if count <= 0:
            return
        with self._lock:
            if final_next_free > self._next_free:
                self._next_free = float(final_next_free)
            busy = np.empty(count + 1, dtype=np.float64)
            busy[0] = self._busy_time
            busy[1:] = duration
            self._busy_time = float(np.cumsum(busy)[-1])
            self._reservations += count

    @property
    def next_free(self) -> float:
        with self._lock:
            return self._next_free

    @property
    def busy_time(self) -> float:
        """Total reserved virtual time (utilization numerator)."""
        with self._lock:
            return self._busy_time

    @property
    def reservations(self) -> int:
        with self._lock:
            return self._reservations

    def reset(self) -> None:
        with self._lock:
            self._next_free = 0.0
            self._busy_time = 0.0
            self._reservations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timeline({self.name!r}, next_free={self._next_free:.3f}us)"
