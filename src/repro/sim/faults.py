"""Deterministic fault injection and hang detection.

The simulator models the conduits the paper targets (IB verbs on
Stampede, Aries, Gemini) as perfect networks; real ones drop packets,
delay them, and stall.  This module makes those failure modes *testable*
without giving up the repo's core invariant — bit-identical replay:

* :class:`FaultPlan` — an immutable, seeded schedule of faults.  Every
  decision is a pure function of ``(seed, pe, per-PE operation index)``
  (a splitmix64 hash), so a schedule replays exactly regardless of host
  thread interleaving, and two runs with the same seed inject the same
  faults into the same operations.
* :class:`FaultInjector` — the per-job mutable counterpart: per-PE
  operation counters plus injection statistics.  Attached to a
  :class:`~repro.runtime.launcher.Job` via ``Job(..., faults=plan)``.
* Fault classes: **transient delivery failures** (the layer retries
  with capped exponential backoff priced in *virtual* time, escalating
  to :class:`TransientCommError`), **extra latency** (virtual-time
  jitter on RMA/AMO/collective operations), **PE crash at the Nth
  operation** (:class:`InjectedCrash`), and **symmetric-heap
  exhaustion** (the Nth collective allocation raises
  :class:`~repro.util.allocator.OutOfMemoryError`).
* :class:`Watchdog` — wall-clock hang detection wrapped around every
  blocking primitive (barrier, ``wait_until``, lock spins).  A stall
  past the deadline produces a :class:`HangReport` naming each blocked
  PE, what it waits on, and its last trace events, then aborts the job
  — the process never hangs.

Injected delays and retry backoff advance the *virtual* clock only, so
a faulted run's data results stay bit-comparable to the fault-free run;
wall-clock behaviour is unchanged.  With no plan attached the layers
skip all of this behind one ``is None`` check per operation.
"""

from __future__ import annotations

import threading
import time
import typing
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, NamedTuple

from repro.util.allocator import OutOfMemoryError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job

_M64 = 0xFFFFFFFFFFFFFFFF

#: Point-to-point operations subject to transient delivery failure.
TRANSIENT_OPS = frozenset({"put", "get", "iput", "iget", "atomic", "am"})

#: Operations subject to injected extra latency (collectives included).
LATENCY_OPS = TRANSIENT_OPS | frozenset({"barrier"})

#: ``failures`` value meaning "every retry attempt fails" (escalation).
ALWAYS_FAIL = 1 << 30


def _mix(z: int) -> int:
    """One splitmix64 output step (same mixer the DHT benchmark uses)."""
    z = (z + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


def _uniform(h: int) -> float:
    """Map a 64-bit hash to [0, 1) with 53 bits of precision."""
    return (h >> 11) * (1.0 / (1 << 53))


class FaultDecision(NamedTuple):
    """What the plan injects into one operation."""

    failures: int  # transient delivery failures before success
    extra_us: float  # injected latency, virtual microseconds
    crash: bool  # the PE dies at this operation


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable fault schedule.

    ``transient_rate`` is the probability an operation suffers at least
    one transient delivery failure; a hit fails ``1..max_failures``
    consecutive attempts (uniform).  ``escalate_rate`` is the
    probability an operation fails *every* attempt, exhausting the
    retry budget and raising :class:`TransientCommError`.
    ``latency_rate``/``latency_us`` inject up to ``latency_us`` of
    extra virtual latency.  ``crash_at`` maps a PE to the 0-based index
    of the counted operation at which it raises
    :class:`InjectedCrash`; ``alloc_fail_at`` maps a PE to the 0-based
    index of the symmetric allocation that raises
    :class:`~repro.util.allocator.OutOfMemoryError`.

    Only operations in ``transient_ops`` draw delivery failures; only
    operations in ``latency_ops`` draw latency.  Every decision is a
    pure function of ``(seed, pe, per-PE op index)``.
    """

    seed: int
    transient_rate: float = 0.0
    max_failures: int = 2
    escalate_rate: float = 0.0
    latency_rate: float = 0.0
    latency_us: float = 25.0
    crash_at: Mapping[int, int] = field(default_factory=dict)
    alloc_fail_at: Mapping[int, int] = field(default_factory=dict)
    transient_ops: frozenset = TRANSIENT_OPS
    latency_ops: frozenset = LATENCY_OPS

    def __post_init__(self) -> None:
        for name in ("transient_rate", "escalate_rate", "latency_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.latency_us < 0:
            raise ValueError("latency_us must be >= 0")
        # Frozen dataclass: write the validated, canonicalized maps back
        # with object.__setattr__ (the dataclass idiom for __post_init__).
        object.__setattr__(
            self, "crash_at", _validate_sites("crash_at", self.crash_at)
        )
        object.__setattr__(
            self, "alloc_fail_at",
            _validate_sites("alloc_fail_at", self.alloc_fail_at),
        )


def _validate_sites(name: str, value) -> dict:
    """Canonicalize a ``{pe: op_index}`` fault-site map.

    Accepts a mapping or a sequence of ``(pe, index)`` pairs.  A bad
    entry (negative op index, negative PE, non-integer key) or a
    duplicate PE in pair form — which a dict literal would silently
    collapse, so the intended site never fires — raises ``ValueError``
    naming the offending entry.  PE range against ``num_pes`` is checked
    later, at :class:`FaultInjector` construction, where the job size is
    known.
    """
    items = value.items() if isinstance(value, Mapping) else value
    out: dict = {}
    for entry in items:
        try:
            pe, idx = entry
        except (TypeError, ValueError):
            raise ValueError(
                f"{name} entry {entry!r} is not a (pe, op_index) pair"
            ) from None
        if not isinstance(pe, int) or isinstance(pe, bool) or pe < 0:
            raise ValueError(
                f"{name} entry {entry!r}: PE must be a non-negative int"
            )
        if not isinstance(idx, int) or isinstance(idx, bool) or idx < 0:
            raise ValueError(
                f"{name} entry {entry!r}: op index must be a "
                f"non-negative int"
            )
        if pe in out:
            raise ValueError(
                f"{name} entry {entry!r}: duplicate PE {pe} "
                f"(already scheduled at index {out[pe]})"
            )
        out[pe] = idx
    return out


class FaultInjector:
    """Per-job fault state: a plan plus per-PE operation counters.

    Each PE's counter is touched only by that PE's thread, so the
    sequence of decisions a PE sees is its program order — deterministic
    under any host scheduling.  Statistics are kept per PE and merged
    on read.
    """

    def __init__(self, plan: FaultPlan, num_pes: int) -> None:
        for name in ("crash_at", "alloc_fail_at"):
            for pe in getattr(plan, name):
                if pe >= num_pes:
                    raise ValueError(
                        f"{name} entry ({pe}, {getattr(plan, name)[pe]}): "
                        f"PE {pe} out of range for a {num_pes}-PE job"
                    )
        self.plan = plan
        self.num_pes = num_pes
        self._op_count = [0] * num_pes
        self._alloc_count = [0] * num_pes
        self._stats = [Counter() for _ in range(num_pes)]

    # ------------------------------------------------------------------
    def decide(self, pe: int, op: str, target: int = -1) -> FaultDecision | None:
        """The plan's decision for ``pe``'s next counted operation.

        Returns ``None`` (the common case) when nothing is injected.
        The caller raises :class:`InjectedCrash` on ``crash=True`` —
        deciding and acting are split so the layer can trace first.
        """
        plan = self.plan
        n = self._op_count[pe]
        self._op_count[pe] = n + 1
        crash = plan.crash_at.get(pe) == n
        h = _mix(((plan.seed & _M64) * 0x100000001B3) ^ ((pe + 1) << 32) ^ n)
        failures = 0
        extra = 0.0
        if op in plan.transient_ops:
            if plan.escalate_rate and _uniform(h) < plan.escalate_rate:
                failures = ALWAYS_FAIL
            else:
                h2 = _mix(h)
                if plan.transient_rate and _uniform(h2) < plan.transient_rate:
                    failures = 1 + int(_uniform(_mix(h2)) * plan.max_failures)
                    failures = min(failures, plan.max_failures)
        if op in plan.latency_ops and plan.latency_rate:
            h3 = _mix(h ^ 0xA5A5A5A5A5A5A5A5)
            if _uniform(h3) < plan.latency_rate:
                extra = plan.latency_us * _uniform(_mix(h3))
        if not (failures or extra or crash):
            return None
        stats = self._stats[pe]
        if crash:
            stats["crashes"] += 1
        if failures:
            stats["transient_ops"] += 1
        if extra:
            stats["latency_faults"] += 1
            stats["latency_us"] += extra
        return FaultDecision(failures, extra, crash)

    def alloc_check(self, pe: int) -> None:
        """Called before every symmetric allocation; raises the injected
        heap exhaustion when this PE's allocation index matches."""
        k = self._alloc_count[pe]
        self._alloc_count[pe] = k + 1
        if self.plan.alloc_fail_at.get(pe) == k:
            self._stats[pe]["alloc_faults"] += 1
            raise OutOfMemoryError(
                f"injected symmetric-heap exhaustion on PE {pe} "
                f"(allocation #{k}, seed {self.plan.seed})"
            )

    def note(self, pe: int, key: str, value: int = 1) -> None:
        """Record a layer-side statistic (retries, escalations)."""
        self._stats[pe][key] += value

    def op_index(self, pe: int) -> int:
        """How many operations ``pe`` has had counted so far."""
        return self._op_count[pe]

    def adopt(self, pe: int, op_count: int, stats: Counter) -> None:
        """Replace one PE's counters with externally-recorded values
        (the process engine ships each child's counters at join; the
        parent-side replicas never saw the child's operations)."""
        self._op_count[pe] = op_count
        self._stats[pe] = Counter(stats)

    def summary(self) -> dict:
        """Merged injection statistics across all PEs."""
        total: Counter = Counter()
        for c in self._stats:
            total.update(c)
        out = dict(total)
        out["injected_ops"] = (
            total["transient_ops"] + total["latency_faults"] + total["crashes"]
        )
        return out


# ---------------------------------------------------------------------------
# Structured failures
# ---------------------------------------------------------------------------


class TransientCommError(RuntimeError):
    """A transient communication fault survived every retry attempt."""

    def __init__(self, op: str, pe: int, target: int, attempts: int) -> None:
        super().__init__(
            f"transient {op} fault from PE {pe} to PE {target} persisted "
            f"after {attempts} attempts"
        )
        self.op = op
        self.pe = pe
        self.target = target
        self.attempts = attempts


class InjectedCrash(RuntimeError):
    """A fault plan crashed this PE at a scheduled operation."""


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------

#: Default stall deadline.  Nothing in the simulator legitimately blocks
#: for minutes of wall clock, so this only ever fires on a real hang.
DEFAULT_WATCHDOG_S = 300.0


@dataclass(frozen=True)
class HangEntry:
    """One PE's state at watchdog trip time."""

    pe: int
    what: str  # blocked primitive, or "" when not blocked
    blocked_s: float  # wall seconds blocked (0 when not blocked)
    last_events: tuple = ()  # rendered tail of the PE's trace


@dataclass(frozen=True)
class HangReport:
    """Why the watchdog aborted the job, per PE."""

    deadline_s: float
    entries: tuple

    def render(self) -> str:
        lines = [f"watchdog: blocked past the {self.deadline_s:g}s wall-clock deadline"]
        for e in self.entries:
            if e.what:
                lines.append(f"  PE {e.pe}: blocked {e.blocked_s:.1f}s on {e.what}")
            else:
                lines.append(f"  PE {e.pe}: not blocked on an instrumented primitive")
            for ev in e.last_events:
                lines.append(f"    last: {ev}")
        return "\n".join(lines)

    def blocked_pes(self) -> tuple:
        return tuple(e.pe for e in self.entries if e.what)


class HangError(RuntimeError):
    """Raised (once, on the first PE to notice) when the watchdog trips."""

    def __init__(self, report: HangReport) -> None:
        super().__init__(report.render())
        self.report = report


class _WatchGuard:
    """Registration token for one blocked primitive.

    Context manager: ``__enter__`` publishes (what, since) in the
    watchdog's per-PE slot, ``__exit__`` clears it; :meth:`poll` is
    called from inside the primitive's wait loop and raises
    :class:`HangError` past the deadline.

    When the wait has a known remote ``target`` (a lock spin, a
    ``sync images`` partner wait) and the job is survivable, ``poll``
    also checks the failed-image registry: a wait on a dead peer fires
    *immediately* with a structured
    :class:`~repro.runtime.failures.ImageFailedError` naming the failed
    PE, instead of stalling until the wall-clock deadline.
    """

    __slots__ = ("wd", "pe", "what", "t0", "target", "ctx")

    def __init__(self, wd: "Watchdog", pe: int, what: str,
                 target: int = -1, ctx=None) -> None:
        self.wd = wd
        self.pe = pe
        self.what = what
        self.t0 = 0.0
        self.target = target
        self.ctx = ctx

    def __enter__(self) -> "_WatchGuard":
        self.t0 = time.monotonic()
        self.wd._blocked[self.pe] = (self.what, self.t0)
        return self

    def __exit__(self, *exc) -> None:
        self.wd._blocked[self.pe] = None

    def poll(self) -> None:
        target = self.target
        if target >= 0:
            job = self.wd.job
            registry = job.failed
            if job.survivable and registry.is_failed(target):
                from repro.runtime.failures import raise_image_failed

                self.wd._blocked[self.pe] = None
                raise_image_failed(
                    self.ctx, "wait", target, registry, job.tracer
                )
        if time.monotonic() - self.t0 > self.wd.deadline_s:
            self.wd._trip(self.pe)


class Watchdog:
    """Converts wall-clock stalls into structured :class:`HangError`.

    Every blocking primitive wraps its wait loop in :meth:`watch` and
    calls the guard's ``poll()`` each iteration.  The first PE past the
    deadline assembles a :class:`HangReport` from every PE's published
    blocked-state (a per-PE slot list — each PE writes only its own
    slot, so no lock on the wait path) and the trace tails, aborts the
    job so siblings unblock with ``JobAborted``, and raises
    :class:`HangError`.  Later trippers return and exit through their
    loop's abort poll — one structured report per hang.
    """

    #: Trace events shown per PE in the report.
    TAIL_EVENTS = 5

    def __init__(self, job: "Job", deadline_s: float | None = None) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("watchdog deadline must be positive")
        self.job = job
        self.deadline_s = DEFAULT_WATCHDOG_S if deadline_s is None else deadline_s
        self._blocked: list = [None] * job.num_pes
        self._fire_lock = threading.Lock()
        self.fired = False

    def watch(self, pe: int, what: str, target: int = -1,
              ctx=None) -> _WatchGuard:
        """Guard one blocked primitive; pass ``target``/``ctx`` when the
        wait is on a known remote PE so a survivable job detects that
        PE's failure immediately (see :class:`_WatchGuard`)."""
        return _WatchGuard(self, pe, what, target, ctx)

    # ------------------------------------------------------------------
    def _trip(self, pe: int) -> None:
        with self._fire_lock:
            if self.fired:
                return  # the report is already out; abort poll exits us
            self.fired = True
        report = self.build_report()
        self.job.abort()
        raise HangError(report)

    def build_report(self) -> HangReport:
        now = time.monotonic()
        entries = []
        for pe in range(self.job.num_pes):
            slot = self._blocked[pe]
            what, blocked_s = (slot[0], now - slot[1]) if slot is not None else ("", 0.0)
            entries.append(
                HangEntry(pe, what, blocked_s, self._trace_tail(pe))
            )
        return HangReport(self.deadline_s, tuple(entries))

    def _trace_tail(self, pe: int) -> tuple:
        tracer = self.job.tracer
        if tracer is None:
            return ()
        try:  # a racy mid-run trace read must never break the report
            evs = tracer.events[pe][-self.TAIL_EVENTS:]
        except Exception:  # pragma: no cover - defensive
            return ()
        return tuple(
            f"{e.op}" + (f"->PE{e.target}" if e.target >= 0 else "")
            + f" t=[{e.t_start:.2f},{e.t_end:.2f}]us"
            for e in evs
        )


__all__ = [
    "ALWAYS_FAIL",
    "DEFAULT_WATCHDOG_S",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "HangEntry",
    "HangError",
    "HangReport",
    "InjectedCrash",
    "TransientCommError",
    "Watchdog",
    "LATENCY_OPS",
    "TRANSIENT_OPS",
]
