"""Virtual-time simulation substrate.

The paper's evaluation ran on three production machines (Stampede, a Cray
XC30, and Titan).  This package is the substitution for that hardware: a
deterministic analytic cost engine in *virtual microseconds*.

* :mod:`repro.sim.clock` — per-PE virtual clocks.
* :mod:`repro.sim.resources` — serialized resources (NIC injection and
  reception engines, NIC atomic units, target CPUs) as reservation
  timelines; these produce contention, e.g. 16 communicating pairs
  sharing one node's NIC.
* :mod:`repro.sim.topology` — machine descriptions and PE placement
  (Table III of the paper).
* :mod:`repro.sim.machines` — the three evaluated machines.
* :mod:`repro.sim.netmodel` — LogGP-style cost functions for puts, gets,
  atomics, active messages and barriers, parameterized by a machine and
  a *conduit profile* (the software library: Cray SHMEM, MVAPICH2-X
  SHMEM, GASNet, MPI-3.0, Cray's DMAPP-based CAF runtime).
"""

from repro.sim.clock import VirtualClock
from repro.sim.resources import Timeline
from repro.sim.topology import Machine, Topology
from repro.sim.machines import STAMPEDE, CRAY_XC30, TITAN, MACHINES, get_machine
from repro.sim.netmodel import (
    ConduitProfile,
    NetworkModel,
    TransferTiming,
    CONDUITS,
    get_conduit,
)

__all__ = [
    "VirtualClock",
    "Timeline",
    "Machine",
    "Topology",
    "STAMPEDE",
    "CRAY_XC30",
    "TITAN",
    "MACHINES",
    "get_machine",
    "ConduitProfile",
    "NetworkModel",
    "TransferTiming",
    "CONDUITS",
    "get_conduit",
]
