"""LogGP-style communication cost engine.

This module prices every communication primitive the stack uses, in
virtual microseconds, given

* a :class:`~repro.sim.topology.Topology` (which machine, where each PE
  lives), and
* a :class:`ConduitProfile` — the *software* library doing the
  communication (Cray SHMEM, MVAPICH2-X SHMEM, GASNet, MPI-3.0, or
  Cray's DMAPP-based CAF runtime).

The separation matters because the paper's findings are exactly about
software profiles on shared hardware: on the same Aries fabric, Cray
SHMEM's ``shmem_iput`` is DMAPP-offloaded while a GASNet-based runtime
loops over contiguous puts; on the same InfiniBand fabric, MVAPICH2-X
SHMEM's ``shmem_iput`` is itself a loop of ``putmem`` calls (paper
Section V-B2), and MPI-3.0 passive-target RMA pays a higher
per-message software overhead (Figs 2-3).

Model summary (all times us, sizes bytes):

* **put** (inter-node): charge the conduit's software overhead, then
  reserve the source NIC injection engine and the destination NIC
  reception engine for ``nbytes / effective_bandwidth``; the wire adds
  one-way latency.  Local completion is immediate for eager-sized
  messages (the library buffers them) and at injection end for
  rendezvous-sized ones.  Remote completion is at reception end —
  visible to the initiator only through ``quiet``/``fence``.
* **get**: a request control message travels to the target, whose NIC
  streams the data back; blocking, completes at data arrival.
* **amo**: an 8-byte atomic.  NIC-offloaded conduits serialize on the
  target NIC's atomic unit; AM-emulated conduits (GASNet) serialize on
  the target *CPU* and additionally pay an attentiveness delay — the
  target thread must reach a poll point.  This asymmetry is what makes
  SHMEM-backed CAF locks faster (paper Figs 8-9).
* **iput/iget** (native): one descriptor covers ``nelems`` strided
  elements; the NIC pays a per-element gap on top of the byte time.
* **barrier**: dissemination barrier, ``ceil(log2(n))`` rounds.

Contention falls out of the reservation timelines: 16 pairs driving one
node's NIC share its injection bandwidth, reproducing the 1-pair vs
16-pair separation in the paper's Figures 2, 3, 6 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.resources import Timeline
from repro.sim.topology import Topology


def _alternating_chain(start: float, deltas: tuple[float, ...], reps: int) -> np.ndarray:
    """``cumsum([start, *deltas, *deltas, ...])`` with ``reps`` repetitions.

    ``np.cumsum`` accumulates strictly left to right, so the result is
    bit-for-bit the value chain a scalar loop applying ``deltas`` in
    order ``reps`` times would produce — the backbone of every batch
    pricing method below.
    """
    k = len(deltas)
    seq = np.empty(1 + k * reps, dtype=np.float64)
    seq[0] = start
    if reps:
        seq[1:] = np.tile(np.asarray(deltas, dtype=np.float64), reps)
    return np.cumsum(seq)


@dataclass(frozen=True, slots=True)
class TransferTiming:
    """When a one-sided transfer completes, from both ends."""

    local_complete: float  # initiator may reuse its source buffer
    remote_complete: float  # data is visible at the target


@dataclass(frozen=True, slots=True)
class ConduitProfile:
    """Software cost profile of one communication library."""

    name: str
    o_put_us: float  # per-call software overhead, put path
    o_get_us: float  # per-call software overhead, get path
    o_amo_us: float  # per-call software overhead, atomics
    o_barrier_us: float  # per-round software overhead in barriers
    amo_offload: bool  # True: NIC atomic unit; False: AM via target CPU
    iput_native: bool  # True: 1-D strided ops are NIC/DMAPP-offloaded
    iput_elem_gap_us: float  # per-element NIC gap for native strided ops
    eager_threshold: int  # bytes; messages <= this complete locally at once
    rendezvous_extra_us: float  # handshake cost for messages > eager
    bw_efficiency: float  # fraction of link bandwidth the library achieves

    def __post_init__(self) -> None:
        if not 0 < self.bw_efficiency <= 1:
            raise ValueError("bw_efficiency must be in (0, 1]")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be non-negative")


# ---------------------------------------------------------------------------
# Conduit registry.  Overheads calibrated so the paper's orderings hold:
# SHMEM < GASNet < MPI-3.0 on small-message latency; SHMEM above GASNet on
# large-message bandwidth; MVAPICH2-X iput loops over putmem; Cray iput is
# DMAPP-offloaded; GASNet atomics are AM round-trips.
# ---------------------------------------------------------------------------

CRAY_SHMEM = ConduitProfile(
    name="Cray SHMEM",
    o_put_us=0.20,
    o_get_us=0.25,
    o_amo_us=0.20,
    o_barrier_us=0.25,
    amo_offload=True,
    iput_native=True,
    iput_elem_gap_us=0.018,
    eager_threshold=4096,
    rendezvous_extra_us=0.8,
    bw_efficiency=0.97,
)

MVAPICH2X_SHMEM = ConduitProfile(
    name="MVAPICH2-X SHMEM",
    o_put_us=0.25,
    o_get_us=0.30,
    o_amo_us=0.25,
    o_barrier_us=0.30,
    amo_offload=True,
    iput_native=False,  # shmem_iput loops over putmem (paper Sec. V-B2)
    iput_elem_gap_us=0.0,
    eager_threshold=8192,
    rendezvous_extra_us=0.9,
    bw_efficiency=0.95,
)

GASNET = ConduitProfile(
    name="GASNet",
    o_put_us=0.32,
    o_get_us=0.40,
    o_amo_us=0.35,
    o_barrier_us=0.35,
    amo_offload=False,  # remote atomics via active messages
    iput_native=False,
    iput_elem_gap_us=0.0,
    eager_threshold=4096,
    rendezvous_extra_us=1.2,
    bw_efficiency=0.88,
)

MPI3 = ConduitProfile(
    name="MPI-3.0",
    o_put_us=0.90,
    o_get_us=1.00,
    o_amo_us=0.90,
    o_barrier_us=0.45,
    amo_offload=True,
    iput_native=False,
    iput_elem_gap_us=0.0,
    eager_threshold=8192,
    rendezvous_extra_us=1.5,
    bw_efficiency=0.92,
)

CRAY_MPICH = ConduitProfile(
    name="Cray MPICH",
    o_put_us=0.95,
    o_get_us=1.05,
    o_amo_us=0.95,
    o_barrier_us=0.45,
    amo_offload=True,
    iput_native=False,
    iput_elem_gap_us=0.0,
    eager_threshold=8192,
    rendezvous_extra_us=1.4,
    bw_efficiency=0.90,
)

# Cray's own CAF runtime over DMAPP (the Fig 6/8/9 compiler baseline).
# Slightly higher per-call overhead than raw Cray SHMEM (compiler runtime
# bookkeeping), less aggressive strided offload (coarser per-element gap),
# and its lock implementation lives in repro.caf.backends.craycaf.
DMAPP_CAF = ConduitProfile(
    name="Cray CAF (DMAPP)",
    o_put_us=0.31,
    o_get_us=0.35,
    o_amo_us=0.60,
    o_barrier_us=0.28,
    amo_offload=True,
    iput_native=True,
    iput_elem_gap_us=0.060,
    eager_threshold=4096,
    rendezvous_extra_us=1.0,
    bw_efficiency=0.90,
)

CONDUITS: dict[str, ConduitProfile] = {
    "cray-shmem": CRAY_SHMEM,
    "mvapich2x-shmem": MVAPICH2X_SHMEM,
    "gasnet": GASNET,
    "mpi3": MPI3,
    "cray-mpich": CRAY_MPICH,
    "dmapp-caf": DMAPP_CAF,
}


def get_conduit(name: str) -> ConduitProfile:
    """Look up a conduit profile by case-insensitive short name."""
    key = name.lower().replace("_", "-").replace(" ", "-")
    try:
        return CONDUITS[key]
    except KeyError:
        raise KeyError(
            f"unknown conduit {name!r}; available: {sorted(CONDUITS)}"
        ) from None


# ---------------------------------------------------------------------------


class NetworkModel:
    """Prices communication operations on one topology.

    One instance is shared by every PE of a job; all methods are
    thread-safe (the only shared mutable state is in the timelines).
    """

    def __init__(self, topology: Topology, timeline_factory=None) -> None:
        self.topology = topology
        m = topology.machine
        n = topology.num_nodes
        # ``timeline_factory`` lets an engine substitute its own Timeline
        # subclass (the process engine backs the accumulators with shared
        # memory so contention state spans PE processes).  Creation order
        # here is the factory's slot-assignment order — keep it stable.
        tf = Timeline if timeline_factory is None else timeline_factory
        self._tx = [tf(f"node{i}.tx") for i in range(n)]
        self._rx = [tf(f"node{i}.rx") for i in range(n)]
        self._amo = [tf(f"node{i}.amo") for i in range(n)]
        self._cpu = [tf(f"node{i}.amcpu") for i in range(n)]
        self._machine = m
        # Memoized pricing closures (see the "pricer" section below).
        # Plain dict; get/set are GIL-atomic and a lost race merely
        # builds an equivalent closure twice.
        self._pricers: dict[tuple, object] = {}

    # -- helpers ------------------------------------------------------
    def _wire_time(self, nbytes: int, conduit: ConduitProfile) -> float:
        return nbytes / (self._machine.link_bandwidth_Bpus * conduit.bw_efficiency)

    def reset(self) -> None:
        for group in (self._tx, self._rx, self._amo, self._cpu):
            for t in group:
                t.reset()

    def timelines(self) -> dict[str, list[Timeline]]:
        """Expose the resource timelines (for tests and utilization stats)."""
        return {"tx": self._tx, "rx": self._rx, "amo": self._amo, "cpu": self._cpu}

    # -- one-sided data movement --------------------------------------
    def put(
        self, src: int, dst: int, nbytes: int, conduit: ConduitProfile, now: float
    ) -> TransferTiming:
        """Price a contiguous put of ``nbytes`` from PE ``src`` to ``dst``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            ready = now + 0.5 * conduit.o_put_us
            done = ready + m.intra_latency_us + nbytes / m.intra_bandwidth_Bpus
            return TransferTiming(local_complete=done, remote_complete=done)
        overhead = conduit.o_put_us
        if nbytes > conduit.eager_threshold:
            overhead += conduit.rendezvous_extra_us
        ready = now + overhead
        wire = self._wire_time(nbytes, conduit)
        tx_start, tx_end = self._tx[src_node].reserve(ready, wire)
        _, rx_end = self._rx[dst_node].reserve(tx_start + m.link_latency_us, wire)
        local = ready if nbytes <= conduit.eager_threshold else tx_end
        return TransferTiming(local_complete=local, remote_complete=rx_end)

    def get(
        self, src: int, dst: int, nbytes: int, conduit: ConduitProfile, now: float
    ) -> float:
        """Price a blocking get: ``src`` reads ``nbytes`` from ``dst``.

        Returns the completion time (data available at the initiator).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            return now + 0.5 * conduit.o_get_us + m.intra_latency_us + nbytes / m.intra_bandwidth_Bpus
        request_arrival = now + conduit.o_get_us + m.link_latency_us
        wire = self._wire_time(nbytes, conduit)
        tx_start, _ = self._tx[dst_node].reserve(request_arrival, wire)
        _, rx_end = self._rx[src_node].reserve(tx_start + m.link_latency_us, wire)
        return rx_end

    @staticmethod
    def _gather_gap(
        conduit: ConduitProfile, elem_size: int, stride_bytes: int | None
    ) -> float:
        """Per-element gap of a strided descriptor.

        Elements farther apart than a cache line cost the gather/scatter
        engine progressively more (DMA descriptors walk memory with poor
        locality) — the physical basis of the paper's Section IV-C
        tradeoff between minimizing calls and preserving locality.
        """
        gap = conduit.iput_elem_gap_us
        if stride_bytes is None:
            stride_bytes = elem_size
        if stride_bytes > 64:
            gap *= min(5.0, 1.0 + 0.35 * math.log2(stride_bytes / 64))
        return gap

    def iput(
        self,
        src: int,
        dst: int,
        nelems: int,
        elem_size: int,
        conduit: ConduitProfile,
        now: float,
        stride_bytes: int | None = None,
    ) -> TransferTiming:
        """Price a *native* 1-D strided put (``shmem_iput``) of ``nelems``
        elements of ``elem_size`` bytes each, ``stride_bytes`` apart.

        Only meaningful when ``conduit.iput_native``; non-native conduits
        must instead loop over :meth:`put` calls — that decision is made
        by the SHMEM layer, mirroring how MVAPICH2-X implements
        ``shmem_iput`` as a series of contiguous puts.
        """
        if not conduit.iput_native:
            raise ValueError(
                f"{conduit.name} has no native iput; caller must loop over put()"
            )
        if nelems < 0 or elem_size <= 0:
            raise ValueError("nelems must be >= 0 and elem_size > 0")
        m = self._machine
        nbytes = nelems * elem_size
        gap = self._gather_gap(conduit, elem_size, stride_bytes)
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            ready = now + 0.5 * conduit.o_put_us
            done = (
                ready + m.intra_latency_us + nbytes / m.intra_bandwidth_Bpus + nelems * gap
            )
            return TransferTiming(local_complete=done, remote_complete=done)
        ready = now + conduit.o_put_us
        duration = self._wire_time(nbytes, conduit) + nelems * gap
        tx_start, tx_end = self._tx[src_node].reserve(ready, duration)
        _, rx_end = self._rx[dst_node].reserve(tx_start + m.link_latency_us, duration)
        # Strided source data cannot be eagerly buffered as one block; the
        # source buffer is free once the descriptor's gather completes.
        return TransferTiming(local_complete=tx_end, remote_complete=rx_end)

    def iget(
        self,
        src: int,
        dst: int,
        nelems: int,
        elem_size: int,
        conduit: ConduitProfile,
        now: float,
        stride_bytes: int | None = None,
    ) -> float:
        """Price a *native* blocking 1-D strided get (``shmem_iget``).

        Like :meth:`get` but the target NIC pays a per-element gather gap.
        Only valid for ``conduit.iput_native`` conduits.
        """
        if not conduit.iput_native:
            raise ValueError(
                f"{conduit.name} has no native iget; caller must loop over get()"
            )
        if nelems < 0 or elem_size <= 0:
            raise ValueError("nelems must be >= 0 and elem_size > 0")
        m = self._machine
        nbytes = nelems * elem_size
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            return now + 0.5 * conduit.o_get_us + m.intra_latency_us + nbytes / m.intra_bandwidth_Bpus
        request_arrival = now + conduit.o_get_us + m.link_latency_us
        gap = self._gather_gap(conduit, elem_size, stride_bytes)
        duration = self._wire_time(nbytes, conduit) + nelems * gap
        tx_start, _ = self._tx[dst_node].reserve(request_arrival, duration)
        _, rx_end = self._rx[src_node].reserve(tx_start + m.link_latency_us, duration)
        return rx_end

    # -- batched one-sided data movement -------------------------------
    #
    # Each *_batch method prices ``count`` identical back-to-back calls
    # issued by one initiator whose clock merges each call's local
    # completion before the next call (exactly what OneSidedLayer does),
    # returning the timing of the *final* call.  Within such a chain the
    # intermediate local/remote times increase monotonically, so callers
    # that only need the final clock value, the final pending-remote
    # time, and a single max-stamped memory update lose nothing.  All
    # arithmetic replays the scalar path's additions in the same order
    # (cumsum chains + the timelines' batch primitives), making every
    # returned time and every timeline counter bit-identical to ``count``
    # sequential calls.  The whole chain is priced atomically; under
    # multi-initiator contention the scalar path could interleave with
    # other PEs' reservations, but that interleaving is scheduler-
    # dependent (nondeterministic) either way.

    def put_batch(
        self,
        src: int,
        dst: int,
        nbytes: int,
        count: int,
        conduit: ConduitProfile,
        now: float,
    ) -> TransferTiming:
        """Price ``count`` identical contiguous puts; final call's timing."""
        if count <= 0:
            raise ValueError("count must be positive")
        if count == 1:
            return self.put(src, dst, nbytes, conduit, now)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            # done_k = ((now_k + 0.5*o) + lat) + nbytes/bw; now_{k+1} = done_k
            full = _alternating_chain(
                now,
                (
                    0.5 * conduit.o_put_us,
                    m.intra_latency_us,
                    nbytes / m.intra_bandwidth_Bpus,
                ),
                count,
            )
            done = float(full[-1])
            return TransferTiming(local_complete=done, remote_complete=done)
        wire = self._wire_time(nbytes, conduit)
        if nbytes <= conduit.eager_threshold:
            # Eager: local_k = ready_k = now_k + o, so the ready chain is
            # independent of the timelines and fully precomputable.
            ready = _alternating_chain(now, (conduit.o_put_us,), count)[1:]
            tx_starts = self._tx[src_node].reserve_batch(ready, wire)
            rx_starts = self._rx[dst_node].reserve_batch(
                tx_starts + m.link_latency_us, wire
            )
            return TransferTiming(
                local_complete=float(ready[-1]),
                remote_complete=float(rx_starts[-1] + wire),
            )
        # Rendezvous: local_k = tx_end_k, so ready_{k+1} = tx_end_k + o_r
        # >= tx_end_k = tx next_free — only the first call can queue.
        o_r = conduit.o_put_us + conduit.rendezvous_extra_us
        s1, _ = self._tx[src_node].reserve(now + o_r, wire)
        full = _alternating_chain(s1, (wire, o_r), count - 1)
        tx_starts = full[0::2]
        tx_end_last = float(tx_starts[-1] + wire)
        self._tx[src_node].push_batch(tx_end_last, count - 1, wire)
        rx_starts = self._rx[dst_node].reserve_batch(
            tx_starts + m.link_latency_us, wire
        )
        return TransferTiming(
            local_complete=tx_end_last,
            remote_complete=float(rx_starts[-1] + wire),
        )

    def get_batch(
        self,
        src: int,
        dst: int,
        nbytes: int,
        count: int,
        conduit: ConduitProfile,
        now: float,
    ) -> float:
        """Price ``count`` identical blocking gets; final completion time."""
        if count <= 0:
            raise ValueError("count must be positive")
        if count == 1:
            return self.get(src, dst, nbytes, conduit, now)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            full = _alternating_chain(
                now,
                (
                    0.5 * conduit.o_get_us,
                    m.intra_latency_us,
                    nbytes / m.intra_bandwidth_Bpus,
                ),
                count,
            )
            return float(full[-1])
        wire = self._wire_time(nbytes, conduit)
        # First call can queue on both timelines; reserve it for real.
        s1, _ = self._tx[dst_node].reserve(
            now + conduit.o_get_us + m.link_latency_us, wire
        )
        _, done1 = self._rx[src_node].reserve(s1 + m.link_latency_us, wire)
        # done_{k-1} -> +o_get -> +L -> tx_start_k -> +L -> rx_start_k
        # -> +wire -> done_k; each earliest provably >= the timeline's
        # next_free left by the previous call, so no re-queueing.
        full = _alternating_chain(
            done1,
            (conduit.o_get_us, m.link_latency_us, m.link_latency_us, wire),
            count - 1,
        )
        tx_starts = full[2::4]
        self._tx[dst_node].push_batch(float(tx_starts[-1] + wire), count - 1, wire)
        self._rx[src_node].push_batch(float(full[-1]), count - 1, wire)
        return float(full[-1])

    def iput_batch(
        self,
        src: int,
        dst: int,
        nelems: int,
        elem_size: int,
        count: int,
        conduit: ConduitProfile,
        now: float,
        stride_bytes: int | None = None,
    ) -> TransferTiming:
        """Price ``count`` identical native strided puts; final timing."""
        if not conduit.iput_native:
            raise ValueError(
                f"{conduit.name} has no native iput; caller must loop over put()"
            )
        if count <= 0:
            raise ValueError("count must be positive")
        if count == 1:
            return self.iput(src, dst, nelems, elem_size, conduit, now, stride_bytes)
        if nelems < 0 or elem_size <= 0:
            raise ValueError("nelems must be >= 0 and elem_size > 0")
        m = self._machine
        nbytes = nelems * elem_size
        gap = self._gather_gap(conduit, elem_size, stride_bytes)
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            full = _alternating_chain(
                now,
                (
                    0.5 * conduit.o_put_us,
                    m.intra_latency_us,
                    nbytes / m.intra_bandwidth_Bpus,
                    nelems * gap,
                ),
                count,
            )
            done = float(full[-1])
            return TransferTiming(local_complete=done, remote_complete=done)
        duration = self._wire_time(nbytes, conduit) + nelems * gap
        # local_k = tx_end_k, so ready_{k+1} = tx_end_k + o >= next_free:
        # only the first descriptor can queue on the injection engine.
        s1, _ = self._tx[src_node].reserve(now + conduit.o_put_us, duration)
        full = _alternating_chain(s1, (duration, conduit.o_put_us), count - 1)
        tx_starts = full[0::2]
        tx_end_last = float(tx_starts[-1] + duration)
        self._tx[src_node].push_batch(tx_end_last, count - 1, duration)
        rx_starts = self._rx[dst_node].reserve_batch(
            tx_starts + m.link_latency_us, duration
        )
        return TransferTiming(
            local_complete=tx_end_last,
            remote_complete=float(rx_starts[-1] + duration),
        )

    def iget_batch(
        self,
        src: int,
        dst: int,
        nelems: int,
        elem_size: int,
        count: int,
        conduit: ConduitProfile,
        now: float,
        stride_bytes: int | None = None,
    ) -> float:
        """Price ``count`` identical native strided gets; final completion."""
        if not conduit.iput_native:
            raise ValueError(
                f"{conduit.name} has no native iget; caller must loop over get()"
            )
        if count <= 0:
            raise ValueError("count must be positive")
        if count == 1:
            return self.iget(src, dst, nelems, elem_size, conduit, now, stride_bytes)
        if nelems < 0 or elem_size <= 0:
            raise ValueError("nelems must be >= 0 and elem_size > 0")
        m = self._machine
        nbytes = nelems * elem_size
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            full = _alternating_chain(
                now,
                (
                    0.5 * conduit.o_get_us,
                    m.intra_latency_us,
                    nbytes / m.intra_bandwidth_Bpus,
                ),
                count,
            )
            return float(full[-1])
        gap = self._gather_gap(conduit, elem_size, stride_bytes)
        duration = self._wire_time(nbytes, conduit) + nelems * gap
        s1, _ = self._tx[dst_node].reserve(
            now + conduit.o_get_us + m.link_latency_us, duration
        )
        _, done1 = self._rx[src_node].reserve(s1 + m.link_latency_us, duration)
        full = _alternating_chain(
            done1,
            (conduit.o_get_us, m.link_latency_us, m.link_latency_us, duration),
            count - 1,
        )
        tx_starts = full[2::4]
        self._tx[dst_node].push_batch(
            float(tx_starts[-1] + duration), count - 1, duration
        )
        self._rx[src_node].push_batch(float(full[-1]), count - 1, duration)
        return float(full[-1])

    # -- memoized pricing closures -------------------------------------
    #
    # Every pricing method above is a deterministic closed form of
    # (operation, src/dst *node* pair, sizes/counts/strides, conduit)
    # plus the initiator clock ``now`` and the mutable timeline state.
    # The vectorized data plane therefore memoizes *pricers*: closures
    # with the now-independent pieces resolved once (node lookups, wire
    # times, gather gaps, overhead sums, tiled delta templates, branch
    # selection) that replay the remaining arithmetic — the same float
    # additions in the same order — per call.  Results are bit-identical
    # to the plain methods; only redundant Python work is removed.
    # Actual priced times are NOT cached (they depend on ``now`` and on
    # timeline state, and float addition is not associative).

    def _pricer(self, key: tuple, make):
        p = self._pricers.get(key)
        if p is None:
            if len(self._pricers) > 16384:  # unbounded-growth backstop
                self._pricers.clear()
            p = make()
            self._pricers[key] = p
        return p

    def put_pricer(self, src: int, dst: int, nbytes: int, conduit: ConduitProfile):
        """Memoized :meth:`put` closure: ``price(now) -> TransferTiming``."""
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)

        def make():
            if nbytes < 0:
                raise ValueError("nbytes must be non-negative")
            m = self._machine
            if src_node == dst_node:
                half = 0.5 * conduit.o_put_us
                lat = m.intra_latency_us
                byte_t = nbytes / m.intra_bandwidth_Bpus

                def price(now: float) -> TransferTiming:
                    done = now + half + lat + byte_t
                    return TransferTiming(local_complete=done, remote_complete=done)

                return price
            overhead = conduit.o_put_us
            if nbytes > conduit.eager_threshold:
                overhead += conduit.rendezvous_extra_us
            eager = nbytes <= conduit.eager_threshold
            wire = self._wire_time(nbytes, conduit)
            tx, rx, L = self._tx[src_node], self._rx[dst_node], m.link_latency_us

            def price(now: float) -> TransferTiming:
                ready = now + overhead
                tx_start, tx_end = tx.reserve(ready, wire)
                _, rx_end = rx.reserve(tx_start + L, wire)
                return TransferTiming(
                    local_complete=ready if eager else tx_end, remote_complete=rx_end
                )

            return price

        return self._pricer(("put1", src_node, dst_node, nbytes, conduit), make)

    def get_pricer(self, src: int, dst: int, nbytes: int, conduit: ConduitProfile):
        """Memoized :meth:`get` closure: ``price(now) -> done``."""
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)

        def make():
            if nbytes < 0:
                raise ValueError("nbytes must be non-negative")
            m = self._machine
            if src_node == dst_node:
                half = 0.5 * conduit.o_get_us
                lat = m.intra_latency_us
                byte_t = nbytes / m.intra_bandwidth_Bpus
                return lambda now: now + half + lat + byte_t
            o_get = conduit.o_get_us
            wire = self._wire_time(nbytes, conduit)
            tx, rx, L = self._tx[dst_node], self._rx[src_node], m.link_latency_us

            def price(now: float) -> float:
                tx_start, _ = tx.reserve(now + o_get + L, wire)
                _, rx_end = rx.reserve(tx_start + L, wire)
                return rx_end

            return price

        return self._pricer(("get1", src_node, dst_node, nbytes, conduit), make)

    def iput_pricer(
        self,
        src: int,
        dst: int,
        nelems: int,
        elem_size: int,
        conduit: ConduitProfile,
        stride_bytes: int | None = None,
    ):
        """Memoized :meth:`iput` closure: ``price(now) -> TransferTiming``."""
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)

        def make():
            if not conduit.iput_native:
                raise ValueError(
                    f"{conduit.name} has no native iput; caller must loop over put()"
                )
            if nelems < 0 or elem_size <= 0:
                raise ValueError("nelems must be >= 0 and elem_size > 0")
            m = self._machine
            nbytes = nelems * elem_size
            gap = self._gather_gap(conduit, elem_size, stride_bytes)
            if src_node == dst_node:
                half = 0.5 * conduit.o_put_us
                lat = m.intra_latency_us
                byte_t = nbytes / m.intra_bandwidth_Bpus
                gap_t = nelems * gap

                def price(now: float) -> TransferTiming:
                    done = now + half + lat + byte_t + gap_t
                    return TransferTiming(local_complete=done, remote_complete=done)

                return price
            o = conduit.o_put_us
            duration = self._wire_time(nbytes, conduit) + nelems * gap
            tx, rx, L = self._tx[src_node], self._rx[dst_node], m.link_latency_us

            def price(now: float) -> TransferTiming:
                tx_start, tx_end = tx.reserve(now + o, duration)
                _, rx_end = rx.reserve(tx_start + L, duration)
                return TransferTiming(local_complete=tx_end, remote_complete=rx_end)

            return price

        return self._pricer(
            ("iput1", src_node, dst_node, nelems, elem_size, stride_bytes, conduit),
            make,
        )

    def iget_pricer(
        self,
        src: int,
        dst: int,
        nelems: int,
        elem_size: int,
        conduit: ConduitProfile,
        stride_bytes: int | None = None,
    ):
        """Memoized :meth:`iget` closure: ``price(now) -> done``."""
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)

        def make():
            if not conduit.iput_native:
                raise ValueError(
                    f"{conduit.name} has no native iget; caller must loop over get()"
                )
            if nelems < 0 or elem_size <= 0:
                raise ValueError("nelems must be >= 0 and elem_size > 0")
            m = self._machine
            nbytes = nelems * elem_size
            if src_node == dst_node:
                half = 0.5 * conduit.o_get_us
                lat = m.intra_latency_us
                byte_t = nbytes / m.intra_bandwidth_Bpus
                return lambda now: now + half + lat + byte_t
            o_get = conduit.o_get_us
            gap = self._gather_gap(conduit, elem_size, stride_bytes)
            duration = self._wire_time(nbytes, conduit) + nelems * gap
            tx, rx, L = self._tx[dst_node], self._rx[src_node], m.link_latency_us

            def price(now: float) -> float:
                tx_start, _ = tx.reserve(now + o_get + L, duration)
                _, rx_end = rx.reserve(tx_start + L, duration)
                return rx_end

            return price

        return self._pricer(
            ("iget1", src_node, dst_node, nelems, elem_size, stride_bytes, conduit),
            make,
        )

    def amo_pricer(self, src: int, dst: int, conduit: ConduitProfile):
        """Memoized :meth:`amo` pricing: ``(price, proc, back)``.

        ``proc``/``back`` are the target-side processing and return-leg
        constants the caller's handoff-causality adjustment needs (the
        same branch :meth:`OneSidedLayer.atomic` otherwise re-resolves
        per call).
        """
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)

        def make():
            m = self._machine
            if src_node == dst_node:
                half = 0.5 * conduit.o_amo_us
                tl, dur = self._amo[dst_node], m.amo_process_us

                def price(now: float) -> float:
                    _, end = tl.reserve(now + half, dur)
                    return end

                return price, m.amo_process_us, m.intra_latency_us
            o, L = conduit.o_amo_us, m.link_latency_us
            if conduit.amo_offload:
                tl, dur = self._amo[dst_node], m.amo_process_us

                def price(now: float) -> float:
                    _, end = tl.reserve(now + o + L, dur)
                    return end + L

                return price, m.amo_process_us, L
            att = m.am_attentiveness_us
            tl, dur = self._cpu[dst_node], m.cpu_am_process_us

            def price(now: float) -> float:
                _, end = tl.reserve(now + o + L + att, dur)
                return end + L

            return price, m.am_attentiveness_us + m.cpu_am_process_us, L

        return self._pricer(("amo1", src_node, dst_node, conduit), make)

    def batch_pricer(
        self,
        op: str,
        src: int,
        dst: int,
        *,
        count: int,
        conduit: ConduitProfile,
        nbytes: int = 0,
        nelems: int = 0,
        elem_size: int = 0,
        stride_bytes: int | None = None,
    ):
        """Memoized counterpart of the ``*_batch`` methods.

        ``op`` is ``put``/``get``/``iput``/``iget``; returns a closure
        ``price(now)`` with the same return type and the same timeline
        side effects as one call to the matching batch method.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if count == 1:  # the batch methods delegate to the scalar forms
            if op == "put":
                return self.put_pricer(src, dst, nbytes, conduit)
            if op == "get":
                return self.get_pricer(src, dst, nbytes, conduit)
            if op == "iput":
                return self.iput_pricer(src, dst, nelems, elem_size, conduit, stride_bytes)
            if op == "iget":
                return self.iget_pricer(src, dst, nelems, elem_size, conduit, stride_bytes)
            raise ValueError(f"unknown batch op {op!r}")
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        key = (
            op, src_node, dst_node, nbytes, nelems, elem_size, count, stride_bytes, conduit,
        )
        if op == "put":
            make = lambda: self._make_put_batch(src_node, dst_node, nbytes, count, conduit)
        elif op == "get":
            make = lambda: self._make_get_batch(src_node, dst_node, nbytes, count, conduit)
        elif op == "iput":
            make = lambda: self._make_iput_batch(
                src_node, dst_node, nelems, elem_size, count, conduit, stride_bytes
            )
        elif op == "iget":
            make = lambda: self._make_iget_batch(
                src_node, dst_node, nelems, elem_size, count, conduit, stride_bytes
            )
        else:
            raise ValueError(f"unknown batch op {op!r}")
        return self._pricer(key, make)

    @staticmethod
    def _chain_last(now: float, template: np.ndarray) -> float:
        """Final value of ``cumsum([now, *template])`` — the scalar
        chain's exact left-to-right additions."""
        seq = np.empty(1 + template.size, dtype=np.float64)
        seq[0] = now
        seq[1:] = template
        return float(np.cumsum(seq)[-1])

    def _make_put_batch(self, src_node, dst_node, nbytes, count, conduit):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        if src_node == dst_node:
            tmpl = np.tile(
                np.asarray(
                    (0.5 * conduit.o_put_us, m.intra_latency_us,
                     nbytes / m.intra_bandwidth_Bpus),
                    dtype=np.float64,
                ),
                count,
            )

            def price(now: float) -> TransferTiming:
                done = self._chain_last(now, tmpl)
                return TransferTiming(local_complete=done, remote_complete=done)

            return price
        wire = self._wire_time(nbytes, conduit)
        tx, rx, L = self._tx[src_node], self._rx[dst_node], m.link_latency_us
        if nbytes <= conduit.eager_threshold:
            o = conduit.o_put_us

            def price(now: float) -> TransferTiming:
                seq = np.empty(count + 1, dtype=np.float64)
                seq[0] = now
                seq[1:] = o
                ready = np.cumsum(seq)[1:]
                tx_starts = tx.reserve_batch(ready, wire)
                rx_starts = rx.reserve_batch(tx_starts + L, wire)
                return TransferTiming(
                    local_complete=float(ready[-1]),
                    remote_complete=float(rx_starts[-1] + wire),
                )

            return price
        o_r = conduit.o_put_us + conduit.rendezvous_extra_us
        tmpl = np.tile(np.asarray((wire, o_r), dtype=np.float64), count - 1)

        def price(now: float) -> TransferTiming:
            s1, _ = tx.reserve(now + o_r, wire)
            seq = np.empty(1 + tmpl.size, dtype=np.float64)
            seq[0] = s1
            seq[1:] = tmpl
            full = np.cumsum(seq)
            tx_starts = full[0::2]
            tx_end_last = float(tx_starts[-1] + wire)
            tx.push_batch(tx_end_last, count - 1, wire)
            rx_starts = rx.reserve_batch(tx_starts + L, wire)
            return TransferTiming(
                local_complete=tx_end_last,
                remote_complete=float(rx_starts[-1] + wire),
            )

        return price

    def _make_get_batch(self, src_node, dst_node, nbytes, count, conduit):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        if src_node == dst_node:
            tmpl = np.tile(
                np.asarray(
                    (0.5 * conduit.o_get_us, m.intra_latency_us,
                     nbytes / m.intra_bandwidth_Bpus),
                    dtype=np.float64,
                ),
                count,
            )
            return lambda now: self._chain_last(now, tmpl)
        o_get = conduit.o_get_us
        wire = self._wire_time(nbytes, conduit)
        tx, rx, L = self._tx[dst_node], self._rx[src_node], m.link_latency_us
        tmpl = np.tile(np.asarray((o_get, L, L, wire), dtype=np.float64), count - 1)

        def price(now: float) -> float:
            s1, _ = tx.reserve(now + o_get + L, wire)
            _, done1 = rx.reserve(s1 + L, wire)
            seq = np.empty(1 + tmpl.size, dtype=np.float64)
            seq[0] = done1
            seq[1:] = tmpl
            full = np.cumsum(seq)
            tx_starts = full[2::4]
            tx.push_batch(float(tx_starts[-1] + wire), count - 1, wire)
            rx.push_batch(float(full[-1]), count - 1, wire)
            return float(full[-1])

        return price

    def _make_iput_batch(
        self, src_node, dst_node, nelems, elem_size, count, conduit, stride_bytes
    ):
        if not conduit.iput_native:
            raise ValueError(
                f"{conduit.name} has no native iput; caller must loop over put()"
            )
        if nelems < 0 or elem_size <= 0:
            raise ValueError("nelems must be >= 0 and elem_size > 0")
        m = self._machine
        nbytes = nelems * elem_size
        gap = self._gather_gap(conduit, elem_size, stride_bytes)
        if src_node == dst_node:
            tmpl = np.tile(
                np.asarray(
                    (0.5 * conduit.o_put_us, m.intra_latency_us,
                     nbytes / m.intra_bandwidth_Bpus, nelems * gap),
                    dtype=np.float64,
                ),
                count,
            )

            def price(now: float) -> TransferTiming:
                done = self._chain_last(now, tmpl)
                return TransferTiming(local_complete=done, remote_complete=done)

            return price
        o = conduit.o_put_us
        duration = self._wire_time(nbytes, conduit) + nelems * gap
        tx, rx, L = self._tx[src_node], self._rx[dst_node], m.link_latency_us
        tmpl = np.tile(np.asarray((duration, o), dtype=np.float64), count - 1)

        def price(now: float) -> TransferTiming:
            s1, _ = tx.reserve(now + o, duration)
            seq = np.empty(1 + tmpl.size, dtype=np.float64)
            seq[0] = s1
            seq[1:] = tmpl
            full = np.cumsum(seq)
            tx_starts = full[0::2]
            tx_end_last = float(tx_starts[-1] + duration)
            tx.push_batch(tx_end_last, count - 1, duration)
            rx_starts = rx.reserve_batch(tx_starts + L, duration)
            return TransferTiming(
                local_complete=tx_end_last,
                remote_complete=float(rx_starts[-1] + duration),
            )

        return price

    def _make_iget_batch(
        self, src_node, dst_node, nelems, elem_size, count, conduit, stride_bytes
    ):
        if not conduit.iput_native:
            raise ValueError(
                f"{conduit.name} has no native iget; caller must loop over get()"
            )
        if nelems < 0 or elem_size <= 0:
            raise ValueError("nelems must be >= 0 and elem_size > 0")
        m = self._machine
        nbytes = nelems * elem_size
        if src_node == dst_node:
            tmpl = np.tile(
                np.asarray(
                    (0.5 * conduit.o_get_us, m.intra_latency_us,
                     nbytes / m.intra_bandwidth_Bpus),
                    dtype=np.float64,
                ),
                count,
            )
            return lambda now: self._chain_last(now, tmpl)
        o_get = conduit.o_get_us
        gap = self._gather_gap(conduit, elem_size, stride_bytes)
        duration = self._wire_time(nbytes, conduit) + nelems * gap
        tx, rx, L = self._tx[dst_node], self._rx[src_node], m.link_latency_us
        tmpl = np.tile(np.asarray((o_get, L, L, duration), dtype=np.float64), count - 1)

        def price(now: float) -> float:
            s1, _ = tx.reserve(now + o_get + L, duration)
            _, done1 = rx.reserve(s1 + L, duration)
            seq = np.empty(1 + tmpl.size, dtype=np.float64)
            seq[0] = done1
            seq[1:] = tmpl
            full = np.cumsum(seq)
            tx_starts = full[2::4]
            tx.push_batch(float(tx_starts[-1] + duration), count - 1, duration)
            rx.push_batch(float(full[-1]), count - 1, duration)
            return float(full[-1])

        return price

    # -- atomics -------------------------------------------------------
    def amo(self, src: int, dst: int, conduit: ConduitProfile, now: float) -> float:
        """Price an 8-byte remote atomic (swap/cswap/fadd/...).

        Returns the completion time of the fetching round trip.
        """
        m = self._machine
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            _, end = self._amo[dst_node].reserve(
                now + 0.5 * conduit.o_amo_us, m.amo_process_us
            )
            return end
        if conduit.amo_offload:
            arrival = now + conduit.o_amo_us + m.link_latency_us
            _, end = self._amo[dst_node].reserve(arrival, m.amo_process_us)
            return end + m.link_latency_us
        # Active-message emulation: through the target CPU.
        arrival = (
            now + conduit.o_amo_us + m.link_latency_us + m.am_attentiveness_us
        )
        _, end = self._cpu[dst_node].reserve(arrival, m.cpu_am_process_us)
        return end + m.link_latency_us

    # -- uncontended (closed-form) pricing -----------------------------
    #
    # The collective library prices its traffic with these pure variants:
    # same formulas as put/get/amo but with every shared lane assumed
    # idle, so no Timeline is reserved.  Two reasons.  First, collective
    # algorithms schedule their own traffic — the staggered rounds of a
    # tree or ring are exactly what keeps lanes conflict-free, and that
    # is the structure the closed-form cost model already accounts for.
    # Second, Timeline.reserve depends on *call order*, which differs
    # between the threaded engine (wall clock) and the event engine
    # (deterministic heap order); pricing a synchronized algorithm
    # through contended lanes would make its virtual times schedule-
    # dependent.  With the pure forms, completion times are a function
    # of the algorithm's happens-before order alone, so results *and*
    # virtual times are bit-identical across engines and across explorer
    # schedules.

    def put_uncontended(
        self, src: int, dst: int, nbytes: int, conduit: ConduitProfile, now: float
    ) -> TransferTiming:
        """:meth:`put` with idle lanes: pure arithmetic, no reservations."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        if self.topology.node_of(src) == self.topology.node_of(dst):
            ready = now + 0.5 * conduit.o_put_us
            done = ready + m.intra_latency_us + nbytes / m.intra_bandwidth_Bpus
            return TransferTiming(local_complete=done, remote_complete=done)
        overhead = conduit.o_put_us
        if nbytes > conduit.eager_threshold:
            overhead += conduit.rendezvous_extra_us
        ready = now + overhead
        wire = self._wire_time(nbytes, conduit)
        local = ready if nbytes <= conduit.eager_threshold else ready + wire
        return TransferTiming(
            local_complete=local,
            remote_complete=ready + m.link_latency_us + wire,
        )

    def get_uncontended(
        self, src: int, dst: int, nbytes: int, conduit: ConduitProfile, now: float
    ) -> float:
        """:meth:`get` with idle lanes: pure arithmetic, no reservations."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        m = self._machine
        if self.topology.node_of(src) == self.topology.node_of(dst):
            return (
                now + 0.5 * conduit.o_get_us + m.intra_latency_us
                + nbytes / m.intra_bandwidth_Bpus
            )
        return (
            now + conduit.o_get_us + 2.0 * m.link_latency_us
            + self._wire_time(nbytes, conduit)
        )

    def amo_uncontended(
        self, src: int, dst: int, conduit: ConduitProfile, now: float
    ) -> float:
        """:meth:`amo` with an idle atomic unit: pure arithmetic."""
        m = self._machine
        if self.topology.node_of(src) == self.topology.node_of(dst):
            return now + 0.5 * conduit.o_amo_us + m.amo_process_us
        if conduit.amo_offload:
            return (
                now + conduit.o_amo_us + m.link_latency_us
                + m.amo_process_us + m.link_latency_us
            )
        return (
            now + conduit.o_amo_us + m.link_latency_us
            + m.am_attentiveness_us + m.cpu_am_process_us + m.link_latency_us
        )

    # -- active messages ----------------------------------------------
    def am_request(
        self, src: int, dst: int, payload: int, conduit: ConduitProfile, now: float
    ) -> TransferTiming:
        """Price a one-way active message with ``payload`` bytes.

        ``local_complete`` is when the initiator may continue;
        ``remote_complete`` is when the target handler has run.
        """
        if payload < 0:
            raise ValueError("payload must be non-negative")
        m = self._machine
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        if src_node == dst_node:
            local = now + 0.5 * conduit.o_put_us
            _, end = self._cpu[dst_node].reserve(
                local + m.intra_latency_us, m.cpu_am_process_us
            )
            return TransferTiming(local_complete=local, remote_complete=end)
        ready = now + conduit.o_put_us
        wire = self._wire_time(payload, conduit)
        tx_start, tx_end = self._tx[src_node].reserve(ready, wire)
        arrival = tx_start + m.link_latency_us + wire + m.am_attentiveness_us
        _, end = self._cpu[dst_node].reserve(arrival, m.cpu_am_process_us)
        local = ready if payload <= conduit.eager_threshold else tx_end
        return TransferTiming(local_complete=local, remote_complete=end)

    def am_roundtrip(
        self, src: int, dst: int, payload: int, conduit: ConduitProfile, now: float
    ) -> float:
        """Price a request/reply active-message pair; returns reply time."""
        t = self.am_request(src, dst, payload, conduit, now)
        m = self._machine
        if self.topology.same_node(src, dst):
            return t.remote_complete + m.intra_latency_us
        return t.remote_complete + m.link_latency_us

    # -- collectives ----------------------------------------------------
    def barrier_cost(self, npes: int, conduit: ConduitProfile) -> float:
        """Cost added on top of the max arrival time of a barrier over
        ``npes`` PEs (dissemination barrier: ceil(log2 n) rounds)."""
        if npes <= 0:
            raise ValueError("npes must be positive")
        if npes == 1:
            return conduit.o_barrier_us
        rounds = math.ceil(math.log2(npes))
        return rounds * (conduit.o_barrier_us + self._machine.link_latency_us)

    def reduction_cost(
        self, npes: int, nbytes: int, conduit: ConduitProfile
    ) -> float:
        """Cost of a tree reduction/broadcast of ``nbytes`` over ``npes``."""
        if npes <= 0:
            raise ValueError("npes must be positive")
        if npes == 1:
            return conduit.o_barrier_us
        rounds = math.ceil(math.log2(npes))
        per_round = (
            conduit.o_put_us + self._machine.link_latency_us + self._wire_time(nbytes, conduit)
        )
        return rounds * per_round

    # -- collective algorithm closed forms ------------------------------
    def _collective_primitives(
        self, nbytes: int, conduit: ConduitProfile, inter: bool
    ) -> tuple[float, float, float, float]:
        """(put, get, post, lift) critical-path estimates for one link
        class.

        Pure arithmetic — no timeline reservations — so pricing a
        candidate algorithm never perturbs the simulation state.  The
        first three mirror the uncontended paths of :meth:`put`/
        :meth:`get`/:meth:`amo`; ``lift`` is the causality charge the
        waiter's *consume* atomic pays on top of the poster's fadd
        (target-side processing plus the return leg — always intra,
        because the consume is a self-targeted atomic on the waiter's
        own flag word).
        """
        m = self._machine
        lift = m.amo_process_us + m.intra_latency_us
        if not inter:
            move = m.intra_latency_us + nbytes / m.intra_bandwidth_Bpus
            put = 0.5 * conduit.o_put_us + move
            get = 0.5 * conduit.o_get_us + move
            post = 0.5 * conduit.o_amo_us + m.amo_process_us
            return put, get, post, lift
        L = m.link_latency_us
        wire = self._wire_time(nbytes, conduit)
        put = conduit.o_put_us + L + wire
        if nbytes > conduit.eager_threshold:
            put += conduit.o_put_us  # rendezvous handshake
        get = conduit.o_get_us + 2.0 * L + wire
        if conduit.amo_offload:
            post = conduit.o_amo_us + 2.0 * L + m.amo_process_us
        else:
            post = (
                conduit.o_amo_us + 2.0 * L + m.am_attentiveness_us
                + m.cpu_am_process_us
            )
        return put, get, post, lift

    def collective_cost(
        self,
        algo: str,
        npes: int,
        nbytes: int,
        conduit: ConduitProfile,
        *,
        kind: str = "reduce",
        nnodes: int = 1,
        max_per_node: int | None = None,
        broadcast: bool = True,
        inter_bits: tuple[bool, ...] | None = None,
    ) -> float:
        """Closed-form critical-path estimate of one collective call's
        algorithm body (excluding the team barrier that frames every
        call — identical across candidates, so irrelevant to ranking).

        ``kind`` is ``reduce`` / ``bcast`` / ``allgather``; ``algo`` one
        of ``linear`` / ``binomial`` / ``recdbl`` / ``ring`` / ``hier``
        (each kind admits a subset); ``npes`` the team size, ``nbytes``
        the payload (the per-PE slice for ``allgather``),
        ``nnodes``/``max_per_node`` the team's shape on the topology.
        ``inter_bits[i]`` says whether tree round ``i`` (rank distance
        ``2^i``) crosses nodes (:attr:`TeamComm.tree_inter_bits`); when
        omitted, a node-aligned rank order is assumed.  Pure arithmetic
        over machine/conduit constants (same pattern as
        :meth:`barrier_cost`), used by the
        :class:`repro.collectives.AlgorithmSelector` to rank candidates
        and validated against measured virtual times in
        ``repro.bench.collectives``; see docs/MODEL.md §11 for the
        derivation.
        """
        if npes <= 0:
            raise ValueError("npes must be positive")
        if npes == 1:
            return 0.0
        per_node = max_per_node
        if per_node is None:
            per_node = -(-npes // max(nnodes, 1))
        rounds = max((npes - 1).bit_length(), 1)
        if inter_bits is None:
            # Aligned assumption: rank distances below the node width
            # stay on-node.
            inter_bits = tuple(
                nnodes > 1 and (1 << i) >= per_node for i in range(rounds)
            )
        iput, iget, ipost, lift = self._collective_primitives(
            nbytes, conduit, False
        )
        xput, xget, xpost, _ = self._collective_primitives(
            nbytes, conduit, True
        )
        inter_any = nnodes > 1

        def up(x: bool) -> float:
            # Child posts (quiet + fadd), parent's consume rides the
            # causality lift, parent pulls the child's accumulator.
            return (xpost + lift + xget) if x else (ipost + lift + iget)

        def down(x: bool) -> float:
            # Parent deposits and flags; child's consume pays the lift.
            return (xput + xpost + lift) if x else (iput + ipost + lift)

        def cls(i: int) -> bool:
            return inter_bits[i] if i < len(inter_bits) else inter_any

        put, get, post = (
            (xput, xget, xpost) if inter_any else (iput, iget, ipost)
        )
        if kind == "bcast":
            if algo == "linear":
                return (npes - 1) * (put + post) + lift
            if algo == "binomial":
                return sum(down(cls(i)) for i in range(rounds))
            if algo == "hier":
                xrounds = max((nnodes - 1).bit_length(), 0)
                return (
                    xrounds * down(True)
                    + max(per_node - 1, 0) * (iput + ipost) + lift
                )
            raise ValueError(f"unknown collective algorithm {algo!r}")
        if kind == "allgather":
            if algo == "linear":
                # Everyone posts readiness once, then pulls the other
                # m-1 slices back to back.
                return post + lift + (npes - 1) * get
            if algo == "ring":
                # m-1 rounds of the 6-step neighbor handshake, one full
                # slice pulled per round.
                return (npes - 1) * (2.0 * (post + lift) + get)
            raise ValueError(f"unknown collective algorithm {algo!r}")
        if kind != "reduce":
            raise ValueError(f"unknown collective kind {kind!r}")
        if algo == "linear":
            cost = (npes - 1) * (post + get) + lift
            if broadcast:
                cost += (npes - 1) * (put + post) + lift
            return cost
        if algo == "binomial":
            cost = sum(up(cls(i)) for i in range(rounds))
            if broadcast:
                cost += sum(down(cls(i)) for i in range(rounds))
            return cost
        if algo == "recdbl":
            # Always an allreduce.  Each doubling round is a symmetric
            # exchange: post readiness, pull the partner's accumulator
            # (an up-hop), then an ack post the partner's consume lifts.
            p = 1 << (npes.bit_length() - 1)  # largest power of two <= m
            cost = sum(
                up(cls(i)) + (xpost if cls(i) else ipost) + lift
                for i in range(max(p.bit_length() - 1, 0))
            )
            if p != npes:
                # Non-power-of-two fold: adjacent-rank pre-fold up-hop
                # plus the finished-result down-hop.  When the fold hop
                # crosses nodes, the up-leg is almost entirely absorbed
                # by first-round slack — by the time a fold survivor
                # enters the core rounds its partners' flags are already
                # posted, so the straggler's extra critical-path
                # contribution is one consume lift plus the local
                # staging copy, not a full inter-node post/wait hop
                # (measured on node-misaligned teams to ~25 ns).
                if cls(0):
                    fold_up = (
                        lift + nbytes / self._machine.intra_bandwidth_Bpus
                    )
                else:
                    fold_up = up(False)
                cost += fold_up + down(cls(0))
            return cost
        if algo == "ring":
            chunk = -(-nbytes // npes)  # ceil: per-round chunk payload
            cput, cget, cpost, _ = self._collective_primitives(
                chunk, conduit, inter_any
            )
            return 2.0 * (npes - 1) * (2.0 * (cpost + lift) + cget)
        if algo == "hier":
            # Leader gathers its node linearly over intra links, a
            # binomial tree runs over node leaders (inter links), then
            # leaders scatter back.  Always delivers everywhere.
            xrounds = max((nnodes - 1).bit_length(), 0)
            return (
                max(per_node - 1, 0) * ((ipost + iget) + (iput + ipost))
                + xrounds * (up(True) + down(True))
                + lift
            )
        raise ValueError(f"unknown collective algorithm {algo!r}")
