"""Coarrays and co-indexed references.

A :class:`Coarray` is the Python rendering of ``real :: x(n,m)[*]``:
an array with one instance per image, remotely accessible by all.
Local access uses normal NumPy indexing on the coarray itself; remote
access goes through :meth:`Coarray.on`, the analogue of the square
bracket co-subscript::

    x = caf.coarray((4,), np.int64)      # integer :: x(4)[*]
    x[:] = caf.this_image()              # x = this_image()
    caf.sync_all()                       # sync all
    v = x.on(4)[2]                       # v = x(3)[4]   (0-based here)
    x.on(4)[0] = v                       # x(1)[4] = v

Co-indexed slice assignments and reads are planned by the runtime's
strided engine and executed over the backend layer; each access accepts
an ``algorithm`` override through :meth:`CoindexedRef.get` /
:meth:`CoindexedRef.put` for benchmarking.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.runtime.context import current

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.caf.runtime import CafRuntime
    from repro.comm.heap import SymmetricArray


class Coarray:
    """A symmetric, remotely-accessible array (one instance per image).

    ``codim`` optionally attaches a corank>1 codimension spec
    (:class:`repro.caf.codimension.Codimensions`, e.g. ``[2,3,*]``);
    the :meth:`image_index` / :meth:`this_image_subs` intrinsics and
    cosubscript co-indexing (``x.at(1, 2, 1)``) then work on it.
    """

    def __init__(self, runtime: "CafRuntime", shape, dtype, codim=None) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.runtime = runtime
        self.codim = codim
        alloc_shape = self.shape if self.shape else (1,)
        self.handle: "SymmetricArray" = runtime.alloc_symmetric(alloc_shape, self.dtype)
        self._allocated = True

    # -- local access ---------------------------------------------------
    @property
    def local(self) -> np.ndarray:
        """This image's instance (zero-copy NumPy view)."""
        self._check()
        view = self.handle.local
        return view.reshape(self.shape) if self.shape else view.reshape(())

    def __getitem__(self, key):
        return self.local[key]

    def __setitem__(self, key, value) -> None:
        self.local[key] = value

    def __array__(self, dtype=None, copy=None):
        arr = self.local
        if dtype is not None:
            arr = arr.astype(dtype)
        return np.array(arr, copy=True) if copy else arr

    # -- codimension intrinsics ------------------------------------------
    def image_index(self, *cosubscripts: int) -> int:
        """``image_index(coarray, sub)``: image holding the cosubscripts,
        or 0 if none (requires a ``codim`` spec)."""
        if self.codim is None:
            raise ValueError("coarray has no codimension spec (corank 1)")
        return self.codim.image_index(tuple(cosubscripts), self.runtime.num_images())

    def this_image_subs(self) -> tuple[int, ...]:
        """``this_image(coarray)``: the calling image's cosubscripts."""
        if self.codim is None:
            raise ValueError("coarray has no codimension spec (corank 1)")
        return self.codim.this_image(
            self.runtime.this_image(), self.runtime.num_images()
        )

    def at(self, *cosubscripts: int) -> "CoindexedRef":
        """Co-index by cosubscripts: ``x.at(2, 1)`` is ``x[2, 1]`` in
        Fortran's multi-codimension bracket notation."""
        image = self.image_index(*cosubscripts)
        if image == 0:
            raise IndexError(
                f"cosubscripts {cosubscripts} name no existing image "
                f"({self.runtime.num_images()} images)"
            )
        return self.on(image)

    # -- remote access ----------------------------------------------------
    def on(self, image: int) -> "CoindexedRef":
        """Co-index this coarray on ``image`` (1-based), like ``[image]``."""
        self._check()
        self.runtime.image_to_pe(image)  # validate early
        return CoindexedRef(self, image)

    # -- lifecycle ----------------------------------------------------------
    def deallocate(self) -> None:
        """Collective deallocation (``deallocate`` -> ``shfree``)."""
        self._check()
        self.runtime.free_symmetric(self.handle)
        self._allocated = False

    def _check(self) -> None:
        if not self._allocated:
            raise ValueError("coarray used after deallocate")

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "" if self._allocated else ", deallocated"
        return f"Coarray(shape={self.shape}, dtype={self.dtype}{state})"


class CoindexedRef:
    """``coarray ... [image]`` — a co-indexed view for one remote image."""

    __slots__ = ("coarray", "image")

    def __init__(self, coarray: Coarray, image: int) -> None:
        self.coarray = coarray
        self.image = image

    @property
    def is_local(self) -> bool:
        return self.image - 1 == current().pe

    def __getitem__(self, key):
        return self.get(key)

    def __setitem__(self, key, value) -> None:
        self.put(key, value)

    def get(self, key=..., *, algorithm: str | None = None):
        """Read a section from the remote image."""
        ca = self.coarray
        ca._check()
        shape = ca.shape if ca.shape else (1,)
        result = ca.runtime.get_section(
            ca.handle, shape, self.image, key, algorithm=algorithm
        )
        if not ca.shape:  # scalar coarray
            return result[0] if isinstance(result, np.ndarray) else result
        return result

    def put(self, key, value, *, algorithm: str | None = None) -> None:
        """Write a section on the remote image."""
        ca = self.coarray
        ca._check()
        shape = ca.shape if ca.shape else (1,)
        ca.runtime.put_section(
            ca.handle, shape, self.image, key, value, algorithm=algorithm
        )

    # Scalar-coarray sugar: x.on(j).value / x.on(j).set(v)
    @property
    def value(self):
        return self.get(...)

    def set(self, value) -> None:
        self.put(..., value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoindexedRef({self.coarray!r}, image={self.image})"
