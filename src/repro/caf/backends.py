"""CAF runtime backends — the communication layers UHCAF can target.

The paper's point is that the CAF runtime is *retargetable*: the same
translation runs over OpenSHMEM, GASNet (the original UHCAF transport),
or MPI-3.0 RMA.  A backend bundles:

* the underlying one-sided layer (with its conduit profile),
* which lock algorithm the runtime uses on it (``mcs`` — the paper's
  contribution — needs remote fetch-and-store/compare-and-swap, which
  every layer here exposes; the Cray CAF reference backend uses a
  central test-and-set, modeling the less scalable vendor locks that
  the paper's Fig 8 baseline exhibits),
* the default multi-dimensional strided policy.

``craycaf`` is not a UHCAF target but the *reference model of the Cray
Fortran compiler's own runtime* used as the Fig 6/8/9 baseline: DMAPP
transfers with slightly higher per-call overhead, strided transfers
always along the fastest dimension (no base-dimension choice), and
test-and-set locks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import gasnet as gasnet_mod
from repro import mpirma as mpirma_mod
from repro import shmem as shmem_mod
from repro.comm.base import OneSidedLayer
from repro.runtime.launcher import Job
from repro.sim.netmodel import ConduitProfile

BACKENDS = ("shmem", "gasnet", "mpi", "craycaf")
LOCK_ALGORITHMS = ("mcs", "tas")


@dataclass(frozen=True, slots=True)
class CafBackend:
    """One retarget of the CAF runtime."""

    name: str
    layer: OneSidedLayer
    lock_algorithm: str
    strided_default: str

    def __post_init__(self) -> None:
        if self.lock_algorithm not in LOCK_ALGORITHMS:
            raise ValueError(
                f"unknown lock algorithm {self.lock_algorithm!r}; expected {LOCK_ALGORITHMS}"
            )


class _DmappLayer(OneSidedLayer):
    """The Cray CAF runtime's DMAPP transport (reference baseline)."""

    LAYER_NAME = "dmapp"


def make_backend(
    job: Job,
    name: str,
    *,
    profile: ConduitProfile | str | None = None,
    lock_algorithm: str | None = None,
    strided: str | None = None,
) -> CafBackend:
    """Construct (and attach to ``job``) the named backend.

    ``profile`` overrides the conduit (e.g. force MVAPICH2-X SHMEM on a
    Cray machine for what-if runs); ``lock_algorithm`` and ``strided``
    override the backend defaults (used by the ablation benchmarks).
    """
    if name == "shmem":
        layer: OneSidedLayer = shmem_mod.attach(job, profile)
        defaults = ("mcs", "auto")
    elif name == "gasnet":
        layer = gasnet_mod.attach(job, profile or "gasnet")
        defaults = ("mcs", "auto")
    elif name == "mpi":
        layer = mpirma_mod.attach(job, profile or "mpi3")
        defaults = ("mcs", "auto")
    elif name == "craycaf":
        if _DmappLayer.LAYER_NAME in job.layers:
            layer = job.layers[_DmappLayer.LAYER_NAME]
        else:
            layer = _DmappLayer(job, profile or "dmapp-caf")
            job.layers[_DmappLayer.LAYER_NAME] = layer
        defaults = ("tas", "lastdim")
    else:
        raise ValueError(f"unknown CAF backend {name!r}; expected one of {BACKENDS}")
    return CafBackend(
        name=name,
        layer=layer,
        lock_algorithm=lock_algorithm or defaults[0],
        strided_default=strided or defaults[1],
    )
