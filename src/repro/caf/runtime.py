"""The CAF runtime (the paper's UHCAF retargeted onto OpenSHMEM et al.).

One :class:`CafRuntime` per job implements the translation of paper
Section IV on top of a pluggable :class:`~repro.caf.backends.CafBackend`:

* **Symmetric data** (Section IV-A): coarrays allocate collectively
  through the backend layer (``allocate`` -> ``shmalloc``).
* **Non-symmetric remotely-accessible data** (Section IV-A): one big
  symmetric buffer is reserved at startup (the *managed heap*); each
  image sub-allocates from its own copy independently, and remote
  references are the packed 20/36/8-bit pointers of Section IV-D.
* **RMA ordering** (Section IV-B): CAF guarantees same-image
  same-location ordering; OpenSHMEM does not.  With
  ``ordering="caf"`` (default) the runtime inserts ``quiet`` after
  every put and before every get, exactly as the paper describes.
  ``ordering="relaxed"`` drops the implicit quiets (ablation).
* **Strided sections** (Section IV-C): co-indexed slices are planned by
  :mod:`repro.caf.strided` under the runtime's (or per-call) policy.
* **Locks** (Section IV-D): :mod:`repro.caf.locks` implements the MCS
  adaptation on this runtime's managed heap and atomics.

Images are 1-based (Fortran); the runtime converts to 0-based PEs at
the backend boundary.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Any

import numpy as np

from repro.caf import rma
from repro.caf.backends import CafBackend, make_backend
from repro.caf.strided import make_plan, normalize_selection
from repro.comm.constants import CMP_GE
from repro.comm.heap import SymmetricArray
from repro.runtime.context import PEContext, current
from repro.runtime.failures import STAT_FAILED_IMAGE, ImageFailedError
from repro.runtime.launcher import Job
from repro.sim.netmodel import ConduitProfile
from repro.util.allocator import FreeListAllocator
from repro.util.bitpack import MAX_OFFSET

LAYER_NAME = "caf"

DEFAULT_MANAGED_HEAP_BYTES = 1 << 20

#: Implicit-lock slots backing the `critical` construct (see startup()).
CRITICAL_SLOTS = 64

ORDERINGS = ("caf", "relaxed")

DEFAULT_PLAN_CACHE_SIZE = 128


def _canonical_key(key) -> tuple | None:
    """A hashable, canonical form of a subscript, or ``None`` if the
    subscript contains anything uncacheable (slices are not hashable on
    older Pythons, so they are re-encoded as tuples)."""
    if not isinstance(key, tuple):
        key = (key,)
    out = []
    for k in key:
        if isinstance(k, (int, np.integer)):
            out.append(int(k))
        elif isinstance(k, slice):
            parts = []
            for p in (k.start, k.stop, k.step):
                if p is None:
                    parts.append(None)
                elif isinstance(p, (int, np.integer)):
                    parts.append(int(p))
                else:
                    return None
            out.append(("s", *parts))
        elif k is Ellipsis:
            out.append("...")
        else:
            return None
    return tuple(out)


class CafError(RuntimeError):
    """Errors in CAF semantics (bad image index, misuse of locks, ...)."""


class CafRuntime:
    """Runtime state shared by all images of one CAF program."""

    def __init__(
        self,
        job: Job,
        backend: str | CafBackend = "shmem",
        *,
        profile: ConduitProfile | str | None = None,
        strided: str | None = None,
        ordering: str = "caf",
        managed_heap_bytes: int | None = None,
        lock_algorithm: str | None = None,
        use_shmem_ptr: bool = False,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(f"ordering must be one of {ORDERINGS}")
        if managed_heap_bytes is None:
            # Reserve a quarter of the symmetric heap (capped) for
            # non-symmetric data, leaving the rest for coarrays.
            managed_heap_bytes = min(DEFAULT_MANAGED_HEAP_BYTES, job.heap_bytes // 4)
        if not 0 < managed_heap_bytes <= MAX_OFFSET:
            raise ValueError(
                f"managed heap must fit the 36-bit remote-pointer offset "
                f"(max {MAX_OFFSET} bytes)"
            )
        self.job = job
        if isinstance(backend, str):
            backend = make_backend(
                job, backend, profile=profile, lock_algorithm=lock_algorithm, strided=strided
            )
        self.backend = backend
        self.layer = backend.layer
        self.ordering = ordering
        self.strided_policy = strided or backend.strided_default
        # Future-work extension (paper Sec. VII): convert intra-node
        # co-indexed accesses into direct load/store via shmem_ptr.
        self.use_shmem_ptr = use_shmem_ptr
        self.managed_heap_bytes = managed_heap_bytes
        # Per-image private allocator over the managed heap: allocations
        # are non-symmetric (different offsets on different images).
        self._managed_alloc = [
            FreeListAllocator(managed_heap_bytes, alignment=16) for _ in range(job.num_pes)
        ]
        # Filled by startup() (collective allocations).
        self.managed_u8: SymmetricArray | None = None
        self.managed_u64: SymmetricArray | None = None
        self._sync_counters: SymmetricArray | None = None
        # Per-image held-lock hash table: (lock id, image, index) ->
        # (qnode offset, lock object, target pe) — the paper's (lck, j)
        # hash table, extended so the crash handler can force-release a
        # failed image's locks (Fortran 2018: they become unlocked).
        self._held: list[dict[tuple[int, int, int], tuple]] = [
            {} for _ in range(job.num_pes)
        ]
        if getattr(job, "survivable", False):
            job.failure_hooks.append(self._force_release_locks)
        # Per-image sync_images bookkeeping: how many syncs I have posted
        # to image j / consumed from image j.
        self._sync_expected: list[dict[int, int]] = [{} for _ in range(job.num_pes)]
        self._sync_posted: list[dict[int, int]] = [{} for _ in range(job.num_pes)]
        # Per-image current team (None = the initial team of all images).
        self._team: list = [None] * job.num_pes
        # Call-count instrumentation, kept per image (threads must not
        # share a Counter: += is a racy read-modify-write).
        self._stats = [Counter() for _ in range(job.num_pes)]
        # LRU cache of (sels, result_shape, plan, batch spec) per
        # section signature.  Specs hold *relative* byte offsets, so an
        # entry stays valid for any array of matching shape/dtype —
        # including a reallocation at a different base offset.  Shared
        # across images (one lock; entries are immutable once inserted).
        if plan_cache_size < 0:
            raise ValueError("plan_cache_size must be >= 0")
        self._plan_cache_size = plan_cache_size
        self._plan_cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._plan_cache_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    @property
    def my_stats(self) -> Counter:
        """The calling image's call counters (putmem/iput/lock/... counts)."""
        return self._stats[current().pe]

    @property
    def stats(self) -> Counter:
        """Merged counters across all images (read outside hot paths)."""
        total = Counter()
        for c in self._stats:
            total.update(c)
        return total

    def reset_stats(self) -> None:
        for c in self._stats:
            c.clear()

    # ------------------------------------------------------------------
    # Startup (collective; run by every image before user code)
    # ------------------------------------------------------------------
    def startup(self) -> None:
        """Allocate the managed heap and runtime coarrays (collective)."""
        region = self.layer.alloc_array((self.managed_heap_bytes,), np.uint8)
        # Two dtype aliases over the same bytes: uint8 for data, uint64
        # for the 8-byte atomics that MCS locks require.
        self.managed_u8 = region
        self.managed_u64 = SymmetricArray(
            self.layer, region.byte_offset, (self.managed_heap_bytes // 8,), np.uint64
        )
        self._sync_counters = self.layer.alloc_array((self.job.num_pes,), np.int64)
        # Implicit locks backing the F2008 `critical` construct.  A
        # compiler declares one lock per statically-visible construct at
        # program start; lacking static knowledge, we pre-allocate a
        # slot array and hash construct names onto it (collisions only
        # cost false exclusion between same-slot criticals).
        from repro.caf.locks import CafLock

        self.critical_slots = CRITICAL_SLOTS
        self._critical_locks = CafLock(self, (CRITICAL_SLOTS,))
        self._started = True

    def _check_started(self) -> None:
        if not self._started:
            raise CafError("CAF runtime not started; use caf.launch()")

    # ------------------------------------------------------------------
    # Image identity (1-based, Fortran style; team-relative inside a
    # change team construct)
    # ------------------------------------------------------------------
    def current_team(self):
        """The calling image's active team, or None (initial team)."""
        return self._team[current().pe]

    def team_pes(self) -> tuple[int, ...]:
        """Absolute PEs of the calling image's current team."""
        team = self._team[current().pe]
        if team is None:
            return tuple(range(self.job.num_pes))
        return team.member_pes

    def team_rank_of(self, pe: int) -> int:
        """0-based rank of an absolute PE within the calling image's
        current team (cached map; no linear member scan)."""
        team = self._team[current().pe]
        if team is None:
            return pe
        return team.rank_of(pe)

    def this_image(self) -> int:
        team = self._team[current().pe]
        if team is None:
            return current().pe + 1
        return team.team_image_of(current().pe)

    def num_images(self) -> int:
        team = self._team[current().pe]
        if team is None:
            return self.job.num_pes
        return team.num_images

    def image_to_pe(self, image: int) -> int:
        team = self._team[current().pe]
        if team is not None:
            return team.pe_of(image)
        if not 1 <= image <= self.job.num_pes:
            raise CafError(
                f"image {image} out of range [1, {self.job.num_pes}] "
                f"(CAF images are 1-based)"
            )
        return image - 1

    # ------------------------------------------------------------------
    # Failed images (Fortran 2018, 16.9.{78,98})
    # ------------------------------------------------------------------
    def failed_images(self) -> tuple[int, ...]:
        """``failed_images()`` — 1-based indices (current team) of images
        that have failed, in increasing order."""
        reg = self.job.failed
        team = self._team[current().pe]
        if team is None:
            return tuple(p + 1 for p in reg.failed_pes())
        members = set(team.member_pes)
        return tuple(
            sorted(team.team_image_of(p) for p in reg.failed_pes() if p in members)
        )

    def image_status(self, image: int) -> int:
        """``image_status(image)`` — 0 for a live image,
        ``STAT_FAILED_IMAGE`` for a failed one."""
        pe = self.image_to_pe(image)
        return STAT_FAILED_IMAGE if self.job.failed.is_failed(pe) else 0

    def _failure_stat(self) -> int:
        """The ``stat=`` value of an image-control statement: nonzero iff
        some image of the current team has failed."""
        job = self.job
        if getattr(job, "survivable", False) and job.failed.count:
            if any(job.failed.is_failed(p) for p in self.team_pes()):
                return STAT_FAILED_IMAGE
        return 0

    def live_pes(self, pes) -> tuple[int, ...]:
        """Survivor subset of ``pes`` (identity unless survivable and at
        least one image has failed)."""
        job = self.job
        if not getattr(job, "survivable", False) or not job.failed.count:
            return tuple(pes)
        return job.failed.survivors(tuple(pes))

    def _force_release_locks(self, pe: int) -> None:
        """Failure hook: force-release every lock the dying image holds
        (F2018 11.6.11 — a failed image's locks become unlocked).

        Runs from the engine's crash handler on the dying PE, before the
        failure is visible to survivors, so survivors never observe a
        dead holder without a recovery path in flight.
        """
        held = self._held[pe]
        if not held:
            return
        from repro.caf.locks import force_release

        for key, entry in list(held.items()):
            try:
                force_release(self, pe, key, entry)
            except Exception:  # a corrupt lock must not mask the crash
                pass
        held.clear()

    # ------------------------------------------------------------------
    # Team-aware collective building blocks
    # ------------------------------------------------------------------
    def agree(self, fingerprint: str, compute):
        """Collective agreement over the current team."""
        ctx = current()
        team = self._team[ctx.pe]
        if team is None:
            return self.job.collectives.agree(ctx, fingerprint, compute)
        return team.group.collectives.agree(
            ctx, fingerprint, compute, seq=team.group.next_seq(ctx.pe)
        )

    def barrier(self) -> None:
        """Quiet + barrier over the current team (``sync all``)."""
        ctx = current()
        t_start = ctx.clock.now
        team = self._team[ctx.pe]
        self.layer._jitter(ctx, self.layer, "barrier")
        self.layer.quiet()
        if team is None:
            cost = self.job.network.barrier_cost(self.job.num_pes, self.layer.profile)
            bar = self.job.barrier
        else:
            cost = self.job.network.barrier_cost(team.num_images, self.layer.profile)
            bar = team.group.barrier
        _, gen = bar.wait_gen(ctx, cost)
        tracer = self.job.tracer
        if tracer is not None:
            meta = ("b", bar.sync_id, gen) if tracer.capture_sync else ()
            tracer.record(ctx.pe, "barrier", -1, 0, t_start, ctx.clock.now, meta=meta)

    def alloc_symmetric(self, shape, dtype) -> SymmetricArray:
        """Collective symmetric allocation over the current team.

        In the initial team this is the layer's ``shmalloc`` path; in a
        subteam, agreement and the synchronizing barrier run over the
        team only — the shared allocator still guarantees globally
        disjoint offsets.
        """
        team = self._team[current().pe]
        if team is None:
            return self.layer.alloc_array(shape, dtype)
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(x) for x in shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize if shape else dt.itemsize
        self.layer.engine.alloc_check(current())
        offset = self.agree(
            f"team{team.team_number}.alloc:{shape}:{dt.str}",
            lambda: self.job.symmetric_allocator.malloc(max(nbytes, 1)),
        )
        self.barrier()
        return SymmetricArray(self.layer, offset, shape, dt)

    def free_symmetric(self, array: SymmetricArray) -> None:
        """Collective release over the current team."""
        team = self._team[current().pe]
        if team is None:
            self.layer.free_array(array)
            return
        self.barrier()
        self.agree(
            f"team{team.team_number}.free:{array.byte_offset}",
            lambda: self.job.symmetric_allocator.free(array.byte_offset),
        )
        array._freed = True

    # ------------------------------------------------------------------
    # Managed (non-symmetric, remotely accessible) heap
    # ------------------------------------------------------------------
    def managed_alloc(self, pe: int, nbytes: int) -> int:
        """Allocate from image ``pe+1``'s managed heap; returns the byte
        offset *within the managed region* (what remote pointers pack)."""
        self._check_started()
        return self._managed_alloc[pe].malloc(nbytes)

    def managed_free(self, pe: int, offset: int) -> None:
        self._managed_alloc[pe].free(offset)

    def managed_byte_offset(self, offset: int) -> int:
        """Heap-absolute byte offset of a managed-region offset."""
        self._check_started()
        return self.managed_u8.byte_offset + offset

    # ------------------------------------------------------------------
    # Co-indexed section transfers (Sections IV-B and IV-C)
    # ------------------------------------------------------------------
    def _model_params(self, handle: SymmetricArray) -> dict:
        """Cost inputs for the 'model' planner (paper future work)."""
        from repro.sim.netmodel import NetworkModel

        conduit = self.layer.profile
        return {
            "elem_size": handle.itemsize,
            "o_call_us": conduit.o_put_us,
            "bandwidth_Bpus": self.job.machine.link_bandwidth_Bpus
            * conduit.bw_efficiency,
            "gap_fn": lambda es, sb: NetworkModel._gather_gap(conduit, es, sb),
        }

    def _ptr_view(self, handle: SymmetricArray, pe: int) -> np.ndarray | None:
        """Direct load/store view of a same-node target, if enabled and
        the backend exposes ``shmem_ptr`` (future-work fast path)."""
        if not self.use_shmem_ptr:
            return None
        shmem_ptr = getattr(self.layer, "shmem_ptr", None)
        if shmem_ptr is None:
            return None
        return shmem_ptr(handle, pe)

    def _ptr_cost(self, nbytes: int) -> float:
        m = self.job.machine
        return (
            0.5 * self.layer.profile.o_put_us
            + m.intra_latency_us
            + nbytes / m.intra_bandwidth_Bpus
        )

    def _plan_for(self, handle: SymmetricArray, shape: tuple[int, ...], key, algorithm):
        """Plan (and compile) a section access, via the LRU plan cache.

        Returns ``(sels, result_shape, plan, spec)``.  Only default-
        policy accesses are cached: an explicit per-call ``algorithm``
        override bypasses the cache entirely.  Keys include the dtype
        itemsize and the conduit's ``iput_native`` flag because both
        change the compiled spec (and, for ``auto``/``model``, the plan).
        """
        itemsize = handle.itemsize
        native = self.layer.profile.iput_native
        cache_key = None
        if algorithm is None and self._plan_cache_size > 0:
            ck = _canonical_key(key)
            if ck is not None:
                cache_key = (shape, ck, self.strided_policy, itemsize, native)
                with self._plan_cache_lock:
                    entry = self._plan_cache.get(cache_key)
                    if entry is not None:
                        self._plan_cache.move_to_end(cache_key)
                self.my_stats["plan_cache_hits" if entry is not None else "plan_cache_misses"] += 1
                if entry is not None:
                    return entry
        sels, rshape = normalize_selection(shape, key)
        algo = algorithm or self.strided_policy
        plan = make_plan(
            sels,
            shape,
            algo,
            iput_native=native,
            model_params=self._model_params(handle) if algo == "model" else None,
        )
        entry = (sels, rshape, plan, rma.build_spec(plan, itemsize))
        if cache_key is not None:
            with self._plan_cache_lock:
                self._plan_cache[cache_key] = entry
                self._plan_cache.move_to_end(cache_key)
                while len(self._plan_cache) > self._plan_cache_size:
                    self._plan_cache.popitem(last=False)
        return entry

    def plan_cache_info(self) -> dict:
        """Cache occupancy plus merged hit/miss counters (for tests)."""
        with self._plan_cache_lock:
            entries = len(self._plan_cache)
        merged = self.stats
        return {
            "entries": entries,
            "capacity": self._plan_cache_size,
            "hits": merged["plan_cache_hits"],
            "misses": merged["plan_cache_misses"],
        }

    def put_section(
        self,
        handle: SymmetricArray,
        shape: tuple[int, ...],
        image: int,
        key,
        value,
        *,
        algorithm: str | None = None,
    ) -> None:
        """``coarray(section)[image] = value``."""
        self._check_started()
        pe = self.image_to_pe(image)
        view = self._ptr_view(handle, pe)
        if view is not None:
            sels, rshape = normalize_selection(shape, key)
            # Intra-node direct store: one memcpy, no NIC, immediately
            # remotely complete (so no quiet needed).  Stores through
            # the pointer do not wake wait_until sleepers — same caveat
            # as hardware shmem_ptr.
            target = view.reshape(shape)
            data = np.broadcast_to(np.asarray(value, dtype=handle.dtype), rshape)
            target[key] = data.reshape(target[key].shape)
            ctx = current()
            ctx.clock.advance(self._ptr_cost(int(np.prod(rshape, dtype=np.int64)) * handle.itemsize if rshape else handle.itemsize))
            self.my_stats["ptr_put_calls"] += 1
            return
        sels, rshape, plan, spec = self._plan_for(handle, shape, key, algorithm)
        data = np.asarray(value, dtype=handle.dtype)
        if data.shape not in (rshape, tuple(s.count for s in sels)):
            try:
                data = np.broadcast_to(data, rshape)
            except ValueError:
                raise ValueError(
                    f"cannot broadcast value of shape {data.shape} to section {rshape}"
                ) from None
        data = data.reshape(tuple(s.count for s in sels))
        rma.execute_put(self.layer, handle, pe, plan, sels, data, self.my_stats, spec=spec)
        if self.ordering == "caf":
            # Paper Section IV-B: quiet after each put restores CAF's
            # ordered-RMA guarantee on OpenSHMEM's weaker model.
            self.layer.quiet()

    def get_section(
        self,
        handle: SymmetricArray,
        shape: tuple[int, ...],
        image: int,
        key,
        *,
        algorithm: str | None = None,
    ):
        """``value = coarray(section)[image]``."""
        self._check_started()
        pe = self.image_to_pe(image)
        view = self._ptr_view(handle, pe)
        if view is not None:
            sels, rshape = normalize_selection(shape, key)
            result = np.array(view.reshape(shape)[key], copy=True)
            ctx = current()
            ctx.clock.advance(self._ptr_cost(result.size * handle.itemsize))
            self.my_stats["ptr_get_calls"] += 1
            return result[()] if rshape == () else result.reshape(rshape)
        sels, rshape, plan, spec = self._plan_for(handle, shape, key, algorithm)
        if self.ordering == "caf":
            # Paper Section IV-B: quiet before each get so a prior put to
            # the same location is remotely complete first.
            self.layer.quiet()
        result = rma.execute_get(self.layer, handle, pe, plan, sels, self.my_stats, spec=spec)
        result = result.reshape(rshape)
        if rshape == ():
            return result[()]
        return result

    # ------------------------------------------------------------------
    # Synchronization (Section IV's direct mappings)
    # ------------------------------------------------------------------
    def sync_all(self, stat: list | None = None) -> int:
        """``sync all`` -> quiet + barrier over the current team.

        ``stat`` is the Fortran ``stat=`` out-argument: a one-element
        mutable sequence whose slot 0 receives 0 on success or
        ``STAT_FAILED_IMAGE`` if some image of the team has failed (the
        barrier itself completes among the survivors either way).  The
        status is also returned.
        """
        self._check_started()
        self.barrier()
        code = self._failure_stat()
        if stat is not None:
            stat[0] = code
        return code

    def sync_images(self, images, stat: list | None = None) -> int:
        """``sync images(list)``: pairwise synchronization.

        Each named image must also execute a ``sync images`` naming this
        image.  Implemented with remote atomic increments on a counter
        coarray plus local waits — 1-sided, as UHCAF does it.

        With ``stat=`` (a one-element mutable sequence), a failed
        partner does not hang or error-terminate the statement: the
        failed image is skipped, the survivors' pairwise syncs still
        complete, and slot 0 receives ``STAT_FAILED_IMAGE``.  Without
        ``stat=``, a failed partner raises
        :class:`~repro.runtime.failures.ImageFailedError` (the
        simulation's form of F2018 error termination).
        """
        self._check_started()
        ctx = current()
        me = ctx.pe
        if images == "*":
            targets = [p for p in self.team_pes() if p != me]
        else:
            targets = sorted({self.image_to_pe(i) for i in images})
        registry = self.job.failed if getattr(self.job, "survivable", False) else None
        expected = self._sync_expected[me]
        posted = self._sync_posted[me]
        tracer = self.job.tracer
        capture = tracer is not None and tracer.capture_sync
        code = 0
        # Post my arrival to every partner (their slot index = my pe).
        self.layer.quiet()  # my prior puts are visible before I signal
        live: list[int] = []
        for p in targets:
            if p == me:
                continue
            if registry is not None and registry.is_failed(p):
                code = STAT_FAILED_IMAGE
                if stat is None:
                    from repro.runtime.failures import raise_image_failed

                    raise_image_failed(ctx, "sync_images", p, registry, tracer)
                continue
            t_start = ctx.clock.now
            try:
                self.layer.atomic(self._sync_counters, p, me, "fadd", 1)
            except ImageFailedError:
                code = STAT_FAILED_IMAGE
                if stat is None:
                    raise
                continue
            live.append(p)
            posted[p] = posted.get(p, 0) + 1
            if capture:
                # Channel "si:<waiter>:<poster>" with a cumulative ticket:
                # the sanitizer draws an edge from each post to the wait
                # whose expected count covers it.
                tracer.record(
                    ctx.pe, "post", p, 0, t_start, ctx.clock.now,
                    meta=("po", f"si:{p}:{me}", posted[p]),
                )
        # Wait for every partner's matching arrival.
        for p in live:
            expected[p] = expected.get(p, 0) + 1
            t_start = ctx.clock.now
            try:
                self.layer.wait_until(
                    self._sync_counters, CMP_GE, expected[p], offset=p, target=p
                )
            except ImageFailedError:
                code = STAT_FAILED_IMAGE
                if stat is None:
                    raise
                continue
            if capture:
                tracer.record(
                    ctx.pe, "wait", p, 0, t_start, ctx.clock.now,
                    meta=("wa", f"si:{me}:{p}", expected[p]),
                )
        if stat is not None:
            stat[0] = code
        return code

    def sync_memory(self) -> None:
        """``sync memory`` — the F2008 memory fence: completes this
        image's outstanding RMA (segment ordering without a barrier)."""
        self._check_started()
        self.layer.quiet()
        self.layer.fence()

    # ------------------------------------------------------------------
    def context(self) -> PEContext:
        return current()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CafRuntime(backend={self.backend.name!r}, "
            f"strided={self.strided_policy!r}, ordering={self.ordering!r})"
        )


def attach(job: Job, **kwargs: Any) -> CafRuntime:
    """Attach a CAF runtime to a job (idempotent; kwargs only on first)."""
    if LAYER_NAME in job.layers:
        if kwargs:
            raise ValueError("CAF runtime already attached; cannot re-configure")
        return job.layers[LAYER_NAME]
    rt = CafRuntime(job, **kwargs)
    job.layers[LAYER_NAME] = rt
    return rt


def current_runtime() -> CafRuntime:
    """The CAF runtime of the calling image's job."""
    return current().job.get_layer(LAYER_NAME)
