"""Non-symmetric remotely-accessible data (paper Section IV-A).

Coarrays of derived type may have ``allocatable`` components: the
component is allocated *per image*, at image-specific sizes and
addresses, yet must remain remotely accessible.  The paper's scheme —
``shmalloc`` one buffer of equal size on all PEs at startup and manage
non-symmetric allocations out of it — is implemented by the runtime's
*managed heap*; this module provides the user-facing objects:

* :class:`ManagedObject` — one image's allocation, with a
  :class:`~repro.util.bitpack.RemotePointer` other images can use;
* remote access by pointer: :func:`get_remote`, :func:`put_remote`,
  :func:`atomic_remote` — the primitives the MCS lock's qnodes use, and
  what a compiler would emit for ``x[j]%component`` dereferences.
"""

from __future__ import annotations

import numpy as np

from repro.caf.runtime import CafError, CafRuntime
from repro.runtime.context import current
from repro.util.bitpack import RemotePointer, pack_remote_pointer, unpack_remote_pointer


class ManagedObject:
    """A non-symmetric, remotely-accessible array owned by this image."""

    def __init__(self, runtime: CafRuntime, shape, dtype) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.runtime = runtime
        self.owner_image = runtime.this_image()
        nbytes = max(1, int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize)
        self.nbytes = nbytes
        self.offset = runtime.managed_alloc(current().pe, nbytes)
        self._freed = False

    # ------------------------------------------------------------------
    @property
    def local(self) -> np.ndarray:
        """Zero-copy view for the owning image."""
        self._check()
        ctx = current()
        if ctx.pe + 1 != self.owner_image:
            raise CafError(
                f"image {ctx.pe + 1} took a local view of image "
                f"{self.owner_image}'s non-symmetric data; use its remote pointer"
            )
        mem = self.runtime.job.memories[ctx.pe]
        base = self.runtime.managed_byte_offset(self.offset)
        return mem.local_view(base, self.nbytes).view(self.dtype).reshape(self.shape)

    def pointer(self, flags: int = 0) -> RemotePointer:
        """The packed-able remote pointer naming this allocation."""
        self._check()
        return RemotePointer(image=self.owner_image, offset=self.offset, flags=flags)

    def packed(self, flags: int = 0) -> int:
        """64-bit packed remote pointer (fits one remote atomic word)."""
        return pack_remote_pointer(self.owner_image, self.offset, flags)

    def free(self) -> None:
        """Release back to the owner's managed heap (owner only)."""
        self._check()
        ctx = current()
        if ctx.pe + 1 != self.owner_image:
            raise CafError("only the owning image may free non-symmetric data")
        self.runtime.managed_free(ctx.pe, self.offset)
        self._freed = True

    def _check(self) -> None:
        if self._freed:
            raise CafError("managed object used after free")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ManagedObject(image={self.owner_image}, offset={self.offset}, "
            f"shape={self.shape}, dtype={self.dtype})"
        )


# ---------------------------------------------------------------------------
# Access through remote pointers
# ---------------------------------------------------------------------------


def _resolve(rt: CafRuntime, pointer: RemotePointer | int) -> RemotePointer:
    ptr = unpack_remote_pointer(pointer) if isinstance(pointer, int) else pointer
    if ptr.is_nil:
        raise CafError("dereference of nil remote pointer")
    rt.image_to_pe(ptr.image)  # validates
    return ptr


def get_remote(
    rt: CafRuntime, pointer: RemotePointer | int, shape, dtype
) -> np.ndarray:
    """Fetch a non-symmetric object through its remote pointer."""
    ptr = _resolve(rt, pointer)
    dt = np.dtype(dtype)
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    nelems = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if ptr.offset % dt.itemsize:
        raise CafError(f"remote pointer offset {ptr.offset} misaligned for {dt}")
    data = rt.layer.get(
        rt.managed_u8, nelems * dt.itemsize, ptr.image - 1, offset=ptr.offset
    )
    return data.view(dt).reshape(shape)


def put_remote(rt: CafRuntime, pointer: RemotePointer | int, value, dtype) -> None:
    """Store into a non-symmetric object through its remote pointer.

    Completes remotely before returning (CAF ordering, as the runtime's
    co-indexed puts do)."""
    ptr = _resolve(rt, pointer)
    dt = np.dtype(dtype)
    data = np.ascontiguousarray(value, dtype=dt)
    if ptr.offset % dt.itemsize:
        raise CafError(f"remote pointer offset {ptr.offset} misaligned for {dt}")
    rt.layer.put(
        rt.managed_u8,
        data.view(np.uint8).reshape(-1),
        ptr.image - 1,
        offset=ptr.offset,
    )
    if rt.ordering == "caf":
        rt.layer.quiet()


def atomic_remote(
    rt: CafRuntime, pointer: RemotePointer | int, op: str, *operands
) -> int:
    """8-byte atomic on the word a remote pointer names (qnode fields)."""
    ptr = _resolve(rt, pointer)
    if ptr.offset % 8:
        raise CafError(f"remote pointer offset {ptr.offset} misaligned for 8-byte atomic")
    return int(
        rt.layer.atomic(rt.managed_u64, ptr.image - 1, ptr.offset // 8, op, *operands)
    )
