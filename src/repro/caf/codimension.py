"""Codimension arithmetic: multi-corank coarrays.

Fortran coarrays may have corank > 1 — ``real :: x(10)[2,3,*]`` lays
images out on a 2x3x* grid — and the intrinsics ``image_index`` and
``this_image`` convert between image indices and cosubscripts.  The
paper's examples use corank 1 (``[*]``), but the runtime mapping is
pure index arithmetic, provided here as the natural extension (it is
what the OpenUH front-end computes before emitting runtime calls).

Semantics follow Fortran 2008:

* cosubscripts run from a per-codimension lower bound (default 1);
* the last codimension is unbounded (``*``); its extent is determined
  by ``num_images()``;
* images map to cosubscripts in column-major order (the first
  codimension varies fastest);
* ``image_index`` returns 0 for cosubscripts that name no existing
  image (valid bounds but beyond ``num_images()``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Codimensions:
    """A coarray's codimension spec, e.g. ``[2, 3, *]``.

    ``extents`` lists the fixed codimension extents (all but the last);
    ``lower_bounds`` gives each codimension's lower bound (defaults to
    all ones, like Fortran).  Corank == ``len(extents) + 1``.
    """

    extents: tuple[int, ...] = ()
    lower_bounds: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if any(e < 1 for e in self.extents):
            raise ValueError(f"codimension extents must be >= 1, got {self.extents}")
        if self.lower_bounds is not None and len(self.lower_bounds) != self.corank:
            raise ValueError(
                f"need {self.corank} lower bounds, got {len(self.lower_bounds)}"
            )

    @property
    def corank(self) -> int:
        return len(self.extents) + 1

    def bounds(self) -> tuple[int, ...]:
        return self.lower_bounds if self.lower_bounds is not None else (1,) * self.corank

    # ------------------------------------------------------------------
    def image_index(self, cosubscripts: tuple[int, ...], num_images: int) -> int:
        """``image_index(coarray, sub)``: the 1-based image holding the
        given cosubscripts, or 0 if they name no existing image."""
        if len(cosubscripts) != self.corank:
            raise ValueError(
                f"need {self.corank} cosubscripts, got {len(cosubscripts)}"
            )
        if num_images < 1:
            raise ValueError("num_images must be >= 1")
        lows = self.bounds()
        index = 0
        stride = 1
        for sub, low, extent in zip(cosubscripts, lows, self.extents + (None,)):
            off = sub - low
            if off < 0:
                return 0
            if extent is not None and off >= extent:
                return 0
            index += off * stride
            stride *= extent if extent is not None else 1
        image = index + 1
        return image if image <= num_images else 0

    def this_image(self, image: int, num_images: int) -> tuple[int, ...]:
        """``this_image(coarray)``: the cosubscripts of ``image``."""
        if not 1 <= image <= num_images:
            raise ValueError(f"image {image} out of range [1, {num_images}]")
        lows = self.bounds()
        rem = image - 1
        subs = []
        for low, extent in zip(lows, self.extents):
            subs.append(low + rem % extent)
            rem //= extent
        subs.append(lows[-1] + rem)
        return tuple(subs)

    def max_last_cosubscript(self, num_images: int) -> int:
        """Upper cosubscript of the ``*`` codimension (``ucobound``)."""
        fixed = 1
        for e in self.extents:
            fixed *= e
        lows = self.bounds()
        return lows[-1] + (num_images - 1) // fixed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(e) for e in self.extents] + ["*"]
        return f"Codimensions[{', '.join(parts)}]"
