"""Plan execution: turning a :class:`TransferPlan` into library calls.

This is the runtime half of the paper's Section IV-B/IV-C translation:
contiguous runs become ``shmem_putmem``/``shmem_getmem``, strided lines
become ``shmem_iput``/``shmem_iget``.  Payload marshalling keeps line
chunks aligned with plan order by moving the base dimension last (plans
enumerate lines in C order over the remaining dimensions).

``stats`` is a :class:`collections.Counter` the runtime passes in; it
records the number of underlying calls — the quantity the paper's
50 x 40 x 25 example counts — and is what the strided benchmarks and
tests assert on.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.caf.strided import DimSel, TransferPlan
from repro.comm.base import OneSidedLayer
from repro.comm.heap import SymmetricArray


def _sel_shape(sels: list[DimSel]) -> tuple[int, ...]:
    return tuple(s.count for s in sels)


def execute_put(
    layer: OneSidedLayer,
    handle: SymmetricArray,
    pe: int,
    plan: TransferPlan,
    sels: list[DimSel],
    data: np.ndarray,
    stats: Counter,
) -> None:
    """Write ``data`` (shaped like the selection) to ``pe`` under ``plan``."""
    shape = _sel_shape(sels)
    payload = np.ascontiguousarray(np.broadcast_to(data, shape), dtype=handle.dtype)
    if plan.lines:
        moved = np.moveaxis(payload, plan.base_dim, -1)
        flat = np.ascontiguousarray(moved).reshape(-1)
        pos = 0
        for line in plan.lines:
            layer.iput(
                handle,
                flat[pos : pos + line.count],
                tst=line.stride,
                sst=1,
                nelems=line.count,
                pe=pe,
                offset=line.offset,
            )
            pos += line.count
        stats["iput_calls"] += len(plan.lines)
    else:
        flat = payload.reshape(-1)
        pos = 0
        for run in plan.runs:
            layer.put(handle, flat[pos : pos + run.length], pe, offset=run.offset)
            pos += run.length
        stats["putmem_calls"] += len(plan.runs)
    stats["put_elems"] += int(payload.size)


def execute_get(
    layer: OneSidedLayer,
    handle: SymmetricArray,
    pe: int,
    plan: TransferPlan,
    sels: list[DimSel],
    stats: Counter,
) -> np.ndarray:
    """Read the selection from ``pe`` under ``plan``; returns an array
    shaped like the (unsqueezed) selection."""
    shape = _sel_shape(sels)
    if plan.lines:
        base = plan.base_dim
        moved_shape = tuple(c for d, c in enumerate(shape) if d != base) + (shape[base],)
        gathered = np.empty(moved_shape, dtype=handle.dtype)
        flat = gathered.reshape(-1)
        pos = 0
        for line in plan.lines:
            flat[pos : pos + line.count] = layer.iget(
                handle, tst=1, sst=line.stride, nelems=line.count, pe=pe, offset=line.offset
            )
            pos += line.count
        stats["iget_calls"] += len(plan.lines)
        result = np.ascontiguousarray(np.moveaxis(gathered, -1, base))
    else:
        result = np.empty(shape, dtype=handle.dtype)
        flat = result.reshape(-1)
        pos = 0
        for run in plan.runs:
            flat[pos : pos + run.length] = layer.get(handle, run.length, pe, offset=run.offset)
            pos += run.length
        stats["getmem_calls"] += len(plan.runs)
    stats["get_elems"] += int(result.size)
    return result
