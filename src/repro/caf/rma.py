"""Plan execution: turning a :class:`TransferPlan` into library calls.

This is the runtime half of the paper's Section IV-B/IV-C translation:
contiguous runs become ``shmem_putmem``/``shmem_getmem``, strided lines
become ``shmem_iput``/``shmem_iget``.  Payload marshalling keeps line
chunks aligned with plan order by moving the base dimension last (plans
enumerate lines in C order over the remaining dimensions).

Execution normally goes through the layer's **batched fast path**
(:meth:`~repro.comm.base.OneSidedLayer.execute_plan_put` /
``execute_plan_get``): one aggregate network pricing, one scatter/gather
through a precomputed index array, one tracer record.  Virtual
timestamps and all stats are bit-identical to the per-call loop, which
is kept both as the ``REPRO_NO_BATCH=1`` escape hatch (set the
environment variable to force the sequential path) and as the oracle
the invariance tests compare against.

``stats`` is a :class:`collections.Counter` the runtime passes in; it
records the number of *logical* underlying calls — the quantity the
paper's 50 x 40 x 25 example counts — and is what the strided
benchmarks and tests assert on, batched or not.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.caf.strided import DimSel, TransferPlan
from repro.comm.base import BatchSpec, OneSidedLayer, batching_enabled
from repro.comm.heap import SymmetricArray

__all__ = [
    "BatchSpec",
    "batching_enabled",
    "build_spec",
    "execute_get",
    "execute_put",
]


def build_spec(plan: TransferPlan, itemsize: int) -> BatchSpec | None:
    """Compile ``plan`` into a :class:`BatchSpec` (per-element byte
    offsets relative to the array base, in plan order).

    Returns ``None`` for empty plans; every non-empty plan qualifies
    because planners emit uniform runs (one shared length) or uniform
    lines (one shared count and stride).
    """
    if plan.lines:
        count = plan.lines[0].count
        stride = plan.lines[0].stride
        offs = np.fromiter(
            (ln.offset for ln in plan.lines), dtype=np.int64, count=len(plan.lines)
        )
        elems = (
            offs[:, None] + np.arange(count, dtype=np.int64)[None, :] * stride
        ).reshape(-1)
        kind, ncalls, per_call = "lines", len(plan.lines), count
    elif plan.runs:
        length = plan.runs[0].length
        offs = np.fromiter(
            (r.offset for r in plan.runs), dtype=np.int64, count=len(plan.runs)
        )
        elems = (offs[:, None] + np.arange(length, dtype=np.int64)[None, :]).reshape(-1)
        kind, ncalls, per_call, stride = "runs", len(plan.runs), length, 1
    else:
        return None
    return BatchSpec(
        kind=kind,
        ncalls=ncalls,
        nelems_per_call=per_call,
        stride=stride,
        rel_index=elems * itemsize,
        min_elem=int(elems.min()),
        max_elem=int(elems.max()),
        rel_elem=elems,
        elem_size=itemsize,
    )


def _sel_shape(sels: list[DimSel]) -> tuple[int, ...]:
    return tuple(s.count for s in sels)


def _count_put_stats(plan: TransferPlan, nelems: int, stats: Counter) -> None:
    if plan.lines:
        stats["iput_calls"] += len(plan.lines)
    else:
        stats["putmem_calls"] += len(plan.runs)
    stats["put_elems"] += nelems


def execute_put(
    layer: OneSidedLayer,
    handle: SymmetricArray,
    pe: int,
    plan: TransferPlan,
    sels: list[DimSel],
    data: np.ndarray,
    stats: Counter,
    spec: BatchSpec | None = None,
) -> None:
    """Write ``data`` (shaped like the selection) to ``pe`` under ``plan``.

    ``spec`` is the plan's compiled :class:`BatchSpec` (pass a cached
    one to skip recompiling); built on the fly when omitted.
    """
    shape = _sel_shape(sels)
    payload = np.ascontiguousarray(np.broadcast_to(data, shape), dtype=handle.dtype)
    if plan.lines:
        moved = np.moveaxis(payload, plan.base_dim, -1)
        flat = np.ascontiguousarray(moved).reshape(-1)
    else:
        flat = payload.reshape(-1)
    if batching_enabled():
        # Single-call plans skip the batch machinery entirely: one line
        # is exactly one iput (one run one put), with bit-identical
        # pricing, stats, and trace — and no index-array construction.
        # Non-native single lines only qualify when they hold a single
        # element (otherwise the batch path's aggregate put pricing is
        # the faster shape).
        if plan.lines and len(plan.lines) == 1 and (
            layer.profile.iput_native or plan.lines[0].count == 1
        ):
            line = plan.lines[0]
            layer.iput(
                handle, flat, tst=line.stride, sst=1,
                nelems=line.count, pe=pe, offset=line.offset,
            )
            _count_put_stats(plan, int(payload.size), stats)
            return
        if not plan.lines and len(plan.runs) == 1:
            layer.put(handle, flat, pe, offset=plan.runs[0].offset)
            _count_put_stats(plan, int(payload.size), stats)
            return
        if spec is None:
            spec = build_spec(plan, handle.itemsize)
        if spec is not None:
            layer.execute_plan_put(handle, flat, pe, spec)
        _count_put_stats(plan, int(payload.size), stats)
        return
    pos = 0
    if plan.lines:
        for line in plan.lines:
            layer.iput(
                handle,
                flat[pos : pos + line.count],
                tst=line.stride,
                sst=1,
                nelems=line.count,
                pe=pe,
                offset=line.offset,
            )
            pos += line.count
    else:
        for run in plan.runs:
            layer.put(handle, flat[pos : pos + run.length], pe, offset=run.offset)
            pos += run.length
    _count_put_stats(plan, int(payload.size), stats)


def execute_get(
    layer: OneSidedLayer,
    handle: SymmetricArray,
    pe: int,
    plan: TransferPlan,
    sels: list[DimSel],
    stats: Counter,
    spec: BatchSpec | None = None,
) -> np.ndarray:
    """Read the selection from ``pe`` under ``plan``; returns an array
    shaped like the (unsqueezed) selection."""
    shape = _sel_shape(sels)
    use_batch = batching_enabled()
    if use_batch:
        # Mirror execute_put's single-call short-circuit (same
        # bit-identity argument, no index-array construction).
        if plan.lines and len(plan.lines) == 1 and (
            layer.profile.iput_native or plan.lines[0].count == 1
        ):
            line = plan.lines[0]
            base = plan.base_dim
            moved_shape = tuple(
                c for d, c in enumerate(shape) if d != base
            ) + (shape[base],)
            gathered = layer.iget(
                handle, tst=1, sst=line.stride, nelems=line.count,
                pe=pe, offset=line.offset,
            ).reshape(moved_shape)
            stats["iget_calls"] += 1
            result = np.ascontiguousarray(np.moveaxis(gathered, -1, base))
            stats["get_elems"] += int(result.size)
            return result
        if not plan.lines and len(plan.runs) == 1:
            run = plan.runs[0]
            result = layer.get(handle, run.length, pe, offset=run.offset).reshape(shape)
            stats["getmem_calls"] += 1
            stats["get_elems"] += int(result.size)
            return result
    if use_batch and spec is None:
        spec = build_spec(plan, handle.itemsize)
    if plan.lines:
        base = plan.base_dim
        moved_shape = tuple(c for d, c in enumerate(shape) if d != base) + (shape[base],)
        if use_batch and spec is not None:
            gathered = layer.execute_plan_get(handle, pe, spec).reshape(moved_shape)
        else:
            gathered = np.empty(moved_shape, dtype=handle.dtype)
            flat = gathered.reshape(-1)
            pos = 0
            for line in plan.lines:
                flat[pos : pos + line.count] = layer.iget(
                    handle, tst=1, sst=line.stride, nelems=line.count, pe=pe, offset=line.offset
                )
                pos += line.count
        stats["iget_calls"] += len(plan.lines)
        result = np.ascontiguousarray(np.moveaxis(gathered, -1, base))
    else:
        if use_batch and spec is not None:
            result = layer.execute_plan_get(handle, pe, spec).reshape(shape)
        else:
            result = np.empty(shape, dtype=handle.dtype)
            flat = result.reshape(-1)
            pos = 0
            for run in plan.runs:
                flat[pos : pos + run.length] = layer.get(handle, run.length, pe, offset=run.offset)
                pos += run.length
        stats["getmem_calls"] += len(plan.runs)
    stats["get_elems"] += int(result.size)
    return result
