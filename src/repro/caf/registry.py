"""Programmatic renderings of the paper's descriptive tables.

* Table I — CAF implementations and their communication layers.
* Table II — the CAF <-> OpenSHMEM feature mapping, with each side
  bound to the callable implementing it in this repository; a
  verification helper checks every mapping resolves, making Table II a
  *tested* artifact rather than prose.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

from repro.util.tables import Table


@dataclass(frozen=True, slots=True)
class CafImplementation:
    """One row of Table I."""

    implementation: str
    compiler: str
    communication_layers: tuple[str, ...]


CAF_IMPLEMENTATIONS: tuple[CafImplementation, ...] = (
    CafImplementation("UHCAF", "OpenUH", ("GASNet", "ARMCI")),
    CafImplementation("CAF 2.0", "Rice", ("GASNet", "MPI")),
    CafImplementation("Cray-CAF", "Cray", ("DMAPP",)),
    CafImplementation("Intel-CAF", "Intel", ("MPI",)),
    CafImplementation("GFortran-CAF", "GCC", ("GASNet", "MPI")),
)

#: This repository's addition to Table I: the paper's contribution.
THIS_WORK = CafImplementation("UHCAF (this work)", "OpenUH", ("OpenSHMEM",))


@dataclass(frozen=True, slots=True)
class FeatureMapping:
    """One row of Table II, bound to implementing callables."""

    property: str
    caf_construct: str
    shmem_construct: str
    caf_impl: str  # dotted path to the CAF-side implementation
    shmem_impl: str | None  # dotted path to the OpenSHMEM-side call (None
    # when the paper marks the feature unavailable in OpenSHMEM)


FEATURE_MAP: tuple[FeatureMapping, ...] = (
    FeatureMapping(
        "Symmetric data allocation", "allocate", "shmalloc",
        "repro.caf.coarray:Coarray", "repro.shmem:shmalloc_array",
    ),
    FeatureMapping(
        "Total image count", "num_images()", "num_pes()",
        "repro.caf:num_images", "repro.shmem:num_pes",
    ),
    FeatureMapping(
        "Current image ID", "this_image()", "my_pe()",
        "repro.caf:this_image", "repro.shmem:my_pe",
    ),
    FeatureMapping(
        "Collectives - reduction", "co_sum / co_reduce", "shmem_<op>_to_all",
        "repro.caf:co_sum", "repro.shmem:sum_to_all",
    ),
    FeatureMapping(
        "Collectives - broadcast", "co_broadcast", "shmem_broadcast",
        "repro.caf:co_broadcast", "repro.shmem:broadcast",
    ),
    FeatureMapping(
        "Barrier synchronization", "sync all", "shmem_barrier_all",
        "repro.caf:sync_all", "repro.shmem:barrier_all",
    ),
    FeatureMapping(
        "Atomic swapping", "atomic_cas", "shmem_swap / shmem_cswap",
        "repro.caf:atomic_cas", "repro.shmem:atomic_cswap",
    ),
    FeatureMapping(
        "Atomic addition", "atomic_fetch_add", "shmem_add",
        "repro.caf:atomic_fetch_add", "repro.shmem:atomic_fadd",
    ),
    FeatureMapping(
        "Atomic AND operation", "atomic_fetch_and", "shmem_and",
        "repro.caf:atomic_fetch_and", "repro.shmem:atomic_fetch_and",
    ),
    FeatureMapping(
        "Atomic OR operation", "atomic_or", "shmem_or",
        "repro.caf:atomic_fetch_or", "repro.shmem:atomic_fetch_or",
    ),
    FeatureMapping(
        "Atomic XOR operation", "atomic_xor", "shmem_xor",
        "repro.caf:atomic_fetch_xor", "repro.shmem:atomic_fetch_xor",
    ),
    FeatureMapping(
        "Remote memory put operation", "a(:)[j] = ...", "shmem_put()",
        "repro.caf.coarray:CoindexedRef.put", "repro.shmem:put",
    ),
    FeatureMapping(
        "Remote memory get operation", "... = a(:)[j]", "shmem_get()",
        "repro.caf.coarray:CoindexedRef.get", "repro.shmem:get",
    ),
    FeatureMapping(
        "Single dimensional strided put", "a(::s)[j] = ...", "shmem_iput",
        "repro.caf.coarray:CoindexedRef.put", "repro.shmem:iput",
    ),
    FeatureMapping(
        "Single dimensional strided get", "... = a(::s)[j]", "shmem_iget",
        "repro.caf.coarray:CoindexedRef.get", "repro.shmem:iget",
    ),
    FeatureMapping(
        "Multi dimensional strided put", "a(::s,::t)[j] = ...",
        "(unavailable; this paper's 2dim_strided)",
        "repro.caf.strided:plan_2dim", None,
    ),
    FeatureMapping(
        "Multi dimensional strided get", "... = a(::s,::t)[j]",
        "(unavailable; this paper's 2dim_strided)",
        "repro.caf.strided:plan_2dim", None,
    ),
    FeatureMapping(
        "Remote locks", "lock(lck[j]) / unlock(lck[j])",
        "(unsuitable; this paper's MCS adaptation)",
        "repro.caf.locks:CafLock.acquire", None,
    ),
)


def resolve(dotted: str):
    """Resolve ``pkg.mod:attr.sub`` to the named object."""
    module_name, _, attr_path = dotted.partition(":")
    obj = importlib.import_module(module_name)
    for part in attr_path.split("."):
        obj = getattr(obj, part)
    return obj


def verify_feature_map() -> list[str]:
    """Check every Table II mapping resolves to a real callable/class.

    Returns a list of problems (empty means the table is fully backed
    by implementation).
    """
    problems: list[str] = []
    for row in FEATURE_MAP:
        for side, path in (("CAF", row.caf_impl), ("OpenSHMEM", row.shmem_impl)):
            if path is None:
                continue
            try:
                obj = resolve(path)
            except (ImportError, AttributeError) as exc:
                problems.append(f"{row.property}: {side} side {path!r} -> {exc}")
                continue
            if not callable(obj):
                problems.append(f"{row.property}: {side} side {path!r} is not callable")
    return problems


# ---------------------------------------------------------------------------
# Renderers (what the table benchmarks print)
# ---------------------------------------------------------------------------


def table1() -> Table:
    t = Table(
        "Table I: Implementation details for CAF",
        ["Implementation", "Compiler", "Communication Layer"],
    )
    for row in CAF_IMPLEMENTATIONS + (THIS_WORK,):
        t.add_row(row.implementation, row.compiler, ", ".join(row.communication_layers))
    return t


def table2() -> Table:
    t = Table(
        "Table II: Features for parallel execution in CAF and OpenSHMEM",
        ["Properties", "CAF", "OpenSHMEM"],
    )
    for row in FEATURE_MAP:
        t.add_row(row.property, row.caf_construct, row.shmem_construct)
    return t


def table3() -> Table:
    from repro.sim.machines import MACHINES

    t = Table(
        "Table III: Experimental setup and machine configuration",
        ["Cluster", "Nodes", "Processor Type", "Cores/Node", "Interconnect"],
    )
    for m in MACHINES.values():
        t.add_row(m.name, m.nodes, m.processor, m.cores_per_node, m.interconnect)
    return t
