"""CAF locks over one-sided communication (paper Section IV-D).

CAF locks are coarrays of ``lock_type``: an image may acquire/release
the lock *at any specific image* (``lock(lck[j])``).  OpenSHMEM's own
locks are a single logically-global entity, so the paper adapts the
MCS queue lock [Mellor-Crummey & Scott 1991] instead:

* Each lock variable is one 8-byte word — the queue **tail** — holding
  a packed remote pointer (20-bit image, 36-bit managed-heap offset,
  8 flag bits; :mod:`repro.util.bitpack`).
* A contender allocates a **qnode** (two 8-byte words: ``locked``,
  ``next``) from the managed non-symmetric heap, swings the tail to it
  with an atomic *fetch-and-store* (``shmem_swap``), links behind the
  previous tail by writing its ``next`` word, and spins **locally** on
  its own ``locked`` word.
* Release *compare-and-swaps* the tail back to nil (``shmem_cswap``);
  on failure a successor exists — wait for its link, then reset its
  ``locked`` word with a single put.
* A per-image hash table keyed ``(lock, image, index)`` maps held locks
  to their qnodes; an image holds at most M+1 qnodes for M held locks.

The module also provides the **test-and-set** baseline used by the
``craycaf`` reference backend (central word, exponential backoff): it
hammers the target image's atomic unit under contention, which is what
the MCS adaptation beats in the paper's Fig 8.
"""

from __future__ import annotations

import itertools
import time
from contextlib import nullcontext

import numpy as np

from repro.caf.runtime import CafError, CafRuntime
from repro.comm.constants import CMP_EQ, CMP_NE
from repro.runtime.context import current
from repro.runtime.failures import ImageFailedError
from repro.runtime.launcher import JobAborted
from repro.util.bitpack import NIL, pack_remote_pointer, unpack_remote_pointer

#: qnode layout in the managed heap: two 8-byte words.
QNODE_BYTES = 16
_LOCKED_WORD = 0  # word index within the qnode
_NEXT_WORD = 1

#: Locked-word states: 1 = waiting, 0 = lock handed over.  A dead MCS
#: holder that could not see its successor's link poisons its own qnode
#: instead; the successor claims the lock on observing it.
_POISON = 2

#: Wall-clock budget for the successor-side MCS rescue: the dead
#: holder's crash handler runs concurrently (threaded engine) and its
#: handoff/poison store lands within microseconds.
_RESCUE_DEADLINE_S = 2.0

_TAS_BACKOFF_START_US = 0.4
_TAS_BACKOFF_MAX_US = 204.8


class LockError(CafError):
    """Misuse of CAF locks (double acquire, unlock of unheld lock, ...)."""


class CafLock:
    """A coarray of ``lock_type`` variables.

    ``shape=()`` gives the common single lock per image
    (``type(lock_type) :: lck[*]``); a non-empty shape gives an array of
    locks per image (e.g. one per hash bucket in the DHT benchmark).
    """

    _ids = itertools.count(1)

    def __init__(self, runtime: CafRuntime, shape=()) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        self.shape = tuple(int(s) for s in shape)
        self.runtime = runtime
        n = 1
        for s in self.shape:
            n *= s
        self.size = n
        # Lock words start zeroed = NIL tail = unlocked.
        self.handle = runtime.alloc_symmetric((max(n, 1),), np.uint64)
        # A collectively-agreed identity for the held-locks hash table.
        self.lock_id = runtime.agree(
            f"caflock:{self.handle.byte_offset}", lambda: next(CafLock._ids)
        )

    # ------------------------------------------------------------------
    def _flat_index(self, index) -> int:
        if isinstance(index, (int, np.integer)):
            idx = (int(index),) if self.shape else ()
        else:
            idx = tuple(index)
        if len(idx) != len(self.shape):
            raise IndexError(f"lock index {index!r} does not match shape {self.shape}")
        flat = 0
        for i, extent in zip(idx, self.shape):
            if not 0 <= i < extent:
                raise IndexError(f"lock index {index!r} out of bounds for {self.shape}")
            flat = flat * extent + i
        return flat

    def acquire(self, image: int, index=()) -> None:
        """``lock(lck[image])`` — acquire this lock *at* ``image``."""
        rt = self.runtime
        flat = self._flat_index(index)
        if rt.backend.lock_algorithm == "mcs":
            _mcs_acquire(rt, self, image, flat)
        else:
            _tas_acquire(rt, self, image, flat)

    def release(self, image: int, index=()) -> None:
        """``unlock(lck[image])``."""
        rt = self.runtime
        flat = self._flat_index(index)
        if rt.backend.lock_algorithm == "mcs":
            _mcs_release(rt, self, image, flat)
        else:
            _tas_release(rt, self, image, flat)

    def holding(self, image: int, index=()) -> bool:
        """Does *this image* currently hold the lock at ``image``?"""
        rt = self.runtime
        key = (self.lock_id, image, self._flat_index(index))
        return key in rt._held[current().pe]

    class _Guard:
        __slots__ = ("lock", "image", "index")

        def __init__(self, lock: "CafLock", image: int, index) -> None:
            self.lock = lock
            self.image = image
            self.index = index

        def __enter__(self) -> "CafLock._Guard":
            self.lock.acquire(self.image, self.index)
            return self

        def __exit__(self, *exc) -> None:
            self.lock.release(self.image, self.index)

    def guard(self, image: int, index=()) -> "CafLock._Guard":
        """Context manager: ``with lck.guard(j): ...``."""
        return self._Guard(self, image, index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CafLock(id={self.lock_id}, shape={self.shape})"


# ---------------------------------------------------------------------------
# MCS queue lock (the paper's algorithm)
# ---------------------------------------------------------------------------


def _held_key(lck: CafLock, image: int, flat: int) -> tuple[int, int, int]:
    return (lck.lock_id, image, flat)


def _machinery(rt: CafRuntime):
    """Context marking traced operations as lock-protocol machinery.

    The tail swaps, link puts, and handoff traffic synchronize *through*
    the lock word; the sanitizer must not treat them as user data
    conflicts.  Quiets issued inside remain quiesce points.
    """
    tracer = rt.job.tracer
    return tracer.sync_internal() if tracer is not None else nullcontext()


def _record_lock(rt, op, tag, target_pe, t_start, lck, image, flat) -> None:
    """Emit a ``lock_acquire``/``lock_release`` sync record (sync-capture
    mode only) carrying the lock identity and the global acquisition
    ticket, which the sanitizer chains into release->acquire edges."""
    tracer = rt.job.tracer
    if tracer is None or not tracer.capture_sync:
        return
    ctx = current()
    hold_key = ("caf", lck.lock_id, image, flat)
    if op == "lock_acquire":
        ticket = tracer.begin_hold(hold_key, ctx.pe)
    else:
        ticket = tracer.end_hold(hold_key, ctx.pe)
    tracer.record(
        ctx.pe, op, target_pe, 0, t_start, ctx.clock.now,
        meta=(tag, lck.lock_id, image, flat, ticket), internal=False,
    )


def _mcs_acquire(rt: CafRuntime, lck: CafLock, image: int, flat: int) -> None:
    ctx = current()
    me_pe = ctx.pe
    me_image = me_pe + 1
    target_pe = rt.image_to_pe(image)
    key = _held_key(lck, image, flat)
    held = rt._held[me_pe]
    if key in held:
        raise LockError(
            f"image {me_image} already holds lock {lck.lock_id}[{flat}] at image {image}"
        )
    t_start = ctx.clock.now
    with _machinery(rt):
        # Allocate and initialize my qnode (locked=1, next=NIL).  The init
        # goes through the notifying write path because remote PEs will
        # later read/overwrite these words.
        qoff = rt.managed_alloc(me_pe, QNODE_BYTES)
        mem = rt.job.memories[me_pe]
        mem.write(
            rt.managed_byte_offset(qoff),
            np.array([1, NIL], dtype=np.uint64),
            timestamp=ctx.clock.now,
        )
        my_ptr = pack_remote_pointer(me_image, qoff)
        # Swing the tail to me (atomic fetch-and-store = shmem_swap).
        pred = int(rt.layer.atomic(lck.handle, target_pe, flat, "swap", my_ptr))
        if pred != NIL:
            p = unpack_remote_pointer(pred)
            # Link behind the predecessor: write my pointer into its next word.
            rt.layer.put(
                rt.managed_u64,
                np.array([my_ptr], dtype=np.uint64),
                p.image - 1,
                offset=(p.offset // 8) + _NEXT_WORD,
            )
            rt.layer.quiet()
            # Spin locally on my qnode's locked word (the MCS property:
            # no remote polling while waiting).  ``target`` names the
            # predecessor: if it fails mid-protocol, the wait raises and
            # the rescue path decides whether the lock was handed over.
            try:
                rt.layer.wait_until(
                    rt.managed_u64, CMP_EQ, 0,
                    offset=qoff // 8 + _LOCKED_WORD, target=p.image - 1,
                )
            except ImageFailedError:
                if not _rescue_dead_pred(rt, p, qoff):
                    # Predecessor died queued behind a live holder: the
                    # queue link through it is unrecoverable.  The qnode
                    # stays allocated (successors may still link to it).
                    raise
    held[key] = (qoff, lck, target_pe)
    rt.my_stats["lock_acquires"] += 1
    _record_lock(rt, "lock_acquire", "la", target_pe, t_start, lck, image, flat)


def _mcs_release(rt: CafRuntime, lck: CafLock, image: int, flat: int) -> None:
    ctx = current()
    me_pe = ctx.pe
    me_image = me_pe + 1
    target_pe = rt.image_to_pe(image)
    key = _held_key(lck, image, flat)
    held = rt._held[me_pe]
    entry = held.pop(key, None)
    if entry is None:
        raise LockError(
            f"image {me_image} does not hold lock {lck.lock_id}[{flat}] at image {image}"
        )
    qoff = entry[0]
    my_ptr = pack_remote_pointer(me_image, qoff)
    t_start = ctx.clock.now
    # Writes from the critical section must be remotely complete before
    # the lock is visibly released.
    rt.layer.quiet()
    with _machinery(rt):
        old = int(rt.layer.atomic(lck.handle, target_pe, flat, "cswap", NIL, my_ptr))
        if old != my_ptr:
            # A successor swung the tail past me; wait for it to link itself.
            rt.layer.wait_until(rt.managed_u64, CMP_NE, NIL, offset=qoff // 8 + _NEXT_WORD)
            # Read my qnode's next link through the layer's local-read
            # path: a bare PEMemory.read_scalar here would be invisible
            # to the tracer, the stats, and the sanitizer.
            nxt_word = int(
                rt.layer.local_read_scalar(
                    rt.managed_u64, offset=qoff // 8 + _NEXT_WORD
                )
            )
            nxt = unpack_remote_pointer(nxt_word)
            # Hand the lock over: reset the successor's locked word.
            rt.layer.put(
                rt.managed_u64,
                np.array([0], dtype=np.uint64),
                nxt.image - 1,
                offset=(nxt.offset // 8) + _LOCKED_WORD,
            )
            rt.layer.quiet()
    rt.managed_free(me_pe, qoff)
    rt.my_stats["lock_releases"] += 1
    _record_lock(rt, "lock_release", "lr", target_pe, t_start, lck, image, flat)


def _rescue_dead_pred(rt: CafRuntime, p, qoff: int) -> bool:
    """Successor-side MCS recovery: the awaited predecessor failed.

    Returns True once this image holds the lock, through one of three
    doors — the dead holder's crash handler handed it over (our locked
    word went to 0), it poisoned its qnode before seeing our link (we
    claim), or the dead node received a posthumous handoff from a live
    holder (its locked word went to 0: F2018 unlocks a failed image's
    locks, and we, its linked successor, claim).  False means the dead
    node is an unrecoverable zombie mid-queue.

    Raw memory reads only: the predecessor is dead, so priced layer
    traffic toward it would itself raise.  The wall-clock bound covers
    the threaded engine, where the crash handler runs concurrently; on
    the cooperative engine the handler completed before this PE resumed,
    so the first iteration decides.
    """
    ctx = current()
    mymem = rt.job.memories[ctx.pe]
    my_locked = rt.managed_byte_offset(qoff) + 8 * _LOCKED_WORD
    dead_locked = rt.managed_byte_offset(p.offset) + 8 * _LOCKED_WORD
    deadmem = rt.job.memories[p.image - 1]
    deadline = time.monotonic() + _RESCUE_DEADLINE_S
    while True:
        if int(mymem.read_scalar(my_locked, np.uint64)) == 0:
            return True
        dead_word = int(deadmem.read_scalar(dead_locked, np.uint64))
        if dead_word in (_POISON, 0):
            mymem.write(
                my_locked, np.array([0], dtype=np.uint64),
                timestamp=ctx.clock.now,
            )
            return True
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.001)


def force_release(rt: CafRuntime, pe: int, key, entry) -> None:
    """Raw-mode release of a dead image's held lock (F2018 11.6.11).

    Runs from the engine's crash handler on the dying PE — before the
    failure is observable by survivors on the cooperative engine, and
    concurrently with them on the threaded engine — so it must not issue
    priced layer traffic or block.  All stores go straight to the
    backing memories, stamped at the dying image's crash time.
    """
    lock_id, image, flat = key
    qoff, lck, target_pe = entry
    ts = current().clock.now
    tmem = rt.job.memories[target_pe]
    word_addr = lck.handle.element_offset(flat)
    if qoff < 0:
        # TAS: the central word holds the dead holder's image number.
        # The guarded rmw leaves the word alone if a survivor already
        # stole it through the acquire loop's keyed cswap.
        me_image = pe + 1
        tmem.atomic_rmw(
            word_addr, np.uint64,
            lambda old: NIL if int(old) == me_image else old,
            timestamp=ts,
        )
        return
    # MCS: the dead image is the queue head.  Swing the tail back to
    # NIL if no successor has queued.
    my_ptr = pack_remote_pointer(pe + 1, qoff)
    old = int(
        tmem.atomic_rmw(
            word_addr, np.uint64,
            lambda cur: NIL if int(cur) == my_ptr else cur,
            timestamp=ts,
        )
    )
    if old in (my_ptr, NIL):
        return
    # A successor exists.  If it has linked, hand the lock over; if its
    # link is still in flight, poison this qnode's locked word so the
    # successor's failed wait claims the lock instead (_rescue_dead_pred).
    mymem = rt.job.memories[pe]
    base = rt.managed_byte_offset(qoff)
    nxt_word = int(mymem.read_scalar(base + 8 * _NEXT_WORD, np.uint64))
    if nxt_word != NIL:
        nxt = unpack_remote_pointer(nxt_word)
        rt.job.memories[nxt.image - 1].write(
            rt.managed_byte_offset(nxt.offset) + 8 * _LOCKED_WORD,
            np.array([0], dtype=np.uint64),
            timestamp=ts,
        )
    else:
        mymem.write(
            base + 8 * _LOCKED_WORD,
            np.array([_POISON], dtype=np.uint64),
            timestamp=ts,
        )


# ---------------------------------------------------------------------------
# Test-and-set baseline (Cray CAF reference model)
# ---------------------------------------------------------------------------


def _tas_acquire(rt: CafRuntime, lck: CafLock, image: int, flat: int) -> None:
    ctx = current()
    me_image = ctx.pe + 1
    target_pe = rt.image_to_pe(image)
    key = _held_key(lck, image, flat)
    held = rt._held[ctx.pe]
    if key in held:
        raise LockError(
            f"image {me_image} already holds lock {lck.lock_id}[{flat}] at image {image}"
        )
    t_start = ctx.clock.now
    backoff = _TAS_BACKOFF_START_US
    spin = rt.layer.engine.spin_yield
    with _machinery(rt), rt.job.watchdog.watch(
        ctx.pe, f"caf_lock[{flat}]@image{image} (tas acquire)"
    ) as guard:
        while True:
            # Check abort *before* each attempt: an aborted job must exit
            # promptly, not issue one more remote atomic first.
            if rt.job.aborted():
                raise JobAborted("job aborted while acquiring CAF lock")
            guard.poll()
            old = int(rt.layer.atomic(lck.handle, target_pe, flat, "cswap", me_image, NIL))
            if old == NIL:
                break
            # F2018 11.6.11: a failed image's locks become unlocked.
            # The crash handler force-releases the word; the keyed cswap
            # here closes the window where the holder is marked failed
            # but the release has not landed yet (steal from the dead).
            holder_pe = old - 1
            if (
                rt.job.survivable
                and 0 <= holder_pe < rt.job.num_pes
                and rt.job.failed.is_failed(holder_pe)
            ):
                stolen = int(
                    rt.layer.atomic(lck.handle, target_pe, flat, "cswap", me_image, old)
                )
                if stolen == old:
                    break
            ctx.clock.advance(backoff)
            backoff = min(backoff * 2, _TAS_BACKOFF_MAX_US)
            # Wall-clock yield on the threaded engine; cooperative spin
            # yield under a scheduler so priority strategies can demote
            # this spinner until the holder releases.
            spin(ctx, "lock_spin", target_pe)
    held[key] = (-1, lck, target_pe)  # no qnode for TAS
    rt.my_stats["lock_acquires"] += 1
    _record_lock(rt, "lock_acquire", "la", target_pe, t_start, lck, image, flat)


def _tas_release(rt: CafRuntime, lck: CafLock, image: int, flat: int) -> None:
    ctx = current()
    me_image = ctx.pe + 1
    target_pe = rt.image_to_pe(image)
    key = _held_key(lck, image, flat)
    held = rt._held[ctx.pe]
    if held.pop(key, None) is None:
        raise LockError(
            f"image {me_image} does not hold lock {lck.lock_id}[{flat}] at image {image}"
        )
    t_start = ctx.clock.now
    rt.layer.quiet()
    with _machinery(rt):
        old = int(rt.layer.atomic(lck.handle, target_pe, flat, "cswap", NIL, me_image))
    if old != me_image:
        raise LockError(
            f"lock word corrupted: expected holder {me_image}, found {old}"
        )
    rt.my_stats["lock_releases"] += 1
    _record_lock(rt, "lock_release", "lr", target_pe, t_start, lck, image, flat)
