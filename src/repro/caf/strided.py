"""Multi-dimensional strided transfer planning (paper Section IV-C).

A co-indexed array-section access like ``X(1:100:2, 1:80:2, 1:100:4)[j]``
must be decomposed into operations OpenSHMEM offers: contiguous
``putmem``/``getmem`` and 1-D strided ``iput``/``iget``.  This module
turns a NumPy-style selection into a :class:`TransferPlan` under one of
several algorithms:

``naive``
    One contiguous transfer per maximal contiguous run.  When the
    fastest-varying selected dimension is strided, that is one call *per
    element* — the paper's 50 x 40 x 25 = 50,000-call example.

``2dim`` (the paper's ``2dim_strided`` contribution)
    Choose a *base dimension* among the **two fastest-varying** array
    dimensions — the one with more selected elements — and issue one
    1-D ``iput``/``iget`` per line along it, looping over the remaining
    dimensions.  Restricting the choice to the two fastest dimensions is
    the paper's locality tradeoff: a base dimension further out would
    make each strided element a whole cache-unfriendly panel apart.
    (Fortran's dimension 1 is fastest-varying; these arrays are C-order,
    so Fortran dims 1 and 2 map to the *last two* axes here.)

``alldim`` (ablation)
    Like ``2dim`` but the base dimension may be any axis — the variant
    the paper rejects for locality reasons.

``matrix``
    The matrix-oriented case (paper Section V-D, Himeno): when the
    fastest-varying selected dimension is contiguous, one ``putmem`` per
    run beats one ``iput`` per line; otherwise fall back to ``2dim``.

``auto``
    ``matrix`` when runs are contiguous, else ``2dim`` on conduits with
    native ``iput`` and ``naive`` otherwise.

Plans are pure data (offsets in elements); execution lives in
:mod:`repro.caf.coarray`.  Plan generation is exact: tests verify that
executing any plan touches exactly the elements NumPy slicing selects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

ALGORITHMS = (
    "naive",
    "2dim",
    "alldim",
    "lastdim",
    "matrix",
    "auto",
    "model",
    "contiguous",
)


@dataclass(frozen=True, slots=True)
class DimSel:
    """One dimension of a normalized selection: ``start + i*step`` for
    ``i`` in ``[0, count)``."""

    start: int
    count: int
    step: int


@dataclass(frozen=True, slots=True)
class ContigRun:
    """One contiguous transfer: ``length`` elements at ``offset``."""

    offset: int  # element offset within the coarray
    length: int


@dataclass(frozen=True, slots=True)
class StridedLine:
    """One 1-D strided transfer: ``count`` elements, ``stride`` apart."""

    offset: int  # element offset within the coarray
    stride: int  # element stride (>= 1)
    count: int


@dataclass(frozen=True, slots=True)
class TransferPlan:
    """Decomposition of a multi-dimensional section into library calls."""

    algorithm: str
    runs: tuple[ContigRun, ...] = ()
    lines: tuple[StridedLine, ...] = ()
    #: Axis moved last so that flattened payload chunks match ``lines``
    #: (only set for line plans; None means natural C order).
    base_dim: int | None = None

    @property
    def num_calls(self) -> int:
        return len(self.runs) + len(self.lines)

    @property
    def total_elems(self) -> int:
        return sum(r.length for r in self.runs) + sum(ln.count for ln in self.lines)


# ---------------------------------------------------------------------------
# Selection normalization
# ---------------------------------------------------------------------------


def normalize_selection(
    shape: tuple[int, ...], key
) -> tuple[list[DimSel], tuple[int, ...]]:
    """Normalize a NumPy-style subscript into per-dimension selections.

    Supports integers and slices with positive step (Fortran array
    sections have positive strides; reversed sections are rejected).
    Returns ``(selections, result_shape)`` where integer subscripts
    contribute a count-1 selection but no result dimension.
    """
    if not isinstance(key, tuple):
        key = (key,)
    if key.count(Ellipsis) > 1:
        raise IndexError("at most one Ellipsis allowed")
    if Ellipsis in key:
        i = key.index(Ellipsis)
        fill = len(shape) - (len(key) - 1)
        if fill < 0:
            raise IndexError(f"too many subscripts for shape {shape}")
        key = key[:i] + (slice(None),) * fill + key[i + 1 :]
    if len(key) > len(shape):
        raise IndexError(f"too many subscripts for shape {shape}")
    key = key + (slice(None),) * (len(shape) - len(key))

    sels: list[DimSel] = []
    result_shape: list[int] = []
    for dim, (k, extent) in enumerate(zip(key, shape)):
        if isinstance(k, (int, np.integer)):
            idx = int(k)
            if idx < 0:
                idx += extent
            if not 0 <= idx < extent:
                raise IndexError(f"index {k} out of bounds for dim {dim} of size {extent}")
            sels.append(DimSel(start=idx, count=1, step=1))
        elif isinstance(k, slice):
            start, stop, step = k.indices(extent)
            if step <= 0:
                raise IndexError(
                    "negative-step sections are not supported (Fortran array "
                    "sections have positive stride)"
                )
            count = max(0, -(-(stop - start) // step))
            sels.append(DimSel(start=start, count=count, step=step))
            result_shape.append(count)
        else:
            raise TypeError(f"unsupported subscript {k!r} in dim {dim}")
    return sels, tuple(result_shape)


def _row_strides(shape: tuple[int, ...]) -> list[int]:
    """C-order element strides per dimension."""
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return strides


def selection_offsets(sels: list[DimSel], shape: tuple[int, ...]) -> np.ndarray:
    """Flat element offsets of every selected element, in C iteration
    order of the selection (test oracle; O(total elements))."""
    strides = _row_strides(shape)
    offs = np.zeros(1, dtype=np.int64)
    for sel, rs in zip(sels, strides):
        line = (sel.start + np.arange(sel.count, dtype=np.int64) * sel.step) * rs
        offs = (offs[:, None] + line[None, :]).reshape(-1)
    return offs


# ---------------------------------------------------------------------------
# Planners
# ---------------------------------------------------------------------------


def _outer_offsets(
    sels: list[DimSel], shape: tuple[int, ...], skip: int
) -> np.ndarray:
    """Base offsets for every index combination over all dims except
    ``skip``, iterated in C order."""
    strides = _row_strides(shape)
    offs = np.zeros(1, dtype=np.int64)
    for d, (sel, rs) in enumerate(zip(sels, strides)):
        if d == skip:
            continue
        line = (sel.start + np.arange(sel.count, dtype=np.int64) * sel.step) * rs
        offs = (offs[:, None] + line[None, :]).reshape(-1)
    skip_sel = sels[skip]
    return offs + skip_sel.start * strides[skip]


def plan_contiguous(
    sels: list[DimSel], shape: tuple[int, ...]
) -> TransferPlan | None:
    """One single contiguous run, if the whole selection is one.

    A selection is contiguous iff, scanning from the fastest dimension,
    every dimension is fully selected with step 1 until one (possibly
    partial, step-1) dimension, outside of which all counts are 1.
    """
    if not sels:
        return TransferPlan(algorithm="contiguous", runs=(ContigRun(0, 1),))
    total = 1
    for s in sels:
        total *= s.count
    if total == 0:
        return TransferPlan(algorithm="contiguous", runs=())
    strides = _row_strides(shape)
    d = len(sels) - 1
    # Swallow fully-selected step-1 fast dimensions.
    while d >= 0 and sels[d].count == shape[d] and sels[d].step == 1:
        d -= 1
    if d >= 0:
        if sels[d].step != 1 and sels[d].count > 1:
            return None
        d -= 1
    while d >= 0:
        if sels[d].count != 1:
            return None
        d -= 1
    offset = sum(s.start * rs for s, rs in zip(sels, strides))
    return TransferPlan(algorithm="contiguous", runs=(ContigRun(int(offset), total),))


def plan_naive(sels: list[DimSel], shape: tuple[int, ...]) -> TransferPlan:
    """Maximal contiguous runs: the paper's naive algorithm.

    With a strided fastest dimension this degenerates to one call per
    element (the 50,000-call example); with a contiguous fastest
    dimension it is one call per run.
    """
    contig = plan_contiguous(sels, shape)
    if contig is not None:
        return TransferPlan(algorithm="naive", runs=contig.runs)
    last = len(sels) - 1
    inner = sels[last]
    if inner.step == 1 and inner.count > 1:
        bases = _outer_offsets(sels, shape, skip=last)
        runs = tuple(ContigRun(int(b), inner.count) for b in bases)
        return TransferPlan(algorithm="naive", runs=runs)
    offs = selection_offsets(sels, shape)
    return TransferPlan(
        algorithm="naive", runs=tuple(ContigRun(int(o), 1) for o in offs)
    )


def _line_plan(
    sels: list[DimSel], shape: tuple[int, ...], base: int, algorithm: str
) -> TransferPlan:
    strides = _row_strides(shape)
    sel = sels[base]
    stride = sel.step * strides[base]
    bases = _outer_offsets(sels, shape, skip=base)
    lines = tuple(StridedLine(int(b), int(stride), sel.count) for b in bases)
    return TransferPlan(algorithm=algorithm, lines=lines, base_dim=base)


def choose_base_dim(sels: list[DimSel], candidates: list[int]) -> int:
    """The candidate dimension with the most selected elements (ties go
    to the faster-varying, i.e. larger axis index)."""
    if not candidates:
        raise ValueError("no candidate dimensions")
    return max(candidates, key=lambda d: (sels[d].count, d))


def plan_2dim(sels: list[DimSel], shape: tuple[int, ...]) -> TransferPlan:
    """The paper's ``2dim_strided``: base dim from the two fastest axes."""
    if not sels or any(s.count == 0 for s in sels):
        return TransferPlan(algorithm="2dim")
    candidates = list(range(len(sels)))[-2:]
    base = choose_base_dim(sels, candidates)
    return _line_plan(sels, shape, base, "2dim")


def plan_alldim(sels: list[DimSel], shape: tuple[int, ...]) -> TransferPlan:
    """Ablation variant: base dim chosen over *all* axes (max elements,
    ignoring the paper's locality restriction)."""
    if not sels or any(s.count == 0 for s in sels):
        return TransferPlan(algorithm="alldim")
    base = choose_base_dim(sels, list(range(len(sels))))
    return _line_plan(sels, shape, base, "alldim")


def plan_lastdim(sels: list[DimSel], shape: tuple[int, ...]) -> TransferPlan:
    """Fixed fastest-dimension lines — the Cray CAF runtime model.

    DMAPP offers native 1-D strided transfers, but without the paper's
    base-dimension choice the runtime always strides along the fastest
    axis, issuing ``prod(outer counts)`` calls even when a slower axis
    has far more elements.
    """
    if not sels or any(s.count == 0 for s in sels):
        return TransferPlan(algorithm="lastdim")
    return _line_plan(sels, shape, len(sels) - 1, "lastdim")


def plan_matrix(sels: list[DimSel], shape: tuple[int, ...]) -> TransferPlan:
    """Matrix-oriented strides: contiguous fastest dimension => one
    ``putmem`` per run (paper Section V-D); otherwise ``2dim``."""
    if not sels or any(s.count == 0 for s in sels):
        return TransferPlan(algorithm="matrix")
    inner = sels[-1]
    if inner.step == 1 and inner.count > 1:
        naive = plan_naive(sels, shape)
        return TransferPlan(algorithm="matrix", runs=naive.runs)
    return _line_plan(sels, shape, choose_base_dim(sels, list(range(len(sels)))[-2:]), "matrix")


def estimate_plan_cost(
    plan: TransferPlan,
    *,
    elem_size: int,
    o_call_us: float,
    bandwidth_Bpus: float,
    iput_native: bool,
    gap_fn,
) -> float:
    """Analytic cost of executing ``plan`` (the planner's own model).

    ``gap_fn(elem_size, stride_bytes)`` prices the per-element
    gather/scatter gap of a native strided descriptor — pass
    ``NetworkModel._gather_gap`` partially applied to the conduit.
    Without native iput support, every line degenerates to per-element
    calls (the MVAPICH2-X behaviour).
    """
    bytes_total = plan.total_elems * elem_size
    wire = bytes_total / bandwidth_Bpus
    if plan.lines:
        if not iput_native:
            return plan.total_elems * o_call_us + wire
        cost = len(plan.lines) * o_call_us + wire
        for line in plan.lines:
            cost += line.count * gap_fn(elem_size, line.stride * elem_size)
        return cost
    return len(plan.runs) * o_call_us + wire


def plan_model(
    sels: list[DimSel],
    shape: tuple[int, ...],
    *,
    elem_size: int,
    o_call_us: float,
    bandwidth_Bpus: float,
    iput_native: bool,
    gap_fn,
) -> TransferPlan:
    """Cost-model planner (the paper's future work: "account for more
    parameters to negotiate the tradeoff between locality and
    minimizing the number of single calls").

    Enumerates the naive/matrix decomposition and a line plan along
    *every* dimension, prices each with :func:`estimate_plan_cost`
    (call overheads, payload bytes, and the stride-dependent gather
    gap that encodes cache-line locality), and picks the cheapest.
    """
    from dataclasses import replace

    if not sels or any(s.count == 0 for s in sels):
        return TransferPlan(algorithm="model")
    candidates = [plan_naive(sels, shape)]
    if iput_native:
        candidates.extend(
            _line_plan(sels, shape, d, "model") for d in range(len(sels))
        )
    best = min(
        candidates,
        key=lambda p: estimate_plan_cost(
            p,
            elem_size=elem_size,
            o_call_us=o_call_us,
            bandwidth_Bpus=bandwidth_Bpus,
            iput_native=iput_native,
            gap_fn=gap_fn,
        ),
    )
    return replace(best, algorithm="model")


def make_plan(
    sels: list[DimSel],
    shape: tuple[int, ...],
    algorithm: str,
    *,
    iput_native: bool,
    model_params: dict | None = None,
) -> TransferPlan:
    """Build a plan under ``algorithm`` (see module docstring).

    ``iput_native`` matters for ``auto``: without native 1-D strided
    support a line plan costs the same as naive (the paper's MVAPICH2-X
    observation), so auto keeps the simpler naive decomposition.
    ``model_params`` supplies :func:`plan_model`'s cost inputs
    (``elem_size``, ``o_call_us``, ``bandwidth_Bpus``, ``gap_fn``).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; expected {ALGORITHMS}")
    contig = plan_contiguous(sels, shape)
    if contig is not None:
        return contig
    if algorithm == "contiguous":
        raise ValueError("selection is not contiguous")
    if algorithm == "naive":
        return plan_naive(sels, shape)
    if algorithm == "2dim":
        return plan_2dim(sels, shape)
    if algorithm == "alldim":
        return plan_alldim(sels, shape)
    if algorithm == "lastdim":
        return plan_lastdim(sels, shape)
    if algorithm == "matrix":
        return plan_matrix(sels, shape)
    if algorithm == "model":
        if not model_params:
            raise ValueError("algorithm 'model' requires model_params")
        return plan_model(sels, shape, iput_native=iput_native, **model_params)
    # auto
    inner = sels[-1]
    if inner.step == 1 and inner.count > 1:
        return plan_matrix(sels, shape)
    if iput_native:
        return plan_2dim(sels, shape)
    return plan_naive(sels, shape)
