"""CAF atomic subroutines (Table II's atomic rows).

Fortran's ``atomic_int_kind`` maps to 8-byte integers here, matching
OpenSHMEM's 8-byte AMO support the translation relies on:

=====================  =====================
CAF                    OpenSHMEM
=====================  =====================
``atomic_define``      ``shmem_set``
``atomic_ref``         ``shmem_fetch``
``atomic_cas``         ``shmem_cswap``
``atomic_fetch_add``   ``shmem_fadd``
``atomic_fetch_and``   ``shmem_and``
``atomic_fetch_or``    ``shmem_or``
``atomic_fetch_xor``   ``shmem_xor``
``atomic_swap``        ``shmem_swap``
=====================  =====================

All functions take a coarray, the image to operate *at* (1-based), and
a flat element index.
"""

from __future__ import annotations

import numpy as np

from repro.caf.coarray import Coarray
from repro.caf.runtime import CafError, CafRuntime


def _check_atom(coarray: Coarray) -> None:
    if coarray.dtype.itemsize != 8 or not np.issubdtype(coarray.dtype, np.integer):
        raise CafError(
            f"CAF atomics require an 8-byte integer coarray (atomic_int_kind); "
            f"got dtype {coarray.dtype}"
        )


def atomic_define(rt: CafRuntime, coarray: Coarray, image: int, value, index: int = 0) -> None:
    """``call atomic_define(atom[image], value)``."""
    _check_atom(coarray)
    rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "set", value)


def atomic_ref(rt: CafRuntime, coarray: Coarray, image: int, index: int = 0) -> int:
    """``call atomic_ref(value, atom[image])``; returns the value."""
    _check_atom(coarray)
    return int(rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "fetch"))


def atomic_cas(
    rt: CafRuntime, coarray: Coarray, image: int, compare, new, index: int = 0
) -> int:
    """``call atomic_cas(atom[image], old, compare, new)``; returns old."""
    _check_atom(coarray)
    return int(
        rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "cswap", new, compare)
    )


def atomic_fetch_add(
    rt: CafRuntime, coarray: Coarray, image: int, value, index: int = 0
) -> int:
    """``call atomic_fetch_add(atom[image], value, old)``; returns old."""
    _check_atom(coarray)
    return int(rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "fadd", value))


def atomic_add(rt: CafRuntime, coarray: Coarray, image: int, value, index: int = 0) -> None:
    """``call atomic_add(atom[image], value)``."""
    _check_atom(coarray)
    rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "fadd", value)


def atomic_fetch_and(
    rt: CafRuntime, coarray: Coarray, image: int, value, index: int = 0
) -> int:
    """``call atomic_fetch_and(atom[image], value, old)``; returns old."""
    _check_atom(coarray)
    return int(rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "and", value))


def atomic_fetch_or(
    rt: CafRuntime, coarray: Coarray, image: int, value, index: int = 0
) -> int:
    """``call atomic_fetch_or(atom[image], value, old)``; returns old."""
    _check_atom(coarray)
    return int(rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "or", value))


def atomic_fetch_xor(
    rt: CafRuntime, coarray: Coarray, image: int, value, index: int = 0
) -> int:
    """``call atomic_fetch_xor(atom[image], value, old)``; returns old."""
    _check_atom(coarray)
    return int(rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "xor", value))


def atomic_swap(rt: CafRuntime, coarray: Coarray, image: int, value, index: int = 0) -> int:
    """Fetch-and-store (``shmem_swap``); returns the old value."""
    _check_atom(coarray)
    return int(rt.layer.atomic(coarray.handle, rt.image_to_pe(image), index, "swap", value))
