"""CAF events (``event_type`` — TS 18508 / Fortran 2018).

Events are counting semaphores with image affinity: ``event post
(ev[j])`` atomically increments the count at image ``j``; ``event wait
(ev)`` blocks on the *local* event until the count reaches the
threshold, then atomically consumes it.  They are listed among the
"additional features ... available in the CAF implementation in
OpenUH" (paper Section II-A) and map onto the same OpenSHMEM atomics
and ``wait_until`` the rest of the translation uses.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.caf.runtime import CafError, CafRuntime
from repro.comm.constants import CMP_GE
from repro.runtime.context import current


class CafEvent:
    """A coarray of event variables (one counter per image per index)."""

    _ids = itertools.count(1)

    def __init__(self, runtime: CafRuntime, shape=()) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        self.shape = tuple(int(s) for s in shape)
        self.runtime = runtime
        n = 1
        for s in self.shape:
            n *= s
        self.size = n
        self.handle = runtime.alloc_symmetric((max(n, 1),), np.int64)
        # A collectively-agreed identity naming this event variable in
        # sanitizer post/wait channel records.
        self.event_id = runtime.agree(
            f"cafevent:{self.handle.byte_offset}", lambda: next(CafEvent._ids)
        )

    def _record(self, op: str, tag: str, target_pe: int, channel: str, t_start: float) -> None:
        tracer = self.runtime.job.tracer
        if tracer is None or not tracer.capture_sync:
            return
        ctx = current()
        # Ticket -1: event ordering is carried by the counter's atomic
        # sequence chain; the record is for lock-step reporting only.
        tracer.record(
            ctx.pe, op, target_pe, 0, t_start, ctx.clock.now,
            meta=(tag, channel, -1),
        )

    def _flat(self, index) -> int:
        if isinstance(index, (int, np.integer)):
            idx = (int(index),) if self.shape else ()
        else:
            idx = tuple(index)
        if len(idx) != len(self.shape):
            raise IndexError(f"event index {index!r} does not match shape {self.shape}")
        flat = 0
        for i, extent in zip(idx, self.shape):
            if not 0 <= i < extent:
                raise IndexError(f"event index {index!r} out of bounds for {self.shape}")
            flat = flat * extent + i
        return flat

    # ------------------------------------------------------------------
    def post(self, image: int, index=()) -> None:
        """``event post (ev[image])``.

        Completes this image's outstanding puts first (posts carry a
        release semantic: data written before the post is visible to a
        waiter that sees the post).
        """
        rt = self.runtime
        flat = self._flat(index)
        target_pe = rt.image_to_pe(image)
        t_start = current().clock.now
        rt.layer.quiet()
        rt.layer.atomic(self.handle, target_pe, flat, "fadd", 1)
        self._record("post", "po", target_pe, f"ev:{self.event_id}:{target_pe}:{flat}", t_start)

    def wait(self, index=(), until_count: int = 1) -> None:
        """``event wait (ev, until_count=n)`` on the *local* event."""
        if until_count < 1:
            raise CafError("until_count must be >= 1")
        rt = self.runtime
        flat = self._flat(index)
        me = current().pe
        t_start = current().clock.now
        rt.layer.wait_until(self.handle, CMP_GE, until_count, offset=flat)
        # Consume the posts we waited for (local atomic keeps posters safe).
        rt.layer.atomic(self.handle, me, flat, "fadd", -until_count)
        self._record("wait", "wa", me, f"ev:{self.event_id}:{me}:{flat}", t_start)

    def query(self, index=()) -> int:
        """``call event_query(ev, count)`` — local count, no blocking."""
        rt = self.runtime
        flat = self._flat(index)
        return int(rt.layer.atomic(self.handle, current().pe, flat, "fetch"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CafEvent(shape={self.shape})"
