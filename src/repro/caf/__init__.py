"""Coarray Fortran semantics as a Python runtime library.

This package is the paper's primary contribution rendered in Python: the
UHCAF runtime retargeted onto OpenSHMEM (and, for comparison, GASNet,
MPI-3.0 RMA, and a Cray-CAF reference model).  Python has no Fortran
front-end, so the API exposes exactly the runtime calls the OpenUH
compiler would emit for each CAF construct::

    import numpy as np
    from repro import caf

    def kernel():
        me = caf.this_image()          # this_image()
        n = caf.num_images()
        x = caf.coarray((4,), np.int64)  # integer :: x(4)[*]
        x[:] = me
        caf.sync_all()                   # sync all
        if me == 1:
            row = x.on(2)[:]             # x(:)[2]
            x.on(2)[0] = 99              # x(1)[2] = 99
        caf.sync_all()

    caf.launch(kernel, num_images=4, backend="shmem")

Co-indexed slices of any dimensionality work, planned by the paper's
strided algorithms (``naive`` / ``2dim`` / ``alldim`` / ``lastdim`` /
``matrix`` / ``auto`` / the cost-model ``model`` planner); CAF locks
use the MCS adaptation of Section IV-D; collectives, atomics, events,
``critical``, ``sync images``/``sync memory``, Fortran 2018 teams, and
non-symmetric (derived-type component) allocation are all provided.  Hybrid CAF+OpenSHMEM programs (paper
Section I) work by calling :mod:`repro.shmem` functions inside a CAF
kernel launched with the ``shmem`` backend.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.caf import atomics as _atomics
from repro.caf import collectives as _collectives
from repro.caf.allocation import (
    ManagedObject,
    atomic_remote,
    get_remote,
    put_remote,
)
from repro.caf.backends import BACKENDS, CafBackend, make_backend
from repro.caf.coarray import Coarray, CoindexedRef
from repro.caf.events import CafEvent
from repro.caf.locks import CafLock, LockError
from repro.caf.codimension import Codimensions
from repro.caf.runtime import (
    LAYER_NAME,
    CafError,
    CafRuntime,
    attach,
    current_runtime,
)
from repro.caf.teams import ChangeTeam, Team
from repro.caf import teams as _teams
from repro.runtime.failures import (
    STAT_FAILED_IMAGE,
    STAT_STOPPED_IMAGE,
    ImageFailedError,
)
from repro.runtime.launcher import Job
from repro.util.bitpack import RemotePointer, pack_remote_pointer, unpack_remote_pointer

__all__ = [
    "Coarray",
    "CoindexedRef",
    "CafLock",
    "CafEvent",
    "CafRuntime",
    "CafBackend",
    "CafError",
    "LockError",
    "ManagedObject",
    "RemotePointer",
    "BACKENDS",
    "launch",
    "attach",
    "current_runtime",
    "this_image",
    "num_images",
    "coarray",
    "lock_type",
    "event_type",
    "nonsymmetric",
    "sync_all",
    "sync_images",
    "sync_memory",
    "failed_images",
    "image_status",
    "STAT_FAILED_IMAGE",
    "STAT_STOPPED_IMAGE",
    "ImageFailedError",
    "critical",
    "co_sum",
    "co_min",
    "co_max",
    "co_prod",
    "co_reduce",
    "co_broadcast",
    "atomic_define",
    "atomic_ref",
    "atomic_cas",
    "atomic_add",
    "atomic_fetch_add",
    "atomic_fetch_and",
    "atomic_fetch_or",
    "atomic_fetch_xor",
    "atomic_swap",
    "lock",
    "unlock",
    "Team",
    "ChangeTeam",
    "Codimensions",
    "form_team",
    "change_team",
    "get_team",
    "team_number",
    "get_remote",
    "put_remote",
    "atomic_remote",
    "pack_remote_pointer",
    "unpack_remote_pointer",
]


def _rt() -> CafRuntime:
    return current_runtime()


# ---------------------------------------------------------------------------
# Launch
# ---------------------------------------------------------------------------


def launch(
    fn: Callable[..., Any],
    num_images: int,
    machine: str = "stampede",
    *,
    backend: str | CafBackend = "shmem",
    profile: Any = None,
    strided: str | None = None,
    ordering: str = "caf",
    heap_bytes: int | None = None,
    managed_heap_bytes: int | None = None,
    lock_algorithm: str | None = None,
    use_shmem_ptr: bool = False,
    plan_cache_size: int | None = None,
    sanitize: bool = False,
    faults: Any = None,
    watchdog_s: float | None = None,
    scheduler: Any = None,
    engine: Any = None,
    survivable: bool = False,
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
) -> list[Any]:
    """Run ``fn`` as a CAF program on ``num_images`` images.

    Parameters mirror the paper's experimental axes: ``machine`` (one of
    Table III), ``backend`` (``shmem``/``gasnet``/``mpi``/``craycaf``),
    ``profile`` (override the conduit, e.g. ``"mvapich2x-shmem"``),
    ``strided`` (``naive``/``2dim``/``alldim``/``lastdim``/``matrix``/
    ``auto``), ``ordering`` (``caf`` inserts the Section IV-B quiets,
    ``relaxed`` does not), and ``lock_algorithm`` (``mcs``/``tas``).
    ``plan_cache_size`` caps the runtime's LRU transfer-plan cache
    (``None`` keeps the default of 128; ``0`` disables caching).
    ``sanitize=True`` attaches a sync-capture tracer, runs the program,
    and then replays the trace through the happens-before ordering
    sanitizer (:mod:`repro.trace.sanitizer`), raising
    :class:`~repro.trace.sanitizer.OrderingViolation` on any finding.
    ``faults`` attaches a deterministic
    :class:`~repro.sim.faults.FaultPlan` (or a prebuilt
    :class:`~repro.sim.faults.FaultInjector`, so callers can read its
    statistics afterwards); ``watchdog_s`` overrides the wall-clock
    stall deadline of the hang watchdog.  ``scheduler`` attaches a
    deterministic cooperative scheduler
    (:class:`~repro.explore.Scheduler`): one strategy seed, one exact
    interleaving.  ``engine`` selects the execution engine
    (``"threaded"``/``"event"`` or an :class:`~repro.engine.Engine`
    instance; see :mod:`repro.engine`).
    ``survivable=True`` enables the Fortran-2018 failed-images model: an
    injected crash marks the image *failed* instead of aborting the job;
    survivors keep running, ``failed_images()``/``image_status()``
    report the failures, image-control statements accept ``stat=``, and
    operations targeting a failed image raise
    :class:`~repro.runtime.failures.ImageFailedError`.
    Returns the per-image return values of ``fn``.
    """
    job_kwargs: dict[str, Any] = {} if heap_bytes is None else {"heap_bytes": heap_bytes}
    if faults is not None:
        job_kwargs["faults"] = faults
    if watchdog_s is not None:
        job_kwargs["watchdog_s"] = watchdog_s
    if scheduler is not None:
        job_kwargs["scheduler"] = scheduler
    if engine is not None:
        job_kwargs["engine"] = engine
    if survivable:
        job_kwargs["survivable"] = True
    job = Job(num_images, machine, **job_kwargs)
    rt_kwargs: dict[str, Any] = {
        "backend": backend,
        "profile": profile,
        "strided": strided,
        "ordering": ordering,
        "lock_algorithm": lock_algorithm,
        "use_shmem_ptr": use_shmem_ptr,
    }
    if managed_heap_bytes is not None:
        rt_kwargs["managed_heap_bytes"] = managed_heap_bytes
    if plan_cache_size is not None:
        rt_kwargs["plan_cache_size"] = plan_cache_size
    rt = attach(job, **rt_kwargs)
    tracer = None
    if sanitize:
        from repro.trace.events import attach as trace_attach

        tracer = trace_attach(job, capture_sync=True)

    def spmd_main(*a: Any, **kw: Any) -> Any:
        rt.startup()
        return fn(*a, **kw)

    try:
        results = job.run(spmd_main, args=args, kwargs=kwargs or {})
    finally:
        # One-shot job: release engine-held resources (shared-memory
        # segments on engine="process") deterministically.
        job.engine.cleanup()
    if tracer is not None:
        from repro.trace.sanitizer import OrderingViolation, check_tracer

        report = check_tracer(tracer)
        if not report.ok:
            raise OrderingViolation(report)
    return results


# ---------------------------------------------------------------------------
# Intrinsics
# ---------------------------------------------------------------------------


def this_image() -> int:
    """``this_image()`` — 1-based image index."""
    return _rt().this_image()


def num_images() -> int:
    """``num_images()``."""
    return _rt().num_images()


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def coarray(
    shape,
    dtype=np.float64,
    codim: "Codimensions | None" = None,
    stat: list | None = None,
) -> Coarray:
    """Allocate a coarray (``allocate(x(shape)[*])``); collective.

    Pass ``codim=Codimensions(extents=(2, 3))`` for a corank-3 coarray
    ``[2, 3, *]`` with cosubscript co-indexing via ``x.at(...)``.
    ``stat`` mirrors Fortran's ``allocate(..., stat=st)``: slot 0
    receives 0, or ``STAT_FAILED_IMAGE`` if some image of the team has
    failed (the survivors' allocation still completes).
    """
    arr = Coarray(_rt(), shape, dtype, codim=codim)
    if stat is not None:
        stat[0] = _rt()._failure_stat()
    return arr


def lock_type(shape=()) -> CafLock:
    """Declare a coarray of ``lock_type`` variables; collective."""
    return CafLock(_rt(), shape)


def event_type(shape=()) -> CafEvent:
    """Declare a coarray of ``event_type`` variables; collective."""
    return CafEvent(_rt(), shape)


def nonsymmetric(shape, dtype=np.float64) -> ManagedObject:
    """Allocate non-symmetric remotely-accessible data (a derived-type
    ``allocatable`` component); *not* collective — owner-local."""
    return ManagedObject(_rt(), shape, dtype)


# ---------------------------------------------------------------------------
# Synchronization
# ---------------------------------------------------------------------------


def sync_all(stat: list | None = None) -> int:
    """``sync all`` (``stat=`` takes a one-element mutable sequence:
    slot 0 receives 0 or ``STAT_FAILED_IMAGE``; also returned)."""
    return _rt().sync_all(stat=stat)


def sync_images(images, stat: list | None = None) -> int:
    """``sync images(list)`` — 1-based image list, or ``"*"``.

    With ``stat=``, failed partners are skipped and slot 0 receives
    ``STAT_FAILED_IMAGE``; without it a failed partner raises
    :class:`~repro.runtime.failures.ImageFailedError`.
    """
    return _rt().sync_images(images, stat=stat)


def failed_images() -> tuple[int, ...]:
    """``failed_images()`` — 1-based indices (current team) of failed
    images, in increasing order."""
    return _rt().failed_images()


def image_status(image: int) -> int:
    """``image_status(image)`` — 0 for a live image,
    ``STAT_FAILED_IMAGE`` for a failed one."""
    return _rt().image_status(image)


def sync_memory() -> None:
    """``sync memory`` — complete and order this image's RMA without a
    barrier (the F2008 memory fence)."""
    _rt().sync_memory()


def critical(name: str = "") -> "CafLock._Guard":
    """``critical ... end critical`` as a context manager.

    One image at a time executes the block; distinct construct names
    (F2018 named criticals) exclude independently (modulo hash-slot
    collisions).  Implemented as a compiler would: implicit lock_type
    variables declared at program start (the runtime pre-allocates a
    slot array in ``startup()``), acquired at image 1 of the current
    team — so criticals inside ``change team`` exclude per team.
    """
    rt = _rt()
    digest = 2166136261
    for ch in name.encode():
        digest = ((digest ^ ch) * 16777619) & 0xFFFFFFFF
    slot = digest % rt.critical_slots
    return rt._critical_locks.guard(1, index=slot)


def lock(lck: CafLock, image: int, index=()) -> None:
    """``lock(lck[image])``."""
    lck.acquire(image, index)


def unlock(lck: CafLock, image: int, index=()) -> None:
    """``unlock(lck[image])``."""
    lck.release(image, index)


# ---------------------------------------------------------------------------
# Teams (Fortran 2018; available in OpenUH per paper Section II-A)
# ---------------------------------------------------------------------------


def form_team(number: int) -> Team:
    """``form team(number, team)`` — collective over the current team;
    images passing equal numbers join the same new team."""
    return _teams.form_team(_rt(), number)


def change_team(team: Team) -> ChangeTeam:
    """``change team (team) ... end team`` as a context manager.

    Inside the block, ``this_image``/``num_images``/co-subscripts/
    ``sync all``/collectives and coarray allocation are team-scoped.
    """
    return ChangeTeam(_rt(), team)


def get_team() -> Team | None:
    """``get_team()`` — the current team (None = the initial team)."""
    return _rt().current_team()


def team_number() -> int:
    """``team_number()`` — -1 for the initial team (Fortran convention)."""
    team = _rt().current_team()
    return -1 if team is None else team.team_number


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------


def co_sum(arr: np.ndarray, result_image: int | None = None) -> None:
    """``call co_sum(arr[, result_image])`` — in place."""
    _collectives.co_named(_rt(), arr, "sum", result_image)


def co_min(arr: np.ndarray, result_image: int | None = None) -> None:
    """``call co_min(arr[, result_image])`` — in place."""
    _collectives.co_named(_rt(), arr, "min", result_image)


def co_max(arr: np.ndarray, result_image: int | None = None) -> None:
    """``call co_max(arr[, result_image])`` — in place."""
    _collectives.co_named(_rt(), arr, "max", result_image)


def co_prod(arr: np.ndarray, result_image: int | None = None) -> None:
    """``call co_prod(arr[, result_image])`` — in place."""
    _collectives.co_named(_rt(), arr, "prod", result_image)


def co_reduce(arr: np.ndarray, op, result_image: int | None = None) -> None:
    """``call co_reduce(arr, op[, result_image])`` — in place; ``op`` is
    an associative, commutative elementwise binary callable."""
    _collectives.co_reduce(_rt(), arr, op, result_image)


def co_broadcast(arr: np.ndarray, source_image: int) -> None:
    """``call co_broadcast(arr, source_image)`` — in place."""
    _collectives.co_broadcast(_rt(), arr, source_image)


# ---------------------------------------------------------------------------
# Atomics
# ---------------------------------------------------------------------------


def atomic_define(atom: Coarray, image: int, value, index: int = 0) -> None:
    """``call atomic_define(atom[image], value)``."""
    _atomics.atomic_define(_rt(), atom, image, value, index)


def atomic_ref(atom: Coarray, image: int, index: int = 0) -> int:
    """``call atomic_ref(value, atom[image])``; returns the value."""
    return _atomics.atomic_ref(_rt(), atom, image, index)


def atomic_cas(atom: Coarray, image: int, compare, new, index: int = 0) -> int:
    """``call atomic_cas(atom[image], old, compare, new)``; returns old."""
    return _atomics.atomic_cas(_rt(), atom, image, compare, new, index)


def atomic_add(atom: Coarray, image: int, value, index: int = 0) -> None:
    """``call atomic_add(atom[image], value)``."""
    _atomics.atomic_add(_rt(), atom, image, value, index)


def atomic_fetch_add(atom: Coarray, image: int, value, index: int = 0) -> int:
    """``call atomic_fetch_add(atom[image], value, old)``; returns old."""
    return _atomics.atomic_fetch_add(_rt(), atom, image, value, index)


def atomic_fetch_and(atom: Coarray, image: int, value, index: int = 0) -> int:
    """``call atomic_fetch_and(atom[image], value, old)``; returns old."""
    return _atomics.atomic_fetch_and(_rt(), atom, image, value, index)


def atomic_fetch_or(atom: Coarray, image: int, value, index: int = 0) -> int:
    """``call atomic_fetch_or(atom[image], value, old)``; returns old."""
    return _atomics.atomic_fetch_or(_rt(), atom, image, value, index)


def atomic_fetch_xor(atom: Coarray, image: int, value, index: int = 0) -> int:
    """``call atomic_fetch_xor(atom[image], value, old)``; returns old."""
    return _atomics.atomic_fetch_xor(_rt(), atom, image, value, index)


def atomic_swap(atom: Coarray, image: int, value, index: int = 0) -> int:
    """Fetch-and-store; returns the old value."""
    return _atomics.atomic_swap(_rt(), atom, image, value, index)
