"""CAF collectives (``co_sum``, ``co_broadcast``, ...).

Fortran 2018 collectives operate on an ordinary (non-coarray) array
argument, combining corresponding elements across the images of the
*current team* in place.  Following the paper's footnote — *"In UHCAF,
we implement CAF reductions and broadcasts using 1-sided communication
and remote atomics available in OpenSHMEM"* — these are built from
1-sided communication over scratch symmetric buffers, not from the
layer's native collectives, so they work identically over every backend
(GASNet has no reduction primitive) and inside teams.

The heavy lifting lives in :mod:`repro.collectives`: the runtime maps
the current team onto a :class:`~repro.collectives.comm.TeamComm` and
the algorithm (binomial tree, recursive doubling, ring, hierarchical
two-level, or flat linear) is chosen per call by the topology-aware
cost model — or forced via ``REPRO_COLLECTIVE``.  On ``engine='process'``
the runtime falls back to the historical barrier-synchronized binomial
tree: the library's shared comm state (like CAF teams themselves) lives
in genuinely shared Python objects.

``co_sum(a)`` leaves the result on every image; ``co_sum(a,
result_image=j)`` only guarantees it on image ``j`` (other images'
arrays become undefined per the standard — here they keep the partial
reduction values, which tests treat as unspecified).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.caf.runtime import CafRuntime
from repro.collectives import team_broadcast, team_reduce
from repro.runtime.context import current

_NAMED_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}


def _check_array(arr) -> None:
    if not isinstance(arr, np.ndarray):
        raise TypeError("CAF collectives operate on NumPy arrays in place")


def _use_direct(rt: CafRuntime) -> bool:
    return bool(getattr(rt.job.engine, "cross_process", False))


def _root_rank_in(rt: CafRuntime, pes, image: int, op_name: str) -> int:
    """Rank of a 1-based (team-relative) image within the (possibly
    survivor-filtered) member list; a failed root raises
    :class:`~repro.runtime.failures.ImageFailedError`."""
    root_pe = rt.image_to_pe(image)
    try:
        return pes.index(root_pe)
    except ValueError:
        from repro.runtime.failures import raise_image_failed

        raise_image_failed(current(), op_name, root_pe, rt.job.failed, rt.job.tracer)


def _tree_reduce_direct(
    rt: CafRuntime,
    arr: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    result_image: int | None,
    pes: tuple[int, ...],
) -> None:
    """Barrier-synchronized binomial reduction (process-engine path)."""
    ctx = current()
    n = len(pes)
    rank = pes.index(ctx.pe)
    scratch = rt.alloc_symmetric((max(arr.size, 1),), arr.dtype)
    try:
        scratch.local.reshape(-1)[: arr.size] = arr.reshape(-1)
        rt.barrier()
        # Reduce toward rank 0: at round k, ranks aligned to 2^(k+1)
        # pull from their partner 2^k away (1-sided gets).
        step = 1
        while step < n:
            if rank % (2 * step) == 0 and rank + step < n:
                data = rt.layer.get(scratch, arr.size, pes[rank + step])
                combined = op(scratch.local.reshape(-1)[: arr.size], data)
                scratch.local.reshape(-1)[: arr.size] = combined
            rt.barrier()
            step *= 2
        # Distribute the result.
        if result_image is None:
            step = 1 << max(0, (n - 1).bit_length() - 1)
            while step >= 1:
                if rank % (2 * step) == 0 and rank + step < n:
                    rt.layer.put(
                        scratch, scratch.local.reshape(-1)[: arr.size], pes[rank + step]
                    )
                rt.barrier()
                step //= 2
            arr.reshape(-1)[:] = scratch.local.reshape(-1)[: arr.size]
        else:
            root_pe = rt.image_to_pe(result_image)
            root_rank = _root_rank_in(rt, pes, result_image, "co_reduce")
            if root_rank != 0 and rank == 0:
                rt.layer.put(scratch, scratch.local.reshape(-1)[: arr.size], root_pe)
            rt.barrier()
            # Standard: the argument becomes undefined on non-result
            # images; we leave partial tree values in place.
            arr.reshape(-1)[:] = scratch.local.reshape(-1)[: arr.size]
        rt.barrier()
    finally:
        rt.free_symmetric(scratch)


def _bcast_direct(
    rt: CafRuntime, arr: np.ndarray, source_image: int, pes: tuple[int, ...]
) -> None:
    """Barrier-synchronized binomial broadcast (process-engine path)."""
    ctx = current()
    n = len(pes)
    rank = pes.index(ctx.pe)
    root_rank = _root_rank_in(rt, pes, source_image, "co_broadcast")
    scratch = rt.alloc_symmetric((max(arr.size, 1),), arr.dtype)
    try:
        if rank == root_rank:
            scratch.local.reshape(-1)[: arr.size] = arr.reshape(-1)
        rt.barrier()
        # Rotate ranks so the root acts as rank 0 of the tree.
        vrank = (rank - root_rank) % n
        step = 1 << max(0, (n - 1).bit_length() - 1)
        while step >= 1:
            if vrank % (2 * step) == 0 and vrank + step < n:
                dest_rank = (vrank + step + root_rank) % n
                rt.layer.put(
                    scratch, scratch.local.reshape(-1)[: arr.size], pes[dest_rank]
                )
            rt.barrier()
            step //= 2
        arr.reshape(-1)[:] = scratch.local.reshape(-1)[: arr.size]
        rt.barrier()
    finally:
        rt.free_symmetric(scratch)


def _reduce(
    rt: CafRuntime,
    arr: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    result_image: int | None,
) -> None:
    _check_array(arr)
    # Degraded-mode collectives: failed images are excised from the
    # member list, so the tree/ring rank maps only span survivors.
    pes = rt.live_pes(rt.team_pes())
    if arr.size == 0 or len(pes) == 1:
        # Zero-size arrays and one-image teams combine nothing: no
        # scratch, no synchronization (``sync all`` still orders program
        # segments if the caller wants that).
        return
    if _use_direct(rt):
        _tree_reduce_direct(rt, arr, op, result_image, pes)
        return
    if result_image is None:
        res = team_reduce(rt.layer, pes, arr, op)
    else:
        res = team_reduce(
            rt.layer, pes, arr, op,
            root_rank=_root_rank_in(rt, pes, result_image, "co_reduce"),
            broadcast=False,
        )
    # Non-result images receive their partial values (unspecified per
    # the standard); the result image receives the full reduction.
    arr.reshape(-1)[:] = res


def co_reduce(
    rt: CafRuntime,
    arr: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    result_image: int | None = None,
) -> None:
    """``co_reduce``: reduce with a user binary operation (elementwise,
    must be associative and commutative)."""
    _reduce(rt, arr, op, result_image)


def co_named(
    rt: CafRuntime, arr: np.ndarray, name: str, result_image: int | None = None
) -> None:
    """``co_sum``/``co_min``/``co_max``/``co_prod`` by name."""
    try:
        op = _NAMED_OPS[name]
    except KeyError:
        raise ValueError(f"unknown collective {name!r}; expected {sorted(_NAMED_OPS)}") from None
    _reduce(rt, arr, op, result_image)


def co_broadcast(rt: CafRuntime, arr: np.ndarray, source_image: int) -> None:
    """``co_broadcast``: replace ``arr`` on every team image with
    ``source_image``'s value."""
    _check_array(arr)
    pes = rt.live_pes(rt.team_pes())
    root_rank = _root_rank_in(rt, pes, source_image, "co_broadcast")
    if arr.size == 0 or len(pes) == 1:
        return
    if _use_direct(rt):
        _bcast_direct(rt, arr, source_image, pes)
        return
    res = team_broadcast(rt.layer, pes, arr, root_rank=root_rank)
    arr.reshape(-1)[:] = res
