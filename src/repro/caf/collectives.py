"""CAF collectives (``co_sum``, ``co_broadcast``, ...).

Fortran 2018 collectives operate on an ordinary (non-coarray) array
argument, combining corresponding elements across the images of the
*current team* in place.  Following the paper's footnote — *"In UHCAF,
we implement CAF reductions and broadcasts using 1-sided communication
and remote atomics available in OpenSHMEM"* — these are built from
scratch coarray buffers plus one-sided get/put in a binomial tree, not
from the layer's native collectives, so they work identically over
every backend (GASNet has no reduction primitive) and inside teams.

``co_sum(a)`` leaves the result on every image; ``co_sum(a,
result_image=j)`` only guarantees it on image ``j`` (other images'
arrays become undefined per the standard — here they keep the partial
tree values, which tests treat as unspecified).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.caf.runtime import CafRuntime
from repro.runtime.context import current

_NAMED_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}


def _tree_reduce(
    rt: CafRuntime,
    arr: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    result_image: int | None,
) -> None:
    """In-place binomial-tree reduction of ``arr`` across the current
    team's images (ranks are positions within the team)."""
    if not isinstance(arr, np.ndarray):
        raise TypeError("CAF collectives operate on NumPy arrays in place")
    ctx = current()
    pes = rt.team_pes()
    n = len(pes)
    rank = pes.index(ctx.pe)
    scratch = rt.alloc_symmetric((max(arr.size, 1),), arr.dtype)
    try:
        scratch.local.reshape(-1)[: arr.size] = arr.reshape(-1)
        rt.barrier()
        # Reduce toward rank 0: at round k, ranks aligned to 2^(k+1)
        # pull from their partner 2^k away (1-sided gets).
        step = 1
        while step < n:
            if rank % (2 * step) == 0 and rank + step < n:
                data = rt.layer.get(scratch, arr.size, pes[rank + step])
                combined = op(scratch.local.reshape(-1)[: arr.size], data)
                scratch.local.reshape(-1)[: arr.size] = combined
            rt.barrier()
            step *= 2
        # Distribute the result.
        if result_image is None:
            step = 1 << max(0, (n - 1).bit_length() - 1)
            while step >= 1:
                if rank % (2 * step) == 0 and rank + step < n:
                    rt.layer.put(
                        scratch, scratch.local.reshape(-1)[: arr.size], pes[rank + step]
                    )
                rt.barrier()
                step //= 2
            arr.reshape(-1)[:] = scratch.local.reshape(-1)[: arr.size]
        else:
            root_pe = rt.image_to_pe(result_image)
            root_rank = pes.index(root_pe)
            if root_rank != 0 and rank == 0:
                rt.layer.put(scratch, scratch.local.reshape(-1)[: arr.size], root_pe)
            rt.barrier()
            # Standard: the argument becomes undefined on non-result
            # images; we leave partial tree values in place.
            arr.reshape(-1)[:] = scratch.local.reshape(-1)[: arr.size]
        rt.barrier()
    finally:
        rt.free_symmetric(scratch)


def co_reduce(
    rt: CafRuntime,
    arr: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    result_image: int | None = None,
) -> None:
    """``co_reduce``: reduce with a user binary operation (elementwise,
    must be associative and commutative)."""
    _tree_reduce(rt, arr, op, result_image)


def co_named(
    rt: CafRuntime, arr: np.ndarray, name: str, result_image: int | None = None
) -> None:
    """``co_sum``/``co_min``/``co_max``/``co_prod`` by name."""
    try:
        op = _NAMED_OPS[name]
    except KeyError:
        raise ValueError(f"unknown collective {name!r}; expected {sorted(_NAMED_OPS)}") from None
    _tree_reduce(rt, arr, op, result_image)


def co_broadcast(rt: CafRuntime, arr: np.ndarray, source_image: int) -> None:
    """``co_broadcast``: replace ``arr`` on every team image with
    ``source_image``'s value (binomial tree of 1-sided puts)."""
    if not isinstance(arr, np.ndarray):
        raise TypeError("CAF collectives operate on NumPy arrays in place")
    ctx = current()
    pes = rt.team_pes()
    n = len(pes)
    rank = pes.index(ctx.pe)
    root_rank = pes.index(rt.image_to_pe(source_image))
    scratch = rt.alloc_symmetric((max(arr.size, 1),), arr.dtype)
    try:
        if rank == root_rank:
            scratch.local.reshape(-1)[: arr.size] = arr.reshape(-1)
        rt.barrier()
        # Rotate ranks so the root acts as rank 0 of the tree.
        vrank = (rank - root_rank) % n
        step = 1 << max(0, (n - 1).bit_length() - 1)
        while step >= 1:
            if vrank % (2 * step) == 0 and vrank + step < n:
                dest_rank = (vrank + step + root_rank) % n
                rt.layer.put(
                    scratch, scratch.local.reshape(-1)[: arr.size], pes[dest_rank]
                )
            rt.barrier()
            step //= 2
        arr.reshape(-1)[:] = scratch.local.reshape(-1)[: arr.size]
        rt.barrier()
    finally:
        rt.free_symmetric(scratch)
