"""CAF teams (Fortran 2018 ``form team`` / ``change team``).

Teams partition the images; inside a ``change team`` construct,
``this_image()``/``num_images()`` are team-relative, co-subscripts name
*team* images, ``sync all`` synchronizes the team only, and coarrays
(and locks/events) allocated inside the construct are team-scoped
collectives.  The paper lists such beyond-F2008 features among those
"available in the CAF implementation in OpenUH" (Section II-A); here
they ride on the same runtime mapping — team synchronization is a
subset barrier, team allocation is subset agreement on the shared
symmetric allocator.

Usage::

    team = caf.form_team(1 + (caf.this_image() - 1) % 2)  # odds/evens
    with caf.change_team(team):
        x = caf.coarray((4,), np.int64)   # team-scoped coarray
        caf.sync_all()                    # team barrier
        v = x.on(1)[0]                    # team image 1
"""

from __future__ import annotations

import threading
import typing

from repro.caf.runtime import CafError, CafRuntime
from repro.runtime.context import current

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.groups import _GroupSync


class Team:
    """One team: its number, members (absolute PEs), and sync state."""

    def __init__(self, runtime: CafRuntime, team_number: int, member_pes: tuple[int, ...]) -> None:
        self.runtime = runtime
        self.team_number = team_number
        self.member_pes = member_pes
        # pe -> 0-based team rank, cached once: membership lookups are
        # on every collective's hot path (no linear member scans).
        self._rank_of = {pe: r for r, pe in enumerate(member_pes)}
        self.group: "_GroupSync" = runtime.job.groups.get(member_pes)

    @property
    def num_images(self) -> int:
        return len(self.member_pes)

    def rank_of(self, pe: int) -> int:
        """0-based team rank of an absolute PE."""
        try:
            return self._rank_of[pe]
        except KeyError:
            raise CafError(f"PE {pe} is not a member of team {self.team_number}") from None

    def team_image_of(self, pe: int) -> int:
        """1-based team image index of an absolute PE."""
        return self.rank_of(pe) + 1

    def pe_of(self, team_image: int) -> int:
        """Absolute PE of a 1-based team image index."""
        if not 1 <= team_image <= self.num_images:
            raise CafError(
                f"image {team_image} out of range [1, {self.num_images}] "
                f"in team {self.team_number}"
            )
        return self.member_pes[team_image - 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Team(number={self.team_number}, images={self.num_images})"


def form_team(rt: CafRuntime, team_number: int) -> Team:
    """``form team(team_number, team)`` — collective over the *current*
    team (initially all images); images with equal numbers team up."""
    if team_number < 1:
        raise CafError("team numbers must be positive (Fortran 2018)")
    ctx = current()
    if getattr(ctx.job.engine, "cross_process", False):
        raise CafError(
            "CAF teams are not supported on engine='process': forming a "
            "team gathers members through genuinely shared Python state, "
            "and team-scoped allocation would desynchronize the per-process "
            "symmetric-allocator replicas; use the threaded or event engine"
        )
    parent_pes = rt.team_pes()
    if ctx.pe not in parent_pes:
        raise CafError("form_team called by a non-member of the current team")
    # Gather every member's team number through a shared map.
    shared = rt.agree(
        "form_team", lambda: {"lock": threading.Lock(), "map": {}}
    )
    with shared["lock"]:
        shared["map"][ctx.pe] = team_number
    rt.barrier()
    members = tuple(sorted(p for p in parent_pes if shared["map"].get(p) == team_number))
    team = Team(rt, team_number, members)
    rt.barrier()  # the map may be reused only after everyone has read it
    return team


class ChangeTeam:
    """Context manager for ``change team (team) ... end team``."""

    def __init__(self, rt: CafRuntime, team: Team) -> None:
        self.rt = rt
        self.team = team
        self._outer: Team | None = None

    def __enter__(self) -> Team:
        ctx = current()
        if ctx.pe not in self.team.member_pes:
            raise CafError(
                f"image {ctx.pe + 1} is not a member of team "
                f"{self.team.team_number}"
            )
        self._outer = self.rt._team[ctx.pe]
        self.rt._team[ctx.pe] = self.team
        # change team begins with an implicit team synchronization
        self.rt.barrier()
        return self.team

    def __exit__(self, exc_type, exc, tb) -> None:
        ctx = current()
        if exc_type is None:
            # end team also synchronizes the team
            self.rt.barrier()
        self.rt._team[ctx.pe] = self._outer
