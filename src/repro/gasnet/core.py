"""GASNet core: the layer class and active-message machinery.

Active-message model: a handler is a named function registered
identically on every PE.  ``am_request`` runs the handler *logically at
the target* — it receives a :class:`Token` bound to the target PE's
memory and the message's virtual arrival time — and is priced through
the target node's CPU timeline (attentiveness + service time), the way
GASNet AMs are serviced at poll points.  ``am_roundtrip`` additionally
returns the handler's return value and prices the reply path.

Handlers may run concurrently (several senders, one target); they must
touch target state only through the token, whose accessors lock the
target memory internally.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from repro.comm.base import OneSidedLayer, _FAIL_AT_REMOTE, _fail_at_done
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.runtime.memory import PEMemory

LAYER_NAME = "gasnet"


class Token:
    """Handler-side view of one active message."""

    __slots__ = ("layer", "src", "dst", "arrival")

    def __init__(self, layer: "GasnetLayer", src: int, dst: int, arrival: float) -> None:
        self.layer = layer
        self.src = src
        self.dst = dst
        self.arrival = arrival

    @property
    def mem(self) -> PEMemory:
        """The target PE's memory (all accessors are internally locked)."""
        return self.layer.job.memories[self.dst]

    def write(self, offset: int, data: np.ndarray | bytes) -> None:
        """Handler store into target memory, stamped at message arrival."""
        self.mem.write(offset, data, timestamp=self.arrival)

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        return self.mem.read(offset, nbytes)

    def atomic_rmw(self, offset: int, dtype: np.dtype, fn: Callable) -> np.generic:
        return self.mem.atomic_rmw(offset, dtype, fn, timestamp=self.arrival)


class GasnetLayer(OneSidedLayer):
    """GASNet-like layer: extended API + AM core, no NIC atomics."""

    LAYER_NAME = LAYER_NAME

    def __init__(self, job: Job, profile: str = "gasnet") -> None:
        super().__init__(job, profile)
        self._handlers: dict[str, Callable[..., Any]] = {}
        self._handlers_lock = threading.Lock()

    # ------------------------------------------------------------------
    def register_handler(self, name: str, fn: Callable[..., Any]) -> None:
        """Register handler ``name``.

        Every PE registers in SPMD style; the first registration wins.
        Re-registrations must come from the same ``def`` (same code
        object) — handlers must therefore not capture PE-specific state,
        because an arbitrary PE's closure services all senders.
        """
        with self._handlers_lock:
            existing = self._handlers.get(name)
            if existing is None:
                self._handlers[name] = fn
            elif getattr(existing, "__code__", existing) is not getattr(fn, "__code__", fn):
                raise ValueError(
                    f"AM handler {name!r} registered with different functions "
                    f"on different PEs"
                )

    def _resolve_handler(self, name: str) -> Callable[..., Any]:
        with self._handlers_lock:
            try:
                return self._handlers[name]
            except KeyError:
                raise KeyError(
                    f"no AM handler named {name!r}; registered: {sorted(self._handlers)}"
                ) from None

    # ------------------------------------------------------------------
    def am_request(
        self, pe: int, handler: str, *args: Any, payload: np.ndarray | None = None
    ) -> Any:
        """One-way active message; returns the handler's return value
        functionally but the initiator's clock only advances to *local*
        completion (fire-and-forget semantics)."""
        self._check_pe(pe)
        fn = self._resolve_handler(handler)
        ctx = current()
        self._decide(ctx, "am", pe)
        self._check_failed(ctx, "am", pe)
        nbytes = 0 if payload is None else int(np.asarray(payload).nbytes)
        t_start = ctx.clock.now
        timing = self._priced(
            ctx, self, "am", pe,
            lambda now: self.job.network.am_request(
                ctx.pe, pe, nbytes, self.profile, now
            ),
            _FAIL_AT_REMOTE,
        )
        token = Token(self, ctx.pe, pe, timing.remote_complete)
        result = fn(token, *args) if payload is None else fn(token, *args, payload=payload)
        ctx.clock.merge(timing.local_complete)
        if timing.remote_complete > self._pending[ctx.pe]:
            self._pending[ctx.pe] = timing.remote_complete
        tracer = self.job.tracer
        if tracer is not None and tracer.capture_sync:
            # Handler effects land through Token (its stores/atomics are
            # the target PE's, not traced per byte); the AM itself is
            # recorded as machinery so it never counts as a data conflict.
            tracer.record(
                ctx.pe, "am", pe, nbytes, t_start, ctx.clock.now, internal=True
            )
        return result

    def am_roundtrip(
        self, pe: int, handler: str, *args: Any, payload: np.ndarray | None = None
    ) -> Any:
        """Request/reply active message; blocks until the reply arrives
        and returns the handler's return value."""
        self._check_pe(pe)
        fn = self._resolve_handler(handler)
        ctx = current()
        self._decide(ctx, "am", pe)
        self._check_failed(ctx, "am", pe)
        nbytes = 0 if payload is None else int(np.asarray(payload).nbytes)
        t_start = ctx.clock.now
        done = self._priced(
            ctx, self, "am", pe,
            lambda now: self.job.network.am_roundtrip(
                ctx.pe, pe, nbytes, self.profile, now
            ),
            _fail_at_done,
        )
        # The handler logically runs on arrival, before the reply.
        token = Token(self, ctx.pe, pe, done)
        result = fn(token, *args) if payload is None else fn(token, *args, payload=payload)
        ctx.clock.merge(done)
        tracer = self.job.tracer
        if tracer is not None and tracer.capture_sync:
            tracer.record(
                ctx.pe, "am", pe, nbytes, t_start, ctx.clock.now, internal=True
            )
        return result
