"""A GASNet-like communication layer.

Models the GASNet library the paper compares against (and the
UHCAF-over-GASNet baseline runtime):

* **Core API** — active messages (:func:`am_request`, replies through
  the handler token), priced through the target CPU: the message waits
  for the target's attentiveness and its AM-servicing pipeline.
* **Extended API** — one-sided :func:`put` / :func:`get` into the
  registered segment (:func:`alloc_array` / :func:`free_array`).
* **No native remote atomics** — :func:`atomic` exists for runtime
  layering, but the GASNet conduit profile prices it as an AM round
  trip through the target CPU (``amo_offload=False``).  This is the
  property that costs GASNet-backed CAF locks their performance in the
  paper's Fig 8.
* **No native strided transfers** — ``iput``/``iget`` loop over
  contiguous puts/gets, like a GASNet-based PGAS runtime without VIS.

API shape mirrors :mod:`repro.shmem` (module functions resolving the
calling PE's context) so runtimes can target either interchangeably.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.heap import SymmetricArray
from repro.gasnet.core import GasnetLayer, Token, LAYER_NAME
from repro.runtime.context import current
from repro.runtime.launcher import Job

__all__ = [
    "GasnetLayer",
    "Token",
    "launch",
    "attach",
    "mynode",
    "nodes",
    "alloc_array",
    "free_array",
    "put",
    "get",
    "iput",
    "iget",
    "quiet",
    "barrier_all",
    "atomic",
    "wait_until",
    "register_handler",
    "am_request",
]


def _layer() -> GasnetLayer:
    return current().job.get_layer(LAYER_NAME)


def attach(job: Job, profile: str = "gasnet") -> GasnetLayer:
    """Attach a GASNet layer to an existing job (idempotent per job)."""
    if LAYER_NAME in job.layers:
        return job.layers[LAYER_NAME]
    layer = GasnetLayer(job, profile)
    job.layers[LAYER_NAME] = layer
    return layer


def launch(
    fn: Callable[..., Any],
    num_pes: int,
    machine: str = "stampede",
    *,
    heap_bytes: int | None = None,
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
) -> list[Any]:
    """Run ``fn`` as an SPMD program over the GASNet layer."""
    job_kwargs = {} if heap_bytes is None else {"heap_bytes": heap_bytes}
    job = Job(num_pes, machine, **job_kwargs)
    attach(job)
    return job.run(fn, args=args, kwargs=kwargs or {})


def mynode() -> int:
    """This PE's index (``gasnet_mynode``)."""
    return current().pe


def nodes() -> int:
    """Total PE count (``gasnet_nodes``)."""
    return current().job.num_pes


def alloc_array(shape: int | tuple[int, ...], dtype: Any = np.int64) -> SymmetricArray:
    """Collectively allocate segment space at a common offset."""
    return _layer().alloc_array(shape, dtype)


def free_array(array: SymmetricArray) -> None:
    """Collectively release a segment allocation."""
    _layer().free_array(array)


def put(dest: SymmetricArray, value: Any, pe: int, offset: int = 0) -> None:
    """Extended-API put (``gasnet_put_nbi``-like: local completion)."""
    _layer().put(dest, value, pe, offset)


def get(src: SymmetricArray, nelems: int, pe: int, offset: int = 0) -> np.ndarray:
    """Extended-API blocking get (``gasnet_get``)."""
    return _layer().get(src, nelems, pe, offset)


def iput(dest: SymmetricArray, value: Any, tst: int, sst: int, nelems: int, pe: int, offset: int = 0) -> None:
    """Strided put — a loop of contiguous puts (no VIS extension)."""
    _layer().iput(dest, value, tst, sst, nelems, pe, offset)


def iget(src: SymmetricArray, tst: int, sst: int, nelems: int, pe: int, offset: int = 0) -> np.ndarray:
    """Strided get — a loop of contiguous gets (no VIS extension)."""
    return _layer().iget(src, tst, sst, nelems, pe, offset)


def quiet() -> None:
    """Wait for remote completion of outstanding puts
    (``gasnet_wait_syncnbi_puts``)."""
    _layer().quiet()


def barrier_all() -> None:
    """Anonymous barrier (``gasnet_barrier_notify`` + ``wait``)."""
    _layer().barrier_all()


def atomic(target: SymmetricArray, pe: int, offset: int, op: str, *operands) -> Any:
    """Remote atomic, AM-emulated through the target CPU."""
    return _layer().atomic(target, pe, offset, op, *operands)


def wait_until(ivar: SymmetricArray, cmp: str, value: Any, offset: int = 0) -> None:
    """Block until a local segment word satisfies the comparison."""
    _layer().wait_until(ivar, cmp, value, offset)


def register_handler(name: str, fn: Callable[..., Any]) -> None:
    """Register an active-message handler (must be identical on all PEs)."""
    _layer().register_handler(name, fn)


def am_request(pe: int, handler: str, *args: Any, payload: np.ndarray | None = None) -> None:
    """Send an active message; the handler runs at the target with a
    :class:`Token` as first argument."""
    _layer().am_request(pe, handler, *args, payload=payload)
