"""CLI for the chaos harness.

::

    python -m repro.chaos --targets dht locks --seeds 2015 2016 --quick

Exit codes: 0 — every cell passed the gate (bit-identical or clean
structured abort); 1 — at least one violation (silent corruption,
unstructured failure, or a non-growing virtual clock under injection);
2 — bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos import (
    DEFAULT_DEADLINE_S,
    SURVIVABLE_TARGETS,
    TARGETS,
    run_survivable_cell,
    run_target,
    survivable_crash_plan,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded fault schedules over DHT/locks/Himeno with the "
        "bit-identity / clean-abort gate.",
    )
    parser.add_argument(
        "--targets", nargs="+", choices=TARGETS, default=["dht", "locks"],
        help="benchmarks to run (default: dht locks)",
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=[2015, 2016],
        help="fault-plan seeds for the mixed schedule (default: 2015 2016)",
    )
    parser.add_argument("--images", type=int, default=4, help="PE/image count")
    parser.add_argument("--machine", default="stampede")
    parser.add_argument(
        "--deadline", type=float, default=DEFAULT_DEADLINE_S,
        help="watchdog wall-clock stall deadline in seconds",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller kernels (CI smoke)"
    )
    parser.add_argument(
        "--no-aborts", action="store_true",
        help="skip the crash/escalation schedules",
    )
    parser.add_argument(
        "--survivable", action="store_true",
        help="also run the failed-images gate: a survivable job per seed "
        "and target must complete degraded with zero lost acked writes "
        "and engine-identical survivor digests",
    )
    parser.add_argument(
        "--survivable-targets", nargs="+", choices=SURVIVABLE_TARGETS,
        default=list(SURVIVABLE_TARGETS), metavar="TARGET",
        help=f"survivable targets to run (default: all of "
        f"{' '.join(SURVIVABLE_TARGETS)})",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2
    if args.images < 2:
        print("chaos: need at least 2 images", file=sys.stderr)
        return 2

    cells = []
    for target in args.targets:
        cells.extend(
            run_target(
                target,
                args.seeds,
                images=args.images,
                machine=args.machine,
                deadline_s=args.deadline,
                quick=args.quick,
                with_aborts=not args.no_aborts,
            )
        )

    if args.survivable:
        for target in args.survivable_targets:
            for seed in args.seeds:
                cells.append(
                    run_survivable_cell(
                        target,
                        survivable_crash_plan(seed),
                        images=args.images,
                        machine=args.machine,
                        deadline_s=args.deadline,
                        quick=args.quick,
                    )
                )

    violations = [c for c in cells if not c.ok]
    if args.json:
        print(
            json.dumps(
                {
                    "cells": [vars(c) for c in cells],
                    "violations": len(violations),
                },
                indent=2,
            )
        )
    else:
        for c in cells:
            inj = c.injected.get("injected_ops", 0)
            line = (
                f"{c.target:8s} {c.schedule:9s} seed={c.seed:<6d} "
                f"{c.status:9s} injected={inj}"
            )
            if c.elapsed_us is not None and c.baseline_us is not None:
                line += f" t={c.elapsed_us:.1f}us (baseline {c.baseline_us:.1f}us)"
            if c.detail:
                line += f"  [{c.detail}]"
            print(line)
        print(
            f"chaos: {len(cells)} cells, {len(violations)} violation(s)"
            + ("" if violations else " — gate holds")
        )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
