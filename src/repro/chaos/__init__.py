"""Chaos harness: seeded fault schedules over the paper's benchmarks.

``python -m repro.chaos`` runs the DHT, lock, and Himeno kernels under
deterministic :class:`~repro.sim.faults.FaultPlan` schedules and
enforces the invariant that makes fault injection a correctness tool
rather than noise — for every schedule, exactly one of:

* **bit-identity** — the run completes and its result digest equals the
  fault-free baseline's, at *strictly larger* virtual time whenever
  anything was injected (retransmission and latency cost virtual time;
  they must never corrupt data);
* **clean abort** — the run raises a :class:`JobFailure` whose root
  cause is structured (:class:`TransientCommError`,
  :class:`InjectedCrash`, :class:`HangError`, or
  :class:`OutOfMemoryError`), with every PE thread joined;
* **degraded-but-correct** — a ``survivable=True`` run over the
  replicated DHT completes *without* the crashed PE: survivors see
  ``STAT_FAILED_IMAGE``, re-read every acknowledged write intact (zero
  lost acked writes), and the merged survivor data digest is identical
  across execution engines (:func:`run_survivable_cell`).

Anything else — a digest mismatch (silent corruption), an unstructured
failure, or a wall-clock hang (caught by the watchdog, and by
``pytest-timeout`` in CI) — is a violation.

Digests are built from scheduler-independent quantities only (sorted
key/value pairs, a lock-guarded counter's total, the fixed-order
Himeno residual), so the gate is exact even though thread interleaving
varies between runs; the strict virtual-time check additionally uses
kernels whose *elapsed* time is deterministic (barrier-closed, with
injected costs far above scheduler noise).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.launcher import JobFailure
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    HangError,
    InjectedCrash,
    TransientCommError,
)
from repro.util.allocator import OutOfMemoryError

#: Root causes that count as a *clean, structured* abort.
STRUCTURED_CAUSES = (
    TransientCommError,
    InjectedCrash,
    HangError,
    OutOfMemoryError,
)

TARGETS = ("dht", "locks", "himeno", "collectives")

#: Targets for the survivable (failed-images) gate.
SURVIVABLE_TARGETS = ("rdht", "kvservice")

#: Watchdog deadline for harness runs: far above any legitimate stall,
#: far below CI patience.
DEFAULT_DEADLINE_S = 60.0


# ---------------------------------------------------------------------------
# Kernels (digest, elapsed virtual us) — every digest input is
# scheduler-independent.
# ---------------------------------------------------------------------------


def _digest(obj) -> str:
    return hashlib.sha256(json.dumps(obj, sort_keys=True).encode()).hexdigest()


def _dht_kernel(updates: int, slots: int, seed: int):
    from repro import caf
    from repro.bench.dht import EMPTY_KEY, DistributedHashTable
    from repro.runtime.context import current

    table = DistributedHashTable(slots, locks_per_image=4)
    me = caf.this_image()
    rng = np.random.default_rng(seed + me)
    keys = rng.integers(0, 1 << 30, size=updates)
    caf.sync_all()
    ctx = current()
    t0 = ctx.clock.now
    for k in keys:
        table.update(int(k))
    caf.sync_all()
    elapsed = ctx.clock.now - t0
    karr = table.keys.local
    varr = table.values.local
    mask = karr != EMPTY_KEY
    pairs = sorted(zip(karr[mask].tolist(), varr[mask].tolist()))
    return pairs, elapsed


def _locks_kernel(rounds: int):
    from repro import caf
    from repro.runtime.context import current

    counter = caf.coarray((1,), np.int64)
    counter[:] = 0
    lck = caf.lock_type()
    caf.sync_all()
    ctx = current()
    t0 = ctx.clock.now
    for _ in range(rounds):
        caf.lock(lck, 1)
        v = int(counter.on(1)[0])
        counter.on(1)[0] = v + 1
        caf.unlock(lck, 1)
    caf.sync_all()
    elapsed = ctx.clock.now - t0
    total = int(counter.on(1)[0])  # post-barrier: final value everywhere
    return total, elapsed


def _run_dht(images: int, machine: str, faults, deadline_s: float, quick: bool):
    from repro import caf

    updates, slots = (6, 32) if quick else (12, 64)
    results = caf.launch(
        _dht_kernel,
        images,
        machine,
        faults=faults,
        watchdog_s=deadline_s,
        args=(updates, slots, 77),
    )
    pairs = sorted(p for r in results for p in r[0])
    elapsed = max(r[1] for r in results)
    return _digest(pairs), elapsed


def _run_locks(images: int, machine: str, faults, deadline_s: float, quick: bool):
    from repro import caf

    rounds = 4 if quick else 8
    results = caf.launch(
        _locks_kernel,
        images,
        machine,
        faults=faults,
        watchdog_s=deadline_s,
        args=(rounds,),
    )
    totals = {r[0] for r in results}
    if len(totals) != 1 or totals != {rounds * images}:
        # A lost update under faults IS the corruption this harness
        # exists to catch — fold it into the digest so the gate trips.
        return _digest(sorted(r[0] for r in results)), max(r[1] for r in results)
    return _digest([rounds * images]), max(r[1] for r in results)


def _run_himeno(images: int, machine: str, faults, deadline_s: float, quick: bool):
    from repro.bench.harness import UHCAF_CRAY_SHMEM
    from repro.bench.himeno import himeno_caf

    res = himeno_caf(
        machine,
        UHCAF_CRAY_SHMEM,
        images,
        grid="XS",
        iterations=2 if quick else 3,
        faults=faults,
        watchdog_s=deadline_s,
    )
    # float.hex(): the bit pattern, not a rounded rendering.
    return _digest([float(res.gosa).hex()]), res.elapsed_us


def _collectives_kernel(rounds: int, seed: int):
    from repro import caf
    from repro.runtime.context import current

    me = caf.this_image()
    n = caf.num_images()
    vec = np.arange(8, dtype=np.float64) * me + seed
    team = caf.form_team(1 + (me - 1) % 2)
    caf.sync_all()
    ctx = current()
    t0 = ctx.clock.now
    for r in range(rounds):
        with caf.change_team(team):
            caf.co_sum(vec)  # team allreduce
        caf.co_broadcast(vec, 1 + r % n)
        vec += me
    caf.sync_all()
    return vec.tolist(), ctx.clock.now - t0


def _run_collectives(images, machine, faults, deadline_s, quick):
    from repro import caf

    rounds = 2 if quick else 4
    results = caf.launch(
        _collectives_kernel,
        images,
        machine,
        faults=faults,
        watchdog_s=deadline_s,
        args=(rounds, 3),
    )
    # Every image holds the same broadcast-then-incremented vector
    # modulo the deterministic per-image tail increment; fold the full
    # per-image matrix so any divergence trips the digest.
    vecs = [[float(x).hex() for x in r[0]] for r in results]
    return _digest(vecs), max(r[1] for r in results)


_RUNNERS = {
    "dht": _run_dht,
    "locks": _run_locks,
    "himeno": _run_himeno,
    "collectives": _run_collectives,
}


# ---------------------------------------------------------------------------
# The survivable (failed-images) gate
# ---------------------------------------------------------------------------


def _rdht_kernel(updates: int, slots: int, seed: int):
    """Replicated-DHT kernel for survivable runs.

    Each image writes ``updates`` counters into its own disjoint key
    range (so the acked-ledger check is an exact equality), then — in
    degraded mode if a crash fired — verifies every acked write is
    still readable and reports its locally-authoritative pairs.
    """
    from repro import caf
    from repro.bench.dht import ReplicatedHashTable
    from repro.runtime.context import current

    me = caf.this_image()
    table = ReplicatedHashTable(slots, locks_per_image=4)
    rng = np.random.default_rng(seed + me)
    keys = (me << 24) + rng.integers(0, 1 << 24, size=updates)
    caf.sync_all()
    ctx = current()
    t0 = ctx.clock.now
    for k in keys:
        table.update(int(k))
    stat = [0]
    caf.sync_all(stat=stat)
    lost = table.verify_acked()
    return {
        "lost": lost,
        "acked": len(table.acked),
        "pairs": table.authoritative_items(),
        "stat": stat[0],
        "failed": list(caf.failed_images()),
        "elapsed": ctx.clock.now - t0,
    }


def _run_rdht(images, machine, faults, deadline_s, quick, engine, seed):
    from repro import caf

    kw = {}
    if engine == "cooperative":
        # Cooperative execution is selected by the scheduler itself;
        # the seeded walk pins one exact interleaving.
        from repro.explore import RandomWalk, Scheduler

        kw["scheduler"] = Scheduler(RandomWalk(seed))
    else:
        kw["engine"] = engine
    updates, slots = (6, 32) if quick else (12, 64)
    return caf.launch(
        _rdht_kernel,
        images,
        machine,
        survivable=True,
        lock_algorithm="tas",
        faults=faults,
        watchdog_s=deadline_s,
        args=(updates, slots, 77),
        **kw,
    )


def _run_kvservice(images, machine, faults, deadline_s, quick, engine, seed):
    """KV service workload under the survivable gate: open-loop mixed
    read/write streams over disjoint key ranges (exact acked-ledger
    verification) with a mid-stream ring grow, so the crash can land
    anywhere in the reshard window.  The kernel's result dicts carry
    the same ``lost``/``acked``/``pairs``/``stat``/``failed`` contract
    as the rdht kernel."""
    from repro.bench.kvservice import WorkloadSpec
    from repro.bench.kvservice import run_cell as kv_run_cell

    spec = WorkloadSpec(
        ops=8 if quick else 16,
        keyspace=16,
        zipf_s=1.0,
        read_frac=0.5,
        write_frac=0.5,
        scan_frac=0.0,
        mean_interarrival_us=2.0,
        seed=seed,
        disjoint=True,
    )
    return kv_run_cell(
        spec,
        images=images,
        machine=machine,
        ring_images=2,
        grow_to=images,
        grow_at=max(2, spec.ops // 3),
        engine=engine,
        survivable=True,
        faults=faults,
        watchdog_s=deadline_s,
    )


_SURVIVABLE_RUNNERS = {
    "rdht": _run_rdht,
    "kvservice": _run_kvservice,
}


def survivable_crash_plan(seed: int, victim: int = 1, at: int = 40) -> FaultPlan:
    """A schedule that kills one PE mid-run of a survivable job: the
    survivors must complete in degraded mode with zero lost acked
    writes."""
    return FaultPlan(seed=seed, crash_at={victim: at})


def run_survivable_cell(
    target: str,
    plan: FaultPlan,
    *,
    images: int = 4,
    machine: str = "stampede",
    deadline_s: float = DEFAULT_DEADLINE_S,
    quick: bool = False,
    engines: tuple[str, ...] = ("threaded", "cooperative"),
) -> ChaosOutcome:
    """Run one survivable target under one crash schedule on each
    engine and apply the degraded-mode gate:

    * the job must *complete* (no ``JobFailure``) with the crashed PE's
      result slot ``None`` and every survivor reporting
      ``STAT_FAILED_IMAGE``;
    * **zero lost acknowledged writes** — every survivor's acked-ledger
      re-read must match exactly;
    * the merged survivor data digest must be identical across the
      engines (schedule-stable degraded state).

    A plan whose crash never fires must instead produce the fault-free
    result on every engine (status ``identical``).
    """
    if target not in SURVIVABLE_TARGETS:
        raise ValueError(
            f"unknown survivable target {target!r}; "
            f"choose from {SURVIVABLE_TARGETS}"
        )
    runner = _SURVIVABLE_RUNNERS[target]
    digests: dict[str, str] = {}
    crashed: dict[str, int] = {}
    for engine in engines:
        inj = FaultInjector(plan, images)
        try:
            results = runner(
                images, machine, inj, deadline_s, quick, engine, plan.seed
            )
        except JobFailure as jf:
            return ChaosOutcome(
                target, "survivable-crash", plan.seed, "violation",
                detail=f"[{engine}] survivable job aborted: {jf.__cause__!r}",
                injected=inj.summary(),
            )
        dead = [i for i, r in enumerate(results) if r is None]
        survivors = [r for r in results if r is not None]
        crashed[engine] = len(dead)
        lost = [m for r in survivors for m in r["lost"]]
        if lost:
            return ChaosOutcome(
                target, "survivable-crash", plan.seed, "violation",
                detail=f"[{engine}] lost acked writes: {lost[:4]}",
                injected=inj.summary(),
            )
        if dead:
            bad_stat = [r["stat"] for r in survivors if r["stat"] == 0]
            if bad_stat or any(not r["failed"] for r in survivors):
                return ChaosOutcome(
                    target, "survivable-crash", plan.seed, "violation",
                    detail=f"[{engine}] crash fired but survivors saw no "
                           f"STAT_FAILED_IMAGE",
                    injected=inj.summary(),
                )
        digests[engine] = _digest(
            sorted(p for r in survivors for p in r["pairs"])
        )
    if len(set(digests.values())) != 1:
        return ChaosOutcome(
            target, "survivable-crash", plan.seed, "violation",
            detail=f"survivor digests differ across engines: {digests}",
        )
    if len(set(crashed.values())) != 1:
        return ChaosOutcome(
            target, "survivable-crash", plan.seed, "violation",
            detail=f"crash fired on some engines only: {crashed}",
        )
    status = "degraded" if next(iter(crashed.values())) else "identical"
    detail = "" if status == "degraded" else "crash index beyond run length"
    return ChaosOutcome(
        target, "survivable-crash", plan.seed, status, detail=detail,
        injected=inj.summary(),
    )


# ---------------------------------------------------------------------------
# Schedules and the gate
# ---------------------------------------------------------------------------


def mixed_plan(seed: int) -> FaultPlan:
    """The default chaos schedule: transient failures the retry layer
    must absorb plus latency jitter, no escalation."""
    return FaultPlan(
        seed=seed,
        transient_rate=0.15,
        max_failures=2,
        latency_rate=0.25,
        latency_us=120.0,
    )


def crash_plan(seed: int) -> FaultPlan:
    """A schedule that kills one PE mid-run: must abort cleanly."""
    return FaultPlan(seed=seed, crash_at={1: 23}, latency_rate=0.1, latency_us=40.0)


def escalate_plan(seed: int) -> FaultPlan:
    """A schedule whose transients exhaust the retry budget somewhere:
    must abort with a structured TransientCommError."""
    return FaultPlan(seed=seed, transient_rate=0.1, escalate_rate=0.04)


@dataclass
class ChaosOutcome:
    """The gate's verdict for one (target, schedule) cell."""

    target: str
    schedule: str
    seed: int
    status: str  # "identical" | "aborted" | "degraded" | "violation"
    detail: str = ""
    injected: dict = field(default_factory=dict)
    elapsed_us: float | None = None
    baseline_us: float | None = None

    @property
    def ok(self) -> bool:
        return self.status != "violation"


def run_cell(
    target: str,
    schedule: str,
    plan: FaultPlan,
    baseline: tuple[str, float],
    *,
    images: int = 4,
    machine: str = "stampede",
    deadline_s: float = DEFAULT_DEADLINE_S,
    quick: bool = False,
) -> ChaosOutcome:
    """Run one target under one fault schedule and apply the gate."""
    runner = _RUNNERS[target]
    inj = FaultInjector(plan, images)
    base_digest, base_elapsed = baseline
    try:
        digest, elapsed = runner(images, machine, inj, deadline_s, quick)
    except JobFailure as jf:
        cause = jf.__cause__
        if isinstance(cause, STRUCTURED_CAUSES):
            return ChaosOutcome(
                target, schedule, plan.seed, "aborted",
                detail=f"{type(cause).__name__}: {cause}",
                injected=inj.summary(),
            )
        return ChaosOutcome(
            target, schedule, plan.seed, "violation",
            detail=f"unstructured failure: {cause!r}",
            injected=inj.summary(),
        )
    stats = inj.summary()
    if digest != base_digest:
        return ChaosOutcome(
            target, schedule, plan.seed, "violation",
            detail="silent corruption: result digest differs from fault-free baseline",
            injected=stats, elapsed_us=elapsed, baseline_us=base_elapsed,
        )
    if stats.get("injected_ops", 0) > 0 and not elapsed > base_elapsed:
        return ChaosOutcome(
            target, schedule, plan.seed, "violation",
            detail=(
                f"virtual time not strictly larger under injection "
                f"({elapsed} vs baseline {base_elapsed})"
            ),
            injected=stats, elapsed_us=elapsed, baseline_us=base_elapsed,
        )
    return ChaosOutcome(
        target, schedule, plan.seed, "identical",
        injected=stats, elapsed_us=elapsed, baseline_us=base_elapsed,
    )


def run_target(
    target: str,
    seeds: list[int],
    *,
    images: int = 4,
    machine: str = "stampede",
    deadline_s: float = DEFAULT_DEADLINE_S,
    quick: bool = False,
    with_aborts: bool = True,
) -> list[ChaosOutcome]:
    """The full schedule matrix for one target: a fault-free baseline,
    one mixed schedule per seed, and (``with_aborts``) a crash and an
    escalation schedule that must abort cleanly."""
    runner = _RUNNERS[target]
    baseline = runner(images, machine, None, deadline_s, quick)
    out = []
    for seed in seeds:
        out.append(
            run_cell(
                target, "mixed", mixed_plan(seed), baseline,
                images=images, machine=machine, deadline_s=deadline_s, quick=quick,
            )
        )
    if with_aborts:
        seed0 = seeds[0] if seeds else 1
        for name, plan in (
            ("crash", crash_plan(seed0)),
            ("escalate", escalate_plan(seed0)),
        ):
            cell = run_cell(
                target, name, plan, baseline,
                images=images, machine=machine, deadline_s=deadline_s, quick=quick,
            )
            if cell.status == "identical" and not cell.injected.get(
                "crashes", 0
            ) and name == "crash":
                # The crash index never fired (short run): not a
                # violation, but note it so thin coverage is visible.
                cell.detail = "crash index beyond run length (no crash fired)"
            out.append(cell)
    return out


__all__ = [
    "ChaosOutcome",
    "DEFAULT_DEADLINE_S",
    "STRUCTURED_CAUSES",
    "SURVIVABLE_TARGETS",
    "TARGETS",
    "crash_plan",
    "escalate_plan",
    "mixed_plan",
    "run_cell",
    "run_survivable_cell",
    "run_target",
    "survivable_crash_plan",
]
