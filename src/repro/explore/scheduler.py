"""The deterministic cooperative scheduler (shuttle/Coyote style).

Threaded jobs interleave PEs wherever the OS preempts them; a
:class:`Scheduler`-mode job serializes them instead.  Every PE thread
still exists, but exactly one runs at a time: at each *decision point*
(the same sync/communication points the tracer and the fault injector
hook) the running task re-enters the scheduler, which consults a
:class:`Strategy` to pick who runs next.  One strategy seed therefore
names one exact interleaving, replayable bit-for-bit from a recorded
choice list.

Scheduler mode also models OpenSHMEM's weak completion order
*explicitly*: a ``put``'s bytes do not land at the target during the
call.  They are enqueued on the initiator's delivery queue, and the
queue's head becomes an extra schedulable choice (``n<pe>`` tokens) —
the "network" delivering one message.  ``quiet`` force-flushes the
caller's queue (that is exactly what ``shmem_quiet`` promises), atomics
bypass the queue (the NIC atomic unit is not write-buffered), and
same-initiator delivery is FIFO, which subsumes ``shmem_fence``.  A
missing-quiet bug thus produces genuinely divergent schedules instead
of relying on wall-clock luck.

Choice tokens
-------------
``p<i>``  — run PE *i* until its next decision point.
``n<i>``  — deliver the oldest pending put of initiator PE *i*.

Blocking primitives (barrier waits, ``wait_until``) call
:meth:`Scheduler.block_until`; a blocked task is simply not offered as
a choice until its predicate holds.  If no task is runnable and no
delivery is pending, the run has genuinely deadlocked and the scheduler
raises :class:`DeadlockError` with a report naming every blocked task —
instantly, where the threaded engine would idle until the watchdog.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable

from repro.runtime.launcher import JobAborted

#: Step ceiling per schedule: far above any explore program, low enough
#: that a livelocked schedule fails fast instead of spinning forever.
DEFAULT_MAX_STEPS = 100_000


class DeadlockError(RuntimeError):
    """No runnable task and no pending delivery: the schedule deadlocked."""


class ScheduleLimitError(RuntimeError):
    """The schedule exceeded ``max_steps`` decision points (livelock guard)."""


def pe_token(pe: int) -> str:
    return f"p{pe}"


def net_token(pe: int) -> str:
    return f"n{pe}"


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


class Strategy:
    """Picks the next choice token at every decision point.

    ``choose`` receives the step index and the deterministic, sorted
    choice list; it must return one of its elements.  ``note_yield`` is
    a hint: the named task just yielded from a spin loop (a failed lock
    attempt), so priority-based strategies should demote it — the
    Coyote treatment of ``Task.Yield`` — or the spinner livelocks the
    schedule.
    """

    name = "strategy"

    def choose(self, step: int, choices: list[str]) -> str:  # pragma: no cover
        raise NotImplementedError

    def note_yield(self, token: str, spin: bool) -> None:
        pass

    def describe(self) -> dict:
        return {"strategy": self.name}


class RandomWalk(Strategy):
    """Uniform seeded random walk over the choice list."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def choose(self, step: int, choices: list[str]) -> str:
        return choices[self._rng.randrange(len(choices))]

    def describe(self) -> dict:
        return {"strategy": self.name, "seed": self.seed}


class VirtualTimeOrder(Strategy):
    """Run the runnable PE whose virtual clock is smallest.

    This is discrete-event execution order for code the event engine
    cannot run (blocking CAF locks): every schedule decision picks the
    PE furthest *behind* in virtual time, so shared-resource timestamps
    are visited in (approximately) virtual-time order and the causality
    lift never drags a PE's clock far ahead of its peers.  Open-loop
    latency measurements need this — under an arbitrary interleaving, a
    PE whose arrival process has run ahead leaves future timestamps on
    shared buckets and other PEs' response times inherit them as
    phantom queueing delay.

    Pending network deliveries drain first (lowest PE), ties break by
    PE index, and no randomness is involved: the strategy is
    deterministic by construction, without a seed.  Livelock-free
    because every scheduled quantum prices at least one operation on
    the chosen PE, advancing its clock.
    """

    name = "vt"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)  # accepted for make_strategy symmetry
        self._job: Any = None

    def bind_job(self, job: Any) -> None:
        self._job = job

    def _clock(self, token: str) -> float:
        if self._job is None:
            return 0.0
        ctx = self._job.pe_contexts.get(int(token[1:]))
        return ctx.clock.now if ctx is not None else 0.0

    def choose(self, step: int, choices: list[str]) -> str:
        nets = [t for t in choices if t[0] == "n"]
        if nets:
            return min(nets, key=lambda t: int(t[1:]))
        return min(choices, key=lambda t: (self._clock(t), int(t[1:])))

    def describe(self) -> dict:
        return {"strategy": self.name}


class PCTStrategy(Strategy):
    """PCT-style priority scheduling [Burckhardt et al., ASPLOS'10].

    Every task (and every delivery queue) draws a random priority; the
    highest-priority enabled choice runs.  ``depth - 1`` change points
    are drawn over ``expected_steps``; reaching one demotes the current
    leader below everything, forcing a context switch there.  Spin
    yields demote the spinner the same way, so lock loops cannot starve
    the holder.
    """

    name = "pct"

    def __init__(self, seed: int, depth: int = 3, expected_steps: int = 4096) -> None:
        self.seed = int(seed)
        self.depth = max(int(depth), 1)
        self.expected_steps = max(int(expected_steps), 1)
        self._rng = random.Random(self.seed)
        k = min(self.depth - 1, self.expected_steps)
        self._change_points = set(self._rng.sample(range(self.expected_steps), k))
        self._prio: dict[str, float] = {}
        self._demotions = 0

    def _priority(self, token: str) -> float:
        p = self._prio.get(token)
        if p is None:
            p = 1.0 + self._rng.random()
            self._prio[token] = p
        return p

    def _demote(self, token: str) -> None:
        self._demotions += 1
        self._prio[token] = -float(self._demotions)

    def note_yield(self, token: str, spin: bool) -> None:
        if spin:
            self._demote(token)

    def choose(self, step: int, choices: list[str]) -> str:
        token = max(choices, key=lambda t: (self._priority(t), t))
        if step in self._change_points:
            self._demote(token)
            token = max(choices, key=lambda t: (self._priority(t), t))
        return token

    def describe(self) -> dict:
        return {"strategy": self.name, "seed": self.seed, "depth": self.depth}


class ReplaySchedule(Strategy):
    """Replay a recorded choice list token-for-token.

    Past the end of the recording (or if a recorded token is not
    currently enabled — possible only when replaying against a modified
    program) it falls back to the first enabled choice, which keeps the
    replay deterministic.
    """

    name = "replay"

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = list(tokens)
        self.mismatches = 0

    def choose(self, step: int, choices: list[str]) -> str:
        if step < len(self.tokens):
            token = self.tokens[step]
            if token in choices:
                return token
            self.mismatches += 1
        return choices[0]

    def describe(self) -> dict:
        return {"strategy": self.name, "length": len(self.tokens)}


class GuidedPrefix(Strategy):
    """Follow a recorded prefix, then run non-preemptively.

    After the prefix the current task keeps running while it is
    enabled; on a block the lowest-numbered enabled choice takes over.
    The minimizer shrinks divergence witnesses by binary-searching the
    shortest prefix that still reproduces the divergent digest.
    """

    name = "guided-prefix"

    def __init__(self, prefix: list[str]) -> None:
        self.prefix = list(prefix)
        self._last: str | None = None

    def choose(self, step: int, choices: list[str]) -> str:
        if step < len(self.prefix) and self.prefix[step] in choices:
            token = self.prefix[step]
        elif self._last is not None and self._last in choices:
            token = self._last
        else:
            token = choices[0]
        self._last = token
        return token


class _DFSStrategy(Strategy):
    """One run of the exhaustive enumerator: forced prefix, then always
    the first choice, logging every (choices, picked) pair."""

    name = "exhaustive"

    def __init__(self, prefix: list[str]) -> None:
        self.prefix = list(prefix)
        self.log: list[tuple[tuple[str, ...], int]] = []

    def choose(self, step: int, choices: list[str]) -> str:
        if step < len(self.prefix) and self.prefix[step] in choices:
            idx = choices.index(self.prefix[step])
        else:
            idx = 0
        self.log.append((tuple(choices), idx))
        return choices[idx]


class ExhaustiveEnumerator:
    """Depth-first enumeration of *every* schedule of a tiny program.

    Drives repeated runs: each run follows the current forced prefix and
    then takes first choices; afterwards :meth:`advance` backtracks to
    the deepest decision with an untried alternative.  Practical only
    for programs with a handful of decision points — the tree is
    exponential — so pair it with a schedule budget.
    """

    def __init__(self) -> None:
        self._prefix: list[str] = []
        self.exhausted = False
        self.runs = 0

    def next_strategy(self) -> _DFSStrategy | None:
        if self.exhausted:
            return None
        self.runs += 1
        return _DFSStrategy(self._prefix)

    def advance(self, strategy: _DFSStrategy) -> None:
        """Consume a finished run's log and compute the next prefix."""
        log = strategy.log
        for depth in range(len(log) - 1, -1, -1):
            choices, idx = log[depth]
            if idx + 1 < len(choices):
                self._prefix = [c[i] for c, i in log[:depth]] + [choices[idx + 1]]
                return
        self.exhausted = True


def make_strategy(name: str, seed: int, **opts: Any) -> Strategy:
    """Build a fresh strategy instance by CLI name."""
    if name == "random":
        return RandomWalk(seed)
    if name == "pct":
        return PCTStrategy(seed, **opts)
    if name == "vt":
        return VirtualTimeOrder(seed)
    raise ValueError(f"unknown strategy {name!r} (exhaustive runs via the explorer)")


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


class Scheduler:
    """Serializes a job's PE threads under a :class:`Strategy`.

    One-shot: bind it to exactly one :class:`~repro.runtime.launcher.Job`
    (``Job(..., scheduler=...)`` does this) and run that job once.  The
    executed choice sequence is left in :attr:`trace` for replay.
    """

    def __init__(
        self, strategy: Strategy, *, max_steps: int = DEFAULT_MAX_STEPS
    ) -> None:
        self.strategy = strategy
        self.max_steps = int(max_steps)
        self.trace: list[str] = []
        self.steps = 0
        self.done = False
        #: Set when the scheduler itself killed the run from a task-exit
        #: path (deadlock among the survivors): ``(pe, exception)``.
        self.failure: tuple[int, BaseException] | None = None
        self._job: Any = None
        self._lock = None  # created at bind; threading import kept local
        self._events: list[Any] = []
        self._queues: list[deque] = []
        self._registered: set[int] = set()
        self._finished: set[int] = set()
        self._blocked: dict[int, tuple[Callable[[], bool], str]] = {}

    # -- lifecycle ------------------------------------------------------
    def bind(self, job: Any) -> None:
        import threading

        if self._job is not None:
            raise RuntimeError("a Scheduler is one-shot; build a fresh one per Job")
        self._job = job
        bind_job = getattr(self.strategy, "bind_job", None)
        if bind_job is not None:
            bind_job(job)  # clock-aware strategies read PE clocks from it
        self.num_pes = job.num_pes
        self._lock = threading.Lock()
        self._events = [threading.Event() for _ in range(job.num_pes)]
        self._queues = [deque() for _ in range(job.num_pes)]

    def start_task(self, pe: int) -> None:
        """First call from each PE thread; returns when the PE is picked."""
        if self.done:
            raise RuntimeError("this Scheduler's job already ran; it is one-shot")
        park = False
        with self._lock:
            self._registered.add(pe)
            if len(self._registered) == self.num_pes:
                nxt = self._pick()
                if nxt == pe:
                    return
                self._events[nxt].set()
                park = True
            else:
                park = True
        if park:
            self._await_turn(pe)

    def task_exit(self, pe: int) -> None:
        """Final call from each PE thread (normal return or unwind).

        Never raises: a deadlock among the survivors is recorded in
        :attr:`failure` and the job aborted, so the launcher can report
        it as a :class:`JobFailure` after joining.
        """
        with self._lock:
            if pe in self._finished:
                return
            self._finished.add(pe)
            self._blocked.pop(pe, None)
            if len(self._finished) == self.num_pes:
                # End of job completes all outstanding puts (finalize
                # semantics), deterministically in PE order.
                for q in self._queues:
                    while q:
                        q.popleft()()
                self.done = True
                return
            if self._job.aborted():
                self._wake_all()
                return
            try:
                nxt = self._pick()
            except (DeadlockError, ScheduleLimitError) as exc:
                self.failure = (pe, exc)
                self._job.abort()
                self._wake_all()
                return
            if nxt is not None:
                self._events[nxt].set()

    # -- decision points ------------------------------------------------
    def yield_point(
        self, pe: int, op: str = "", target: int = -1, *, spin: bool = False
    ) -> None:
        """The running PE is about to issue ``op``; let the strategy
        decide who proceeds."""
        if self._job.aborted():
            raise JobAborted(f"job aborted at {op} decision point")
        with self._lock:
            self.strategy.note_yield(pe_token(pe), spin)
            nxt = self._pick()
            if nxt == pe:
                return
            if nxt is not None:
                self._events[nxt].set()
        self._await_turn(pe)

    def block_until(self, pe: int, predicate: Callable[[], bool], reason: str = "") -> None:
        """Park the running PE until ``predicate()`` holds.

        The predicate is re-evaluated by the scheduler after every step
        (other tasks' progress or message deliveries may satisfy it);
        the PE is only offered as a choice again once it does.
        """
        if self._job.aborted():
            raise JobAborted(f"job aborted entering {reason or 'block'}")
        with self._lock:
            self.strategy.note_yield(pe_token(pe), False)
            if not predicate():
                self._blocked[pe] = (predicate, reason)
            nxt = self._pick()
            if nxt == pe:
                return
            if nxt is not None:
                self._events[nxt].set()
        self._await_turn(pe)

    def post_put(self, pe: int, deliver: Callable[[], None]) -> None:
        """Enqueue a put's target-side deposit for later delivery."""
        self._queues[pe].append(deliver)

    def flush(self, pe: int) -> None:
        """``quiet``: deliver every pending put of ``pe``, in order."""
        with self._lock:
            q = self._queues[pe]
            while q:
                q.popleft()()

    def pending(self, pe: int) -> int:
        return len(self._queues[pe])

    # -- internals ------------------------------------------------------
    def _pick(self) -> int | None:
        """Pick the next PE to run (lock held).  Deliveries chosen by
        the strategy are executed inline; returns None when every task
        has finished."""
        while True:
            for t in sorted(self._blocked):
                predicate, _ = self._blocked[t]
                if predicate():
                    del self._blocked[t]
            choices = [
                pe_token(t)
                for t in range(self.num_pes)
                if t not in self._finished and t not in self._blocked
            ]
            choices += [net_token(t) for t in range(self.num_pes) if self._queues[t]]
            if not choices:
                if len(self._finished) == self.num_pes:
                    return None
                raise DeadlockError(self._deadlock_report())
            if self.steps >= self.max_steps:
                raise ScheduleLimitError(
                    f"schedule exceeded {self.max_steps} steps "
                    f"(livelocked spin loop?); last choices: {choices}"
                )
            token = self.strategy.choose(self.steps, choices)
            if token not in choices:
                raise RuntimeError(
                    f"strategy returned {token!r}, not one of {choices}"
                )
            self.steps += 1
            self.trace.append(token)
            if token[0] == "n":
                self._queues[int(token[1:])].popleft()()
                continue
            return int(token[1:])

    def _deadlock_report(self) -> str:
        lines = [
            f"deadlock after {self.steps} steps: no runnable task, "
            f"no pending delivery ({len(self._finished)}/{self.num_pes} "
            f"PEs finished)"
        ]
        for t in sorted(self._blocked):
            lines.append(f"  PE {t} blocked in {self._blocked[t][1] or '<unnamed wait>'}")
        return "\n".join(lines)

    def _wake_all(self) -> None:
        for ev in self._events:
            ev.set()

    def _await_turn(self, pe: int) -> None:
        ev = self._events[pe]
        wd = getattr(self._job, "watchdog", None)
        guard_cm = wd.watch(pe, "scheduler wait") if wd is not None else None
        try:
            if guard_cm is not None:
                guard = guard_cm.__enter__()
            while not ev.wait(timeout=0.1):
                if self._job.aborted():
                    raise JobAborted("job aborted while awaiting schedule turn")
                if guard_cm is not None:
                    guard.poll()
        finally:
            if guard_cm is not None:
                guard_cm.__exit__(None, None, None)
        ev.clear()
        if self._job.aborted():
            raise JobAborted("job aborted while awaiting schedule turn")


def spin_hint() -> None:
    """A schedule point for user-level spin loops.

    Busy-wait loops that poll remote state through atomics (rather than
    through ``wait_until``) must give the scheduler a chance to run
    somebody else, or the poll spins forever under cooperative
    scheduling.  Under a scheduler-mode job this yields (flagged as a
    spin, so PCT demotes the spinner); under the default threaded
    engine it sleeps briefly, exactly like the hand-written polling
    loops it replaces.
    """
    from repro.runtime.context import current

    ctx = current()
    ctx.job.engine.spin_yield(ctx, "spin", -1)
