"""The schedule-exploration driver.

:func:`explore` runs one corpus program under N schedules and checks
the program's contract:

* race-free programs must produce **one** canonical digest across every
  schedule tried (bit-identical results, whatever the interleaving);
* seeded racy programs must produce a **divergent** digest within the
  budget — a concrete witness that cross-validates the PR-2 ordering
  sanitizer with an executed interleaving, not a static trace argument.

Any divergence is packaged as a :class:`DivergenceWitness`: the full
recorded choice list (replayable via
:class:`~repro.explore.scheduler.ReplaySchedule`), a *minimized* prefix
(binary search over :class:`~repro.explore.scheduler.GuidedPrefix` for
the shortest forced prefix that still reproduces a non-baseline
digest), and a first-divergence trace diff between the baseline and
divergent interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.explore.programs import ExploreProgram, get_program
from repro.explore.scheduler import (
    DEFAULT_MAX_STEPS,
    ExhaustiveEnumerator,
    GuidedPrefix,
    ReplaySchedule,
    Scheduler,
    Strategy,
    make_strategy,
)

#: Replays the minimizer may spend per witness (binary search uses
#: ~log2(len) of them; the rest is headroom for the verification runs).
DEFAULT_MINIMIZE_BUDGET = 24

#: Lines of trace diff kept in a witness.
_DIFF_CONTEXT = 4


@dataclass(slots=True)
class ScheduleOutcome:
    """One schedule's result."""

    index: int
    strategy: dict
    digest: str
    steps: int
    choices: list[str]
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "strategy": self.strategy,
            "digest": self.digest,
            "steps": self.steps,
            "error": self.error,
        }


@dataclass(slots=True)
class DivergenceWitness:
    """A replayable divergence: two interleavings, two digests."""

    program: str
    strategy: dict
    baseline_digest: str
    divergent_digest: str
    choices: list[str]
    minimized: list[str]
    trace_diff: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "strategy": self.strategy,
            "baseline_digest": self.baseline_digest,
            "divergent_digest": self.divergent_digest,
            "choices": self.choices,
            "minimized": self.minimized,
            "trace_diff": self.trace_diff,
        }


@dataclass(slots=True)
class ExploreReport:
    """The explorer's verdict for one program."""

    program: str
    racy: bool
    strategy: str
    images: int
    machine: str
    schedules_run: int
    digests: dict[str, int]
    outcomes: list[ScheduleOutcome]
    witness: DivergenceWitness | None
    errors: list[str]
    exhausted: bool = False

    @property
    def diverged(self) -> bool:
        return len(self.digests) > 1

    @property
    def ok(self) -> bool:
        """Did the program meet its contract?

        Race-free: one digest, no errors.  Racy: a divergence was
        found (schedule-induced errors — e.g. a deadlock only some
        interleaving reaches — count as divergence too).
        """
        if self.racy:
            return self.diverged
        return not self.diverged and not self.errors

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "racy": self.racy,
            "strategy": self.strategy,
            "images": self.images,
            "machine": self.machine,
            "schedules_run": self.schedules_run,
            "exhausted": self.exhausted,
            "digests": self.digests,
            "diverged": self.diverged,
            "ok": self.ok,
            "errors": self.errors,
            "witness": None if self.witness is None else self.witness.to_dict(),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


# ---------------------------------------------------------------------------
# Single-schedule execution
# ---------------------------------------------------------------------------


def run_schedule(
    program: ExploreProgram,
    strategy: Strategy,
    *,
    images: int | None = None,
    machine: str = "stampede",
    max_steps: int = DEFAULT_MAX_STEPS,
    trace: bool = False,
    faults: Any = None,
) -> tuple[ScheduleOutcome, Any]:
    """Run ``program`` once under ``strategy``; returns
    ``(outcome, tracer)``.

    A failing schedule (deadlock, livelock limit, kernel exception) is
    an *outcome*, not a crash: its digest is a stable rendering of the
    root cause, so error interleavings participate in divergence
    detection like any other result.
    """
    sched = Scheduler(strategy, max_steps=max_steps)
    n = program.default_images if images is None else images
    tracer = None
    try:
        digest, tracer = program.run(
            sched, images=n, machine=machine, trace=trace, faults=faults
        )
        error = None
    except Exception as exc:  # JobFailure wraps the per-PE root cause
        cause = exc.__cause__ if exc.__cause__ is not None else exc
        error = f"{type(cause).__name__}: {cause}"
        digest = f"<failed:{type(cause).__name__}>"
    outcome = ScheduleOutcome(
        index=0,
        strategy=strategy.describe(),
        digest=digest,
        steps=sched.steps,
        choices=list(sched.trace),
        error=error,
    )
    return outcome, tracer


def replay(
    program_name: str,
    choices: list[str],
    *,
    images: int | None = None,
    machine: str = "stampede",
    max_steps: int = DEFAULT_MAX_STEPS,
    trace: bool = False,
    faults: Any = None,
    guided: bool = False,
) -> tuple[ScheduleOutcome, Any]:
    """Re-execute one recorded interleaving and return its outcome.

    A witness's full ``choices`` list replays verbatim
    (``guided=False``); its ``minimized`` prefix was validated under
    :class:`GuidedPrefix` completion (follow the prefix, then run
    non-preemptively), so replay it with ``guided=True``.
    """
    program = get_program(program_name)
    strategy: Strategy = GuidedPrefix(choices) if guided else ReplaySchedule(choices)
    return run_schedule(
        program, strategy, images=images, machine=machine,
        max_steps=max_steps, trace=trace, faults=faults,
    )


# ---------------------------------------------------------------------------
# Trace diffing
# ---------------------------------------------------------------------------


def trace_digest(tracer: Any) -> str:
    """Digest of a tracer's full event stream, virtual times included.

    Scheduler-mode runs are deterministic end to end, so even the
    timestamps must replay bit-identically; the determinism regression
    test hangs off this.
    """
    import hashlib

    h = hashlib.sha256()
    for pe_events in tracer.events:
        for e in pe_events:
            h.update(
                f"{e.pe}|{e.op}|{e.target}|{e.nbytes}|{e.t_start!r}|"
                f"{e.t_end!r}|{e.calls}\n".encode()
            )
        h.update(b"--\n")
    return h.hexdigest()


def _op_stream(tracer: Any) -> list[list[str]]:
    return [
        [f"{e.op}->{e.target} ({e.nbytes}B)" for e in pe_events]
        for pe_events in tracer.events
    ]


def trace_diff(baseline: Any, divergent: Any) -> list[str]:
    """First-divergence summary between two tracers' op streams."""
    lines: list[str] = []
    base, div = _op_stream(baseline), _op_stream(divergent)
    for pe in range(max(len(base), len(div))):
        b = base[pe] if pe < len(base) else []
        d = div[pe] if pe < len(div) else []
        if b == d:
            continue
        k = 0
        while k < len(b) and k < len(d) and b[k] == d[k]:
            k += 1
        lines.append(f"PE {pe}: first differing op at #{k}")
        lo = max(0, k - 1)
        hi = k + _DIFF_CONTEXT
        lines.append(f"  baseline : {' ; '.join(b[lo:hi]) or '<end of trace>'}")
        lines.append(f"  divergent: {' ; '.join(d[lo:hi]) or '<end of trace>'}")
    if not lines:
        lines.append(
            "op streams identical per PE (divergence is in cross-PE "
            "delivery order)"
        )
    return lines


# ---------------------------------------------------------------------------
# Witness minimization
# ---------------------------------------------------------------------------


def minimize_witness(
    program: ExploreProgram,
    choices: list[str],
    baseline_digest: str,
    *,
    images: int | None,
    machine: str,
    max_steps: int,
    budget: int = DEFAULT_MINIMIZE_BUDGET,
    faults: Any = None,
) -> list[str]:
    """Shortest forced prefix of ``choices`` that still diverges.

    Binary search over :class:`GuidedPrefix` length; a prefix "works"
    when running it (then non-preemptively) produces a digest other
    than the baseline's.  Divergence is not strictly monotone in prefix
    length, so the result is verified and the full choice list is the
    fallback.
    """
    spent = 0

    def diverges(length: int) -> bool:
        nonlocal spent
        spent += 1
        outcome, _ = run_schedule(
            program, GuidedPrefix(choices[:length]), images=images,
            machine=machine, max_steps=max_steps, faults=faults,
        )
        return outcome.digest != baseline_digest

    lo, hi = 0, len(choices)
    if not diverges(hi):
        # Replay under non-preemptive completion does not reproduce
        # (rare: the tail mattered); keep the full recording.
        return list(choices)
    while lo < hi and spent < budget:
        mid = (lo + hi) // 2
        if diverges(mid):
            hi = mid
        else:
            lo = mid + 1
    if hi < len(choices) and not diverges(hi):
        return list(choices)
    return choices[:hi]


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


def explore(
    program_name: str,
    *,
    schedules: int = 20,
    seed: int = 2015,
    strategy: str = "random",
    images: int | None = None,
    machine: str = "stampede",
    max_steps: int = DEFAULT_MAX_STEPS,
    pct_depth: int = 3,
    faults: Any = None,
    minimize: bool = True,
    collect_outcomes: bool = False,
) -> ExploreReport:
    """Run ``program_name`` under ``schedules`` interleavings.

    ``strategy`` is ``random`` (seeded walks; schedule *i* uses
    ``seed + i``), ``pct`` (priority schedules of depth ``pct_depth``),
    or ``exhaustive`` (DFS over every schedule — tiny programs only;
    stops early when the tree is exhausted).  ``faults`` composes a
    :class:`~repro.sim.faults.FaultPlan` with every schedule: plan
    decisions key off per-PE op indices, so the same plan follows the
    program through any interleaving.

    Exploration stops at the first divergence (that is the explorer's
    answer); the witness is then minimized and trace-diffed.
    """
    program = get_program(program_name)
    n_images = program.default_images if images is None else images
    digests: dict[str, int] = {}
    outcomes: list[ScheduleOutcome] = []
    errors: list[str] = []
    witness: DivergenceWitness | None = None
    baseline: ScheduleOutcome | None = None
    enumerator = ExhaustiveEnumerator() if strategy == "exhaustive" else None
    runs = 0

    for i in range(schedules):
        if enumerator is not None:
            strat = enumerator.next_strategy()
            if strat is None:
                break
        else:
            strat = make_strategy(
                strategy, seed + i,
                **({"depth": pct_depth} if strategy == "pct" else {}),
            )
        outcome, _ = run_schedule(
            program, strat, images=n_images, machine=machine,
            max_steps=max_steps, faults=faults,
        )
        outcome.index = i
        runs += 1
        if enumerator is not None:
            enumerator.advance(strat)
        digests[outcome.digest] = digests.get(outcome.digest, 0) + 1
        if collect_outcomes:
            outcomes.append(outcome)
        if outcome.error is not None:
            errors.append(f"schedule {i}: {outcome.error}")
        if baseline is None:
            baseline = outcome
            continue
        if outcome.digest != baseline.digest and witness is None:
            witness = _build_witness(
                program, baseline, outcome, images=n_images, machine=machine,
                max_steps=max_steps, faults=faults, minimize=minimize,
            )
            break

    return ExploreReport(
        program=program.name,
        racy=program.racy,
        strategy=strategy,
        images=n_images,
        machine=machine,
        schedules_run=runs,
        digests=digests,
        outcomes=outcomes,
        witness=witness,
        errors=errors,
        exhausted=enumerator.exhausted if enumerator is not None else False,
    )


def _build_witness(
    program: ExploreProgram,
    baseline: ScheduleOutcome,
    divergent: ScheduleOutcome,
    *,
    images: int,
    machine: str,
    max_steps: int,
    faults: Any,
    minimize: bool,
) -> DivergenceWitness:
    minimized = list(divergent.choices)
    if minimize:
        minimized = minimize_witness(
            program, divergent.choices, baseline.digest, images=images,
            machine=machine, max_steps=max_steps, faults=faults,
        )
    diff: list[str] = []
    try:
        _, base_tr = run_schedule(
            program, ReplaySchedule(baseline.choices), images=images,
            machine=machine, max_steps=max_steps, trace=True, faults=faults,
        )
        _, div_tr = run_schedule(
            program, ReplaySchedule(divergent.choices), images=images,
            machine=machine, max_steps=max_steps, trace=True, faults=faults,
        )
        if base_tr is not None and div_tr is not None:
            diff = trace_diff(base_tr, div_tr)
    except Exception as exc:  # diffing is best-effort reporting
        diff = [f"<trace diff unavailable: {type(exc).__name__}: {exc}>"]
    return DivergenceWitness(
        program=program.name,
        strategy=divergent.strategy,
        baseline_digest=baseline.digest,
        divergent_digest=divergent.digest,
        choices=list(divergent.choices),
        minimized=minimized,
        trace_diff=diff,
    )
