"""CLI for the schedule explorer.

::

    python -m repro.explore --program dht --schedules 50 --seed 2015
    python -m repro.explore --program missing_quiet --schedules 200 \
        --json > witness.json
    python -m repro.explore --replay witness.json

Exit codes: 0 — every program met its contract (race-free corpus
bit-identical across all schedules; racy corpus produced a divergence
witness); 1 — at least one contract violation (or a replay that did
not reproduce); 2 — bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.explore import PROGRAMS, explore, replay


def _print_report(report) -> None:
    status = "ok" if report.ok else "VIOLATION"
    kind = "racy" if report.racy else "race-free"
    print(
        f"{report.program:18s} {kind:9s} {report.strategy:10s} "
        f"schedules={report.schedules_run:<4d} "
        f"digests={len(report.digests):<2d} "
        f"{'exhausted ' if report.exhausted else ''}{status}"
    )
    for err in report.errors[:5]:
        print(f"    error: {err}")
    w = report.witness
    if w is not None:
        print(
            f"    divergence: baseline {w.baseline_digest[:12]}… vs "
            f"{w.divergent_digest[:12]}…"
        )
        print(
            f"    witness: {len(w.choices)} choices, minimized to "
            f"{len(w.minimized)} — replay with --replay <this JSON>"
        )
        for line in w.trace_diff[:8]:
            print(f"    {line}")


def _run_replay(args) -> int:
    try:
        with open(args.replay, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"explore: cannot read replay file: {exc}", file=sys.stderr)
        return 2
    # Accept a witness dict, a full report, or the CLI's JSON output.
    if "reports" in doc:
        witnesses = [r.get("witness") for r in doc["reports"]]
        witness = next((w for w in witnesses if w), None)
    else:
        witness = doc.get("witness", doc)
    if witness is None or "choices" not in witness or "program" not in witness:
        print("explore: replay file carries no witness", file=sys.stderr)
        return 2
    choices = witness["minimized"] if args.minimized else witness["choices"]
    outcome, _ = replay(
        witness["program"], choices, images=args.images,
        machine=args.machine, max_steps=args.max_steps,
        guided=args.minimized,
    )
    expected = witness.get("divergent_digest")
    reproduced = expected is None or outcome.digest == expected
    if args.json:
        print(
            json.dumps(
                {
                    "program": witness["program"],
                    "digest": outcome.digest,
                    "expected": expected,
                    "steps": outcome.steps,
                    "reproduced": reproduced,
                },
                indent=2,
            )
        )
    else:
        print(
            f"replay {witness['program']}: digest {outcome.digest[:12]}… "
            f"({outcome.steps} steps) — "
            + ("reproduced" if reproduced else f"EXPECTED {expected[:12]}…")
        )
    return 0 if reproduced else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Deterministic schedule exploration: race-free programs "
        "must stay bit-identical across interleavings, seeded racy programs "
        "must yield a divergence witness.",
    )
    parser.add_argument(
        "--program", nargs="+", choices=sorted(PROGRAMS), dest="programs",
        help="corpus programs to explore",
    )
    parser.add_argument(
        "--schedules", type=int, default=20,
        help="interleavings to try per program (default: 20)",
    )
    parser.add_argument(
        "--seed", type=int, default=2015,
        help="base seed; schedule i uses seed+i (default: 2015)",
    )
    parser.add_argument(
        "--strategy", choices=["random", "pct", "exhaustive"], default="random",
        help="schedule-generation strategy (default: random)",
    )
    parser.add_argument(
        "--pct-depth", type=int, default=3,
        help="PCT priority-change depth (default: 3)",
    )
    parser.add_argument("--images", type=int, default=None,
                        help="image count (default: per-program)")
    parser.add_argument("--machine", default="stampede")
    parser.add_argument(
        "--max-steps", type=int, default=None,
        help="per-schedule decision-point ceiling (livelock guard)",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip witness minimization (faster on huge traces)",
    )
    parser.add_argument(
        "--replay", metavar="FILE",
        help="re-execute the witness in FILE (JSON from --json) and check "
        "that it reproduces the divergent digest",
    )
    parser.add_argument(
        "--minimized", action="store_true",
        help="with --replay: use the minimized prefix instead of the full "
        "choice list",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2
    if args.max_steps is None:
        from repro.explore import DEFAULT_MAX_STEPS

        args.max_steps = DEFAULT_MAX_STEPS
    if args.replay:
        return _run_replay(args)
    if not args.programs:
        print("explore: --program (or --replay) is required", file=sys.stderr)
        return 2
    if args.schedules < 1:
        print("explore: --schedules must be >= 1", file=sys.stderr)
        return 2

    reports = [
        explore(
            name,
            schedules=args.schedules,
            seed=args.seed,
            strategy=args.strategy,
            images=args.images,
            machine=args.machine,
            max_steps=args.max_steps,
            pct_depth=args.pct_depth,
            minimize=not args.no_minimize,
        )
        for name in args.programs
    ]
    violations = [r for r in reports if not r.ok]
    if args.json:
        print(
            json.dumps(
                {
                    "reports": [r.to_dict() for r in reports],
                    "violations": len(violations),
                },
                indent=2,
            )
        )
    else:
        for r in reports:
            _print_report(r)
        print(
            f"explore: {len(reports)} program(s), {len(violations)} "
            f"violation(s)" + ("" if violations else " — contracts hold")
        )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
