"""The exploration corpus: small PGAS programs with known race status.

Each :class:`ExploreProgram` runs a kernel under one scheduler and
reduces the outcome to a *canonical digest* — a SHA-256 over the
program's semantically meaningful results only.  Schedule-dependent
incidentals (virtual timestamps, freed-heap residue such as MCS queue
nodes) are deliberately excluded: for a race-free program the digest
must be bit-identical across every legal interleaving, so it can only
cover state the memory model actually pins down.

Race-free corpus (digest must never vary):

* ``dht``    — the PR-1 distributed hash table; keys are chosen with
  pairwise-distinct home slots so the final table layout (not just the
  multiset of counters) is schedule-independent.
* ``himeno`` — the Fig-10 stencil, XS grid, 2 iterations.
* ``locks``  — a lock-protected shared counter.
* ``events`` — an event-ordered ping-pong.
* ``kvservice`` — the open-loop KV service workload over disjoint
  per-image key ranges (caches on; final acked state is pinned by each
  image's own program order).

Seeded racy corpus (some schedule must diverge — the PR-2 sanitizer
negatives as executable programs):

* ``missing_quiet``     — relaxed-ordering put signalled by an atomic
  flag with no intervening quiet; scheduler mode can deliver the flag
  before the data.
* ``unordered_conflict`` — two images put to the same word between the
  same pair of barriers; the final value is whoever lands last.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import caf
from repro.bench.dht import DistributedHashTable, _mix
from repro.bench.harness import CafConfig
from repro.bench.himeno import himeno_caf
from repro.explore.scheduler import spin_hint

#: Backend used by every caf-kernel program (the paper's headline
#: configuration: CAF over the OpenSHMEM layer).
_CONFIG = CafConfig("explore-shmem", backend="shmem")

_DHT_SLOTS = 8


def _digest(obj: Any) -> str:
    """Canonical digest of a JSON-able result object."""
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


@dataclass(frozen=True, slots=True)
class ExploreProgram:
    """One corpus entry.

    ``run(scheduler, images=..., machine=..., trace=..., faults=...)``
    executes the kernel under the given scheduler (``None`` = default
    threaded engine) and returns ``(digest, tracer)``; ``tracer`` is a
    :class:`~repro.trace.events.Tracer` when ``trace=True`` was asked
    for and the program supports tracing, else ``None``.
    """

    name: str
    racy: bool
    default_images: int
    description: str
    run: Callable[..., tuple[str, Any]]


def _caf_run(
    kernel: Callable[[], Any],
    images: int,
    *,
    machine: str,
    scheduler: Any,
    ordering: str = "caf",
    trace: bool = False,
    faults: Any = None,
) -> tuple[list[Any], Any]:
    """Run ``kernel`` the way :func:`caf.launch` does, but with an
    optional plain tracer (no sanitizer pass — the racy corpus must be
    allowed to finish so the harness can diff the divergent traces)."""
    from repro.caf import attach as caf_attach
    from repro.runtime.launcher import Job

    job_kwargs: dict[str, Any] = {}
    if faults is not None:
        job_kwargs["faults"] = faults
    if scheduler is not None:
        job_kwargs["scheduler"] = scheduler
    job = Job(images, machine, **job_kwargs)
    rt = caf_attach(job, backend=_CONFIG.backend, ordering=ordering)
    tracer = None
    if trace:
        from repro.trace.events import attach as trace_attach

        tracer = trace_attach(job)

    def spmd_main() -> Any:
        rt.startup()
        return kernel()

    results = job.run(spmd_main)
    return results, tracer


# ---------------------------------------------------------------------------
# Race-free corpus
# ---------------------------------------------------------------------------


def _dht_distinct_keys(n_images: int, slots: int, count: int) -> list[int]:
    """First ``count`` natural keys with pairwise-distinct (image, slot)
    homes.  Distinct homes mean no probing, so the final table *layout*
    is schedule-independent, not just the counter multiset."""
    keys: list[int] = []
    seen: set[tuple[int, int]] = set()
    k = 1
    while len(keys) < count:
        h = _mix(k)
        home = (h % n_images + 1, (h >> 20) % slots)
        if home not in seen:
            seen.add(home)
            keys.append(k)
        k += 1
    return keys


def _run_dht(
    scheduler: Any,
    *,
    images: int,
    machine: str,
    trace: bool = False,
    faults: Any = None,
) -> tuple[str, Any]:
    def kernel() -> Any:
        me = caf.this_image()
        n = caf.num_images()
        table = DistributedHashTable(_DHT_SLOTS, locks_per_image=2)
        keys = _dht_distinct_keys(n, _DHT_SLOTS, 2 * n)
        caf.sync_all()
        # Every image touches every key (maximum lock contention); the
        # final counter for each key is therefore 3 * num_images.
        for k in keys[me - 1 :] + keys[: me - 1]:
            table.update(k, 1)
            table.update(k, 2)
        caf.sync_all()
        return table.keys.local.tolist(), table.values.local.tolist()

    results, tracer = _caf_run(
        kernel, images, machine=machine, scheduler=scheduler,
        trace=trace, faults=faults,
    )
    return _digest(results), tracer


def _run_himeno(
    scheduler: Any,
    *,
    images: int,
    machine: str,
    trace: bool = False,
    faults: Any = None,
) -> tuple[str, Any]:
    res = himeno_caf(
        machine, _CONFIG, images, grid="XS", iterations=2,
        faults=faults, scheduler=scheduler,
    )
    # Float bit pattern, not repr: the digest must catch 1-ulp drift.
    return _digest([res.gosa.hex(), res.iterations]), None


def _run_locks(
    scheduler: Any,
    *,
    images: int,
    machine: str,
    trace: bool = False,
    faults: Any = None,
) -> tuple[str, Any]:
    rounds = 3

    def kernel() -> Any:
        counter = caf.coarray((1,), np.int64)
        counter[:] = 0
        lck = caf.lock_type()
        caf.sync_all()
        for _ in range(rounds):
            caf.lock(lck, 1)
            v = int(counter.on(1)[0])
            counter.on(1)[0] = v + 1
            caf.unlock(lck, 1)
        caf.sync_all()
        return int(counter.on(1)[0])

    results, tracer = _caf_run(
        kernel, images, machine=machine, scheduler=scheduler,
        trace=trace, faults=faults,
    )
    # Every schedule must observe exactly rounds * images increments.
    return _digest(results), tracer


def _run_events(
    scheduler: Any,
    *,
    images: int,
    machine: str,
    trace: bool = False,
    faults: Any = None,
) -> tuple[str, Any]:
    rounds = 3

    def kernel() -> Any:
        me = caf.this_image()
        data = caf.coarray((1,), np.int64)
        data[:] = 0
        ping = caf.event_type()
        pong = caf.event_type()
        caf.sync_all()
        seen: list[int] = []
        if me == 1:
            value = 0
            for _ in range(rounds):
                value += 1
                data.on(2)[0] = value
                ping.post(2)
                pong.wait()
                value = int(data.local[0])
                seen.append(value)
        elif me == 2:
            for _ in range(rounds):
                ping.wait()
                got = int(data.local[0])
                seen.append(got)
                data.on(1)[0] = got * 2
                pong.post(1)
        caf.sync_all()
        return seen

    results, tracer = _caf_run(
        kernel, images, machine=machine, scheduler=scheduler,
        trace=trace, faults=faults,
    )
    return _digest(results), tracer


# ---------------------------------------------------------------------------
# Seeded racy corpus (the PR-2 sanitizer negatives, executable)
# ---------------------------------------------------------------------------


def _run_missing_quiet(
    scheduler: Any,
    *,
    images: int,
    machine: str,
    trace: bool = False,
    faults: Any = None,
) -> tuple[str, Any]:
    def kernel() -> Any:
        me = caf.this_image()
        data = caf.coarray((8,), np.int64)
        flag = caf.coarray((1,), np.int64)
        data[:] = 0
        flag[:] = 0
        caf.sync_all()
        snapshot = None
        if me == 1:
            # BUG under relaxed ordering: no quiet between the data put
            # and the flag — the atomic can overtake the payload.
            data.on(2)[:] = np.arange(1, 9, dtype=np.int64)
            caf.atomic_define(flag, 2, 1)
        elif me == 2:
            while caf.atomic_ref(flag, 2) != 1:
                spin_hint()
            snapshot = data.local.tolist()
        caf.sync_all()
        return snapshot

    results, tracer = _caf_run(
        kernel, images, machine=machine, scheduler=scheduler,
        ordering="relaxed", trace=trace, faults=faults,
    )
    return _digest(results), tracer


def _run_unordered_conflict(
    scheduler: Any,
    *,
    images: int,
    machine: str,
    trace: bool = False,
    faults: Any = None,
) -> tuple[str, Any]:
    def kernel() -> Any:
        me = caf.this_image()
        data = caf.coarray((4,), np.int64)
        data[:] = 0
        caf.sync_all()
        # BUG: both images store to the same word in the same segment;
        # the survivor is whichever delivery the schedule orders last.
        data.on(1)[0] = me
        caf.sync_all()
        return int(data.on(1)[0])

    results, tracer = _caf_run(
        kernel, images, machine=machine, scheduler=scheduler,
        ordering="relaxed", trace=trace, faults=faults,
    )
    return _digest(results), tracer


def _run_kvservice(
    scheduler: Any,
    *,
    images: int,
    machine: str,
    trace: bool = False,
    faults: Any = None,
) -> tuple[str, Any]:
    """The KV service workload in its race-free configuration: every
    initiator streams against its own disjoint key range, so each key's
    final value is pinned by that image's own program order (its last
    acked put) no matter how the schedule interleaves the bucket locks.
    The digest covers the acked-ledger re-reads and op/ack counts only;
    cache hit counts are deliberately excluded (version bumps from
    bucket-colliding keys make them schedule-dependent, which is
    incidental, not semantic)."""
    from repro.bench.kvservice import WorkloadSpec
    from repro.bench.kvservice import run_cell as kv_run_cell

    spec = WorkloadSpec(
        ops=10, keyspace=8, zipf_s=1.0, read_frac=0.6, write_frac=0.4,
        scan_frac=0.0, mean_interarrival_us=2.0, seed=31, disjoint=True,
    )
    results = kv_run_cell(
        spec, images=images, machine=machine, scheduler=scheduler,
        engine="threaded", faults=faults,
    )
    canon = [
        {"pairs": r["pairs"], "ops": r["ops"], "acked": r["acked"],
         "lost": r["lost"]}
        for r in results
    ]
    return _digest(canon), None


PROGRAMS: dict[str, ExploreProgram] = {
    p.name: p
    for p in (
        ExploreProgram(
            "dht", False, 3,
            "distributed hash table, distinct-home keys, full contention",
            _run_dht,
        ),
        ExploreProgram(
            "himeno", False, 4,
            "Himeno XS stencil, 2 iterations, halo puts + co_sum",
            _run_himeno,
        ),
        ExploreProgram(
            "locks", False, 3,
            "lock-protected shared counter, 3 increments per image",
            _run_locks,
        ),
        ExploreProgram(
            "events", False, 2,
            "event-ordered ping-pong, 3 rounds",
            _run_events,
        ),
        ExploreProgram(
            "kvservice", False, 3,
            "open-loop KV service, disjoint key ranges, hot-key caches on",
            _run_kvservice,
        ),
        ExploreProgram(
            "missing_quiet", True, 2,
            "relaxed put signalled by an atomic flag without a quiet",
            _run_missing_quiet,
        ),
        ExploreProgram(
            "unordered_conflict", True, 2,
            "two images put to the same word between the same barriers",
            _run_unordered_conflict,
        ),
    )
}


def get_program(name: str) -> ExploreProgram:
    try:
        return PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown explore program {name!r}; available: {sorted(PROGRAMS)}"
        ) from None
