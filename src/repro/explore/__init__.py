"""Deterministic schedule exploration for the simulated PGAS stack.

``repro.explore`` is the shuttle/Coyote corner of the repo: run a PGAS
program under a cooperative :class:`Scheduler` where every
sync/communication decision point (the same points the tracer and the
fault injector hook) yields to a pluggable :class:`Strategy`, so **one
seed names one exact interleaving** — replayable bit-for-bit from a
failure report.  On top, :func:`explore` drives N schedules per program
and checks the race-free corpus for bit-identical digests and the
seeded racy corpus for a concrete divergence witness.

Entry points:

* ``python -m repro.explore --program dht --schedules 50 --seed 2015``
* :func:`explore` / :func:`replay` — the library API;
* :func:`schedules` — a pytest parametrization decorator::

      from repro.explore import schedules

      @schedules(n=10, seed=7)
      def test_kernel_schedule_independent(schedule):
          out = caf.launch(kernel, 2, scheduler=schedule())
          assert out == expected

  Each parametrized case's ``schedule()`` builds a fresh single-use
  :class:`Scheduler` for that interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.explore.harness import (
    DivergenceWitness,
    ExploreReport,
    ScheduleOutcome,
    explore,
    minimize_witness,
    replay,
    run_schedule,
    trace_diff,
    trace_digest,
)
from repro.explore.programs import PROGRAMS, ExploreProgram, get_program
from repro.explore.scheduler import (
    DEFAULT_MAX_STEPS,
    DeadlockError,
    ExhaustiveEnumerator,
    GuidedPrefix,
    PCTStrategy,
    RandomWalk,
    ReplaySchedule,
    ScheduleLimitError,
    Scheduler,
    Strategy,
    VirtualTimeOrder,
    make_strategy,
    spin_hint,
)

__all__ = [
    "DEFAULT_MAX_STEPS",
    "DeadlockError",
    "DivergenceWitness",
    "ExhaustiveEnumerator",
    "ExploreProgram",
    "ExploreReport",
    "GuidedPrefix",
    "PCTStrategy",
    "PROGRAMS",
    "RandomWalk",
    "ReplaySchedule",
    "ScheduleLimitError",
    "ScheduleOutcome",
    "Scheduler",
    "Strategy",
    "VirtualTimeOrder",
    "explore",
    "get_program",
    "make_strategy",
    "minimize_witness",
    "replay",
    "run_schedule",
    "schedules",
    "spin_hint",
    "trace_diff",
    "trace_digest",
]


@dataclass(frozen=True)
class ScheduleCase:
    """One parametrized interleaving; calling it builds the (single-use)
    scheduler."""

    strategy: str
    seed: int
    max_steps: int = DEFAULT_MAX_STEPS
    pct_depth: int = 3

    def __call__(self) -> Scheduler:
        opts = {"depth": self.pct_depth} if self.strategy == "pct" else {}
        return Scheduler(
            make_strategy(self.strategy, self.seed, **opts),
            max_steps=self.max_steps,
        )

    def __repr__(self) -> str:
        return f"{self.strategy}-{self.seed}"


def schedules(
    n: int = 10,
    *,
    strategy: str = "random",
    seed: int = 2015,
    max_steps: int = DEFAULT_MAX_STEPS,
    pct_depth: int = 3,
):
    """Parametrize a test over ``n`` schedules.

    The test receives a ``schedule`` argument; ``schedule()`` returns a
    fresh :class:`Scheduler` (case *i* seeds its strategy with
    ``seed + i``) to pass as ``Job(..., scheduler=...)`` or
    ``caf.launch(..., scheduler=...)``.
    """
    import pytest

    cases = [ScheduleCase(strategy, seed + i, max_steps, pct_depth) for i in range(n)]
    return pytest.mark.parametrize(
        "schedule", cases, ids=[repr(c) for c in cases]
    )
