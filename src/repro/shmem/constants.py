"""OpenSHMEM comparison constants (re-exported from repro.comm)."""

from repro.comm.constants import (
    CMP_EQ,
    CMP_GE,
    CMP_GT,
    CMP_LE,
    CMP_LT,
    CMP_NE,
    COMPARATORS,
    comparator,
)

__all__ = [
    "CMP_EQ",
    "CMP_NE",
    "CMP_GT",
    "CMP_GE",
    "CMP_LT",
    "CMP_LE",
    "COMPARATORS",
    "comparator",
]
