"""A complete OpenSHMEM-1.x-style library over the simulated substrate.

This package is the repo's stand-in for the vendor OpenSHMEM libraries
the paper evaluated (Cray SHMEM, MVAPICH2-X SHMEM).  The API follows the
OpenSHMEM specification's shape with Pythonic signatures:

* symmetric memory: :func:`shmalloc_array` / :func:`shfree` return
  :class:`~repro.shmem.heap.SymmetricArray` handles valid on every PE;
* RMA: :func:`put`, :func:`get`, :func:`iput`, :func:`iget` (1-D
  strided, the paper's building block for multi-dimensional strides);
* ordering: :func:`quiet`, :func:`fence`;
* collectives: :func:`barrier_all`, :func:`broadcast`,
  :func:`sum_to_all` and friends, :func:`fcollect`;
* atomics: :func:`atomic_swap`, :func:`atomic_cswap`,
  :func:`atomic_fadd`, bitwise AMOs — all 8-byte, NIC-offloaded or
  AM-emulated depending on the conduit profile;
* point-to-point sync: :func:`wait_until`;
* global locks: :func:`set_lock` / :func:`clear_lock` /
  :func:`test_lock` — the single-logical-entity semantics the paper
  shows are unsuitable for CAF per-image locks;
* :func:`shmem_ptr` — the intra-node direct load/store fast path the
  paper lists as future work.

Every function resolves the calling thread's PE context, so SPMD user
code reads like a SHMEM program (see ``examples/quickstart.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.shmem.constants import (
    CMP_EQ,
    CMP_GE,
    CMP_GT,
    CMP_LE,
    CMP_LT,
    CMP_NE,
)
from repro.comm.heap import SymmetricArray
from repro.shmem.layer import LAYER_NAME, ShmemLayer, default_profile_for
from repro.sim.netmodel import ConduitProfile

__all__ = [
    "SymmetricArray",
    "ShmemLayer",
    "launch",
    "attach",
    "my_pe",
    "num_pes",
    "shmalloc_array",
    "shmalloc",
    "shfree",
    "shrealloc",
    "pe_accessible",
    "addr_accessible",
    "put",
    "get",
    "iput",
    "iget",
    "quiet",
    "fence",
    "barrier_all",
    "barrier",
    "sum_to_all_set",
    "max_to_all_set",
    "broadcast",
    "fcollect",
    "sum_to_all",
    "prod_to_all",
    "min_to_all",
    "max_to_all",
    "and_to_all",
    "or_to_all",
    "xor_to_all",
    "atomic_swap",
    "atomic_cswap",
    "atomic_fadd",
    "atomic_finc",
    "atomic_add",
    "atomic_inc",
    "atomic_fetch",
    "atomic_set",
    "atomic_fetch_and",
    "atomic_fetch_or",
    "atomic_fetch_xor",
    "atomic_and",
    "atomic_or",
    "atomic_xor",
    "wait_until",
    "set_lock",
    "clear_lock",
    "test_lock",
    "shmem_ptr",
    "CMP_EQ",
    "CMP_NE",
    "CMP_GT",
    "CMP_GE",
    "CMP_LT",
    "CMP_LE",
]


def _layer() -> ShmemLayer:
    return current().job.get_layer(LAYER_NAME)


# ---------------------------------------------------------------------------
# Launch / attach
# ---------------------------------------------------------------------------


def attach(job: Job, profile: ConduitProfile | str | None = None) -> ShmemLayer:
    """Attach a SHMEM layer to an existing job (idempotent per job)."""
    if LAYER_NAME in job.layers:
        return job.layers[LAYER_NAME]
    layer = ShmemLayer(job, profile)
    job.layers[LAYER_NAME] = layer
    return layer


def launch(
    fn: Callable[..., Any],
    num_pes: int,
    machine: str = "stampede",
    *,
    profile: ConduitProfile | str | None = None,
    heap_bytes: int | None = None,
    faults: Any = None,
    watchdog_s: float | None = None,
    scheduler: Any = None,
    engine: Any = None,
    survivable: bool = False,
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
) -> list[Any]:
    """Run ``fn`` as an SPMD SHMEM program on ``num_pes`` PEs.

    ``faults`` attaches a deterministic
    :class:`~repro.sim.faults.FaultPlan` (or prebuilt
    :class:`~repro.sim.faults.FaultInjector`); ``watchdog_s`` overrides
    the hang watchdog's wall-clock stall deadline.  ``engine`` selects
    the execution engine (``"threaded"``/``"event"`` or an
    :class:`~repro.engine.Engine` instance; see :mod:`repro.engine`).
    ``survivable=True`` turns injected crashes into *failed images*
    (Fortran-2018 semantics) instead of job aborts: survivors keep
    running, and operations targeting a failed PE raise
    :class:`~repro.runtime.failures.ImageFailedError`.
    Returns the per-PE return values of ``fn``.
    """
    job_kwargs: dict[str, Any] = {} if heap_bytes is None else {"heap_bytes": heap_bytes}
    if faults is not None:
        job_kwargs["faults"] = faults
    if watchdog_s is not None:
        job_kwargs["watchdog_s"] = watchdog_s
    if scheduler is not None:
        job_kwargs["scheduler"] = scheduler
    if engine is not None:
        job_kwargs["engine"] = engine
    if survivable:
        job_kwargs["survivable"] = True
    job = Job(num_pes, machine, **job_kwargs)
    attach(job, profile)
    try:
        return job.run(fn, args=args, kwargs=kwargs or {})
    finally:
        # One-shot job: release engine-held resources (shared-memory
        # segments on engine="process") deterministically.
        job.engine.cleanup()


# ---------------------------------------------------------------------------
# Identity
# ---------------------------------------------------------------------------


def my_pe() -> int:
    """This PE's index (0-based), a la ``shmem_my_pe``."""
    return current().pe


def num_pes() -> int:
    """Total PE count, a la ``shmem_n_pes``."""
    return current().job.num_pes


# ---------------------------------------------------------------------------
# Symmetric memory
# ---------------------------------------------------------------------------


def shmalloc_array(shape: int | tuple[int, ...], dtype: Any = np.int64) -> SymmetricArray:
    """Collectively allocate a symmetric array (``shmalloc``)."""
    return _layer().shmalloc_array(shape, dtype)


def shmalloc(nbytes: int) -> SymmetricArray:
    """Collectively allocate ``nbytes`` symmetric bytes (dtype uint8)."""
    return _layer().shmalloc_array((nbytes,), np.uint8)


def shfree(array: SymmetricArray) -> None:
    """Collectively release a symmetric allocation (``shfree``)."""
    _layer().shfree(array)


def shrealloc(array: SymmetricArray, shape) -> SymmetricArray:
    """Collectively resize a symmetric allocation (``shrealloc``);
    local contents are preserved up to the smaller size."""
    return _layer().shrealloc(array, shape)


def pe_accessible(pe: int) -> bool:
    """``shmem_pe_accessible``."""
    return _layer().pe_accessible(pe)


def addr_accessible(array: SymmetricArray, pe: int) -> bool:
    """``shmem_addr_accessible``."""
    return _layer().addr_accessible(array, pe)


def shmem_ptr(array: SymmetricArray, pe: int) -> np.ndarray | None:
    """Direct load/store access to ``array`` on ``pe`` when ``pe`` is on
    the calling PE's node; ``None`` otherwise (``shmem_ptr``)."""
    return _layer().shmem_ptr(array, pe)


# ---------------------------------------------------------------------------
# RMA
# ---------------------------------------------------------------------------


def put(dest: SymmetricArray, value: Any, pe: int, offset: int = 0) -> None:
    """Contiguous put of ``value`` into ``dest`` on ``pe``
    (``shmem_putmem``); returns after *local* completion."""
    _layer().put(dest, value, pe, offset)


def get(src: SymmetricArray, nelems: int, pe: int, offset: int = 0) -> np.ndarray:
    """Blocking contiguous get of ``nelems`` elements (``shmem_getmem``)."""
    return _layer().get(src, nelems, pe, offset)


def iput(
    dest: SymmetricArray,
    value: Any,
    tst: int,
    sst: int,
    nelems: int,
    pe: int,
    offset: int = 0,
) -> None:
    """1-D strided put (``shmem_iput``): write ``nelems`` elements taken
    from ``value`` with source stride ``sst`` to ``dest`` with target
    stride ``tst`` (strides in elements)."""
    _layer().iput(dest, value, tst, sst, nelems, pe, offset)


def iget(
    src: SymmetricArray,
    tst: int,
    sst: int,
    nelems: int,
    pe: int,
    offset: int = 0,
) -> np.ndarray:
    """1-D strided get (``shmem_iget``); returns the gathered elements."""
    return _layer().iget(src, tst, sst, nelems, pe, offset)


# ---------------------------------------------------------------------------
# Ordering & synchronization
# ---------------------------------------------------------------------------


def quiet() -> None:
    """Wait for remote completion of all outstanding puts (``shmem_quiet``)."""
    _layer().quiet()


def fence() -> None:
    """Order outstanding puts per target (``shmem_fence``)."""
    _layer().fence()


def barrier_all() -> None:
    """Global barrier including a quiet (``shmem_barrier_all``)."""
    _layer().barrier_all()


def barrier(pe_start: int, log_pe_stride: int, pe_size: int) -> None:
    """Active-set barrier (``shmem_barrier(PE_start, logPE_stride,
    PE_size)``); every member must call it."""
    _layer().active_set_barrier(pe_start, log_pe_stride, pe_size)


def sum_to_all_set(
    dest: SymmetricArray,
    source: SymmetricArray,
    nelems: int,
    pe_start: int,
    log_pe_stride: int,
    pe_size: int,
) -> None:
    """``shmem_sum_to_all`` over an active set."""
    _layer().active_set_to_all(
        dest, source, nelems, "sum", pe_start, log_pe_stride, pe_size
    )


def max_to_all_set(
    dest: SymmetricArray,
    source: SymmetricArray,
    nelems: int,
    pe_start: int,
    log_pe_stride: int,
    pe_size: int,
) -> None:
    """``shmem_max_to_all`` over an active set."""
    _layer().active_set_to_all(
        dest, source, nelems, "max", pe_start, log_pe_stride, pe_size
    )


def wait_until(ivar: SymmetricArray, cmp: str, value: Any, offset: int = 0) -> None:
    """Block until the local ``ivar[offset]`` satisfies the comparison
    (``shmem_wait_until``)."""
    _layer().wait_until(ivar, cmp, value, offset)


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------


def broadcast(dest: SymmetricArray, source: SymmetricArray, nelems: int, root: int) -> None:
    """Broadcast ``nelems`` elements from ``root``'s ``source`` into every
    other PE's ``dest`` (``shmem_broadcast``)."""
    _layer().broadcast(dest, source, nelems, root)


def fcollect(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """Concatenate ``nelems`` elements from every PE, in PE order, into
    ``dest`` on every PE (``shmem_fcollect``)."""
    _layer().fcollect(dest, source, nelems)


def sum_to_all(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """``shmem_sum_to_all`` over all PEs."""
    _layer().to_all(dest, source, nelems, "sum")


def prod_to_all(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """``shmem_prod_to_all`` over all PEs."""
    _layer().to_all(dest, source, nelems, "prod")


def min_to_all(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """``shmem_min_to_all`` over all PEs."""
    _layer().to_all(dest, source, nelems, "min")


def max_to_all(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """``shmem_max_to_all`` over all PEs."""
    _layer().to_all(dest, source, nelems, "max")


def and_to_all(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """``shmem_and_to_all`` over all PEs (integer dtypes)."""
    _layer().to_all(dest, source, nelems, "and")


def or_to_all(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """``shmem_or_to_all`` over all PEs (integer dtypes)."""
    _layer().to_all(dest, source, nelems, "or")


def xor_to_all(dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
    """``shmem_xor_to_all`` over all PEs (integer dtypes)."""
    _layer().to_all(dest, source, nelems, "xor")


# ---------------------------------------------------------------------------
# Atomics (8-byte remote memory operations)
# ---------------------------------------------------------------------------


def atomic_swap(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> Any:
    """Atomic fetch-and-store (``shmem_swap``); returns the old value."""
    return _layer().atomic(target, pe, offset, "swap", value)


def atomic_cswap(
    target: SymmetricArray, cond: Any, value: Any, pe: int, offset: int = 0
) -> Any:
    """Atomic compare-and-swap (``shmem_cswap``); returns the old value."""
    return _layer().atomic(target, pe, offset, "cswap", value, cond)


def atomic_fadd(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> Any:
    """Atomic fetch-and-add (``shmem_fadd``)."""
    return _layer().atomic(target, pe, offset, "fadd", value)


def atomic_finc(target: SymmetricArray, pe: int, offset: int = 0) -> Any:
    """Atomic fetch-and-increment (``shmem_finc``)."""
    return _layer().atomic(target, pe, offset, "fadd", 1)


def atomic_add(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> None:
    """Atomic add, no fetch (``shmem_add``)."""
    _layer().atomic(target, pe, offset, "fadd", value)


def atomic_inc(target: SymmetricArray, pe: int, offset: int = 0) -> None:
    """Atomic increment, no fetch (``shmem_inc``)."""
    _layer().atomic(target, pe, offset, "fadd", 1)


def atomic_fetch(target: SymmetricArray, pe: int, offset: int = 0) -> Any:
    """Atomic fetch (``shmem_fetch``)."""
    return _layer().atomic(target, pe, offset, "fetch")


def atomic_set(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> None:
    """Atomic set (``shmem_set``)."""
    _layer().atomic(target, pe, offset, "set", value)


def atomic_fetch_and(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> Any:
    """Atomic fetch-and-AND (``shmem_fetch_and``)."""
    return _layer().atomic(target, pe, offset, "and", value)


def atomic_fetch_or(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> Any:
    """Atomic fetch-and-OR (``shmem_fetch_or``)."""
    return _layer().atomic(target, pe, offset, "or", value)


def atomic_fetch_xor(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> Any:
    """Atomic fetch-and-XOR (``shmem_fetch_xor``)."""
    return _layer().atomic(target, pe, offset, "xor", value)


def atomic_and(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> None:
    """Atomic AND, no fetch (``shmem_and``)."""
    _layer().atomic(target, pe, offset, "and", value)


def atomic_or(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> None:
    """Atomic OR, no fetch (``shmem_or``)."""
    _layer().atomic(target, pe, offset, "or", value)


def atomic_xor(target: SymmetricArray, value: Any, pe: int, offset: int = 0) -> None:
    """Atomic XOR, no fetch (``shmem_xor``)."""
    _layer().atomic(target, pe, offset, "xor", value)


# ---------------------------------------------------------------------------
# Global locks
# ---------------------------------------------------------------------------


def set_lock(lock: SymmetricArray) -> None:
    """Acquire the single logically-global lock (``shmem_set_lock``)."""
    _layer().set_lock(lock)


def clear_lock(lock: SymmetricArray) -> None:
    """Release the global lock (``shmem_clear_lock``)."""
    _layer().clear_lock(lock)


def test_lock(lock: SymmetricArray) -> bool:
    """Try to acquire; returns True on success (``shmem_test_lock``)."""
    return _layer().test_lock(lock)
