"""The OpenSHMEM layer: vendor profile + SHMEM-specific API surface.

The data-path mechanics live in :class:`repro.comm.base.OneSidedLayer`;
this subclass adds what is specifically OpenSHMEM:

* vendor profile selection (Cray SHMEM on the Cray machines,
  MVAPICH2-X SHMEM on Stampede — the libraries the paper used);
* collectives (broadcast / reductions / fcollect);
* the *global* lock API (``shmem_set_lock``) whose single-logical-entity
  semantics the paper shows cannot express CAF's per-image locks;
* ``shmem_ptr`` — intra-node direct load/store access (the paper's
  future-work item, implemented here).
"""

from __future__ import annotations

import typing
from contextlib import nullcontext

import numpy as np

from repro.collectives import team_allgather, team_broadcast, team_reduce
from repro.comm.base import OneSidedLayer
from repro.comm.heap import SymmetricArray
from repro.runtime.context import current
from repro.runtime.launcher import Job, JobAborted
from repro.sim.machines import CRAY_XC30, TITAN
from repro.sim.netmodel import CRAY_SHMEM, MVAPICH2X_SHMEM, ConduitProfile

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.topology import Machine

LAYER_NAME = "shmem"

_REDUCERS = {
    "sum": np.add.reduce,
    "prod": np.multiply.reduce,
    "min": np.minimum.reduce,
    "max": np.maximum.reduce,
    "and": np.bitwise_and.reduce,
    "or": np.bitwise_or.reduce,
    "xor": np.bitwise_xor.reduce,
}

# Element-wise binary forms of the same operators, fed to the collective
# algorithm library (every OpenSHMEM reduction is commutative).
_BINARY_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


def default_profile_for(machine: "Machine") -> ConduitProfile:
    """The vendor SHMEM the paper used on each machine."""
    if machine.name in (CRAY_XC30.name, TITAN.name):
        return CRAY_SHMEM
    return MVAPICH2X_SHMEM


class ShmemLayer(OneSidedLayer):
    """OpenSHMEM over the simulated substrate."""

    LAYER_NAME = LAYER_NAME

    def __init__(self, job: Job, profile: ConduitProfile | str | None = None) -> None:
        if profile is None:
            profile = default_profile_for(job.machine)
        super().__init__(job, profile)

    # -- OpenSHMEM naming ------------------------------------------------
    def shmalloc_array(
        self, shape: int | tuple[int, ...], dtype: np.dtype
    ) -> SymmetricArray:
        return self.alloc_array(shape, dtype)

    def shfree(self, array: SymmetricArray) -> None:
        self.free_array(array)

    def shrealloc(
        self, array: SymmetricArray, shape: int | tuple[int, ...]
    ) -> SymmetricArray:
        """Collective resize (``shrealloc``): allocate the new size,
        copy the overlapping local prefix on every PE, free the old
        allocation.  Returns the new handle."""
        array._check_live()
        new_array = self.alloc_array(shape, array.dtype)
        n = min(array.size, new_array.size)
        if n:
            new_array.local.reshape(-1)[:n] = array.local.reshape(-1)[:n]
        self.free_array(array)
        return new_array

    def pe_accessible(self, pe: int) -> bool:
        """``shmem_pe_accessible``: every PE of the job is reachable."""
        return 0 <= pe < self.job.num_pes

    def addr_accessible(self, array: SymmetricArray, pe: int) -> bool:
        """``shmem_addr_accessible``: live symmetric allocations are
        remotely accessible on every valid PE."""
        return self.pe_accessible(pe) and not array._freed

    # ------------------------------------------------------------------
    def shmem_ptr(self, array: SymmetricArray, pe: int) -> np.ndarray | None:
        """Direct load/store view of ``array`` on ``pe`` if intra-node,
        else ``None`` (``shmem_ptr`` semantics).

        Stores through the view do not wake ``wait_until`` sleepers —
        the same caveat as real hardware, where a CPU store bypasses the
        NIC; use :meth:`put`/atomics when the target waits.
        """
        array._check_live()
        ctx = current()
        self._check_pe(pe)
        if not self.job.topology.same_node(ctx.pe, pe):
            return None
        mem = self.job.memories[pe]
        flat = mem.local_view(array.byte_offset, array.nbytes).view(array.dtype)
        return flat.reshape(array.shape)

    # ------------------------------------------------------------------
    # Active sets (OpenSHMEM 1.x subset collectives)
    # ------------------------------------------------------------------
    def active_set_barrier(
        self, pe_start: int, log_pe_stride: int, pe_size: int
    ) -> None:
        """``shmem_barrier(PE_start, logPE_stride, PE_size)``: quiet +
        barrier over the active set only."""
        from repro.runtime.context import current as _current
        from repro.runtime.groups import active_set_pes

        ctx = _current()
        members = active_set_pes(pe_start, log_pe_stride, pe_size, self.job.num_pes)
        if ctx.pe not in members:
            raise ValueError(
                f"PE {ctx.pe} called a barrier over active set {members} "
                f"it does not belong to"
            )
        t_start = ctx.clock.now
        self.quiet()
        group = self.job.groups.get(members)
        cost = self.job.network.barrier_cost(len(members), self.profile)
        _, gen = group.barrier.wait_gen(ctx, cost)
        tracer = self.job.tracer
        if tracer is not None and tracer.capture_sync:
            tracer.record(
                ctx.pe, "barrier", -1, 0, t_start, ctx.clock.now,
                meta=("b", group.barrier.sync_id, gen),
            )

    def active_set_to_all(
        self,
        dest: SymmetricArray,
        source: SymmetricArray,
        nelems: int,
        op: str,
        pe_start: int,
        log_pe_stride: int,
        pe_size: int,
    ) -> None:
        """Reduction over an active set (``shmem_<op>_to_all`` with the
        PE_start/logPE_stride/PE_size triplet)."""
        from repro.runtime.context import current as _current
        from repro.runtime.groups import active_set_pes

        try:
            reducer = _REDUCERS[op]
        except KeyError:
            raise ValueError(
                f"unknown reduction {op!r}; expected {sorted(_REDUCERS)}"
            ) from None
        source.check_span(0, nelems)
        dest.check_span(0, nelems)
        ctx = _current()
        members = active_set_pes(pe_start, log_pe_stride, pe_size, self.job.num_pes)
        if self._use_direct_collectives():
            # Historical barrier-framed path: the library's shared comm
            # state (like subset agreement) is per-process replicas on
            # engine='process'.
            self.active_set_barrier(pe_start, log_pe_stride, pe_size)
            parts = np.stack(
                [
                    self.job.memories[p]
                    .read(source.byte_offset, nelems * source.itemsize)
                    .view(source.dtype)
                    for p in members
                ]
            )
            dest.local.reshape(-1)[:nelems] = reducer(parts, axis=0)
            ctx.clock.advance(
                self.job.network.reduction_cost(
                    len(members), nelems * source.itemsize, self.profile
                )
            )
            self.active_set_barrier(pe_start, log_pe_stride, pe_size)
            return
        if ctx.pe not in members:
            raise ValueError(
                f"PE {ctx.pe} called a barrier over active set {members} "
                f"it does not belong to"
            )
        data = np.asarray(source.local).reshape(-1)[:nelems]
        res = team_reduce(self, self._live_pes(members), data, _BINARY_OPS[op])
        dest.local.reshape(-1)[:nelems] = res

    # ------------------------------------------------------------------
    # Collectives
    #
    # All four ride on :mod:`repro.collectives`: the algorithm (linear,
    # binomial, recursive doubling, ring, or hierarchical two-level) is
    # chosen per call by the topology-aware cost model, or forced via
    # ``REPRO_COLLECTIVE``.  On ``engine='process'`` the historical
    # barrier-framed direct path is kept: the library's shared comm
    # state lives in genuinely shared Python objects.
    # ------------------------------------------------------------------
    def _use_direct_collectives(self) -> bool:
        return bool(getattr(self.engine, "cross_process", False))

    def _all_pes(self) -> tuple[int, ...]:
        return tuple(range(self.job.num_pes))

    def _live_pes(self, members: tuple[int, ...]) -> tuple[int, ...]:
        """Degraded-mode collectives: failed PEs are excised from the
        member list (and therefore from the algorithms' tree/ring rank
        maps) before the collective runs.  Callers must only reach a
        collective after a synchronization point has ordered the failure
        (the survivable discipline); in the default mode this is the
        identity."""
        registry = self._failed
        if registry is None:
            return members
        return registry.survivors(members)

    def broadcast(
        self, dest: SymmetricArray, source: SymmetricArray, nelems: int, root: int
    ) -> None:
        """Tree broadcast from ``root``; ``root``'s dest is untouched
        (OpenSHMEM semantics)."""
        self._check_pe(root)
        source.check_span(0, nelems)
        dest.check_span(0, nelems)
        ctx = current()
        if self._use_direct_collectives():
            self.barrier_all()
            if ctx.pe != root:
                raw = self.job.memories[root].read(source.byte_offset, nelems * source.itemsize)
                dest.local.reshape(-1)[:nelems] = raw.view(source.dtype)
            ctx.clock.advance(
                self.job.network.reduction_cost(
                    self.job.num_pes, nelems * source.itemsize, self.profile
                )
            )
            self.barrier_all()
            return
        data = np.asarray(source.local).reshape(-1)[:nelems]
        pes = self._live_pes(self._all_pes())
        if len(pes) < self.job.num_pes and root not in pes:
            from repro.runtime.failures import raise_image_failed

            raise_image_failed(ctx, "broadcast", root, self._failed,
                               self.job.tracer)
        res = team_broadcast(self, pes, data, root_rank=pes.index(root))
        if ctx.pe != root:
            dest.local.reshape(-1)[:nelems] = res

    def fcollect(self, dest: SymmetricArray, source: SymmetricArray, nelems: int) -> None:
        """Concatenate every PE's ``nelems`` source elements, PE order."""
        source.check_span(0, nelems)
        dest.check_span(0, nelems * self.job.num_pes)
        ctx = current()
        if self._use_direct_collectives():
            self.barrier_all()
            parts = [
                self.job.memories[p]
                .read(source.byte_offset, nelems * source.itemsize)
                .view(source.dtype)
                for p in range(self.job.num_pes)
            ]
            dest.local.reshape(-1)[: nelems * self.job.num_pes] = np.concatenate(parts)
            ctx.clock.advance(
                self.job.network.reduction_cost(
                    self.job.num_pes, nelems * source.itemsize * self.job.num_pes, self.profile
                )
            )
            self.barrier_all()
            return
        data = np.asarray(source.local).reshape(-1)[:nelems]
        pes = self._live_pes(self._all_pes())
        res = team_allgather(self, pes, data)
        dest.local.reshape(-1)[: nelems * len(pes)] = res

    def to_all(
        self, dest: SymmetricArray, source: SymmetricArray, nelems: int, op: str
    ) -> None:
        """Reduction over all PEs (``shmem_<op>_to_all``)."""
        try:
            reducer = _REDUCERS[op]
        except KeyError:
            raise ValueError(
                f"unknown reduction {op!r}; expected {sorted(_REDUCERS)}"
            ) from None
        if op in ("and", "or", "xor") and not np.issubdtype(source.dtype, np.integer):
            raise TypeError(f"bitwise reduction {op!r} requires an integer dtype")
        source.check_span(0, nelems)
        dest.check_span(0, nelems)
        ctx = current()
        if self._use_direct_collectives():
            self.barrier_all()
            parts = np.stack(
                [
                    self.job.memories[p]
                    .read(source.byte_offset, nelems * source.itemsize)
                    .view(source.dtype)
                    for p in range(self.job.num_pes)
                ]
            )
            dest.local.reshape(-1)[:nelems] = reducer(parts, axis=0)
            ctx.clock.advance(
                self.job.network.reduction_cost(
                    self.job.num_pes, nelems * source.itemsize, self.profile
                )
            )
            self.barrier_all()
            return
        data = np.asarray(source.local).reshape(-1)[:nelems]
        res = team_reduce(
            self, self._live_pes(self._all_pes()), data, _BINARY_OPS[op]
        )
        dest.local.reshape(-1)[:nelems] = res

    # ------------------------------------------------------------------
    # Global locks (single logically-global entity — paper Sec. IV-D
    # explains why these cannot implement CAF's per-image locks).
    # ------------------------------------------------------------------
    _LOCK_BACKOFF_START_US = 0.5
    _LOCK_BACKOFF_MAX_US = 64.0

    def _check_lock(self, lock: SymmetricArray) -> None:
        if lock.size < 1 or lock.itemsize != 8:
            raise TypeError("a SHMEM lock must be a symmetric 8-byte integer")

    def _record_shlock(self, op: str, tag: str, lock: SymmetricArray, t_start: float) -> None:
        """Sync-capture record for a SHMEM global lock, keyed by the
        lock word's heap offset (there is no image/index dimension)."""
        tracer = self.job.tracer
        if tracer is None or not tracer.capture_sync:
            return
        ctx = current()
        hold_key = ("shlock", lock.byte_offset)
        if op == "lock_acquire":
            ticket = tracer.begin_hold(hold_key, ctx.pe)
        else:
            ticket = tracer.end_hold(hold_key, ctx.pe)
        tracer.record(
            ctx.pe, op, 0, 0, t_start, ctx.clock.now,
            meta=(tag, f"sh:{lock.byte_offset}", -1, 0, ticket), internal=False,
        )

    def set_lock(self, lock: SymmetricArray) -> None:
        """Acquire; test-and-set with exponential backoff on PE 0's word."""
        self._check_lock(lock)
        ctx = current()
        t_start = ctx.clock.now
        backoff = self._LOCK_BACKOFF_START_US
        tracer = self.job.tracer
        spin = self.engine.spin_yield
        machinery = tracer.sync_internal() if tracer is not None else nullcontext()
        with machinery, self.job.watchdog.watch(
            ctx.pe, f"shmem_set_lock(offset={lock.byte_offset})"
        ) as guard:
            while True:
                if self.job.aborted():
                    raise JobAborted("job aborted while acquiring shmem lock")
                guard.poll()
                old = self.atomic(lock, 0, 0, "cswap", ctx.pe + 1, 0)
                if int(old) == 0:
                    break
                # F2018 rule carried over to shmem locks: a failed image's
                # locks become unlocked.  Steal the word from a dead holder
                # (cswap keyed on the observed owner keeps the steal atomic
                # against a racing survivor).
                holder = int(old) - 1
                if self._failed is not None and self._failed.is_failed(holder):
                    stolen = self.atomic(
                        lock, 0, 0, "cswap", ctx.pe + 1, int(old)
                    )
                    if int(stolen) == int(old):
                        break
                ctx.clock.advance(backoff)
                backoff = min(backoff * 2, self._LOCK_BACKOFF_MAX_US)
                spin(ctx, "lock_spin", 0)  # wall-clock yield; cost is virtual
        self._record_shlock("lock_acquire", "la", lock, t_start)

    def test_lock(self, lock: SymmetricArray) -> bool:
        """One acquisition attempt; True on success."""
        self._check_lock(lock)
        ctx = current()
        t_start = ctx.clock.now
        tracer = self.job.tracer
        machinery = tracer.sync_internal() if tracer is not None else nullcontext()
        with machinery:
            old = self.atomic(lock, 0, 0, "cswap", ctx.pe + 1, 0)
        if int(old) == 0:
            self._record_shlock("lock_acquire", "la", lock, t_start)
            return True
        return False

    def clear_lock(self, lock: SymmetricArray) -> None:
        """Release; must be called by the holder."""
        self._check_lock(lock)
        ctx = current()
        t_start = ctx.clock.now
        self.quiet()  # writes in the critical section complete before release
        tracer = self.job.tracer
        machinery = tracer.sync_internal() if tracer is not None else nullcontext()
        with machinery:
            old = self.atomic(lock, 0, 0, "cswap", 0, ctx.pe + 1)
        if int(old) != ctx.pe + 1:
            raise RuntimeError(
                f"PE {ctx.pe} released a shmem lock it does not hold (owner word={int(old)})"
            )
        self._record_shlock("lock_release", "lr", lock, t_start)
