"""Per-team communication state for the collective library.

A :class:`TeamComm` packages everything a collective algorithm needs
about one team: the member list and cached pe→rank map, the members'
grouping into topology nodes (for the hierarchical algorithm), a small
symmetric *flag* array driving pairwise post/wait synchronization, and
a growable symmetric *scratch* accumulator staging the payload.

Synchronization discipline
--------------------------

Flags are ``2 * m`` int64 words per PE: ``slot = bank * m +
sender_rank``.  Bank 0 carries "data ready" arrivals, bank 1 carries
acknowledgements / results.  A *post* is quiet + remote ``fadd +1``
(release: payload written before the post is visible to the waiter); a
*wait* blocks until the word is positive, then consumes it with a local
``fadd -1``.  Every algorithm keeps **strict post/consume alternation
per word** — at most one outstanding post per (target memory, slot) —
which is exactly the condition under which per-word timestamp merges
(``wait_until(..., word=True)``) are schedule-independent: the merged
clock depends only on the one post the waiter consumed, never on
unordered writes to other words landing wall-clock-early on a blocking
engine.  That is what keeps every algorithm's virtual times bit
identical across the threaded, cooperative, and event engines.

Allocation protocol
-------------------

Flags and scratch live on the symmetric heap and are allocated
*collectively* on first use — job-wide agreement + barrier for the
full team (process-engine compatible), group agreement + group barrier
for subsets (matching the existing policy that subset agreement is
unsupported on ``engine='process'``).  Scratch grows by an agreed
free+realloc *epoch*; each PE tracks the epoch it has agreed through so
every member burns the same agreement sequence even when another member
races ahead (agreement is first-arriver-computes and never blocks).
"""

from __future__ import annotations

import itertools
import threading
import typing
import weakref

import numpy as np

from repro.comm.constants import CMP_GE
from repro.comm.heap import SymmetricArray
from repro.engine.steps import BarrierStep, WaitStep
from repro.runtime.context import current

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.comm.base import OneSidedLayer

#: Minimum scratch capacity (bytes) so tiny payloads do not re-allocate.
MIN_SCRATCH_BYTES = 64

_ids = itertools.count(1)

# Shared TeamComm instances, one registry per layer (the comm caches the
# pe->rank map and node grouping once for all members — satellite of
# ISSUE 8: no linear member scans on the per-call path).
_registry: "weakref.WeakKeyDictionary[object, dict]" = weakref.WeakKeyDictionary()
_registry_lock = threading.Lock()


class TeamComm:
    """Shared collective state for one (layer, ordered member tuple)."""

    def __init__(self, layer: "OneSidedLayer", members: tuple[int, ...]) -> None:
        job = layer.job
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate members in team {members}")
        for pe in members:
            if not 0 <= pe < job.num_pes:
                raise ValueError(f"team member {pe} escapes [0, {job.num_pes})")
        self.layer = layer
        self.members = tuple(int(p) for p in members)
        self.m = len(self.members)
        # Cached pe -> team rank map: O(1) lookups on every collective
        # call instead of a linear member scan.
        self.rank_of = {pe: r for r, pe in enumerate(self.members)}
        # Group members by topology node, node order = first appearance
        # in rank order.  The hierarchical algorithm reduces over
        # intra-node links first, then a tree over node leaders.
        topo = job.topology
        by_node: dict[int, list[int]] = {}
        for r, pe in enumerate(self.members):
            by_node.setdefault(topo.node_of(pe), []).append(r)
        self.node_ranks: tuple[tuple[int, ...], ...] = tuple(
            tuple(v) for v in by_node.values()
        )
        self.nnodes = len(self.node_ranks)
        self.max_per_node = max(len(g) for g in self.node_ranks)
        self.node_index = {}
        for ni, g in enumerate(self.node_ranks):
            for r in g:
                self.node_index[r] = ni
        self.full_team = self.m == job.num_pes
        self._tree_inter_bits: tuple[bool, ...] | None = None
        # The group registry keys by the member *set*; TeamComm rank
        # order is this comm's own business.
        self.group = None if self.full_team else job.groups.get(self.members)
        # Collectively agreed on first join (identical on every PE).
        self.comm_id: int | None = None
        self.flags: SymmetricArray | None = None
        # Scratch epochs: append-only [(byte_offset, capacity_bytes)].
        self._epochs: list[tuple[int, int]] = []
        # Per-PE index of the last epoch this PE has agreed through
        # (-1 = not joined).  Each slot is touched only by its owner.
        self._pe_epoch = [-1] * job.num_pes
        self._lock = threading.Lock()

    # -- lookups --------------------------------------------------------
    def my_rank(self) -> int:
        return self.rank_of[current().pe]

    @property
    def tree_inter_bits(self) -> tuple[bool, ...]:
        """Per tree-round link class: entry ``i`` is True when any pair
        the round actually exchanges — ranks ``(v, v + 2^i)`` with ``v``
        aligned to ``2^(i+1)``, the pairing both the binomial tree and
        recursive doubling induce — crosses nodes.  Node-aligned teams
        (whole power-of-two node groups contiguous in rank order) keep
        their low rounds intra-node; misaligned strided teams go
        inter-node at every rank distance.  The cost model prices each
        tree round with this."""
        bits = self._tree_inter_bits
        if bits is None:
            ni = self.node_index
            rounds = max((self.m - 1).bit_length(), 1)
            bits = tuple(
                any(
                    ni[v] != ni[v + (1 << i)]
                    for v in range(0, self.m - (1 << i), 1 << (i + 1))
                )
                for i in range(rounds)
            )
            self._tree_inter_bits = bits
        return bits

    def scratch_view(self, nelems: int, dtype) -> SymmetricArray:
        """Typed symmetric view over the calling PE's current scratch
        epoch (same offset on every member, so the view addresses every
        member's accumulator)."""
        offset, cap = self._epochs[self._pe_epoch[current().pe]]
        dt = np.dtype(dtype)
        if nelems * dt.itemsize > cap:  # pragma: no cover - join() sizes it
            raise ValueError("scratch epoch smaller than requested view")
        return SymmetricArray(self.layer, offset, (nelems,), dt)

    # -- collective state helpers --------------------------------------
    def _agree(self, ctx, fingerprint: str, compute):
        if self.full_team:
            return self.layer.job.collectives.agree(ctx, fingerprint, compute)
        g = self.group
        return g.collectives.agree(
            ctx, fingerprint, compute, seq=g.next_seq(ctx.pe)
        )

    def barrier_step(self, cont) -> BarrierStep:
        """A team barrier as a step (job barrier for the full team,
        group barrier for subsets)."""
        if self.full_team:
            return BarrierStep(self.layer, cont)
        return BarrierStep(
            self.layer, cont, barrier=self.group.barrier, npes=self.m
        )

    # -- join / grow ----------------------------------------------------
    def _fingerprint(self) -> str:
        return f"collcomm:{self.members[0]}+{self.m}"

    def join_step(self, need_bytes: int, cont):
        """Ensure the calling PE has joined this comm and scratch holds
        at least ``need_bytes``; then ``cont()``.  Collective on first
        join and on growth (all members call with equal ``need_bytes``)."""
        ctx = current()
        pe = ctx.pe
        if self._pe_epoch[pe] < 0:
            return self._first_join_step(ctx, need_bytes, cont)
        return self._grow(ctx, need_bytes, cont)

    def _first_join_step(self, ctx, need_bytes: int, cont):
        layer = self.layer
        job = layer.job
        cap = max(int(need_bytes), MIN_SCRATCH_BYTES)
        layer.engine.alloc_check(ctx)

        def build():
            alloc = job.symmetric_allocator
            comm_id = next(_ids)
            flags_off = alloc.malloc(2 * self.m * 8)
            scratch_off = alloc.malloc(cap)
            return (comm_id, flags_off, scratch_off, cap)

        comm_id, flags_off, scratch_off, agreed_cap = self._agree(
            ctx, f"{self._fingerprint()}:join:{cap}", build
        )
        with self._lock:
            if self.comm_id is None:
                self.comm_id = comm_id
                self.flags = SymmetricArray(
                    layer, flags_off, (2 * self.m,), np.dtype(np.int64)
                )
                self._epochs.append((scratch_off, agreed_cap))

        def joined():
            self._pe_epoch[ctx.pe] = 0
            return self._grow(ctx, need_bytes, cont)

        # Allocation synchronizes: no member may post to another's flags
        # before that member has agreed on the offsets.
        return self.barrier_step(joined)

    def _grow(self, ctx, need_bytes: int, cont):
        """Advance this PE through grow epochs until its scratch
        capacity covers ``need_bytes``.  Pure function of (per-PE epoch,
        need), so every member burns identical agreement sequences even
        when members race: agreement is first-arriver-computes, the
        earlier epoch's region is dead (the previous collective's
        trailing barrier quiesced it), and the agreed (offset, capacity)
        reaches every member before it stages data."""
        pe = ctx.pe
        job = self.layer.job
        while True:
            epoch = self._pe_epoch[pe]
            old_off, old_cap = self._epochs[epoch]
            if old_cap >= need_bytes:
                return cont()
            new_cap = max(int(need_bytes), 2 * old_cap)

            def build(old_off=old_off, new_cap=new_cap, epoch=epoch):
                alloc = job.symmetric_allocator
                alloc.free(old_off)
                new_off = alloc.malloc(new_cap)
                self._epochs.append((new_off, new_cap))
                return (new_off, new_cap)

            self._agree(
                ctx,
                f"{self._fingerprint()}:grow:{epoch + 1}:{new_cap}",
                build,
            )
            self._pe_epoch[pe] = epoch + 1

    # -- pairwise post/wait --------------------------------------------
    def _record(self, op: str, tag: str, target_pe: int, slot: int, t_start: float) -> None:
        tracer = self.layer.job.tracer
        if tracer is None or not tracer.capture_sync:
            return
        ctx = current()
        # Ticket -1: ordering is carried by the flag word's atomic
        # sequence chain (same convention as CAF events); the record is
        # for lock-step reporting only.
        tracer.record(
            ctx.pe, op, target_pe, 0, t_start, ctx.clock.now,
            meta=(tag, f"tc:{self.comm_id}:{target_pe}:{slot}", -1),
        )

    def post(self, target_rank: int, bank: int) -> None:
        """Signal ``target_rank``: quiet (release) + remote ``fadd +1``
        on the flag word keyed by *this* PE's rank."""
        ctx = current()
        t_start = ctx.clock.now
        slot = bank * self.m + self.rank_of[ctx.pe]
        pe = self.members[target_rank]
        layer = self.layer
        layer.quiet()
        layer.atomic(self.flags, pe, slot, "fadd", 1, uncontended=True)
        self._record("post", "po", pe, slot, t_start)

    def wait_step(self, sender_rank: int, bank: int, cont) -> WaitStep:
        """Wait for ``sender_rank``'s post on ``bank``, consume it, then
        ``cont()``.  The per-word timestamp merge (``word=True``) is
        sound because every word sees strict post/consume alternation."""
        ctx = current()
        me = ctx.pe
        t_start = ctx.clock.now
        slot = bank * self.m + sender_rank

        def consumed():
            self.layer.atomic(self.flags, me, slot, "fadd", -1, uncontended=True)
            self._record("wait", "wa", me, slot, t_start)
            return cont()

        return WaitStep(
            self.layer, self.flags, CMP_GE, 1, consumed,
            offset=slot, word=True,
        )

    # -- data plane -----------------------------------------------------
    def put_local(self, acc: SymmetricArray, values, offset: int = 0) -> None:
        """Plain local write into this PE's own accumulator (the
        ``scratch.local[...] = ...`` idiom).  Deliberately *not* a traced
        put: the cooperative engine defers traced deliveries until the
        next ``quiet``, and the accumulator must be readable by this PE's
        own next combine immediately.  Remote visibility is release-
        ordered by :meth:`post` (quiet before the flag fadd)."""
        data = np.asarray(values, dtype=acc.dtype).reshape(-1)
        np.asarray(acc.local)[offset:offset + data.size] = data

    def put_acc(self, acc: SymmetricArray, target_rank: int,
                offset: int = 0, nelems: int | None = None) -> None:
        """Put this PE's accumulator span into ``target_rank``'s."""
        n = acc.size - offset if nelems is None else nelems
        if n <= 0:
            return
        data = np.asarray(acc.local)[offset:offset + n]
        self.layer.put(
            acc, data, self.members[target_rank], offset=offset,
            uncontended=True,
        )

    def get_acc(self, acc: SymmetricArray, src_rank: int,
                offset: int = 0, nelems: int | None = None) -> np.ndarray:
        """Get ``src_rank``'s accumulator span."""
        n = acc.size - offset if nelems is None else nelems
        return self.layer.get(
            acc, n, self.members[src_rank], offset=offset, uncontended=True
        )

    def combine_from(self, acc: SymmetricArray, src_rank: int, combine) -> None:
        """``acc <- combine(acc, src_rank's acc)`` (this PE first: the
        lower tree position's accumulated operand stays on the left)."""
        data = self.get_acc(acc, src_rank)
        mine = np.asarray(acc.local)
        self.put_local(acc, combine(mine, data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TeamComm(m={self.m}, nodes={self.nnodes}, "
            f"id={self.comm_id})"
        )


def get_team_comm(layer: "OneSidedLayer", members) -> TeamComm:
    """The shared :class:`TeamComm` for an ordered member tuple
    (created lazily; metadata only — joining is collective)."""
    key = tuple(int(p) for p in members)
    with _registry_lock:
        comms = _registry.get(layer)
        if comms is None:
            comms = {}
            _registry[layer] = comms
        comm = comms.get(key)
        if comm is None:
            comm = TeamComm(layer, key)
            comms[key] = comm
        return comm


def team_comm_step(layer: "OneSidedLayer", members, need_bytes: int, cont):
    """Step form: look up the team's comm, join/grow it to cover
    ``need_bytes``, then ``cont(comm)``."""
    comm = get_team_comm(layer, members)
    return comm.join_step(need_bytes, lambda: cont(comm))
