"""The competing collective algorithms, as engine-agnostic step programs.

Every algorithm is written in continuation-passing style over the
:class:`~repro.collectives.comm.TeamComm` primitives — traced 1-sided
put/get for data, pairwise post/wait (atomic counter + per-word-timed
wait) for synchronization — so one implementation runs unchanged on the
threaded, cooperative, and event engines and is fully visible to the
sanitizer.  No algorithm ever takes a full-team barrier internally:
cost scales with its own critical path, and the single trailing team
barrier lives in the dispatcher (:mod:`repro.collectives.api`).

Conventions shared by all algorithms:

* ``acc`` is the PE's typed scratch accumulator; the caller has already
  staged this PE's contribution into it.
* ``order`` is a tuple of team ranks; ``order[0]`` is the root and
  ``idx`` is this PE's position in it (reductions rotate the rank space
  so any root reuses the root-at-zero tree shape).
* Flag bank 0 signals "data ready" up the reduction, bank 1 signals
  acknowledgements / results down.  Every (flag word, collective)
  pair sees exactly one post and one consuming wait — the strict
  alternation that makes per-word time merges schedule-independent.
* ``combine(a, b)`` is called with a canonical operand order (lower
  tree position / lower virtual rank on the left), so floating-point
  results are bit-identical across engines *and* across the members of
  an exchange.

Reduction algorithms (``linear``, ``binomial``, ``recdbl``, ``ring``,
``hier``) leave the full result in the accumulator of every PE they
promise it to: linear/binomial honor ``broadcast`` (root-only when
false); recursive doubling and ring are inherently all-reduce; the
hierarchical scheme always broadcasts (delivering to everyone satisfies
a root-only contract — non-root values are unspecified either way).
"""

from __future__ import annotations

import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.collectives.comm import TeamComm


def rotated_order(m: int, root_rank: int) -> tuple[int, ...]:
    """Team ranks rotated so ``root_rank`` sits at position 0."""
    return tuple((root_rank + i) % m for i in range(m))


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def linear_reduce(comm: "TeamComm", acc, order, idx, combine, broadcast, cont):
    """Flat gather onto the root, combining in rank order; O(m) root
    critical path but minimal small-team overhead."""
    m = len(order)
    if idx == 0:

        def gather(i):
            if i >= m:
                return finish()
            src = order[i]

            def got():
                comm.combine_from(acc, src, combine)
                return gather(i + 1)

            return comm.wait_step(src, 0, got)

        def finish():
            if broadcast:
                for i in range(1, m):
                    comm.put_acc(acc, order[i])
                    comm.post(order[i], 1)
            return cont()

        return gather(1)
    comm.post(order[0], 0)
    if broadcast:
        return comm.wait_step(order[0], 1, cont)
    return cont()


def binomial_reduce(comm: "TeamComm", acc, order, idx, combine, broadcast, cont):
    """Binomial reduction tree, ceil(log2 m) rounds; the paper's own
    CAF reduction shape (Section II footnote)."""
    return _binomial_steps(comm, acc, order, idx, combine, broadcast, cont)


def _binomial_steps(comm: "TeamComm", acc, order, idx, combine, broadcast, cont):
    """Binomial tree over ``order`` (virtual rank = position).  Child
    ``v`` posts to ``v - lowbit(v)`` once its subtree is combined; with
    ``broadcast`` the result flows back down the same tree on bank 1."""
    n = len(order)
    v = idx

    def down(level):
        for j in range(level - 1, -1, -1):
            cv = v + (1 << j)
            if cv < n:
                comm.put_acc(acc, order[cv])
                comm.post(order[cv], 1)
        return cont()

    def up(k):
        bit = 1 << k
        if bit >= n:
            # v == 0: the root now holds the full reduction.
            return down(k) if broadcast else cont()
        if v & bit:
            comm.post(order[v - bit], 0)
            if not broadcast:
                return cont()
            parent = order[v & (v - 1)]
            return comm.wait_step(parent, 1, lambda: down(k))
        nxt = v + bit
        if nxt < n:

            def got():
                comm.combine_from(acc, order[nxt], combine)
                return up(k + 1)

            return comm.wait_step(order[nxt], 0, got)
        return up(k + 1)

    return up(0)


def recdbl_reduce(comm: "TeamComm", acc, combine, cont):
    """Recursive-doubling all-reduce: ceil(log2 m) pairwise full-payload
    exchanges (plus a fold for non-power-of-two teams).  Commutative
    operators only — the pairwise exchange reorders operands."""
    m = comm.m
    r = comm.my_rank()
    p = 1 << (m.bit_length() - 1)  # largest power of two <= m
    rem = m - p

    def rank_of(cv):
        # Inverse of the fold: survivor cv is rank 2*cv (absorbed an
        # odd partner) below the fold zone, rank cv + rem above it.
        return 2 * cv if cv < rem else cv + rem

    def fold_down():
        if r < 2 * rem and r % 2 == 0:
            comm.put_acc(acc, r + 1)
            comm.post(r + 1, 1)
        return cont()

    def core(cv):
        def round_(bit):
            if bit >= p:
                return fold_down()
            pcv = cv ^ bit
            pr = rank_of(pcv)
            comm.post(pr, 0)  # my accumulator is readable

            def ready():
                data = comm.get_acc(acc, pr)
                comm.post(pr, 1)  # done reading yours

                def acked():
                    # Partner acked: safe to overwrite my accumulator.
                    # Canonical operand order (lower virtual rank left)
                    # makes both partners compute the identical result.
                    mine = np.asarray(acc.local)
                    if cv < pcv:
                        res = combine(mine, data)
                    else:
                        res = combine(data, mine)
                    comm.put_local(acc, res)
                    return round_(bit << 1)

                return comm.wait_step(pr, 1, acked)

            return comm.wait_step(pr, 0, ready)

        return round_(1)

    if r < 2 * rem:
        if r % 2 == 1:
            # Folded out: contribute to the even partner, then receive
            # the finished result from it.
            comm.post(r - 1, 0)
            return comm.wait_step(r - 1, 1, cont)

        def folded():
            comm.combine_from(acc, r + 1, combine)
            return core(r // 2)

        return comm.wait_step(r + 1, 0, folded)
    return core(r - rem)


def ring_reduce(comm: "TeamComm", acc, n, combine, cont):
    """Bandwidth-optimal ring all-reduce: reduce-scatter then allgather,
    2(m-1) rounds moving ~n/m elements each.  Commutative operators
    only.  Each round is a 6-step handshake — go-ahead to the left,
    go-ahead from the right, data-ready to the right, data-ready from
    the left, pull, combine — which throttles neighbors to one
    outstanding post per flag word (no PE runs more than one round
    ahead of its reader)."""
    m = comm.m
    r = comm.my_rank()
    left = (r - 1) % m
    right = (r + 1) % m
    bounds = [j * n // m for j in range(m + 1)]

    def round_(t):
        if t >= 2 * (m - 1):
            return cont()
        comm.post(left, 1)

        def go():
            comm.post(right, 0)

            def ready():
                scatter = t < m - 1
                c = (r - t - 1) % m if scatter else (r - (t - (m - 1))) % m
                off = bounds[c]
                cnt = bounds[c + 1] - off
                if cnt:
                    data = comm.get_acc(acc, left, offset=off, nelems=cnt)
                    if scatter:
                        mine = np.asarray(acc.local)[off:off + cnt]
                        comm.put_local(acc, combine(data, mine), offset=off)
                    else:
                        comm.put_local(acc, data, offset=off)
                return round_(t + 1)

            return comm.wait_step(left, 0, ready)

        return comm.wait_step(right, 1, go)

    return round_(0)


def hier_reduce(comm: "TeamComm", acc, combine, root_rank, cont):
    """Two-level reduction: node leaders gather their node's members
    over intra-node links, a binomial tree runs over leaders (NIC
    links), then leaders scatter the result back to their node.  Always
    delivers to every member."""
    r = comm.my_rank()
    ni = comm.node_index[r]
    group = comm.node_ranks[ni]
    leader = group[0]
    leaders = tuple(g[0] for g in comm.node_ranks)

    if r != leader:
        comm.post(leader, 0)
        return comm.wait_step(leader, 1, cont)

    def gather(i):
        if i >= len(group):
            # Root the inter-node tree at the root's node leader so the
            # hot payload path ends where the caller asked.
            root_leader = comm.node_ranks[comm.node_index[root_rank]][0]
            order = tuple(sorted(leaders, key=lambda x: (x != root_leader,)))
            idx = order.index(r)
            return _binomial_steps(comm, acc, order, idx, combine, True, scatter)

        def got():
            comm.combine_from(acc, group[i], combine)
            return gather(i + 1)

        return comm.wait_step(group[i], 0, got)

    def scatter():
        for mr in group[1:]:
            comm.put_acc(acc, mr)
            comm.post(mr, 1)
        return cont()

    return gather(1)


# ----------------------------------------------------------------------
# Broadcasts
# ----------------------------------------------------------------------
def _bcast_steps(comm: "TeamComm", acc, order, idx, cont):
    """Binomial broadcast over ``order`` (root = position 0): each node
    forwards to ``v + 2^j`` for every level below the one it received
    at, halving the frontier each round."""
    n = len(order)
    v = idx

    def send(level):
        for j in range(level - 1, -1, -1):
            cv = v + (1 << j)
            if cv < n:
                comm.put_acc(acc, order[cv])
                comm.post(order[cv], 1)
        return cont()

    if v == 0:
        return send((n - 1).bit_length())
    level = (v & -v).bit_length() - 1
    parent = order[v & (v - 1)]
    return comm.wait_step(parent, 1, lambda: send(level))


def linear_bcast(comm: "TeamComm", acc, order, idx, cont):
    """Root pushes the payload to every member directly."""
    if idx == 0:
        for i in range(1, len(order)):
            comm.put_acc(acc, order[i])
            comm.post(order[i], 1)
        return cont()
    return comm.wait_step(order[0], 1, cont)


def binomial_bcast(comm: "TeamComm", acc, order, idx, cont):
    """Binomial broadcast tree, ceil(log2 m) rounds."""
    return _bcast_steps(comm, acc, order, idx, cont)


def hier_bcast(comm: "TeamComm", acc, root_rank, cont):
    """Two-level broadcast: binomial over one effective leader per node
    (the root stands in for its own node's leader), then each leader
    pushes to its node over intra-node links."""
    r = comm.my_rank()
    root_node = comm.node_index[root_rank]
    nn = comm.nnodes
    node_order = [(root_node + i) % nn for i in range(nn)]

    def eff_leader(ni):
        return root_rank if ni == root_node else comm.node_ranks[ni][0]

    leaders = tuple(eff_leader(ni) for ni in node_order)
    my_node = comm.node_index[r]
    my_leader = eff_leader(my_node)

    def scatter():
        for mr in comm.node_ranks[my_node]:
            if mr != r:
                comm.put_acc(acc, mr)
                comm.post(mr, 1)
        return cont()

    if r == my_leader:
        return _bcast_steps(comm, acc, leaders, leaders.index(r), scatter)
    return comm.wait_step(my_leader, 1, cont)


# ----------------------------------------------------------------------
# Allgather (fcollect)
# ----------------------------------------------------------------------
def linear_allgather(comm: "TeamComm", acc, n, cont):
    """Every PE pulls every other PE's slice directly: one round of
    full fan-in, best for small teams or tiny payloads."""
    m = comm.m
    r = comm.my_rank()
    for s in range(m):
        if s != r:
            comm.post(s, 0)  # my slice is staged and readable

    def fetch(s):
        if s >= m:
            return cont()
        if s == r:
            return fetch(s + 1)

        def got():
            data = comm.get_acc(acc, s, offset=s * n, nelems=n)
            comm.put_local(acc, data, offset=s * n)
            return fetch(s + 1)

        return comm.wait_step(s, 0, got)

    return fetch(0)


def ring_allgather(comm: "TeamComm", acc, n, cont):
    """Bandwidth-optimal ring: m-1 rounds, each pulling one slice from
    the left neighbor, with the same one-round-ahead throttle handshake
    as :func:`ring_reduce`."""
    m = comm.m
    r = comm.my_rank()
    left = (r - 1) % m
    right = (r + 1) % m

    def round_(t):
        if t >= m - 1:
            return cont()
        comm.post(left, 1)

        def go():
            comm.post(right, 0)

            def ready():
                s = (r - 1 - t) % m
                data = comm.get_acc(acc, left, offset=s * n, nelems=n)
                comm.put_local(acc, data, offset=s * n)
                return round_(t + 1)

            return comm.wait_step(left, 0, ready)

        return comm.wait_step(right, 1, go)

    return round_(0)
