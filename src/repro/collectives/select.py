"""Cost-model algorithm selection with fixed-algorithm overrides.

:class:`AlgorithmSelector` ranks the candidate algorithms for one
collective call through the closed-form pricer
(:meth:`repro.sim.netmodel.NetworkModel.collective_cost`) and picks the
cheapest, memoizing per (kind, team size, team shape, payload) — the
pricer is pure arithmetic, so the choice depends only on those and the
machine/conduit profile, never on simulation state.

Overrides (the "oracle" path for benchmarking and debugging):

* per-call ``algorithm=`` parameter — strongest;
* ``REPRO_COLLECTIVE=<algo>`` environment variable — read per call, so
  tests can flip it between collectives;
* otherwise cost-model argmin (ties break toward the earlier candidate).

A forced algorithm that exists but does not apply to the call — a
non-commutative reduction forced to ``ring``, a broadcast forced to
``recdbl`` — falls back to the best generally-applicable candidate
(``binomial`` when available) rather than erroring, so one environment
setting can steer a whole run.  An unknown name raises ``ValueError``.
"""

from __future__ import annotations

import os
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.collectives.comm import TeamComm

#: Environment variable forcing a fixed algorithm (oracle mode).
FORCE_ENV = "REPRO_COLLECTIVE"

#: Every algorithm the library implements.
ALGORITHMS: tuple[str, ...] = ("linear", "binomial", "recdbl", "ring", "hier")

#: Candidates per collective kind.  Recursive doubling and ring reorder
#: operands pairwise, so they require commutativity; broadcasts have no
#: operator and allgathers preserve slice order by construction.
REDUCE_ALGORITHMS: tuple[str, ...] = ALGORITHMS
NONCOMMUTATIVE_REDUCE_ALGORITHMS: tuple[str, ...] = ("linear", "binomial")
BCAST_ALGORITHMS: tuple[str, ...] = ("linear", "binomial", "hier")
ALLGATHER_ALGORITHMS: tuple[str, ...] = ("linear", "ring")


def candidates_for(kind: str, commutative: bool = True) -> tuple[str, ...]:
    """The algorithms eligible for one call."""
    if kind == "reduce":
        return REDUCE_ALGORITHMS if commutative else NONCOMMUTATIVE_REDUCE_ALGORITHMS
    if kind == "bcast":
        return BCAST_ALGORITHMS
    if kind == "allgather":
        return ALLGATHER_ALGORITHMS
    raise ValueError(f"unknown collective kind {kind!r}")


class AlgorithmSelector:
    """Per-layer algorithm chooser (one instance per comm layer)."""

    def __init__(self, network, conduit) -> None:
        self._network = network
        self._conduit = conduit
        self._memo: dict[tuple, str] = {}

    def cost(self, algo: str, kind: str, comm: "TeamComm", nbytes: int,
             broadcast: bool = True) -> float:
        """Price one candidate on this team's topology shape."""
        return self._network.collective_cost(
            algo, comm.m, nbytes, self._conduit,
            kind=kind,
            nnodes=comm.nnodes,
            max_per_node=comm.max_per_node,
            # The hierarchical reduction always delivers everywhere.
            broadcast=True if algo == "hier" else broadcast,
            inter_bits=comm.tree_inter_bits,
        )

    def choose(
        self,
        kind: str,
        comm: "TeamComm",
        nbytes: int,
        *,
        broadcast: bool = True,
        commutative: bool = True,
        algorithm: str | None = None,
    ) -> str:
        """The algorithm to run for this call (see module docstring for
        the override precedence)."""
        cands = candidates_for(kind, commutative)
        forced = algorithm if algorithm is not None else os.environ.get(FORCE_ENV)
        if forced:
            if forced not in ALGORITHMS:
                raise ValueError(
                    f"unknown collective algorithm {forced!r}; "
                    f"expected one of {sorted(ALGORITHMS)}"
                )
            if forced in cands:
                return forced
            return "binomial" if "binomial" in cands else cands[0]
        key = (
            kind, comm.m, comm.nnodes, comm.max_per_node,
            comm.tree_inter_bits, nbytes, broadcast, commutative,
        )
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        best = min(
            cands,
            key=lambda a: self.cost(a, kind, comm, nbytes, broadcast),
        )
        self._memo[key] = best
        return best


def selector_for(layer) -> AlgorithmSelector:
    """The (cached) selector bound to one comm layer's network model."""
    sel = getattr(layer, "_collective_selector", None)
    if sel is None:
        sel = AlgorithmSelector(layer.job.network, layer.profile)
        layer._collective_selector = sel
    return sel
