"""``repro.collectives`` — the collective algorithm library.

The paper implements CAF reductions and broadcasts as a single binomial
tree of 1-sided OpenSHMEM puts/gets (Section II footnote).  This package
generalizes that into a library of competing algorithms — linear/flat,
binomial tree, recursive doubling, a bandwidth-optimal ring
(reduce-scatter + allgather), and a hierarchical two-level scheme that
exploits :mod:`repro.sim.topology` node locality — all built from the
same traced 1-sided put/get and atomic post/wait primitives, so every
algorithm runs unchanged on the threaded, cooperative, event, and
(full-team) process engines and stays visible to the sanitizer.

Selection is cost-model driven: each algorithm has a closed-form pricer
(:meth:`repro.sim.netmodel.NetworkModel.collective_cost`) and
:class:`AlgorithmSelector` picks per (payload, team size, team shape on
the topology, machine profile).  ``REPRO_COLLECTIVE=<algo>`` or the
per-call ``algorithm=`` parameter forces a fixed algorithm as an oracle.

Public API
----------

* step forms (event engine / CPS): :func:`team_reduce_step`,
  :func:`team_broadcast_step`, :func:`team_allgather_step`
* blocking forms (threaded/cooperative/process engines):
  :func:`team_reduce`, :func:`team_broadcast`, :func:`team_allgather`
* :data:`ALGORITHMS`, :class:`AlgorithmSelector`, :data:`FORCE_ENV`
"""

from repro.collectives.api import (
    team_allgather,
    team_allgather_step,
    team_broadcast,
    team_broadcast_step,
    team_reduce,
    team_reduce_step,
)
from repro.collectives.comm import TeamComm, team_comm_step
from repro.collectives.select import (
    ALGORITHMS,
    ALLGATHER_ALGORITHMS,
    BCAST_ALGORITHMS,
    FORCE_ENV,
    REDUCE_ALGORITHMS,
    AlgorithmSelector,
    candidates_for,
    selector_for,
)

__all__ = [
    "ALGORITHMS",
    "ALLGATHER_ALGORITHMS",
    "BCAST_ALGORITHMS",
    "FORCE_ENV",
    "REDUCE_ALGORITHMS",
    "AlgorithmSelector",
    "TeamComm",
    "candidates_for",
    "selector_for",
    "team_allgather",
    "team_allgather_step",
    "team_broadcast",
    "team_broadcast_step",
    "team_comm_step",
    "team_reduce",
    "team_reduce_step",
]
