"""Team-scoped collective entry points (step and blocking forms).

Each dispatcher validates, short-circuits the degenerate cases (single
member, zero-size payload — no scratch, no synchronization), joins the
team's :class:`~repro.collectives.comm.TeamComm`, stages the local
contribution into the scratch accumulator with a traced put, asks the
:class:`~repro.collectives.select.AlgorithmSelector` which algorithm to
run (honoring ``algorithm=`` and ``REPRO_COLLECTIVE``), runs it, reads
the result, and takes ONE trailing team barrier — the only full-team
synchronization in any collective.  The trailing barrier is what lets
the next collective (or the caller) reuse scratch and flag words: every
post has been consumed and every remote read has completed before any
member returns.

The ``*_step`` forms are continuation-passing programs for the event
engine; the blocking forms trampoline the same steps inline through
:func:`repro.engine.steps.drive`, executing the exact same layer
primitives — which is why results *and* virtual times are bit-identical
across engines.
"""

from __future__ import annotations

import numpy as np

from repro.collectives import algorithms as _alg
from repro.collectives.comm import team_comm_step
from repro.collectives.select import selector_for
from repro.engine.steps import Done, drive


def _flat(values) -> np.ndarray:
    arr = np.ascontiguousarray(values)
    return arr.reshape(-1)


def _check_root(m: int, root_rank: int) -> None:
    if not 0 <= root_rank < m:
        raise ValueError(f"root rank {root_rank} out of range [0, {m})")


# ----------------------------------------------------------------------
# Reduce
# ----------------------------------------------------------------------
def team_reduce_step(
    layer,
    members,
    values,
    combine,
    cont,
    *,
    root_rank: int = 0,
    broadcast: bool = True,
    commutative: bool = True,
    algorithm: str | None = None,
):
    """Reduce ``values`` element-wise over the team with ``combine``;
    ``cont(result)`` receives the reduction on the root (and on every
    member when ``broadcast``; otherwise non-root results are
    unspecified partial values)."""
    members = tuple(int(p) for p in members)
    m = len(members)
    _check_root(m, root_rank)
    data = _flat(values)
    n = data.size
    if m == 1 or n == 0:
        # Degenerate: nothing to exchange — no scratch, no barrier.
        return cont(data.copy())
    nbytes = n * data.itemsize

    def with_comm(comm):
        acc = comm.scratch_view(n, data.dtype)
        comm.put_local(acc, data)
        algo = selector_for(layer).choose(
            "reduce", comm, nbytes,
            broadcast=broadcast, commutative=commutative, algorithm=algorithm,
        )

        def finish():
            res = np.asarray(acc.local).copy()
            return comm.barrier_step(lambda: cont(res))

        if algo == "recdbl":
            return _alg.recdbl_reduce(comm, acc, combine, finish)
        if algo == "ring":
            return _alg.ring_reduce(comm, acc, n, combine, finish)
        if algo == "hier":
            return _alg.hier_reduce(comm, acc, combine, root_rank, finish)
        order = _alg.rotated_order(m, root_rank)
        idx = (comm.my_rank() - root_rank) % m
        if algo == "linear":
            return _alg.linear_reduce(
                comm, acc, order, idx, combine, broadcast, finish
            )
        return _alg.binomial_reduce(
            comm, acc, order, idx, combine, broadcast, finish
        )

    return team_comm_step(layer, members, nbytes, with_comm)


# ----------------------------------------------------------------------
# Broadcast
# ----------------------------------------------------------------------
def team_broadcast_step(
    layer,
    members,
    values,
    cont,
    *,
    root_rank: int = 0,
    algorithm: str | None = None,
):
    """Broadcast the root's ``values`` over the team; every member's
    ``cont(result)`` receives the root's payload.  Non-root members pass
    a same-shape/dtype ``values`` (contents ignored)."""
    members = tuple(int(p) for p in members)
    m = len(members)
    _check_root(m, root_rank)
    data = _flat(values)
    n = data.size
    if m == 1 or n == 0:
        return cont(data.copy())
    nbytes = n * data.itemsize

    def with_comm(comm):
        acc = comm.scratch_view(n, data.dtype)
        me = comm.my_rank()
        if me == root_rank:
            comm.put_local(acc, data)
        algo = selector_for(layer).choose(
            "bcast", comm, nbytes, algorithm=algorithm,
        )

        def finish():
            res = np.asarray(acc.local).copy()
            return comm.barrier_step(lambda: cont(res))

        if algo == "hier":
            return _alg.hier_bcast(comm, acc, root_rank, finish)
        order = _alg.rotated_order(m, root_rank)
        idx = (me - root_rank) % m
        if algo == "linear":
            return _alg.linear_bcast(comm, acc, order, idx, finish)
        return _alg.binomial_bcast(comm, acc, order, idx, finish)

    return team_comm_step(layer, members, nbytes, with_comm)


# ----------------------------------------------------------------------
# Allgather (fcollect)
# ----------------------------------------------------------------------
def team_allgather_step(
    layer,
    members,
    values,
    cont,
    *,
    algorithm: str | None = None,
):
    """Concatenate every member's equal-size ``values`` in team rank
    order; ``cont(result)`` receives the full ``m * n`` array on every
    member."""
    members = tuple(int(p) for p in members)
    m = len(members)
    data = _flat(values)
    n = data.size
    if m == 1 or n == 0:
        return cont(data.copy())
    slice_bytes = n * data.itemsize

    def with_comm(comm):
        acc = comm.scratch_view(m * n, data.dtype)
        me = comm.my_rank()
        comm.put_local(acc, data, offset=me * n)
        algo = selector_for(layer).choose(
            "allgather", comm, slice_bytes, algorithm=algorithm,
        )

        def finish():
            res = np.asarray(acc.local).copy()
            return comm.barrier_step(lambda: cont(res))

        if algo == "ring":
            return _alg.ring_allgather(comm, acc, n, finish)
        return _alg.linear_allgather(comm, acc, n, finish)

    return team_comm_step(layer, members, m * slice_bytes, with_comm)


# ----------------------------------------------------------------------
# Blocking forms
# ----------------------------------------------------------------------
def team_reduce(layer, members, values, combine, **kwargs) -> np.ndarray:
    """Blocking :func:`team_reduce_step` (threaded/cooperative/process
    engines)."""
    return drive(team_reduce_step(layer, members, values, combine, Done, **kwargs))


def team_broadcast(layer, members, values, **kwargs) -> np.ndarray:
    """Blocking :func:`team_broadcast_step`."""
    return drive(team_broadcast_step(layer, members, values, Done, **kwargs))


def team_allgather(layer, members, values, **kwargs) -> np.ndarray:
    """Blocking :func:`team_allgather_step`."""
    return drive(team_allgather_step(layer, members, values, Done, **kwargs))
