"""Symmetric array handles.

A :class:`SymmetricArray` is the Python analogue of a symmetric address:
one handle, valid on every PE, naming the *same offset* in each PE's
symmetric heap.  RMA calls take the handle plus a target PE — exactly
how ``shmem_putmem(dest, src, n, pe)`` uses the caller's local ``dest``
pointer to name remote memory.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.runtime.context import current

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.comm.base import OneSidedLayer


class SymmetricArray:
    """Handle to a symmetric heap allocation, typed as a NumPy array."""

    __slots__ = ("layer", "byte_offset", "shape", "dtype", "_freed")

    def __init__(
        self,
        layer: "OneSidedLayer",
        byte_offset: int,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> None:
        self.layer = layer
        self.byte_offset = byte_offset
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self._freed = False

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def _check_live(self) -> None:
        if self._freed:
            raise ValueError("symmetric array used after shfree")

    def element_offset(self, index: int) -> int:
        """Byte offset (within the heap) of flat element ``index``."""
        self._check_live()
        if not 0 <= index < max(self.size, 1):
            raise IndexError(f"element {index} out of range [0, {self.size})")
        return self.byte_offset + index * self.dtype.itemsize

    def check_span(self, start_elem: int, nelems: int, stride: int = 1) -> None:
        """Validate that a strided element span fits inside the array."""
        self._check_live()
        if nelems < 0:
            raise ValueError("nelems must be non-negative")
        if nelems == 0:
            return
        if stride == 0:
            raise ValueError("stride must be non-zero")
        last = start_elem + (nelems - 1) * stride
        for edge in (start_elem, last):
            if not 0 <= edge < self.size:
                raise IndexError(
                    f"span start={start_elem} stride={stride} n={nelems} "
                    f"exceeds array of {self.size} elements"
                )

    # ------------------------------------------------------------------
    @property
    def local(self) -> np.ndarray:
        """Zero-copy view of the *calling PE's* instance of the array."""
        self._check_live()
        ctx = current()
        mem = ctx.job.memories[ctx.pe]
        flat = mem.local_view(self.byte_offset, self.nbytes).view(self.dtype)
        return flat.reshape(self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else f"@{self.byte_offset}"
        return f"SymmetricArray(shape={self.shape}, dtype={self.dtype}, {state})"
