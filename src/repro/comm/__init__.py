"""Shared machinery of the one-sided communication libraries.

:mod:`repro.shmem`, :mod:`repro.gasnet` and :mod:`repro.mpirma` model
three different *software* libraries running over the same simulated
fabric.  Their data paths (contiguous put/get, strided transfers,
atomics, completion tracking) are mechanically identical — what differs
is the cost profile (per-call overheads, native strided support,
NIC-offloaded vs AM-emulated atomics) and the API surface each exposes.
This package holds the common mechanics:

* :class:`~repro.comm.heap.SymmetricArray` — a handle naming the same
  offset in every PE's registered segment;
* :class:`~repro.comm.base.OneSidedLayer` — the shared engine.
"""

from repro.comm.base import OneSidedLayer
from repro.comm.heap import SymmetricArray

__all__ = ["OneSidedLayer", "SymmetricArray"]
