"""The shared one-sided communication engine.

:class:`OneSidedLayer` implements the mechanics every modeled library
shares: registered-segment allocation, contiguous and 1-D-strided RMA,
8-byte atomics, completion tracking (``quiet``), and a barrier.  The
behaviour differences between libraries come from the
:class:`~repro.sim.netmodel.ConduitProfile` each subclass installs:

* per-call software overheads (MPI-3.0's higher ``o_put_us`` produces
  Fig 2's latency gap);
* ``iput_native`` — Cray SHMEM offloads 1-D strided transfers to the
  NIC, MVAPICH2-X SHMEM and GASNet-based runtimes loop over contiguous
  puts (Fig 7's naive == 2dim result);
* ``amo_offload`` — SHMEM atomics run on the NIC atomic unit, GASNet
  atomics are active-message round trips through the target CPU
  (Fig 8's lock gap).

Completion semantics follow the OpenSHMEM/GASNet non-blocking model:
``put`` returns after *local* completion; remote completion is only
observable through :meth:`quiet` (or a barrier, which includes one).
"""

from __future__ import annotations

import operator as _operator
import os
from dataclasses import dataclass

import numpy as np

from repro.comm.heap import SymmetricArray
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.comm.constants import comparator
from repro.sim.netmodel import ConduitProfile, get_conduit
from repro.trace.events import (
    contiguous_footprint,
    offsets_footprint,
    strided_footprint,
)

#: How the initiator learns an attempt failed, per operation family:
#: put-like operations observe the NACK at remote completion, get-like
#: and AMO operations at the (round-trip) done time.
_FAIL_AT_REMOTE = _operator.attrgetter("remote_complete")


def _fail_at_done(done: float) -> float:
    return done


def batching_enabled() -> bool:
    """The batched fast path is on unless ``REPRO_NO_BATCH`` is set."""
    return not os.environ.get("REPRO_NO_BATCH")


def vector_enabled() -> bool:
    """The vectorized data plane (index-array scatter/gather, memoized
    pricers, lazy trace footprints) is on unless ``REPRO_NO_VECTOR`` is
    set.  ``REPRO_NO_VECTOR=1`` falls back to the plain batched engine —
    same virtual times, stats, and bytes; only more Python work — which
    isolates this fast path for debugging and benchmarking.

    Both flags are read once per job at layer construction.
    """
    return not os.environ.get("REPRO_NO_VECTOR")


#: Plans moving fewer total elements than this skip the vectorized
#: index-compilation path (``BatchSpec.vector_index`` + fancy-indexed
#: scatter/gather) and take the plain ``write_at``/``read_at`` route
#: instead: below the threshold, building/validating index arrays costs
#: more wall clock than it saves.  Pricing stays memoized either way
#: and both data paths are bit-identical by contract, so the switch
#: affects wall clock only.  Override with ``REPRO_VECTOR_MIN_ELEMS``.
DEFAULT_VECTOR_MIN_ELEMS = 512


def vector_min_elems() -> int:
    raw = os.environ.get("REPRO_VECTOR_MIN_ELEMS")
    if raw is None or raw == "":
        return DEFAULT_VECTOR_MIN_ELEMS
    return int(raw)


#: Element sizes the vectorized plane can move via a reinterpret-cast
#: view (uint8 plus :attr:`PEMemory._VIEW_DTYPES`); other sizes scatter
#: through a byte-expanded index.
_VIEWABLE_SIZES = frozenset((1, 2, 4, 8))


@dataclass(frozen=True, eq=False)
class BatchSpec:
    """A batch of identical RMA calls, in layer-level terms.

    Produced by :mod:`repro.caf.rma` from a transfer plan (every plan's
    runs share one length and its lines one count and stride, so a whole
    plan is one spec).  ``rel_index`` holds the byte offset of every
    transferred element *relative to the array base*, in plan order —
    relative so a cached spec stays valid across deallocate/reallocate
    cycles that move the array.
    """

    kind: str  # "runs" (contiguous) | "lines" (1-D strided)
    ncalls: int  # logical library calls (len(runs) or len(lines))
    nelems_per_call: int  # run length, or line element count
    stride: int  # element stride within a line (1 for runs)
    rel_index: np.ndarray  # int64 per-element byte offsets, plan order
    min_elem: int  # smallest touched element index (span check)
    max_elem: int  # largest touched element index (span check)
    rel_elem: np.ndarray | None = None  # int64 per-element *element* offsets
    elem_size: int = 0  # itemsize the spec was compiled for

    def __post_init__(self) -> None:
        if self.kind not in ("runs", "lines"):
            raise ValueError(f"unknown batch kind {self.kind!r}")
        # Lazy per-spec caches for the vectorized plane (plain attributes
        # on a frozen non-slots dataclass; set via object.__setattr__).
        # Races under the GIL are benign: readers validate the memo's
        # base offset and a lost race rebuilds an identical array.
        object.__setattr__(self, "_abs_memo", None)
        object.__setattr__(self, "_expanded_rel", None)

    @property
    def total_elems(self) -> int:
        return self.ncalls * self.nelems_per_call

    def vector_index(self, byte_offset: int) -> tuple[bool, np.ndarray, int, int]:
        """The precomputed index array for an array based at
        ``byte_offset``, as ``(expanded, index, lo, hi)`` — the exact
        argument set of :meth:`~repro.runtime.memory.PEMemory.scatter_at`
        / ``gather_at``.

        Memoized per base offset: symmetric arrays share one base across
        PEs, so after the first touch this is a tuple compare plus an
        attribute read.  ``expanded=False`` index arrays are element
        indices into the ``elem_size`` view of the heap; unaligned bases
        and view-less element sizes get a byte-expanded index.
        """
        memo = self._abs_memo
        if memo is not None and memo[0] == byte_offset:
            return memo[1], memo[2], memo[3], memo[4]
        es = self.elem_size
        if es <= 0:
            raise ValueError("spec was built without an element size")
        if es in _VIEWABLE_SIZES and byte_offset % es == 0 and self.rel_elem is not None:
            index = self.rel_elem + (byte_offset // es)
            expanded = False
        else:
            exp = self._expanded_rel
            if exp is None:
                exp = (
                    self.rel_index[:, None]
                    + np.arange(es, dtype=np.int64)[None, :]
                ).reshape(-1)
                object.__setattr__(self, "_expanded_rel", exp)
            index = exp + byte_offset
            expanded = True
        lo = byte_offset + self.min_elem * es
        hi = byte_offset + self.max_elem * es + es
        object.__setattr__(self, "_abs_memo", (byte_offset, expanded, index, lo, hi))
        return expanded, index, lo, hi


class OneSidedLayer:
    """Common engine under :mod:`repro.shmem`, :mod:`repro.gasnet`,
    and :mod:`repro.mpirma`."""

    #: Key under which the layer registers itself on the job.
    LAYER_NAME = "onesided"

    #: Virtual cost of a fence (ordering only; the simulated NIC already
    #: delivers same-initiator traffic in order).
    FENCE_COST_US = 0.02

    #: Retransmission policy for injected transient delivery failures:
    #: up to RETRY_LIMIT attempts, exponential backoff between attempts
    #: priced in *virtual* microseconds (wall clock is untouched), then
    #: escalation to :class:`~repro.sim.faults.TransientCommError`.
    RETRY_LIMIT = 4
    RETRY_BACKOFF_START_US = 2.0
    RETRY_BACKOFF_MAX_US = 64.0

    def __init__(self, job: Job, profile: ConduitProfile | str) -> None:
        if isinstance(profile, str):
            profile = get_conduit(profile)
        self.job = job
        self.profile = profile
        # Escape hatches, sampled once per job (the wallclock bench and
        # the invariance tests toggle them between launches, never
        # mid-job): REPRO_NO_BATCH=1 forces the per-call oracle path,
        # REPRO_NO_VECTOR=1 keeps batching but disables the vectorized
        # data plane (memoized pricers, cached index arrays, lazy trace
        # footprints).
        self.batching = batching_enabled()
        self.vectorized = self.batching and vector_enabled()
        # Flat front-side memo over the network's pricers, keyed by
        # small int tuples (op tag, src PE, dst PE, sizes).  The
        # network's own memo keys include the conduit profile, whose
        # frozen-dataclass hash walks every field — too expensive to
        # pay per scalar operation.  Plain dict: get/set are GIL-atomic
        # and a lost race merely builds an equivalent closure twice.
        self._pricers: dict[tuple, object] = {}
        # Max outstanding remote-completion time of each PE's puts.
        self._pending = [0.0] * job.num_pes
        # The execution engine owns every mode decision (fault plan,
        # cooperative scheduling, delivery, blocking).  Hot-path hooks
        # are cached as plain instance attributes: one dict lookup and
        # one call each, with the no-fault / free-running fast paths
        # pre-resolved at engine bind time.
        eng = job.engine
        self.engine = eng
        self._eager = eng.eager_delivery
        self._decide = eng.decision
        self._priced = eng.priced
        self._jitter = eng.jitter
        self._deposit = eng.deposit
        self._drain = eng.drain
        # Failed-image detection (survivable jobs only).  ``None`` in
        # the default mode, so the per-op guard in every RMA/AMO entry
        # point is a single ``is not None`` test and the clean-abort
        # baseline stays byte-for-byte.
        self._failed = job.failed if getattr(job, "survivable", False) else None
        # Wall-clock threshold for the vectorized index path (plans
        # moving fewer elements take the plain route; virtual times are
        # unaffected — see :func:`vector_min_elems`).
        self.vector_min_elems = vector_min_elems() if self.vectorized else 0

    # ------------------------------------------------------------------
    # Registered-segment ("symmetric") memory
    # ------------------------------------------------------------------
    def _alloc_prepare(self, shape: int | tuple[int, ...], dtype: np.dtype):
        """The non-blocking half of :meth:`alloc_array`: validate, run
        the injected-exhaustion check, and agree on the offset.  Returns
        a zero-argument builder producing the :class:`SymmetricArray`;
        the caller must pass a barrier before building (step programs
        use :func:`repro.engine.steps.alloc_array_step`)."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in shape {shape}")
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize if shape else dt.itemsize
        ctx = current()
        # Injected symmetric-heap exhaustion fails *this* PE before it
        # reaches the collective, so the allocator metadata is never
        # touched by the doomed allocation.
        self.engine.alloc_check(ctx)
        offset = self.job.collectives.agree(
            ctx,
            f"{self.LAYER_NAME}.alloc:{shape}:{dt.str}",
            lambda: self.job.symmetric_allocator.malloc(max(nbytes, 1)),
        )
        return lambda: SymmetricArray(self, offset, shape, dt)

    def alloc_array(
        self, shape: int | tuple[int, ...], dtype: np.dtype
    ) -> SymmetricArray:
        """Collectively allocate an array at the same offset on every PE."""
        build = self._alloc_prepare(shape, dtype)
        # Allocation is synchronizing: no PE may target the region on a
        # PE that has not allocated it yet.
        self.barrier_all()
        return build()

    def free_array(self, array: SymmetricArray) -> None:
        """Collectively release an allocation (synchronizes first)."""
        if array.layer is not self:
            raise ValueError("array belongs to a different job/layer")
        array._check_live()
        ctx = current()
        self.barrier_all()
        self.job.collectives.agree(
            ctx,
            f"{self.LAYER_NAME}.free:{array.byte_offset}",
            lambda: self.job.symmetric_allocator.free(array.byte_offset),
        )
        array._freed = True

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.job.num_pes:
            raise ValueError(f"PE {pe} out of range [0, {self.job.num_pes})")

    def _check_failed(self, ctx, op: str, pe: int) -> None:
        """Initiator-side failed-image detection (survivable jobs only):
        an RMA/AMO targeting a failed PE pays the detection latency in
        virtual time, traces a ``fail`` record, and raises a structured
        :class:`~repro.runtime.failures.ImageFailedError`."""
        registry = self._failed
        if registry is not None and registry.is_failed(pe):
            from repro.runtime.failures import raise_image_failed

            raise_image_failed(ctx, op, pe, registry, self.job.tracer)

    def _coerce(
        self, array: SymmetricArray, value, nelems: int | None = None
    ) -> np.ndarray:
        data = np.ascontiguousarray(value, dtype=array.dtype).reshape(-1)
        if nelems is not None and data.size != nelems:
            raise ValueError(f"expected {nelems} elements, got {data.size}")
        return data

    # ------------------------------------------------------------------
    # Contiguous RMA
    # ------------------------------------------------------------------
    def put(self, dest: SymmetricArray, value, pe: int, offset: int = 0,
            *, uncontended: bool = False) -> None:
        """Contiguous put; returns after local completion.

        ``uncontended=True`` prices through the closed-form idle-lane
        model (:meth:`NetworkModel.put_uncontended`) instead of the
        contended per-node timelines — used by the collective library,
        whose algorithms schedule their own traffic and whose virtual
        times must be schedule-independent.
        """
        self._check_pe(pe)
        data = self._coerce(dest, value)
        dest.check_span(offset, data.size)
        if data.size == 0:
            return  # nothing moves: no pricing, no lock, no clock advance
        ctx = current()
        self._decide(ctx, "put", pe)
        self._check_failed(ctx, "put", pe)
        t_start = ctx.clock.now
        if uncontended:
            def price(now, _n=data.nbytes):
                return self.job.network.put_uncontended(
                    ctx.pe, pe, _n, self.profile, now
                )
        elif self.vectorized:
            key = ("p", ctx.pe, pe, data.nbytes)
            price = self._pricers.get(key)
            if price is None:
                if len(self._pricers) > 65536:  # unbounded-growth backstop
                    self._pricers.clear()
                price = self.job.network.put_pricer(ctx.pe, pe, data.nbytes, self.profile)
                self._pricers[key] = price
        else:
            def price(now, _n=data.nbytes):
                return self.job.network.put(ctx.pe, pe, _n, self.profile, now)
        timing = self._priced(ctx, self, "put", pe, price, _FAIL_AT_REMOTE)
        if self._eager:
            self.job.memories[pe].write(
                dest.element_offset(offset),
                data,
                timestamp=timing.remote_complete,
            )
        else:
            # Weak completion: the deposit becomes a separately
            # schedulable delivery.  Copy the payload — a blocking put's
            # source is reusable the moment the call returns.
            mem = self.job.memories[pe]
            eo = dest.element_offset(offset)
            payload = data.copy()
            ts = timing.remote_complete
            self._deposit(ctx, lambda: mem.write(eo, payload, timestamp=ts))
        ctx.clock.merge(timing.local_complete)
        if timing.remote_complete > self._pending[ctx.pe]:
            self._pending[ctx.pe] = timing.remote_complete
        tracer = self.job.tracer
        if tracer is not None:
            addr = dest.element_offset(offset)
            fp = contiguous_footprint(addr, data.nbytes) if tracer.capture_sync else ()
            tracer.record(
                ctx.pe, "put", pe, data.nbytes, t_start, ctx.clock.now,
                addr=addr, footprint=fp,
            )

    def get(self, src: SymmetricArray, nelems: int, pe: int, offset: int = 0,
            *, uncontended: bool = False) -> np.ndarray:
        """Blocking contiguous get; returns the fetched elements.

        ``uncontended`` as in :meth:`put`.
        """
        self._check_pe(pe)
        src.check_span(offset, nelems)
        if nelems == 0:
            return np.empty(0, dtype=src.dtype)
        ctx = current()
        self._decide(ctx, "get", pe)
        self._check_failed(ctx, "get", pe)
        nbytes = nelems * src.itemsize
        t_start = ctx.clock.now
        if uncontended:
            def price(now, _n=nbytes):
                return self.job.network.get_uncontended(
                    ctx.pe, pe, _n, self.profile, now
                )
        elif self.vectorized:
            key = ("g", ctx.pe, pe, nbytes)
            price = self._pricers.get(key)
            if price is None:
                if len(self._pricers) > 65536:
                    self._pricers.clear()
                price = self.job.network.get_pricer(ctx.pe, pe, nbytes, self.profile)
                self._pricers[key] = price
        else:
            def price(now, _n=nbytes):
                return self.job.network.get(ctx.pe, pe, _n, self.profile, now)
        done = self._priced(ctx, self, "get", pe, price, _fail_at_done)
        raw = self.job.memories[pe].read(src.element_offset(offset), nbytes)
        ctx.clock.merge(done)
        tracer = self.job.tracer
        if tracer is not None:
            addr = src.element_offset(offset)
            fp = contiguous_footprint(addr, nbytes) if tracer.capture_sync else ()
            tracer.record(
                ctx.pe, "get", pe, nbytes, t_start, ctx.clock.now,
                addr=addr, footprint=fp,
            )
        return raw.view(src.dtype).copy()

    # ------------------------------------------------------------------
    # 1-D strided RMA
    # ------------------------------------------------------------------
    def iput(
        self,
        dest: SymmetricArray,
        value,
        tst: int,
        sst: int,
        nelems: int,
        pe: int,
        offset: int = 0,
    ) -> None:
        """1-D strided put (strides in elements, must be >= 1).

        Native conduits issue one NIC descriptor; others loop over
        contiguous single-element puts (the paper's observation about
        MVAPICH2-X's ``shmem_iput``).
        """
        self._check_pe(pe)
        if nelems < 0:
            raise ValueError("nelems must be non-negative")
        source = np.ascontiguousarray(value, dtype=dest.dtype).reshape(-1)
        if nelems and (sst < 1 or tst < 1):
            raise ValueError("strides must be >= 1")
        if nelems:
            needed = (nelems - 1) * sst + 1
            if source.size < needed:
                raise ValueError(
                    f"source has {source.size} elements; stride {sst} x {nelems} needs {needed}"
                )
        dest.check_span(offset, nelems, tst)
        if nelems == 0:
            return
        gathered = source[::sst][:nelems]
        ctx = current()
        if self.profile.iput_native:
            # Non-native conduits loop over put(), which decides per call.
            self._decide(ctx, "iput", pe)
            self._check_failed(ctx, "iput", pe)
        t_start = ctx.clock.now
        itemsize = dest.itemsize
        if self.profile.iput_native:
            if self.vectorized:
                key = ("ip", ctx.pe, pe, nelems, itemsize, tst)
                price = self._pricers.get(key)
                if price is None:
                    if len(self._pricers) > 65536:
                        self._pricers.clear()
                    price = self.job.network.iput_pricer(
                        ctx.pe, pe, nelems, itemsize, self.profile,
                        stride_bytes=tst * itemsize,
                    )
                    self._pricers[key] = price
            else:
                def price(now, _nelems=nelems, _stride=tst * itemsize):
                    return self.job.network.iput(
                        ctx.pe, pe, _nelems, itemsize, self.profile, now,
                        stride_bytes=_stride,
                    )
            timing = self._priced(ctx, self, "iput", pe, price, _FAIL_AT_REMOTE)
            if self._eager:
                self.job.memories[pe].write_strided(
                    dest.element_offset(offset),
                    tst * itemsize,
                    itemsize,
                    gathered,
                    timestamp=timing.remote_complete,
                )
            else:
                mem = self.job.memories[pe]
                eo = dest.element_offset(offset)
                payload = gathered.copy()
                ts = timing.remote_complete
                stride_b = tst * itemsize
                self._deposit(
                    ctx,
                    lambda: mem.write_strided(
                        eo, stride_b, itemsize, payload, timestamp=ts
                    ),
                )
            ctx.clock.merge(timing.local_complete)
            if timing.remote_complete > self._pending[ctx.pe]:
                self._pending[ctx.pe] = timing.remote_complete
            tracer = self.job.tracer
            if tracer is not None:
                addr = dest.element_offset(offset)
                if not tracer.capture_sync:
                    fp = ()
                elif self.vectorized:
                    # Deferred: materialized by the tracer on first read.
                    fp = ("@str", addr, tst * itemsize, itemsize, nelems)
                else:
                    fp = strided_footprint(addr, tst * itemsize, itemsize, nelems)
                tracer.record(
                    ctx.pe, "iput", pe, nelems * itemsize, t_start, ctx.clock.now,
                    addr=addr, footprint=fp,
                )
        else:
            for i in range(nelems):
                self.put(dest, gathered[i : i + 1], pe, offset + i * tst)

    def iget(
        self, src: SymmetricArray, tst: int, sst: int, nelems: int, pe: int, offset: int = 0
    ) -> np.ndarray:
        """1-D strided get; returns ``nelems`` gathered (contiguous)
        elements.  ``sst`` strides the remote source."""
        self._check_pe(pe)
        if nelems < 0:
            raise ValueError("nelems must be non-negative")
        if nelems and (sst < 1 or tst < 1):
            raise ValueError("strides must be >= 1")
        src.check_span(offset, nelems, sst)
        if nelems == 0:
            return np.empty(0, dtype=src.dtype)
        ctx = current()
        if self.profile.iput_native:
            self._decide(ctx, "iget", pe)
            self._check_failed(ctx, "iget", pe)
        t_start = ctx.clock.now
        itemsize = src.itemsize
        if self.profile.iput_native:
            if self.vectorized:
                key = ("ig", ctx.pe, pe, nelems, itemsize, sst)
                price = self._pricers.get(key)
                if price is None:
                    if len(self._pricers) > 65536:
                        self._pricers.clear()
                    price = self.job.network.iget_pricer(
                        ctx.pe, pe, nelems, itemsize, self.profile,
                        stride_bytes=sst * itemsize,
                    )
                    self._pricers[key] = price
            else:
                def price(now, _nelems=nelems, _stride=sst * itemsize):
                    return self.job.network.iget(
                        ctx.pe, pe, _nelems, itemsize, self.profile, now,
                        stride_bytes=_stride,
                    )
            done = self._priced(ctx, self, "iget", pe, price, _fail_at_done)
            raw = self.job.memories[pe].read_strided(
                src.element_offset(offset), sst * itemsize, itemsize, nelems
            )
            ctx.clock.merge(done)
            tracer = self.job.tracer
            if tracer is not None:
                addr = src.element_offset(offset)
                if not tracer.capture_sync:
                    fp = ()
                elif self.vectorized:
                    fp = ("@str", addr, sst * itemsize, itemsize, nelems)
                else:
                    fp = strided_footprint(addr, sst * itemsize, itemsize, nelems)
                tracer.record(
                    ctx.pe, "iget", pe, nelems * itemsize, t_start, ctx.clock.now,
                    addr=addr, footprint=fp,
                )
            return raw.view(src.dtype).copy()
        out = np.empty(nelems, dtype=src.dtype)
        for i in range(nelems):
            out[i] = self.get(src, 1, pe, offset + i * sst)[0]
        return out

    # ------------------------------------------------------------------
    # Batched plan execution
    # ------------------------------------------------------------------
    def _plan_price(self, direction: str, spec: BatchSpec, itemsize: int, pe: int):
        """Aggregate pricing for a whole plan; returns (price, op, calls)
        with ``price(now)`` pricing one attempt of the whole batch.

        The network batch methods (and the memoized batch pricers on
        the vectorized plane) replay the exact per-call float
        arithmetic, so timing is bit-identical to the sequential loop.
        Non-native line plans degenerate to one put/get per *element*,
        just like :meth:`iput` does.
        """
        ctx_pe = current().pe
        if self.vectorized:
            return self._plan_pricer(direction, spec, itemsize, ctx_pe, pe)
        net = self.job.network
        if spec.kind == "lines" and self.profile.iput_native:
            batch = net.iput_batch if direction == "put" else net.iget_batch

            def price(now, _batch=batch):
                return _batch(
                    ctx_pe, pe, spec.nelems_per_call, itemsize, spec.ncalls,
                    self.profile, now, stride_bytes=spec.stride * itemsize,
                )

            return price, ("iput" if direction == "put" else "iget"), spec.ncalls
        batch = net.put_batch if direction == "put" else net.get_batch
        if spec.kind == "lines":

            def price(now, _batch=batch):
                return _batch(ctx_pe, pe, itemsize, spec.total_elems, self.profile, now)

            return price, ("put" if direction == "put" else "get"), spec.total_elems

        def price(now, _batch=batch):
            return _batch(
                ctx_pe, pe, spec.nelems_per_call * itemsize, spec.ncalls,
                self.profile, now,
            )

        return price, ("put" if direction == "put" else "get"), spec.ncalls

    def _plan_pricer(self, direction: str, spec: BatchSpec, itemsize: int,
                     src: int, dst: int):
        """Memoized pricer for a whole plan; returns (pricer, op, calls).

        Same branch structure as :meth:`_plan_price`, but routed through
        :meth:`NetworkModel.batch_pricer` so the now-independent
        arithmetic is resolved once per (plan shape, placement) and
        replayed across iterations.  Front-memoized in the layer's flat
        pricer cache: everything pricing-relevant about a plan is its
        (kind, ncalls, nelems_per_call, stride) shape.
        """
        key = ("pl", direction, src, dst, itemsize, spec.kind,
               spec.ncalls, spec.nelems_per_call, spec.stride)
        entry = self._pricers.get(key)
        if entry is not None:
            return entry
        if len(self._pricers) > 65536:
            self._pricers.clear()
        entry = self._make_plan_pricer(direction, spec, itemsize, src, dst)
        self._pricers[key] = entry
        return entry

    def _make_plan_pricer(self, direction: str, spec: BatchSpec, itemsize: int,
                          src: int, dst: int):
        net = self.job.network
        if spec.kind == "lines" and self.profile.iput_native:
            op = "iput" if direction == "put" else "iget"
            pricer = net.batch_pricer(
                op, src, dst, count=spec.ncalls, conduit=self.profile,
                nelems=spec.nelems_per_call, elem_size=itemsize,
                stride_bytes=spec.stride * itemsize,
            )
            return pricer, op, spec.ncalls
        op = "put" if direction == "put" else "get"
        if spec.kind == "lines":
            pricer = net.batch_pricer(
                op, src, dst, count=spec.total_elems, conduit=self.profile,
                nbytes=itemsize,
            )
            return pricer, op, spec.total_elems
        pricer = net.batch_pricer(
            op, src, dst, count=spec.ncalls, conduit=self.profile,
            nbytes=spec.nelems_per_call * itemsize,
        )
        return pricer, op, spec.ncalls

    def execute_plan_put(
        self, dest: SymmetricArray, value, pe: int, spec: BatchSpec
    ) -> None:
        """Execute a whole transfer plan's puts in one batched step.

        Equivalent to issuing ``spec.ncalls`` :meth:`put`/:meth:`iput`
        calls in plan order — same final clock, same pending-completion
        state, same target bytes, same timeline counters — but with one
        aggregate network pricing, one target-lock acquisition, and one
        tracer record carrying the logical call count.
        """
        self._check_pe(pe)
        data = self._coerce(dest, value, spec.total_elems)
        dest.check_span(spec.min_elem, 1)
        dest.check_span(spec.max_elem, 1)
        if data.size == 0:
            return
        ctx = current()
        self._decide(ctx, "plan_put", pe)
        self._check_failed(ctx, "put", pe)
        t_start = ctx.clock.now
        itemsize = dest.itemsize
        price, op, calls = self._plan_price("put", spec, itemsize, pe)
        timing = self._priced(ctx, self, op, pe, price, _FAIL_AT_REMOTE)
        mem = self.job.memories[pe]
        ts = timing.remote_complete
        # Small plans skip index compilation: below the threshold the
        # plain write path is cheaper in wall clock (bit-identical in
        # virtual time and data either way).
        vec = self.vectorized and spec.total_elems >= self.vector_min_elems
        if vec:
            expanded, index, lo, hi = spec.vector_index(dest.byte_offset)
            if self._eager:
                mem.scatter_at(
                    index, data, timestamp=ts,
                    elem_size=itemsize, lo=lo, hi=hi, expanded=expanded,
                )
            else:
                payload = data.copy()
                self._deposit(
                    ctx,
                    lambda: mem.scatter_at(
                        index, payload, timestamp=ts,
                        elem_size=itemsize, lo=lo, hi=hi, expanded=expanded,
                    ),
                )
        else:
            abs_index = spec.rel_index + dest.byte_offset
            aligned = dest.byte_offset % itemsize == 0
            if self._eager:
                mem.write_at(
                    abs_index,
                    itemsize,
                    data,
                    timestamp=ts,
                    aligned=aligned,
                )
            else:
                payload = data.copy()
                self._deposit(
                    ctx,
                    lambda: mem.write_at(
                        abs_index, itemsize, payload, timestamp=ts, aligned=aligned
                    ),
                )
        ctx.clock.merge(timing.local_complete)
        if timing.remote_complete > self._pending[ctx.pe]:
            self._pending[ctx.pe] = timing.remote_complete
        tracer = self.job.tracer
        if tracer is not None:
            if not tracer.capture_sync:
                fp = ()
            elif self.vectorized:
                # Deferred: the tracer merges intervals at read time.
                fp = ("@off", spec.rel_index, dest.byte_offset, itemsize)
            else:
                fp = offsets_footprint(spec.rel_index + dest.byte_offset, itemsize)
            tracer.record(
                ctx.pe, op, pe, data.nbytes, t_start, ctx.clock.now, calls=calls,
                addr=dest.byte_offset + spec.min_elem * itemsize, footprint=fp,
            )

    def execute_plan_get(
        self, src: SymmetricArray, pe: int, spec: BatchSpec
    ) -> np.ndarray:
        """Batched counterpart of a whole plan's gets; returns the
        gathered elements as a flat array in plan order."""
        self._check_pe(pe)
        src.check_span(spec.min_elem, 1)
        src.check_span(spec.max_elem, 1)
        if spec.total_elems == 0:
            return np.empty(0, dtype=src.dtype)
        ctx = current()
        self._decide(ctx, "plan_get", pe)
        self._check_failed(ctx, "get", pe)
        t_start = ctx.clock.now
        itemsize = src.itemsize
        price, op, calls = self._plan_price("get", spec, itemsize, pe)
        done = self._priced(ctx, self, op, pe, price, _fail_at_done)
        if self.vectorized and spec.total_elems >= self.vector_min_elems:
            expanded, index, lo, hi = spec.vector_index(src.byte_offset)
            raw = self.job.memories[pe].gather_at(
                index, elem_size=itemsize, lo=lo, hi=hi, expanded=expanded
            )
        else:
            raw = self.job.memories[pe].read_at(
                spec.rel_index + src.byte_offset,
                itemsize,
                aligned=src.byte_offset % itemsize == 0,
            )
        ctx.clock.merge(done)
        tracer = self.job.tracer
        if tracer is not None:
            if not tracer.capture_sync:
                fp = ()
            elif self.vectorized:
                fp = ("@off", spec.rel_index, src.byte_offset, itemsize)
            else:
                fp = offsets_footprint(spec.rel_index + src.byte_offset, itemsize)
            tracer.record(
                ctx.pe, op, pe, raw.size, t_start, ctx.clock.now, calls=calls,
                addr=src.byte_offset + spec.min_elem * itemsize, footprint=fp,
            )
        return raw.view(src.dtype)

    # ------------------------------------------------------------------
    # Ordering / completion
    # ------------------------------------------------------------------
    def quiet(self) -> None:
        """Block until all of this PE's outstanding puts are remotely
        complete."""
        ctx = current()
        self._decide(ctx, "quiet", -1)
        self._drain(ctx)
        t_start = ctx.clock.now
        ctx.clock.merge(self._pending[ctx.pe])
        self._pending[ctx.pe] = 0.0
        tracer = self.job.tracer
        if tracer is not None and (ctx.clock.now > t_start or tracer.capture_sync):
            # In sync-capture mode even a no-op quiet is recorded: it is
            # a quiesce point the sanitizer's ordering checks rely on.
            tracer.record(ctx.pe, "quiet", -1, 0, t_start, ctx.clock.now)

    def fence(self) -> None:
        """Order (but do not complete) outstanding puts per target."""
        ctx = current()
        # Delivery queues are FIFO per initiator — stronger than the
        # per-target ordering fence promises — so no drain is needed.
        self._decide(ctx, "fence", -1)
        t_start = ctx.clock.now
        ctx.clock.advance(self.FENCE_COST_US)
        tracer = self.job.tracer
        if tracer is not None and tracer.capture_sync:
            tracer.record(ctx.pe, "fence", -1, 0, t_start, ctx.clock.now)

    def _barrier_arrive(self, ctx, barrier=None, npes: int | None = None) -> tuple[float, int, bool]:
        """Arrival half of :meth:`barrier_all`: collective jitter,
        quiet, then barrier bookkeeping.  Returns ``(t_start,
        generation, released)``; non-released callers must park via the
        engine before :meth:`_barrier_depart` (the event engine parks
        the continuation of a :class:`~repro.engine.steps.BarrierStep`
        here).  ``barrier``/``npes`` select a team-scoped barrier; the
        default is the job-wide barrier over all PEs."""
        t_start = ctx.clock.now
        self._jitter(ctx, self, "barrier")
        self.quiet()
        if barrier is None:
            barrier = self.job.barrier
            npes = self.job.num_pes
        cost = self.job.network.barrier_cost(npes, self.profile)
        gen, released = barrier.arrive(ctx, cost)
        return t_start, gen, released

    def _barrier_depart(self, ctx, t_start: float, gen: int, barrier=None) -> None:
        """Departure half of :meth:`barrier_all`: merge the episode's
        release time and trace the barrier record."""
        bar = self.job.barrier if barrier is None else barrier
        bar.depart(ctx, gen)
        tracer = self.job.tracer
        if tracer is not None:
            meta = ("b", bar.sync_id, gen) if tracer.capture_sync else ()
            tracer.record(
                ctx.pe, "barrier", -1, 0, t_start, ctx.clock.now, meta=meta
            )

    def barrier_all(self) -> None:
        """Quiet + dissemination barrier over all PEs."""
        ctx = current()
        t_start, gen, released = self._barrier_arrive(ctx)
        if not released:
            self.engine.barrier_wait(ctx, self.job.barrier, gen)
        self._barrier_depart(ctx, t_start, gen)

    def team_barrier(self, barrier, npes: int) -> None:
        """Quiet + dissemination barrier over a team's ``npes`` members.

        ``barrier`` is the team's shared
        :class:`~repro.runtime.sync.VirtualBarrier` (every member must
        pass the same instance).  Blocking form; step programs use
        :class:`~repro.engine.steps.BarrierStep` with
        ``barrier=``/``npes=`` instead.
        """
        ctx = current()
        t_start, gen, released = self._barrier_arrive(ctx, barrier, npes)
        if not released:
            self.engine.barrier_wait(ctx, barrier, gen)
        self._barrier_depart(ctx, t_start, gen, barrier)

    # ------------------------------------------------------------------
    # 8-byte atomics
    # ------------------------------------------------------------------
    def atomic(
        self, target: SymmetricArray, pe: int, offset: int, op: str, *operands,
        uncontended: bool = False,
    ) -> np.generic | None:
        """Execute an 8-byte atomic on ``target[offset]`` at ``pe``.

        ``op`` is one of ``swap``, ``cswap``, ``fadd``, ``fetch``,
        ``set``, ``and``, ``or``, ``xor``; returns the old value.
        Pricing depends on the profile: NIC atomic unit when offloaded,
        active-message round trip through the target CPU otherwise.
        ``uncontended`` as in :meth:`put` (the causality lift on the
        word's previous timestamp still applies — it is deterministic).
        """
        self._check_pe(pe)
        target.check_span(offset, 1)
        if target.itemsize != 8:
            raise TypeError(
                f"remote atomics require an 8-byte dtype, got {target.dtype} "
                f"(the paper packs MCS pointers into 64 bits for this reason)"
            )
        dtype = target.dtype
        ctx = current()
        # Atomics bypass the delivery queues (the NIC atomic unit is
        # not write-buffered): they execute at the chosen step.
        self._decide(ctx, "atomic", pe)
        self._check_failed(ctx, "atomic", pe)
        t_start = ctx.clock.now
        if uncontended:
            proc = back = None

            def price(now):
                return self.job.network.amo_uncontended(
                    ctx.pe, pe, self.profile, now
                )
        elif self.vectorized:
            key = ("a", ctx.pe, pe)
            entry = self._pricers.get(key)
            if entry is None:
                if len(self._pricers) > 65536:
                    self._pricers.clear()
                entry = self.job.network.amo_pricer(ctx.pe, pe, self.profile)
                self._pricers[key] = entry
            price, proc, back = entry
        else:
            proc = back = None

            def price(now):
                return self.job.network.amo(ctx.pe, pe, self.profile, now)
        done = self._priced(ctx, self, "atomic", pe, price, _fail_at_done)
        fn = self._amo_fn(op, dtype, operands)
        elem_offset = target.element_offset(offset)
        old, prev_time, seq = self.job.memories[pe].atomic_rmw_timed(
            elem_offset, dtype, fn, timestamp=done
        )
        if prev_time > 0.0:
            # Causality: we observed a value deposited at prev_time, so
            # our operation was serviced after it — no earlier than
            # prev_time plus the target-side processing (NIC atomic unit,
            # or CPU attentiveness + handler for AM-emulated atomics)
            # plus the return leg.  This is what gives lock handoff
            # chains their cost.
            if proc is None:
                m = self.job.machine
                if self.job.topology.same_node(ctx.pe, pe):
                    back = m.intra_latency_us
                    proc = m.amo_process_us
                else:
                    back = m.link_latency_us
                    proc = (
                        m.amo_process_us
                        if self.profile.amo_offload
                        else m.am_attentiveness_us + m.cpu_am_process_us
                    )
            done = max(done, prev_time + proc + back)
        ctx.clock.merge(done)
        tracer = self.job.tracer
        if tracer is not None:
            if tracer.capture_sync:
                fp = contiguous_footprint(elem_offset, 8)
                meta = ("a", seq)
            else:
                fp, meta = (), ()
            tracer.record(
                ctx.pe, "atomic", pe, 8, t_start, ctx.clock.now,
                addr=elem_offset, footprint=fp, meta=meta,
            )
        return old

    @staticmethod
    def _amo_fn(op: str, dtype: np.dtype, operands: tuple):
        if op == "swap":
            (value,) = operands
            v = dtype.type(value)
            return lambda old: v
        if op == "cswap":
            value, cond = operands
            v, c = dtype.type(value), dtype.type(cond)
            return lambda old: v if old == c else old
        if op == "fadd":
            (value,) = operands
            v = dtype.type(value)
            return lambda old: dtype.type(old + v)
        if op == "fetch":
            if operands:
                raise ValueError("fetch takes no operand")
            return lambda old: old
        if op == "set":
            (value,) = operands
            v = dtype.type(value)
            return lambda old: v
        if op in ("and", "or", "xor"):
            if not np.issubdtype(dtype, np.integer):
                raise TypeError(f"bitwise atomic {op!r} requires an integer dtype")
            (value,) = operands
            v = dtype.type(value)
            bitop = {"and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor}[op]
            return lambda old: dtype.type(bitop(old, v))
        raise ValueError(f"unknown atomic op {op!r}")

    # ------------------------------------------------------------------
    # Local reads
    # ------------------------------------------------------------------
    def local_read_scalar(self, array: SymmetricArray, offset: int = 0) -> np.generic:
        """Traced read of one element of this PE's own copy of ``array``.

        Runtime-internal protocol loads (e.g. the MCS release path
        reading its qnode's ``next`` link) must come through here rather
        than poking :class:`~repro.runtime.memory.PEMemory` directly, so
        the access is visible to the tracer and the sanitizer.  A local
        load is free in virtual time.
        """
        array.check_span(offset, 1)
        ctx = current()
        elem_offset = array.element_offset(offset)
        value = self.job.memories[ctx.pe].read_scalar(elem_offset, array.dtype)
        tracer = self.job.tracer
        if tracer is not None:
            fp = (
                contiguous_footprint(elem_offset, array.itemsize)
                if tracer.capture_sync
                else ()
            )
            tracer.record(
                ctx.pe, "get", ctx.pe, array.itemsize, ctx.clock.now, ctx.clock.now,
                addr=elem_offset, footprint=fp,
            )
        return value

    # ------------------------------------------------------------------
    # Point-to-point synchronization
    # ------------------------------------------------------------------
    def _wait_probe(self, ivar: SymmetricArray, cmp: str, value, offset: int = 0):
        """Validate a wait target and build its polling predicate;
        returns ``(mem, predicate, elem_offset)``.  Shared by
        :meth:`wait_until` and the event engine's
        :class:`~repro.engine.steps.WaitStep` handler so both poll
        identical logic."""
        ivar.check_span(offset, 1)
        op = comparator(cmp)
        ctx = current()
        mem = self.job.memories[ctx.pe]
        elem_offset = ivar.element_offset(offset)
        target_value = ivar.dtype.type(value)

        def predicate() -> bool:
            return bool(op(mem.read_scalar(elem_offset, ivar.dtype), target_value))

        return mem, predicate, elem_offset

    def wait_until(
        self, ivar: SymmetricArray, cmp: str, value, offset: int = 0,
        *, word: bool = False, target: int = -1,
    ) -> None:
        """Block until local ``ivar[offset] <cmp> value`` holds; merges
        the satisfying write's virtual timestamp into the clock.

        ``word=True`` merges the awaited word's own atomic timestamp
        instead of the memory-global last-write time.  That makes the
        merged clock independent of unordered writes to *other* words
        landing first, but is only sound when the protocol guarantees
        strict post/consume alternation on this word (one outstanding
        post per channel — the collective library's discipline).

        ``target`` names the remote PE whose write is awaited, when the
        protocol knows it: a survivable job then fails the wait with
        :class:`~repro.runtime.failures.ImageFailedError` as soon as
        that PE is marked failed, instead of blocking until the
        watchdog's wall-clock deadline.
        """
        ctx = current()
        mem, predicate, elem_offset = self._wait_probe(ivar, cmp, value, offset)
        ts = self.engine.wait_value(
            ctx, mem, predicate,
            f"wait_until(offset={elem_offset}, {cmp} {value!r})",
            target if self._failed is not None else -1,
        )
        if word:
            ts = mem.word_time(elem_offset)
        ctx.clock.merge(ts)
