"""The shared one-sided communication engine.

:class:`OneSidedLayer` implements the mechanics every modeled library
shares: registered-segment allocation, contiguous and 1-D-strided RMA,
8-byte atomics, completion tracking (``quiet``), and a barrier.  The
behaviour differences between libraries come from the
:class:`~repro.sim.netmodel.ConduitProfile` each subclass installs:

* per-call software overheads (MPI-3.0's higher ``o_put_us`` produces
  Fig 2's latency gap);
* ``iput_native`` — Cray SHMEM offloads 1-D strided transfers to the
  NIC, MVAPICH2-X SHMEM and GASNet-based runtimes loop over contiguous
  puts (Fig 7's naive == 2dim result);
* ``amo_offload`` — SHMEM atomics run on the NIC atomic unit, GASNet
  atomics are active-message round trips through the target CPU
  (Fig 8's lock gap).

Completion semantics follow the OpenSHMEM/GASNet non-blocking model:
``put`` returns after *local* completion; remote completion is only
observable through :meth:`quiet` (or a barrier, which includes one).
"""

from __future__ import annotations

import numpy as np

from repro.comm.heap import SymmetricArray
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.comm.constants import comparator
from repro.sim.netmodel import ConduitProfile, get_conduit


class OneSidedLayer:
    """Common engine under :mod:`repro.shmem`, :mod:`repro.gasnet`,
    and :mod:`repro.mpirma`."""

    #: Key under which the layer registers itself on the job.
    LAYER_NAME = "onesided"

    #: Virtual cost of a fence (ordering only; the simulated NIC already
    #: delivers same-initiator traffic in order).
    FENCE_COST_US = 0.02

    def __init__(self, job: Job, profile: ConduitProfile | str) -> None:
        if isinstance(profile, str):
            profile = get_conduit(profile)
        self.job = job
        self.profile = profile
        # Max outstanding remote-completion time of each PE's puts.
        self._pending = [0.0] * job.num_pes

    # ------------------------------------------------------------------
    # Registered-segment ("symmetric") memory
    # ------------------------------------------------------------------
    def alloc_array(
        self, shape: int | tuple[int, ...], dtype: np.dtype
    ) -> SymmetricArray:
        """Collectively allocate an array at the same offset on every PE."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in shape {shape}")
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize if shape else dt.itemsize
        ctx = current()
        offset = self.job.collectives.agree(
            ctx,
            f"{self.LAYER_NAME}.alloc:{shape}:{dt.str}",
            lambda: self.job.symmetric_allocator.malloc(max(nbytes, 1)),
        )
        # Allocation is synchronizing: no PE may target the region on a
        # PE that has not allocated it yet.
        self.barrier_all()
        return SymmetricArray(self, offset, shape, dt)

    def free_array(self, array: SymmetricArray) -> None:
        """Collectively release an allocation (synchronizes first)."""
        if array.layer is not self:
            raise ValueError("array belongs to a different job/layer")
        array._check_live()
        ctx = current()
        self.barrier_all()
        self.job.collectives.agree(
            ctx,
            f"{self.LAYER_NAME}.free:{array.byte_offset}",
            lambda: self.job.symmetric_allocator.free(array.byte_offset),
        )
        array._freed = True

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.job.num_pes:
            raise ValueError(f"PE {pe} out of range [0, {self.job.num_pes})")

    def _coerce(
        self, array: SymmetricArray, value, nelems: int | None = None
    ) -> np.ndarray:
        data = np.ascontiguousarray(value, dtype=array.dtype).reshape(-1)
        if nelems is not None and data.size != nelems:
            raise ValueError(f"expected {nelems} elements, got {data.size}")
        return data

    # ------------------------------------------------------------------
    # Contiguous RMA
    # ------------------------------------------------------------------
    def put(self, dest: SymmetricArray, value, pe: int, offset: int = 0) -> None:
        """Contiguous put; returns after local completion."""
        self._check_pe(pe)
        data = self._coerce(dest, value)
        dest.check_span(offset, data.size)
        ctx = current()
        t_start = ctx.clock.now
        timing = self.job.network.put(ctx.pe, pe, data.nbytes, self.profile, t_start)
        self.job.memories[pe].write(
            dest.element_offset(offset) if data.size else dest.byte_offset,
            data,
            timestamp=timing.remote_complete,
        )
        ctx.clock.merge(timing.local_complete)
        if timing.remote_complete > self._pending[ctx.pe]:
            self._pending[ctx.pe] = timing.remote_complete
        if self.job.tracer is not None:
            self.job.tracer.record(ctx.pe, "put", pe, data.nbytes, t_start, ctx.clock.now)

    def get(self, src: SymmetricArray, nelems: int, pe: int, offset: int = 0) -> np.ndarray:
        """Blocking contiguous get; returns the fetched elements."""
        self._check_pe(pe)
        src.check_span(offset, nelems)
        ctx = current()
        nbytes = nelems * src.itemsize
        t_start = ctx.clock.now
        done = self.job.network.get(ctx.pe, pe, nbytes, self.profile, t_start)
        raw = self.job.memories[pe].read(
            src.element_offset(offset) if nelems else src.byte_offset, nbytes
        )
        ctx.clock.merge(done)
        if self.job.tracer is not None:
            self.job.tracer.record(ctx.pe, "get", pe, nbytes, t_start, ctx.clock.now)
        return raw.view(src.dtype).copy()

    # ------------------------------------------------------------------
    # 1-D strided RMA
    # ------------------------------------------------------------------
    def iput(
        self,
        dest: SymmetricArray,
        value,
        tst: int,
        sst: int,
        nelems: int,
        pe: int,
        offset: int = 0,
    ) -> None:
        """1-D strided put (strides in elements, must be >= 1).

        Native conduits issue one NIC descriptor; others loop over
        contiguous single-element puts (the paper's observation about
        MVAPICH2-X's ``shmem_iput``).
        """
        self._check_pe(pe)
        if nelems < 0:
            raise ValueError("nelems must be non-negative")
        source = np.ascontiguousarray(value, dtype=dest.dtype).reshape(-1)
        if nelems and (sst < 1 or tst < 1):
            raise ValueError("strides must be >= 1")
        if nelems:
            needed = (nelems - 1) * sst + 1
            if source.size < needed:
                raise ValueError(
                    f"source has {source.size} elements; stride {sst} x {nelems} needs {needed}"
                )
        dest.check_span(offset, nelems, tst)
        if nelems == 0:
            return
        gathered = source[::sst][:nelems]
        ctx = current()
        t_start = ctx.clock.now
        itemsize = dest.itemsize
        if self.profile.iput_native:
            timing = self.job.network.iput(
                ctx.pe,
                pe,
                nelems,
                itemsize,
                self.profile,
                ctx.clock.now,
                stride_bytes=tst * itemsize,
            )
            self.job.memories[pe].write_strided(
                dest.element_offset(offset),
                tst * itemsize,
                itemsize,
                gathered,
                timestamp=timing.remote_complete,
            )
            ctx.clock.merge(timing.local_complete)
            if timing.remote_complete > self._pending[ctx.pe]:
                self._pending[ctx.pe] = timing.remote_complete
            if self.job.tracer is not None:
                self.job.tracer.record(
                    ctx.pe, "iput", pe, nelems * itemsize, t_start, ctx.clock.now
                )
        else:
            for i in range(nelems):
                self.put(dest, gathered[i : i + 1], pe, offset + i * tst)

    def iget(
        self, src: SymmetricArray, tst: int, sst: int, nelems: int, pe: int, offset: int = 0
    ) -> np.ndarray:
        """1-D strided get; returns ``nelems`` gathered (contiguous)
        elements.  ``sst`` strides the remote source."""
        self._check_pe(pe)
        if nelems < 0:
            raise ValueError("nelems must be non-negative")
        if nelems and (sst < 1 or tst < 1):
            raise ValueError("strides must be >= 1")
        src.check_span(offset, nelems, sst)
        if nelems == 0:
            return np.empty(0, dtype=src.dtype)
        ctx = current()
        t_start = ctx.clock.now
        itemsize = src.itemsize
        if self.profile.iput_native:
            done = self.job.network.iget(
                ctx.pe,
                pe,
                nelems,
                itemsize,
                self.profile,
                ctx.clock.now,
                stride_bytes=sst * itemsize,
            )
            raw = self.job.memories[pe].read_strided(
                src.element_offset(offset), sst * itemsize, itemsize, nelems
            )
            ctx.clock.merge(done)
            if self.job.tracer is not None:
                self.job.tracer.record(
                    ctx.pe, "iget", pe, nelems * itemsize, t_start, ctx.clock.now
                )
            return raw.view(src.dtype).copy()
        out = np.empty(nelems, dtype=src.dtype)
        for i in range(nelems):
            out[i] = self.get(src, 1, pe, offset + i * sst)[0]
        return out

    # ------------------------------------------------------------------
    # Ordering / completion
    # ------------------------------------------------------------------
    def quiet(self) -> None:
        """Block until all of this PE's outstanding puts are remotely
        complete."""
        ctx = current()
        t_start = ctx.clock.now
        ctx.clock.merge(self._pending[ctx.pe])
        self._pending[ctx.pe] = 0.0
        if self.job.tracer is not None and ctx.clock.now > t_start:
            self.job.tracer.record(ctx.pe, "quiet", -1, 0, t_start, ctx.clock.now)

    def fence(self) -> None:
        """Order (but do not complete) outstanding puts per target."""
        current().clock.advance(self.FENCE_COST_US)

    def barrier_all(self) -> None:
        """Quiet + dissemination barrier over all PEs."""
        ctx = current()
        t_start = ctx.clock.now
        self.quiet()
        cost = self.job.network.barrier_cost(self.job.num_pes, self.profile)
        self.job.barrier.wait(ctx, cost)
        if self.job.tracer is not None:
            self.job.tracer.record(ctx.pe, "barrier", -1, 0, t_start, ctx.clock.now)

    # ------------------------------------------------------------------
    # 8-byte atomics
    # ------------------------------------------------------------------
    def atomic(
        self, target: SymmetricArray, pe: int, offset: int, op: str, *operands
    ) -> np.generic | None:
        """Execute an 8-byte atomic on ``target[offset]`` at ``pe``.

        ``op`` is one of ``swap``, ``cswap``, ``fadd``, ``fetch``,
        ``set``, ``and``, ``or``, ``xor``; returns the old value.
        Pricing depends on the profile: NIC atomic unit when offloaded,
        active-message round trip through the target CPU otherwise.
        """
        self._check_pe(pe)
        target.check_span(offset, 1)
        if target.itemsize != 8:
            raise TypeError(
                f"remote atomics require an 8-byte dtype, got {target.dtype} "
                f"(the paper packs MCS pointers into 64 bits for this reason)"
            )
        dtype = target.dtype
        ctx = current()
        t_start = ctx.clock.now
        done = self.job.network.amo(ctx.pe, pe, self.profile, t_start)
        fn = self._amo_fn(op, dtype, operands)
        old, prev_time = self.job.memories[pe].atomic_rmw_timed(
            target.element_offset(offset), dtype, fn, timestamp=done
        )
        if prev_time > 0.0:
            # Causality: we observed a value deposited at prev_time, so
            # our operation was serviced after it — no earlier than
            # prev_time plus the target-side processing (NIC atomic unit,
            # or CPU attentiveness + handler for AM-emulated atomics)
            # plus the return leg.  This is what gives lock handoff
            # chains their cost.
            m = self.job.machine
            if self.job.topology.same_node(ctx.pe, pe):
                back = m.intra_latency_us
                proc = m.amo_process_us
            else:
                back = m.link_latency_us
                proc = (
                    m.amo_process_us
                    if self.profile.amo_offload
                    else m.am_attentiveness_us + m.cpu_am_process_us
                )
            done = max(done, prev_time + proc + back)
        ctx.clock.merge(done)
        if self.job.tracer is not None:
            self.job.tracer.record(ctx.pe, "atomic", pe, 8, t_start, ctx.clock.now)
        return old

    @staticmethod
    def _amo_fn(op: str, dtype: np.dtype, operands: tuple):
        if op == "swap":
            (value,) = operands
            v = dtype.type(value)
            return lambda old: v
        if op == "cswap":
            value, cond = operands
            v, c = dtype.type(value), dtype.type(cond)
            return lambda old: v if old == c else old
        if op == "fadd":
            (value,) = operands
            v = dtype.type(value)
            return lambda old: dtype.type(old + v)
        if op == "fetch":
            if operands:
                raise ValueError("fetch takes no operand")
            return lambda old: old
        if op == "set":
            (value,) = operands
            v = dtype.type(value)
            return lambda old: v
        if op in ("and", "or", "xor"):
            if not np.issubdtype(dtype, np.integer):
                raise TypeError(f"bitwise atomic {op!r} requires an integer dtype")
            (value,) = operands
            v = dtype.type(value)
            bitop = {"and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor}[op]
            return lambda old: dtype.type(bitop(old, v))
        raise ValueError(f"unknown atomic op {op!r}")

    # ------------------------------------------------------------------
    # Point-to-point synchronization
    # ------------------------------------------------------------------
    def wait_until(self, ivar: SymmetricArray, cmp: str, value, offset: int = 0) -> None:
        """Block until local ``ivar[offset] <cmp> value`` holds; merges
        the satisfying write's virtual timestamp into the clock."""
        ivar.check_span(offset, 1)
        op = comparator(cmp)
        ctx = current()
        mem = self.job.memories[ctx.pe]
        elem_offset = ivar.element_offset(offset)
        target_value = ivar.dtype.type(value)

        def predicate() -> bool:
            return bool(op(mem.read_scalar(elem_offset, ivar.dtype), target_value))

        ts = mem.wait_until(predicate, aborted=self.job.aborted)
        ctx.clock.merge(ts)
