"""OpenSHMEM comparison constants for ``shmem_wait_until``."""

from __future__ import annotations

import operator
from typing import Callable

CMP_EQ = "eq"
CMP_NE = "ne"
CMP_GT = "gt"
CMP_GE = "ge"
CMP_LT = "lt"
CMP_LE = "le"

COMPARATORS: dict[str, Callable] = {
    CMP_EQ: operator.eq,
    CMP_NE: operator.ne,
    CMP_GT: operator.gt,
    CMP_GE: operator.ge,
    CMP_LT: operator.lt,
    CMP_LE: operator.le,
}


def comparator(cmp: str) -> Callable:
    """Resolve a comparison name to its operator; raises on unknown."""
    try:
        return COMPARATORS[cmp]
    except KeyError:
        raise ValueError(
            f"unknown comparison {cmp!r}; expected one of {sorted(COMPARATORS)}"
        ) from None
