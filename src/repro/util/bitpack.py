"""64-bit packed remote pointers (paper Section IV-D).

The MCS lock adaptation stores queue-node pointers inside a single
remotely-atomic 64-bit word so that OpenSHMEM's 8-byte atomics
(``shmem_swap`` / ``shmem_cswap``) can manipulate them.  The paper's
layout is:

* 20 bits — image index (1-based; 0 encodes the nil pointer)
* 36 bits — byte offset of the qnode within the managed, non-symmetric
  remotely-accessible buffer
* 8 bits  — reserved flag bits

The nil pointer is the all-zero word, which is convenient because a
freshly ``shmalloc``-ed lock word starts life zeroed.
"""

from __future__ import annotations

from dataclasses import dataclass

IMAGE_BITS = 20
OFFSET_BITS = 36
FLAG_BITS = 8

assert IMAGE_BITS + OFFSET_BITS + FLAG_BITS == 64

MAX_IMAGE = (1 << IMAGE_BITS) - 1
MAX_OFFSET = (1 << OFFSET_BITS) - 1
MAX_FLAGS = (1 << FLAG_BITS) - 1

_OFFSET_SHIFT = FLAG_BITS
_IMAGE_SHIFT = FLAG_BITS + OFFSET_BITS

#: The packed representation of "no qnode" (tail empty / no successor).
NIL = 0


@dataclass(frozen=True, slots=True)
class RemotePointer:
    """A decoded remote pointer: which image, where in its managed heap."""

    image: int  # 1-based CAF image index; 0 is reserved for nil
    offset: int  # byte offset within the image's managed heap
    flags: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.image <= MAX_IMAGE:
            raise ValueError(f"image {self.image} out of range [0, {MAX_IMAGE}]")
        if not 0 <= self.offset <= MAX_OFFSET:
            raise ValueError(f"offset {self.offset} out of range [0, {MAX_OFFSET}]")
        if not 0 <= self.flags <= MAX_FLAGS:
            raise ValueError(f"flags {self.flags} out of range [0, {MAX_FLAGS}]")

    @property
    def is_nil(self) -> bool:
        return self.image == 0

    def pack(self) -> int:
        return pack_remote_pointer(self.image, self.offset, self.flags)


def pack_remote_pointer(image: int, offset: int, flags: int = 0) -> int:
    """Pack an (image, offset, flags) tuple into a 64-bit integer."""
    if not 0 <= image <= MAX_IMAGE:
        raise ValueError(f"image {image} out of range [0, {MAX_IMAGE}]")
    if not 0 <= offset <= MAX_OFFSET:
        raise ValueError(f"offset {offset} out of range [0, {MAX_OFFSET}]")
    if not 0 <= flags <= MAX_FLAGS:
        raise ValueError(f"flags {flags} out of range [0, {MAX_FLAGS}]")
    return (image << _IMAGE_SHIFT) | (offset << _OFFSET_SHIFT) | flags


def unpack_remote_pointer(word: int) -> RemotePointer:
    """Unpack a 64-bit integer into a :class:`RemotePointer`."""
    if not 0 <= word < (1 << 64):
        raise ValueError(f"word {word!r} is not a 64-bit unsigned value")
    image = word >> _IMAGE_SHIFT
    offset = (word >> _OFFSET_SHIFT) & MAX_OFFSET
    flags = word & MAX_FLAGS
    return RemotePointer(image=image, offset=offset, flags=flags)
