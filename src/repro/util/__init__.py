"""Utility layer: bit packing, allocation, formatting, statistics.

These helpers are shared by every subsystem; none of them knows anything
about PGAS semantics.  They are deliberately small, pure, and heavily
property-tested (see ``tests/util``).
"""

from repro.util.bitpack import RemotePointer, pack_remote_pointer, unpack_remote_pointer
from repro.util.allocator import FreeListAllocator, OutOfMemoryError
from repro.util.tables import Table, Series, format_bytes
from repro.util.stats import summarize, geomean

__all__ = [
    "RemotePointer",
    "pack_remote_pointer",
    "unpack_remote_pointer",
    "FreeListAllocator",
    "OutOfMemoryError",
    "Table",
    "Series",
    "format_bytes",
    "summarize",
    "geomean",
]
