"""Small statistics helpers used by the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Summary:
    n: int
    mean: float
    minimum: float
    maximum: float
    stddev: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} min={self.minimum:.4g} "
            f"max={self.maximum:.4g} sd={self.stddev:.4g}"
        )


def summarize(values: Sequence[float], ddof: int = 0) -> Summary:
    """Mean/min/max/stddev of a non-empty sequence.

    ``ddof`` selects the stddev's delta degrees of freedom: the default
    0 is the population stddev (divide by ``n``, the historical
    behaviour — benchmark repeats are the whole population of interest);
    pass 1 for the sample stddev (divide by ``n - 1``, Bessel's
    correction) when the values are a sample of a larger population.
    """
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    n = len(values)
    if not 0 <= ddof < n:
        raise ValueError(f"ddof must be in [0, {n}) for {n} values, got {ddof}")
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - ddof)
    return Summary(n=n, mean=mean, minimum=min(values), maximum=max(values), stddev=math.sqrt(var))


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the right average for speedup ratios."""
    vals = list(values)
    if not vals:
        raise ValueError("cannot take geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``.

    Both arguments are *times* (lower is better); a result > 1 means
    ``improved`` wins.
    """
    if improved <= 0 or baseline <= 0:
        raise ValueError("times must be positive")
    return baseline / improved


def percent_gain(baseline: float, improved: float) -> float:
    """Percentage time reduction of ``improved`` relative to ``baseline``."""
    if improved <= 0 or baseline <= 0:
        raise ValueError("times must be positive")
    return (baseline - improved) / baseline * 100.0
