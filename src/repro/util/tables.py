"""ASCII rendering of the tables and figure-series the paper reports.

The benchmark harness prints each reproduced table/figure as a plain
monospaced table so that runs of ``pytest benchmarks/`` show the same
rows/series the paper's plots contain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

_UNITS = ["B", "KB", "MB", "GB"]


def format_bytes(n: int) -> str:
    """Render a byte count the way the paper's x-axes do (powers of two)."""
    value = float(n)
    for unit in _UNITS:
        if value < 1024 or unit == _UNITS[-1]:
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


@dataclass
class Table:
    """A titled grid of rows with a header, rendered with aligned columns."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        cells = [[str(h) for h in self.headers]] + [
            [_fmt(c) for c in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.headers))]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Series:
    """One line of a figure: a label plus (x, y) points."""

    label: str
    points: list[tuple[Any, float]] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> list[Any]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> list[float]:
        return [p[1] for p in self.points]


def render_figure(title: str, x_label: str, y_label: str, series: Sequence[Series]) -> str:
    """Render a figure as a table: one x column, one column per series."""
    xs = series[0].xs
    for s in series:
        if s.xs != xs:
            raise ValueError(f"series {s.label!r} has mismatched x values")
    table = Table(
        title=f"{title}   [y = {y_label}]",
        headers=[x_label, *[s.label for s in series]],
    )
    for i, x in enumerate(xs):
        table.add_row(x, *[s.ys[i] for s in series])
    return table.render()


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
