"""First-fit free-list allocator over a flat byte range.

Used twice in the stack, mirroring the paper's memory organization:

* the **symmetric heap** of every PE (backing ``shmalloc``/``shfree``),
  where the allocator metadata is shared so that every PE receives the
  same offset for the same collective allocation; and
* the **managed non-symmetric heap** carved out of one big symmetric
  allocation at program start, from which coarrays of derived type,
  MCS lock qnodes, and other non-symmetric remotely-accessible objects
  are served (paper Section IV-A and IV-D).

The allocator hands out *offsets*, not pointers; callers combine the
offset with a PE's base buffer.  All blocks are aligned to ``alignment``
bytes (default 16, enough for any NumPy scalar dtype).
"""

from __future__ import annotations

import bisect
import threading


class OutOfMemoryError(MemoryError):
    """Raised when an allocation cannot be satisfied."""


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class FreeListAllocator:
    """Thread-safe first-fit allocator with coalescing free list.

    Parameters
    ----------
    capacity:
        Total number of bytes managed.
    alignment:
        Every returned offset and every block size is a multiple of this
        power of two.
    """

    def __init__(self, capacity: int, *, alignment: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        self.capacity = capacity
        self.alignment = alignment
        # Free list: sorted list of (offset, size) with no two adjacent
        # blocks touching (they are always coalesced on free()).  Only the
        # aligned prefix of the range is managed; a ragged tail is unusable.
        usable = capacity - capacity % alignment
        if usable == 0:
            raise ValueError("capacity smaller than one alignment unit")
        self._free: list[tuple[int, int]] = [(0, usable)]
        self._allocated: dict[int, int] = {}  # offset -> size
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; return the offset of the block.

        A zero-byte request is rounded up to one alignment unit so that
        every live allocation has a distinct offset (matching
        ``shmalloc`` semantics where a zero-size request may return a
        unique symmetric address).
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        need = _align_up(max(size, 1), self.alignment)
        with self._lock:
            for i, (off, blk) in enumerate(self._free):
                if blk >= need:
                    if blk == need:
                        del self._free[i]
                    else:
                        self._free[i] = (off + need, blk - need)
                    self._allocated[off] = need
                    return off
        raise OutOfMemoryError(
            f"cannot allocate {size} bytes (aligned {need}) from heap of {self.capacity}"
        )

    def free(self, offset: int) -> None:
        """Release a block previously returned by :meth:`malloc`."""
        with self._lock:
            size = self._allocated.pop(offset, None)
            if size is None:
                raise ValueError(f"free of unallocated offset {offset}")
            idx = bisect.bisect_left(self._free, (offset, 0))
            self._free.insert(idx, (offset, size))
            self._coalesce(idx)

    def _coalesce(self, idx: int) -> None:
        # Merge with successor first, then predecessor.
        if idx + 1 < len(self._free):
            off, size = self._free[idx]
            noff, nsize = self._free[idx + 1]
            if off + size == noff:
                self._free[idx] = (off, size + nsize)
                del self._free[idx + 1]
        if idx > 0:
            poff, psize = self._free[idx - 1]
            off, size = self._free[idx]
            if poff + psize == off:
                self._free[idx - 1] = (poff, psize + size)
                del self._free[idx]

    # ------------------------------------------------------------------
    def size_of(self, offset: int) -> int:
        """Return the (aligned) size of a live allocation."""
        with self._lock:
            try:
                return self._allocated[offset]
            except KeyError:
                raise ValueError(f"offset {offset} is not allocated") from None

    @property
    def bytes_allocated(self) -> int:
        with self._lock:
            return sum(self._allocated.values())

    @property
    def bytes_free(self) -> int:
        with self._lock:
            return sum(size for _, size in self._free)

    @property
    def live_blocks(self) -> int:
        with self._lock:
            return len(self._allocated)

    def check_invariants(self) -> None:
        """Verify the free list is sorted, coalesced, and disjoint from
        live allocations.  Test hook; raises ``AssertionError``."""
        with self._lock:
            prev_end = None
            for off, size in self._free:
                assert size > 0, "empty free block"
                assert off % self.alignment == 0
                assert size % self.alignment == 0
                if prev_end is not None:
                    assert off > prev_end, "free list not sorted/coalesced"
                prev_end = off + size
            spans = sorted(
                [(o, o + s) for o, s in self._allocated.items()]
                + [(o, o + s) for o, s in self._free]
            )
            for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                assert a1 <= b0, "overlapping blocks"
            total = sum(b - a for a, b in spans)
            usable = self.capacity - self.capacity % self.alignment
            assert total == usable, f"accounting leak: {total} != {usable}"
