"""Trace rendering: per-operation profiles and ASCII timelines."""

from __future__ import annotations

import typing
from collections import defaultdict

from repro.util.tables import Table, format_bytes

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.trace.events import Tracer

_TIMELINE_GLYPHS = {
    "put": "p",
    "get": "g",
    "iput": "s",
    "iget": "z",
    "atomic": "a",
    "quiet": "q",
    "barrier": "B",
    "am": "m",
    "fence": "f",
    "lock_acquire": "L",
    "lock_release": "U",
    "post": "o",
    "wait": "w",
}


def render_profile(tracer: "Tracer") -> Table:
    """Per-operation totals across all PEs (CrayPat-style summary)."""
    by_op: dict[str, list] = defaultdict(list)
    for per_pe in tracer.events:
        for e in per_pe:
            by_op[e.op].append(e)
    table = Table(
        "Communication profile (virtual time)",
        ["op", "calls", "bytes", "total time (us)", "mean (us)", "max (us)"],
    )
    for op in sorted(by_op, key=lambda o: -sum(e.duration for e in by_op[o])):
        events = by_op[op]
        total = sum(e.duration for e in events)
        table.add_row(
            op,
            len(events),
            format_bytes(sum(e.nbytes for e in events)),
            round(total, 2),
            round(total / len(events), 3),
            round(max(e.duration for e in events), 3),
        )
    return table


def render_timeline(tracer: "Tracer", pe: int, width: int = 72) -> str:
    """ASCII Gantt strip of one PE's communication in virtual time.

    Each column is a time bucket; the glyph of the op occupying most of
    the bucket is shown ('.' = no communication = compute/idle).
    """
    if not 0 <= pe < len(tracer.events):
        raise ValueError(f"PE {pe} out of range")
    if width < 8:
        raise ValueError("width must be >= 8")
    events = tracer.events[pe]
    if not events:
        return f"PE {pe}: (no events)"
    t_end = max(e.t_end for e in events)
    if t_end <= 0:
        return f"PE {pe}: (all events at t=0)"
    bucket = t_end / width
    occupancy = [defaultdict(float) for _ in range(width)]
    for e in events:
        lo = min(width - 1, int(e.t_start / bucket))
        hi = min(width - 1, int(e.t_end / bucket))
        for b in range(lo, hi + 1):
            b_start = b * bucket
            b_end = b_start + bucket
            overlap = max(0.0, min(e.t_end, b_end) - max(e.t_start, b_start))
            occupancy[b][e.op] += overlap
    cells = []
    for occ in occupancy:
        if not occ:
            cells.append(".")
            continue
        op = max(occ, key=occ.get)
        cells.append(_TIMELINE_GLYPHS.get(op, "?"))
    legend = " ".join(f"{g}={op}" for op, g in _TIMELINE_GLYPHS.items())
    return (
        f"PE {pe} timeline 0..{t_end:.1f}us ({bucket:.2f}us/col)\n"
        f"|{''.join(cells)}|\n"
        f"legend: {legend}  .=compute/idle"
    )
