"""Communication tracing and profiling.

Production PGAS runtimes ship with profiling support (CrayPat on the
paper's Cray machines, TAU/Score-P elsewhere); this package provides
the equivalent for the simulated stack: attach a :class:`Tracer` to a
job and every one-sided operation (put/get/iput/iget/atomic/quiet/
barrier) records an event with its virtual start/end times, target and
payload size.  Reports aggregate per-PE and per-operation statistics
and render an ASCII timeline of the run.

Usage::

    from repro import caf, trace

    job-level:   tracer = trace.attach(job)    # before job.run(...)
    caf-level:   results = caf.launch(..., )   # or trace.launch wrapper
    afterwards:  print(tracer.profile().render())
                 print(tracer.timeline(pe=0))
"""

from repro.trace.events import TraceEvent, Tracer, attach
from repro.trace.report import render_profile, render_timeline
from repro.trace.sanitizer import (
    Finding,
    OrderingViolation,
    SanitizerReport,
    check_event_lists,
    check_events,
    check_tracer,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "attach",
    "render_profile",
    "render_timeline",
    "Finding",
    "OrderingViolation",
    "SanitizerReport",
    "check_event_lists",
    "check_events",
    "check_tracer",
]
