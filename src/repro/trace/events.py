"""Trace event capture.

A :class:`Tracer` keeps one event list per PE (threads never share a
list, so no locking on the hot path).  The communication layers call
:meth:`Tracer.record` when a tracer is attached to their job; with no
tracer attached the cost is one attribute read per operation.

Two capture modes exist:

* **profiling** (default) — data-path operations only, exactly what the
  per-op profile and timeline reports need;
* **sync capture** (``capture_sync=True``) — additionally records the
  synchronization fabric (every ``quiet``/``fence``, barrier episodes
  with their generation, lock acquire/release with lock identity and
  a global per-lock ticket, event/sync-images post/wait channels, and
  per-word atomic sequence numbers) plus precise byte **footprints** on
  data operations.  This is the input the happens-before sanitizer
  (:mod:`repro.trace.sanitizer`) consumes.
"""

from __future__ import annotations

import threading
import typing
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job

#: Operation kinds recorded by the layers.  The first eight are the
#: data/profiling ops; the rest are sync-capture-only records plus the
#: fault-injection records (``fault`` — an injected crash or exhausted
#: retry budget; ``retry`` — a transiently-failed operation that
#: succeeded after retransmission, ``calls`` counting the failed
#: attempts).  Fault records are machinery (``internal=True``) and
#: carry ``meta=("f", op)`` naming the faulted operation.
OPS = (
    "put",
    "get",
    "iput",
    "iget",
    "atomic",
    "quiet",
    "barrier",
    "am",
    "fence",
    "lock_acquire",
    "lock_release",
    "post",
    "wait",
    "fault",
    "retry",
    "fail",
)

#: Ops that move payload bytes (conflict candidates for the sanitizer).
DATA_OPS = frozenset({"put", "get", "iput", "iget", "atomic"})

#: O(1) membership check for the hot recording path.
_OPS_SET = frozenset(OPS)

#: Above this many merged intervals a footprint is coarsened to its
#: bounding span (conservative: may over-report overlap, never under-).
FOOTPRINT_CAP = 4096


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One communication operation, in virtual time.

    ``calls`` is the number of logical library calls the event covers:
    1 for ordinary operations, N for one aggregated record emitted by
    the batched plan-execution path in place of N per-call records.

    Sync-capture fields (all empty/defaulted in profiling mode):

    * ``addr`` — starting byte offset of the access in the target PE's
      heap (-1 when not applicable);
    * ``footprint`` — merged, ascending ``(start, length)`` byte
      intervals the operation touches on the target;
    * ``internal`` — the operation is synchronization machinery (lock
      protocol traffic); excluded from data-conflict checks;
    * ``meta`` — op-specific sync payload, a flat JSON-able tuple:
      ``("b", sync_id, generation)`` for barriers,
      ``("la"/"lr", lock_id, image, index, ticket)`` for lock ops,
      ``("po"/"wa", channel, ticket)`` for post/wait,
      ``("a", seq)`` for word atomics (per-word sequence number).
    """

    pe: int
    op: str
    target: int  # target PE (-1 for collectives / quiet)
    nbytes: int
    t_start: float
    t_end: float
    calls: int = 1
    addr: int = -1
    footprint: tuple = ()
    internal: bool = False
    meta: tuple = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


# ---------------------------------------------------------------------------
# Footprint helpers (byte-interval lists over the target heap)
# ---------------------------------------------------------------------------


def contiguous_footprint(addr: int, nbytes: int) -> tuple:
    """Footprint of a contiguous access."""
    return ((int(addr), int(nbytes)),) if nbytes else ()


def strided_footprint(addr: int, stride_bytes: int, elem_size: int, nelems: int) -> tuple:
    """Footprint of a 1-D strided access (``shmem_iput`` shape)."""
    if nelems <= 0:
        return ()
    if stride_bytes == elem_size or nelems == 1:
        return contiguous_footprint(addr, nelems * elem_size)
    if nelems > FOOTPRINT_CAP:  # coarsen: bounding span
        return ((int(addr), int((nelems - 1) * stride_bytes + elem_size)),)
    return tuple((int(addr + i * stride_bytes), int(elem_size)) for i in range(nelems))


def offsets_footprint(offsets: np.ndarray, elem_size: int) -> tuple:
    """Merged footprint of a batched scatter/gather (absolute byte
    offsets, one element of ``elem_size`` bytes each)."""
    if offsets.size == 0:
        return ()
    s = np.sort(np.asarray(offsets, dtype=np.int64))
    ends = s + elem_size
    breaks = np.nonzero(s[1:] > ends[:-1])[0] + 1
    starts = s[np.concatenate(([0], breaks))]
    stops = ends[np.concatenate((breaks - 1, [s.size - 1]))]
    if starts.size > FOOTPRINT_CAP:  # coarsen: bounding span
        return ((int(s[0]), int(ends[-1] - s[0])),)
    return tuple((int(a), int(b - a)) for a, b in zip(starts, stops))


def resolve_footprint(fp: tuple) -> tuple:
    """Materialize a deferred footprint descriptor.

    The vectorized data plane records footprints as cheap descriptors
    instead of computing the merged interval list inside the hot loop —
    a tuple whose first element is a string tag (real footprints start
    with an ``(offset, length)`` tuple, so the two cannot collide):

    * ``("@str", addr, stride_bytes, elem_size, nelems)`` — a 1-D
      strided access (:func:`strided_footprint` arguments);
    * ``("@off", rel_index, base, elem_size)`` — a batched plan access,
      ``rel_index`` being the spec's immutable relative byte-offset
      array and ``base`` the array's base byte offset.

    Resolution happens once, at trace *read* time (the ``events``
    property), so ``capture_sync=True`` no longer taxes the data path.
    Already-concrete footprints pass through unchanged.
    """
    if not fp or not isinstance(fp[0], str):
        return fp
    tag = fp[0]
    if tag == "@str":
        return strided_footprint(fp[1], fp[2], fp[3], fp[4])
    if tag == "@off":
        return offsets_footprint(fp[1] + fp[2], fp[3])
    raise ValueError(f"unknown deferred footprint tag {tag!r}")


class Tracer:
    """Per-job event capture.

    Recording is split into a hot and a cold half: :meth:`record`
    appends one plain tuple to a per-PE pool (no dataclass construction,
    no footprint math), and the :attr:`events` property materializes
    pooled records into :class:`TraceEvent` objects — resolving any
    deferred footprint descriptors — the first time the trace is
    actually read.  Readers (reports, serialization, the sanitizer,
    tests) see exactly the list-of-lists-of-events they always did;
    reading mid-run only guarantees visibility of events recorded
    before the read, as before.
    """

    def __init__(self, job: "Job", capture_sync: bool = False) -> None:
        self.job = job
        self.capture_sync = capture_sync
        self._events: list[list[TraceEvent]] = [[] for _ in range(job.num_pes)]
        self._pool: list[list[tuple]] = [[] for _ in range(job.num_pes)]
        self._mat_lock = threading.Lock()
        # Sync bookkeeping (cold path; one small lock).
        self._tls = threading.local()
        self._sync_lock = threading.Lock()
        self._lock_tickets: dict = {}
        self._lock_holds: dict = {}

    @property
    def events(self) -> list[list[TraceEvent]]:
        """Per-PE event lists (materializes any pooled raw records)."""
        self._materialize()
        return self._events

    def _materialize(self) -> None:
        if not any(self._pool):
            return
        with self._mat_lock:
            for pe, pool in enumerate(self._pool):
                if not pool:
                    continue
                self._pool[pe] = []
                self._events[pe].extend(
                    TraceEvent(
                        pe=r[0], op=r[1], target=r[2], nbytes=r[3],
                        t_start=r[4], t_end=r[5], calls=r[6], addr=r[7],
                        footprint=resolve_footprint(r[8]),
                        internal=r[9], meta=r[10],
                    )
                    for r in pool
                )

    def adopt_events(self, pe: int, events: list[TraceEvent]) -> None:
        """Replace one PE's event list with externally-recorded events.

        The process engine records each PE's trace inside its own
        process; at join the parent adopts the shipped (already
        materialized) lists, discarding the parent-side copies, which
        never saw the child's operations.
        """
        self._pool[pe] = []
        self._events[pe] = list(events)

    # ------------------------------------------------------------------
    # Sync-capture bookkeeping
    # ------------------------------------------------------------------
    @contextmanager
    def sync_internal(self):
        """Mark operations recorded inside the block as lock/sync
        machinery (``internal=True``) — excluded from conflict checks."""
        depth = getattr(self._tls, "depth", 0)
        self._tls.depth = depth + 1
        try:
            yield
        finally:
            self._tls.depth = depth

    @property
    def in_sync_internal(self) -> bool:
        return getattr(self._tls, "depth", 0) > 0

    def begin_hold(self, key, pe: int) -> int:
        """Assign the next global acquisition ticket for lock ``key``.

        Callers invoke this while holding the lock, so ticket order
        equals true acquisition order.
        """
        with self._sync_lock:
            ticket = self._lock_tickets.get(key, 0) + 1
            self._lock_tickets[key] = ticket
            self._lock_holds[(key, pe)] = ticket
            return ticket

    def end_hold(self, key, pe: int) -> int:
        """The ticket of ``pe``'s current hold of ``key`` (-1 unknown)."""
        with self._sync_lock:
            return self._lock_holds.pop((key, pe), -1)

    # ------------------------------------------------------------------
    def record(
        self,
        pe: int,
        op: str,
        target: int,
        nbytes: int,
        t_start: float,
        t_end: float,
        calls: int = 1,
        *,
        addr: int = -1,
        footprint: tuple = (),
        internal: bool | None = None,
        meta: tuple = (),
    ) -> None:
        if op not in _OPS_SET:
            raise ValueError(f"unknown trace op {op!r}; expected {OPS}")
        if internal is None:
            internal = self.in_sync_internal
        self._pool[pe].append(
            (pe, op, target, nbytes, t_start, t_end, calls, addr, footprint,
             internal, meta)
        )

    # ------------------------------------------------------------------
    def all_events(self) -> list[TraceEvent]:
        """Every event, ordered by start time."""
        out = [e for per_pe in self.events for e in per_pe]
        out.sort(key=lambda e: (e.t_start, e.pe))
        return out

    def count(self, op: str | None = None) -> int:
        if op is None:
            return sum(len(v) for v in self.events)
        return sum(1 for v in self.events for e in v if e.op == op)

    def bytes_moved(self) -> int:
        return sum(e.nbytes for v in self.events for e in v)

    def comm_time(self, pe: int) -> float:
        """Total virtual time PE spent inside communication calls."""
        return sum(e.duration for e in self.events[pe])

    def profile(self):
        """Aggregate per-operation statistics (a renderable table)."""
        from repro.trace.report import render_profile

        return render_profile(self)

    def timeline(self, pe: int, width: int = 72) -> str:
        from repro.trace.report import render_timeline

        return render_timeline(self, pe, width)


def attach(job: "Job", capture_sync: bool = False) -> Tracer:
    """Attach (or return the existing) tracer to a job.

    ``capture_sync=True`` turns on sync-edge capture (see module
    docstring); on an already-attached tracer it upgrades the mode.
    """
    tracer = getattr(job, "tracer", None)
    if tracer is None:
        tracer = Tracer(job, capture_sync=capture_sync)
        job.tracer = tracer
    elif capture_sync:
        tracer.capture_sync = True
    return tracer
