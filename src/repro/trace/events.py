"""Trace event capture.

A :class:`Tracer` keeps one event list per PE (threads never share a
list, so no locking on the hot path).  The communication layers call
:meth:`Tracer.record` when a tracer is attached to their job; with no
tracer attached the cost is one attribute read per operation.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import Job

#: Operation kinds recorded by the layers.
OPS = ("put", "get", "iput", "iget", "atomic", "quiet", "barrier", "am")


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One communication operation, in virtual time.

    ``calls`` is the number of logical library calls the event covers:
    1 for ordinary operations, N for one aggregated record emitted by
    the batched plan-execution path in place of N per-call records.
    """

    pe: int
    op: str
    target: int  # target PE (-1 for collectives / quiet)
    nbytes: int
    t_start: float
    t_end: float
    calls: int = 1

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Per-job event capture."""

    def __init__(self, job: "Job") -> None:
        self.job = job
        self.events: list[list[TraceEvent]] = [[] for _ in range(job.num_pes)]

    def record(
        self,
        pe: int,
        op: str,
        target: int,
        nbytes: int,
        t_start: float,
        t_end: float,
        calls: int = 1,
    ) -> None:
        if op not in OPS:
            raise ValueError(f"unknown trace op {op!r}; expected {OPS}")
        self.events[pe].append(
            TraceEvent(
                pe=pe,
                op=op,
                target=target,
                nbytes=nbytes,
                t_start=t_start,
                t_end=t_end,
                calls=calls,
            )
        )

    # ------------------------------------------------------------------
    def all_events(self) -> list[TraceEvent]:
        """Every event, ordered by start time."""
        out = [e for per_pe in self.events for e in per_pe]
        out.sort(key=lambda e: (e.t_start, e.pe))
        return out

    def count(self, op: str | None = None) -> int:
        if op is None:
            return sum(len(v) for v in self.events)
        return sum(1 for v in self.events for e in v if e.op == op)

    def bytes_moved(self) -> int:
        return sum(e.nbytes for v in self.events for e in v)

    def comm_time(self, pe: int) -> float:
        """Total virtual time PE spent inside communication calls."""
        return sum(e.duration for e in self.events[pe])

    def profile(self):
        """Aggregate per-operation statistics (a renderable table)."""
        from repro.trace.report import render_profile

        return render_profile(self)

    def timeline(self, pe: int, width: int = 72) -> str:
        from repro.trace.report import render_timeline

        return render_timeline(self, pe, width)


def attach(job: "Job") -> Tracer:
    """Attach (or return the existing) tracer to a job."""
    tracer = getattr(job, "tracer", None)
    if tracer is None:
        tracer = Tracer(job)
        job.tracer = tracer
    return tracer
