"""CLI: run the ordering sanitizer over a serialized trace.

    python -m repro.trace.sanitize <trace.json> [--quiet]

The trace should come from a sync-capture run (``caf.launch(...,
sanitize=True)`` or ``trace.attach(job, capture_sync=True)`` followed by
``trace.serialize.save``).  Plain profiling traces load fine but carry
no sync metadata, so most cross-PE conflicts will (correctly) be
reported as unordered.  Exit status: 0 when clean, 1 when findings
exist, 2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.trace.sanitizer import check_events
from repro.trace.serialize import events_from_dict


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.sanitize",
        description="Happens-before ordering/race sanitizer for serialized traces.",
    )
    parser.add_argument("trace", help="path to a serialized trace (JSON, format v1-v3)")
    parser.add_argument(
        "--quiet", action="store_true", help="print nothing; exit status only"
    )
    args = parser.parse_args(argv)

    try:
        doc = json.loads(Path(args.trace).read_text())
        events = events_from_dict(doc)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2

    report = check_events(events, doc["num_pes"])
    if not args.quiet:
        if not any(e.meta for e in events):
            print(
                "note: trace carries no sync metadata (recorded without "
                "capture_sync?); expect spurious unordered-conflict findings"
            )
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
