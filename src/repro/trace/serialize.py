"""Trace serialization: save/load event streams as JSON.

Production profilers persist traces for offline analysis; these helpers
round-trip a :class:`~repro.trace.events.Tracer`'s events through a
compact JSON document (one record per event), so traces can be diffed
across runs, post-processed outside the simulator, or fed to the
ordering sanitizer (``python -m repro.trace.sanitize``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trace.events import OPS, TraceEvent, Tracer

# v2 appended the per-event logical call count; v3 appends the
# sync-capture fields (addr, footprint, internal, meta); v4 admits the
# fault-injection ops ("fault", "retry") and v5 the failed-image op
# ("fail"), both with an unchanged record shape.
FORMAT_VERSION = 5


def to_dict(tracer: Tracer) -> dict:
    """A JSON-ready document for the tracer's events."""
    return {
        "format": FORMAT_VERSION,
        "num_pes": tracer.job.num_pes,
        "machine": tracer.job.machine.name,
        "events": [
            [
                e.pe,
                e.op,
                e.target,
                e.nbytes,
                e.t_start,
                e.t_end,
                e.calls,
                e.addr,
                [list(iv) for iv in e.footprint],
                int(e.internal),
                list(e.meta),
            ]
            for per_pe in tracer.events
            for e in per_pe
        ],
    }


def save(tracer: Tracer, path: str | Path) -> None:
    """Write the trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(to_dict(tracer)))


def events_from_dict(doc: dict) -> list[TraceEvent]:
    """Decode a document back into a flat, start-time-ordered event list.

    Accepts formats 1 (no call counts), 2 (call counts), 3 (sync
    fields), 4 (fault ops), and 5 (failed-image ops); the sort by
    ``(t_start, pe)`` is stable, so each PE's program order — the order
    records were written in — is preserved.
    """
    if doc.get("format") not in (1, 2, 3, 4, FORMAT_VERSION):
        raise ValueError(f"unsupported trace format {doc.get('format')!r}")
    num_pes = doc["num_pes"]
    out = []
    for rec in doc["events"]:
        pe, op, target, nbytes, t_start, t_end = rec[:6]
        calls = rec[6] if len(rec) > 6 else 1  # v1 records carry no count
        if len(rec) > 7:  # v3 sync-capture fields
            addr = rec[7]
            footprint = tuple((int(s), int(n)) for s, n in rec[8])
            internal = bool(rec[9])
            meta = tuple(rec[10])
        else:
            addr, footprint, internal, meta = -1, (), False, ()
        if not 0 <= pe < num_pes:
            raise ValueError(f"event names PE {pe} outside [0, {num_pes})")
        if op not in OPS:
            raise ValueError(f"unknown op {op!r} in trace")
        if t_end < t_start:
            raise ValueError(f"event ends before it starts: {rec}")
        if calls < 1:
            raise ValueError(f"event covers {calls} calls: {rec}")
        out.append(
            TraceEvent(
                pe=pe,
                op=op,
                target=target,
                nbytes=nbytes,
                t_start=t_start,
                t_end=t_end,
                calls=calls,
                addr=addr,
                footprint=footprint,
                internal=internal,
                meta=meta,
            )
        )
    out.sort(key=lambda e: (e.t_start, e.pe))
    return out


def load(path: str | Path) -> list[TraceEvent]:
    """Read a saved trace; returns the ordered event list."""
    return events_from_dict(json.loads(Path(path).read_text()))
