"""Trace-based happens-before ordering/race sanitizer.

The paper's correctness argument (Section IV-B, Table II) is that
inserting ``shmem_quiet`` at the right points bridges CAF's ordered-RMA
semantics onto OpenSHMEM's weak completion model.  This module makes
that argument machine-checkable: given a sync-capture trace (see
:mod:`repro.trace.events`), it reconstructs the happens-before partial
order and flags

* **unordered-conflict** — two accesses from different PEs touch
  overlapping symmetric bytes, at least one writes, and neither is
  ordered before the other (no path of program order, barrier episodes,
  lock release->acquire handoffs, post->wait channels, or same-word
  atomic chains);
* **missing-quiet** — a non-blocking put is ordered before a
  conflicting access on another PE, but no ``quiet``/``barrier`` on the
  writer intervenes on that path: under OpenSHMEM's completion model the
  bytes may not have landed yet, so the ordering is illusory;
* **unquiesced-release** — a lock release with critical-section puts
  not covered by a ``quiet`` before the lock word is freed (the next
  holder could read stale data);
* **cross-image-unlock** / **unmatched-release** — lock protocol
  misuse: the release of an acquisition ticket came from a different PE
  than the acquire, or from nowhere.

Happens-before edge sources (and deliberate non-sources):

* per-PE program order (trace records are written in call order);
* barrier records grouped into *episodes* by ``(sync_id, generation)``,
  joined through a synthetic episode node — predecessors of every
  member reach the episode, the episode reaches every member, and no
  spurious member<->member cycle appears;
* ``lock_release(ticket t) -> lock_acquire(ticket t+1)`` on the same
  lock identity (tickets are assigned in true acquisition order);
* ``post -> wait`` on the same channel with covering ticket
  (``sync_images`` pairwise counters);
* same-word atomic sequence chains (``meta=("a", seq)``) — atomics are
  treated as synchronizing, ThreadSanitizer-style, which is exactly how
  the runtime's flag/counter handshakes are meant to be used;
* ``wait_until`` is intentionally **not** an edge source: spinning on a
  plain word that a weakly-completed put may deliver early is the very
  race the sanitizer exists to catch.

Internal (lock-machinery) operations are excluded from data-conflict
candidacy but their quiets still count as quiesce points.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.trace.events import TraceEvent, Tracer

#: Non-blocking remote writes: remote completion needs quiet/barrier.
_WEAK_WRITE_OPS = frozenset({"put", "iput"})
_READ_OPS = frozenset({"get", "iget"})
_CONFLICT_OPS = frozenset({"put", "iput", "get", "iget", "atomic"})
_QUIESCE_OPS = frozenset({"quiet", "barrier"})


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnosis."""

    kind: str  # see module docstring
    message: str
    events: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.message}"


@dataclass
class SanitizerReport:
    """The outcome of one sanitizer pass."""

    findings: list[Finding] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"ordering sanitizer: {len(self.findings)} finding(s) "
            f"over {self.stats.get('events', 0)} events "
            f"({self.stats.get('sync_edges', 0)} sync edges, "
            f"{self.stats.get('pairs_checked', 0)} conflicting pairs checked)"
        ]
        for i, f in enumerate(self.findings, 1):
            lines.append(f"  {i}. [{f.kind}] {f.message}")
        return "\n".join(lines)


class OrderingViolation(RuntimeError):
    """Raised by ``caf.launch(..., sanitize=True)`` when the trace of the
    finished run contains ordering violations."""

    def __init__(self, report: SanitizerReport) -> None:
        super().__init__(report.render())
        self.report = report


class _Node:
    """One trace event as a graph node."""

    __slots__ = ("ev", "pe", "pos", "id")

    def __init__(self, ev: TraceEvent, pe: int, pos: int, id: int) -> None:
        self.ev = ev
        self.pe = pe
        self.pos = pos
        self.id = id


def _describe(n: _Node) -> str:
    e = n.ev
    span = ""
    if e.footprint:
        lo = e.footprint[0][0]
        hi = e.footprint[-1][0] + e.footprint[-1][1]
        span = f" bytes[{lo},{hi})"
    return (
        f"PE{e.pe} {e.op}"
        + (f"->PE{e.target}" if e.target >= 0 else "")
        + span
        + f" @t={e.t_start:.3f}us (#{n.pos})"
    )


def check_tracer(tracer: Tracer) -> SanitizerReport:
    """Run the sanitizer over a live tracer's events."""
    return check_event_lists([list(per) for per in tracer.events])


def check_events(events: list[TraceEvent], num_pes: int) -> SanitizerReport:
    """Run the sanitizer over a flat (loaded) event list.

    Relies on the serializer's stable ``(t_start, pe)`` ordering keeping
    each PE's records in program order.
    """
    per_pe: list[list[TraceEvent]] = [[] for _ in range(num_pes)]
    for e in events:
        per_pe[e.pe].append(e)
    return check_event_lists(per_pe)


def check_event_lists(per_pe: list[list[TraceEvent]]) -> SanitizerReport:
    num_pes = len(per_pe)
    report = SanitizerReport()
    nodes: list[_Node] = []
    by_pe: list[list[_Node]] = []
    for pe, evs in enumerate(per_pe):
        row = []
        for pos, ev in enumerate(evs):
            n = _Node(ev, pe, pos, len(nodes))
            nodes.append(n)
            row.append(n)
        by_pe.append(row)
    report.stats["events"] = len(nodes)

    edges, sync_edges = _build_edges(nodes, by_pe, report)
    report.stats["sync_edges"] = sync_edges

    vcs, acyclic = _vector_clocks(nodes, by_pe, edges, num_pes)
    if not acyclic:
        report.findings.append(
            Finding(
                "cyclic-sync",
                "sync edges form a cycle — the trace is internally "
                "inconsistent; skipping happens-before checks",
            )
        )
        return report

    def hb(a: _Node, b: _Node) -> bool:
        """Does ``a`` happen before ``b``?"""
        return a is not b and vcs[b.id][a.pe] > a.pos

    _check_conflicts(nodes, by_pe, hb, report)
    _check_lock_discipline(nodes, by_pe, report)
    return report


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------


def _build_edges(nodes, by_pe, report):
    """Cross-PE sync edges as ``dst_id -> [src_ids]`` (program-order
    edges are handled implicitly by the topological pass).

    Synthetic barrier-episode nodes get ids past the event range.
    """
    preds: dict[int, list[int]] = defaultdict(list)
    next_id = len(nodes)
    sync_edges = 0

    # Barrier episodes.
    episodes: dict[tuple, list[_Node]] = defaultdict(list)
    for n in nodes:
        if n.ev.op == "barrier" and len(n.ev.meta) == 3 and n.ev.meta[0] == "b":
            episodes[(n.ev.meta[1], n.ev.meta[2])].append(n)
    episode_ids = []
    for members in episodes.values():
        ep = next_id
        next_id += 1
        episode_ids.append(ep)
        for m in members:
            if m.pos > 0:
                preds[ep].append(by_pe[m.pe][m.pos - 1].id)
            preds[m.id].append(ep)
            sync_edges += 1

    # Lock handoff: release(ticket t) -> acquire(ticket t+1).
    acquires: dict[tuple, dict[int, _Node]] = defaultdict(dict)
    releases: dict[tuple, dict[int, _Node]] = defaultdict(dict)
    for n in nodes:
        m = n.ev.meta
        if n.ev.op == "lock_acquire" and len(m) == 5:
            acquires[m[1:4]][m[4]] = n
        elif n.ev.op == "lock_release" and len(m) == 5:
            releases[m[1:4]][m[4]] = n
    for key, rel in releases.items():
        acq = acquires.get(key, {})
        for ticket, r in rel.items():
            a = acq.get(ticket + 1)
            if a is not None and ticket >= 0:
                preds[a.id].append(r.id)
                sync_edges += 1

    # Post/wait channels (sync_images pairwise counters).
    posts: dict[str, list[tuple[int, _Node]]] = defaultdict(list)
    waits: list[_Node] = []
    for n in nodes:
        m = n.ev.meta
        if n.ev.op == "post" and len(m) == 3 and m[0] == "po":
            posts[m[1]].append((m[2], n))
        elif n.ev.op == "wait" and len(m) == 3 and m[0] == "wa":
            waits.append(n)
    for w in waits:
        _, channel, ticket = w.ev.meta
        if ticket < 0:
            continue  # ordering carried by the counter's atomic chain
        for tp, p in posts.get(channel, ()):
            if 0 <= tp <= ticket and p.pe != w.pe:
                preds[w.id].append(p.id)
                sync_edges += 1

    # Same-word atomic sequence chains.
    chains: dict[tuple, list[tuple[int, _Node]]] = defaultdict(list)
    for n in nodes:
        m = n.ev.meta
        if n.ev.op == "atomic" and len(m) == 2 and m[0] == "a":
            chains[(n.ev.target, n.ev.addr)].append((m[1], n))
    for chain in chains.values():
        chain.sort(key=lambda t: t[0])
        for (_, a), (_, b) in zip(chain, chain[1:]):
            if a.pe != b.pe:  # same-PE order is program order already
                preds[b.id].append(a.id)
            sync_edges += 1

    # Record how many synthetic nodes exist for the topo pass.
    report.stats["episodes"] = len(episode_ids)
    return (preds, next_id), sync_edges


def _vector_clocks(nodes, by_pe, edges, num_pes):
    """Per-node vector clocks via a Kahn topological pass.

    ``vcs[n][p]`` = number of PE ``p``'s events that happen before (or
    are) node ``n``; returns ``(vcs, acyclic)``.
    """
    preds, total = edges
    succs: dict[int, list[int]] = defaultdict(list)
    indeg = np.zeros(total, dtype=np.int64)
    for dst, srcs in preds.items():
        for src in srcs:
            succs[src].append(dst)
        indeg[dst] += len(srcs)
    # Implicit program-order edge: each event with pos > 0 depends on
    # its predecessor in the same PE.
    for n in nodes:
        if n.pos > 0:
            indeg[n.id] += 1

    vcs = np.zeros((total, num_pes), dtype=np.int64)
    queue = deque(i for i in range(total) if indeg[i] == 0)
    po_succ = {}
    for row in by_pe:
        for a, b in zip(row, row[1:]):
            po_succ[a.id] = b.id
    processed = 0
    is_event = len(nodes)
    while queue:
        i = queue.popleft()
        processed += 1
        if i < is_event:
            n = nodes[i]
            if n.pos > 0:
                np.maximum(vcs[i], vcs[by_pe[n.pe][n.pos - 1].id], out=vcs[i])
            for src in preds.get(i, ()):
                np.maximum(vcs[i], vcs[src], out=vcs[i])
            vcs[i][n.pe] = n.pos + 1
            nxt = po_succ.get(i)
            if nxt is not None:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        else:
            for src in preds.get(i, ()):
                np.maximum(vcs[i], vcs[src], out=vcs[i])
        for dst in succs.get(i, ()):
            indeg[dst] -= 1
            if indeg[dst] == 0:
                queue.append(dst)
    return vcs, processed == total


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def _check_conflicts(nodes, by_pe, hb, report):
    """Checks (a) unordered-conflict and (b) missing-quiet."""
    # Per-PE sorted positions of quiesce events, for "first quiet or
    # barrier after position i" queries.
    quiesce_pos: list[list[_Node]] = [
        [n for n in row if n.ev.op in _QUIESCE_OPS] for row in by_pe
    ]

    def first_quiesce_after(pe: int, pos: int):
        row = quiesce_pos[pe]
        lo, hi = 0, len(row)
        while lo < hi:
            mid = (lo + hi) // 2
            if row[mid].pos > pos:
                hi = mid
            else:
                lo = mid + 1
        return row[lo] if lo < len(row) else None

    # Interval sweep per target PE.
    by_target: dict[int, list[tuple[int, int, _Node]]] = defaultdict(list)
    for n in nodes:
        e = n.ev
        if e.op in _CONFLICT_OPS and e.footprint and not e.internal and e.target >= 0:
            for start, length in e.footprint:
                by_target[e.target].append((start, start + length, n))

    pairs_checked = 0
    seen_pairs: set[tuple[int, int]] = set()
    for intervals in by_target.values():
        intervals.sort(key=lambda t: t[0])
        active: list[tuple[int, _Node]] = []  # (end, node)
        for start, end, n in intervals:
            active = [(e_end, m) for e_end, m in active if e_end > start]
            for _, m in active:
                if m is n or m.pe == n.pe:
                    continue
                a_op, b_op = m.ev.op, n.ev.op
                if a_op in _READ_OPS and b_op in _READ_OPS:
                    continue
                if a_op == "atomic" and b_op == "atomic":
                    continue  # atomics are mutually atomic by definition
                pair = (m.id, n.id) if m.id < n.id else (n.id, m.id)
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                pairs_checked += 1
                _judge_pair(m, n, hb, first_quiesce_after, report)
            active.append((end, n))
    report.stats["pairs_checked"] = pairs_checked


def _judge_pair(a, b, hb, first_quiesce_after, report):
    hb_ab = hb(a, b)
    hb_ba = hb(b, a)
    if not hb_ab and not hb_ba:
        report.findings.append(
            Finding(
                "unordered-conflict",
                f"{_describe(a)} and {_describe(b)} touch overlapping "
                f"symmetric bytes on PE{a.ev.target} with no "
                f"happens-before path in either direction",
                (a.ev, b.ev),
            )
        )
        return
    first, second = (a, b) if hb_ab else (b, a)
    if first.ev.op not in _WEAK_WRITE_OPS:
        return  # gets and atomics are blocking: complete on return
    q = first_quiesce_after(first.pe, first.pos)
    if q is None or not hb(q, second):
        report.findings.append(
            Finding(
                "missing-quiet",
                f"{_describe(first)} is ordered before {_describe(second)} "
                f"but no quiet/barrier on PE{first.pe} intervenes: under "
                f"the weak completion model the put may not have landed",
                (first.ev, second.ev),
            )
        )


def _check_lock_discipline(nodes, by_pe, report):
    """Checks (c): unquiesced release, cross-image unlock, unmatched
    release — over lock records even when machinery-internal."""
    acquires: dict[tuple, dict[int, _Node]] = defaultdict(dict)
    release_list: list[tuple[tuple, int, _Node]] = []
    for n in nodes:
        m = n.ev.meta
        if n.ev.op == "lock_acquire" and len(m) == 5:
            acquires[m[1:4]][m[4]] = n
        elif n.ev.op == "lock_release" and len(m) == 5:
            release_list.append((m[1:4], m[4], n))
    for key, ticket, r in release_list:
        a = acquires.get(key, {}).get(ticket)
        if a is None:
            report.findings.append(
                Finding(
                    "unmatched-release",
                    f"{_describe(r)} releases lock {key} ticket {ticket} "
                    f"that was never acquired in this trace",
                    (r.ev,),
                )
            )
            continue
        if a.pe != r.pe:
            report.findings.append(
                Finding(
                    "cross-image-unlock",
                    f"{_describe(r)} unlocks lock {key} ticket {ticket} "
                    f"acquired by PE{a.pe} ({_describe(a)}) — CAF forbids "
                    f"unlocking another image's acquisition",
                    (a.ev, r.ev),
                )
            )
            continue
        # Critical-section writes must be quiesced before the release.
        row = by_pe[r.pe]
        last_write = None
        last_quiesce = -1
        for n in row[a.pos + 1 : r.pos]:
            if n.ev.op in _WEAK_WRITE_OPS:
                last_write = n
            elif n.ev.op in _QUIESCE_OPS:
                last_quiesce = n.pos
        if last_write is not None and last_quiesce < last_write.pos:
            report.findings.append(
                Finding(
                    "unquiesced-release",
                    f"{_describe(r)} releases lock {key} while "
                    f"{_describe(last_write)} from the critical section "
                    f"has no quiet before the lock word is freed",
                    (last_write.ev, r.ev),
                )
            )
