"""An MPI-3.0 one-sided (RMA) communication layer.

Models the MPI-3.0 RMA implementations the paper compares against
(MVAPICH2-X MPI on Stampede, Cray MPICH on the Cray machines): window
creation, passive-target epochs (``lock_all``/``unlock_all``), ``put``,
``get``, ``accumulate``, ``fetch_and_op``, ``compare_and_swap``, and
``flush``.  The MPI conduit profile carries the higher per-message
software overhead that produces MPI's latency disadvantage in the
paper's Figs 2-3.

Usage mirrors mpi4py's ``Win`` object::

    win = mpirma.win_create(array)
    win.lock_all()
    win.put(values, rank)
    win.flush(rank)
    win.unlock_all()
    mpirma.win_free(win)
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.heap import SymmetricArray
from repro.mpirma.window import LAYER_NAME, MpiRmaLayer, Window
from repro.runtime.context import current
from repro.runtime.launcher import Job

__all__ = [
    "MpiRmaLayer",
    "Window",
    "launch",
    "attach",
    "comm_rank",
    "comm_size",
    "alloc_array",
    "free_array",
    "win_create",
    "win_free",
    "barrier",
]


def _layer() -> MpiRmaLayer:
    return current().job.get_layer(LAYER_NAME)


def attach(job: Job, profile: str = "mpi3") -> MpiRmaLayer:
    """Attach an MPI-RMA layer to an existing job (idempotent per job)."""
    if LAYER_NAME in job.layers:
        return job.layers[LAYER_NAME]
    layer = MpiRmaLayer(job, profile)
    job.layers[LAYER_NAME] = layer
    return layer


def launch(
    fn: Callable[..., Any],
    num_pes: int,
    machine: str = "stampede",
    *,
    profile: str = "mpi3",
    heap_bytes: int | None = None,
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
) -> list[Any]:
    """Run ``fn`` as an SPMD program over the MPI-RMA layer."""
    job_kwargs = {} if heap_bytes is None else {"heap_bytes": heap_bytes}
    job = Job(num_pes, machine, **job_kwargs)
    attach(job, profile)
    return job.run(fn, args=args, kwargs=kwargs or {})


def comm_rank() -> int:
    """This process's rank in COMM_WORLD."""
    return current().pe


def comm_size() -> int:
    """Size of COMM_WORLD."""
    return current().job.num_pes


def alloc_array(shape: int | tuple[int, ...], dtype: Any = np.float64) -> SymmetricArray:
    """Collectively allocate window-backing memory
    (``MPI_Win_allocate``-style: same offset everywhere)."""
    return _layer().alloc_array(shape, dtype)


def free_array(array: SymmetricArray) -> None:
    """Collectively release window-backing memory."""
    _layer().free_array(array)


def win_create(array: SymmetricArray) -> Window:
    """Collectively create a window over an allocated array."""
    return _layer().win_create(array)


def win_free(win: Window) -> None:
    """Collectively free a window (synchronizes)."""
    _layer().win_free(win)


def barrier() -> None:
    """``MPI_Barrier`` over COMM_WORLD."""
    _layer().barrier_all()
