"""MPI-3.0 RMA windows over the simulated substrate.

A :class:`Window` wraps a collectively-allocated array and enforces the
MPI access-epoch discipline: RMA calls are only legal inside a
passive-target epoch (``lock_all``/``unlock_all``) or between fences.
``put`` completes remotely at ``flush``; ``get`` and the atomic calls
block (MPI allows request-based completion, but the paper's comparison
exercises the blocking paths).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

import numpy as np

from repro.comm.base import OneSidedLayer, _FAIL_AT_REMOTE
from repro.comm.heap import SymmetricArray
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.trace.events import contiguous_footprint

LAYER_NAME = "mpirma"

_ACC_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "replace": lambda cur, new: new,
    "band": np.bitwise_and,
    "bor": np.bitwise_or,
    "bxor": np.bitwise_xor,
}


class EpochError(RuntimeError):
    """RMA call outside an access epoch, or mismatched epoch calls."""


class Window:
    """One MPI window: a remotely-accessible array plus epoch state."""

    _ids = itertools.count()

    def __init__(self, layer: "MpiRmaLayer", array: SymmetricArray) -> None:
        self.layer = layer
        self.array = array
        self.win_id = next(Window._ids)
        self._freed = False
        # Epoch state is per PE (each rank opens its own access epochs).
        self._epoch = [False] * layer.job.num_pes
        self._epoch_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _check(self, need_epoch: bool = True) -> int:
        if self._freed:
            raise ValueError("window used after win_free")
        pe = current().pe
        if need_epoch and not self._epoch[pe]:
            raise EpochError(
                "RMA call outside an access epoch; call lock_all() or fence() first"
            )
        return pe

    # -- epochs ---------------------------------------------------------
    def lock_all(self) -> None:
        """Open a passive-target access epoch to all ranks."""
        pe = self._check(need_epoch=False)
        if self._epoch[pe]:
            raise EpochError("lock_all inside an existing epoch")
        current().clock.advance(self.layer.profile.o_barrier_us)
        self._epoch[pe] = True

    def unlock_all(self) -> None:
        """Close the epoch; completes all outstanding operations."""
        pe = self._check(need_epoch=True)
        self.flush_all()
        self._epoch[pe] = False

    def fence(self) -> None:
        """Active-target synchronization: barrier + epoch boundary.

        A fence both closes the previous epoch (completing outstanding
        operations) and opens a new one, so RMA is legal between fences.
        """
        pe = self._check(need_epoch=False)
        self.layer.barrier_all()
        self._epoch[pe] = True

    # -- RMA --------------------------------------------------------------
    def put(self, value: Any, rank: int, offset: int = 0) -> None:
        """``MPI_Put``: remote completion deferred to flush/unlock."""
        self._check()
        self.layer.put(self.array, value, rank, offset)

    def get(self, nelems: int, rank: int, offset: int = 0) -> np.ndarray:
        """``MPI_Get`` + immediate completion (blocking convenience)."""
        self._check()
        return self.layer.get(self.array, nelems, rank, offset)

    def accumulate(self, value: Any, rank: int, offset: int = 0, op: str = "sum") -> None:
        """``MPI_Accumulate``: element-wise atomic update of contiguous
        target elements."""
        self._check()
        try:
            ufunc = _ACC_OPS[op]
        except KeyError:
            raise ValueError(f"unknown accumulate op {op!r}; expected {sorted(_ACC_OPS)}") from None
        layer = self.layer
        layer._check_pe(rank)
        data = layer._coerce(self.array, value)
        self.array.check_span(offset, data.size)
        ctx = current()
        # Accumulates funnel through the target's atomic unit, so like
        # atomics they execute at the chosen step (no delivery queue).
        layer._decide(ctx, "atomic", rank)
        layer._check_failed(ctx, "atomic", rank)
        t_start = ctx.clock.now
        # Priced as a put plus per-element service on the target's
        # atomic unit (MPI implementations funnel accumulates through
        # an ordering point to guarantee element-wise atomicity).
        timing = layer._priced(
            ctx, layer, "atomic", rank,
            lambda now: layer.job.network.put(
                ctx.pe, rank, data.nbytes, layer.profile, now
            ),
            _FAIL_AT_REMOTE,
        )
        node = layer.job.topology.node_of(rank)
        _, amo_end = layer.job.network.timelines()["amo"][node].reserve(
            timing.remote_complete, data.size * layer.job.machine.amo_process_us
        )
        addr = self.array.element_offset(offset) if data.size else self.array.byte_offset
        layer.job.memories[rank].accumulate(
            addr,
            self.array.dtype,
            data,
            ufunc,
            timestamp=amo_end,
        )
        ctx.clock.merge(timing.local_complete)
        if amo_end > layer._pending[ctx.pe]:
            layer._pending[ctx.pe] = amo_end
        tracer = layer.job.tracer
        if tracer is not None:
            fp = (
                contiguous_footprint(addr, data.nbytes)
                if tracer.capture_sync
                else ()
            )
            tracer.record(
                ctx.pe, "atomic", rank, data.nbytes, t_start, ctx.clock.now,
                addr=addr, footprint=fp,
            )

    def fetch_and_op(self, value: Any, rank: int, offset: int = 0, op: str = "sum") -> Any:
        """``MPI_Fetch_and_op`` on one element (8-byte dtypes)."""
        self._check()
        amo = {"sum": "fadd", "replace": "swap", "band": "and", "bor": "or", "bxor": "xor"}
        try:
            aop = amo[op]
        except KeyError:
            raise ValueError(f"unsupported fetch_and_op {op!r}; expected {sorted(amo)}") from None
        return self.layer.atomic(self.array, rank, offset, aop, value)

    def compare_and_swap(self, value: Any, cond: Any, rank: int, offset: int = 0) -> Any:
        """``MPI_Compare_and_swap`` on one element (8-byte dtypes)."""
        self._check()
        return self.layer.atomic(self.array, rank, offset, "cswap", value, cond)

    # -- completion -------------------------------------------------------
    def flush(self, rank: int) -> None:
        """``MPI_Win_flush``: complete operations targeting ``rank``.

        The simulated completion tracker is per initiator (not per
        target), so this is as strong as :meth:`flush_all`.
        """
        self._check()
        self.layer._check_pe(rank)
        self.layer.quiet()

    def flush_all(self) -> None:
        """``MPI_Win_flush_all``: complete all outstanding operations."""
        self._check()
        self.layer.quiet()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else "live"
        return f"Window(id={self.win_id}, {state}, array={self.array!r})"


class MpiRmaLayer(OneSidedLayer):
    """MPI-3.0 RMA layer: window factory over the shared engine."""

    LAYER_NAME = LAYER_NAME

    def __init__(self, job: Job, profile: str = "mpi3") -> None:
        super().__init__(job, profile)
        self._windows: dict[int, Window] = {}
        self._windows_lock = threading.Lock()

    def win_create(self, array: SymmetricArray) -> Window:
        """Collectively create a window over ``array``."""
        if array.layer is not self:
            raise ValueError("window memory must come from this layer's alloc_array")
        ctx = current()
        win = self.job.collectives.agree(
            ctx, f"win_create:{array.byte_offset}", lambda: Window(self, array)
        )
        self.barrier_all()
        return win

    def win_free(self, win: Window) -> None:
        """Collectively free a window (the backing array stays allocated)."""
        if win.layer is not self:
            raise ValueError("window belongs to a different layer")
        ctx = current()
        self.barrier_all()
        self.job.collectives.agree(
            ctx, f"win_free:{win.win_id}", lambda: setattr(win, "_freed", True)
        )
