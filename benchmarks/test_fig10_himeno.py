"""Figure 10: the CAF Himeno benchmark on Stampede.

Jacobi/Poisson with matrix-oriented strided halo exchange.  Paper
result: UHCAF over MVAPICH2-X SHMEM beats UHCAF over GASNet once the
job spans nodes (>= 16 images), ~6% on average and up to ~22%.
"""

from benchmarks.conftest import run_once
from repro.bench import figures


def test_fig10_himeno(benchmark, show):
    fig = run_once(benchmark, figures.fig10, quick=True)
    show(fig)
    gasnet = fig.get("UHCAF-GASNet")
    shmem = fig.get("UHCAF-MVAPICH2-X-SHMEM")

    # Strong scaling: MFLOPS grows with images for both runtimes.
    assert shmem.ys == sorted(shmem.ys)
    assert gasnet.ys == sorted(gasnet.ys)

    # SHMEM wins at every multi-node point, and its advantage grows
    # with scale (the halo fraction grows).
    gains = [s / g for s, g in zip(shmem.ys, gasnet.ys)]
    multi_node = [g for x, g in zip(shmem.xs, gains) if x >= 16]
    assert all(g > 1.0 for g in multi_node)
    assert gains[-1] >= gains[0]
    assert 1.0 < gains[-1] < 1.35  # paper's max gain was 22%
