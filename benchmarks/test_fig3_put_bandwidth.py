"""Figure 3: put bandwidth — SHMEM vs GASNet vs MPI-3.0, 1 and 16 pairs."""

from benchmarks.conftest import run_once
from repro.bench import figures


def test_fig3_put_bandwidth(benchmark, show):
    figs = run_once(benchmark, figures.fig3, quick=True)
    show(*figs)
    one_pair = figs[0]
    sixteen_pairs = figs[1]
    shmem_1 = one_pair.series[0].ys
    gasnet_1 = one_pair.get("GASNet").ys
    mpi_1 = next(s for s in one_pair.series if "MPI" in s.label).ys
    # Paper: "the bandwidth of SHMEM is better than GASNet and MPI-3.0".
    assert shmem_1[-1] > gasnet_1[-1]
    assert shmem_1[-1] > mpi_1[-1]
    # Contention: 16 pairs share the NIC, so per-pair bandwidth drops
    # by roughly the pair count at the largest size.
    shmem_16 = sixteen_pairs.series[0].ys
    ratio = shmem_1[-1] / shmem_16[-1]
    assert 8 < ratio < 24
