"""Figure 7: CAF put + strided put bandwidth on Stampede.

UHCAF over GASNet vs UHCAF over MVAPICH2-X SHMEM; the strided panels
show the paper's key negative result — MVAPICH2-X implements
``shmem_iput`` as a series of contiguous puts, so naive == 2dim there.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench import figures
from repro.util.stats import geomean


def test_fig7_stampede(benchmark, show):
    figs = run_once(benchmark, figures.fig7, quick=True)
    show(*figs)
    contiguous = figs[0]
    strided = figs[1]

    # (a/b) Contiguous: UHCAF-MVAPICH2-X-SHMEM above UHCAF-GASNet.
    gasnet = contiguous.get("UHCAF-GASNet").ys
    shmem = contiguous.get("UHCAF-MVAPICH2-X-SHMEM").ys
    gains = [s / g for s, g in zip(shmem, gasnet)]
    assert all(g > 1.0 for g in gains)
    assert geomean(gains) < 1.25

    # (c/d) Strided: naive == 2dim on MVAPICH2-X (iput loops over
    # putmem underneath); both beat the GASNet naive implementation.
    naive = strided.get("UHCAF-MVAPICH2-X-SHMEM-naive").ys
    twodim = strided.get("UHCAF-MVAPICH2-X-SHMEM-2dim").ys
    gas = strided.get("UHCAF-GASNet").ys
    for n, t in zip(naive, twodim):
        assert n == pytest.approx(t, rel=0.05)
    for n, g in zip(naive, gas):
        assert n > g
