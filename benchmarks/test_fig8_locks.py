"""Figure 8: lock microbenchmark on Titan.

All images repeatedly acquire and release a lock on image 1.
Paper result: UHCAF over Cray SHMEM (MCS over NIC atomics) is ~22%
faster than Cray CAF and ~10% faster than UHCAF over GASNet.
"""

from benchmarks.conftest import run_once
from repro.bench import figures
from repro.util.stats import geomean


def test_fig8_lock_microbenchmark(benchmark, show):
    fig = run_once(benchmark, figures.fig8, quick=True)
    show(fig)
    cray = fig.get("Cray-CAF").ys
    gasnet = fig.get("UHCAF-GASNet").ys
    shmem = fig.get("UHCAF-Cray-SHMEM").ys

    # Contention cost grows with image count for every implementation.
    for ys in (cray, gasnet, shmem):
        assert ys == sorted(ys)

    # UHCAF-Cray-SHMEM is fastest at every contended point.
    contended = slice(1, None)  # skip the 2-image point (noise regime)
    for c, g, s in zip(cray[contended], gasnet[contended], shmem[contended]):
        assert s <= c and s <= g

    # Average advantages in the paper's neighbourhood:
    # ~22% over Cray CAF, ~10% over GASNet (we accept 5-60%).
    vs_cray = geomean(c / s for c, s in zip(cray[contended], shmem[contended]))
    vs_gasnet = geomean(g / s for g, s in zip(gasnet[contended], shmem[contended]))
    assert 1.05 < vs_cray < 1.6, vs_cray
    assert 1.05 < vs_gasnet < 1.6, vs_gasnet
