"""Benchmark-suite fixtures.

Each benchmark test regenerates one paper table/figure: it runs the
sweep once under pytest-benchmark (``pedantic`` with a single round —
the interesting numbers are *virtual* microseconds from the machine
models, not wall time), prints the figure's rows exactly as the paper's
plot encodes them, and asserts the reproduced *shape* (who wins, rough
factors, crossovers).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print straight to the terminal, bypassing capture, so the
    reproduced tables appear in benchmark runs."""

    def _show(*renderables) -> None:
        with capsys.disabled():
            print()
            for r in renderables:
                print(r.render() if hasattr(r, "render") else r)
                print()

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
