"""Figure 9: distributed hash table on Titan.

Random DHT updates guarded by coarray locks.  Paper result: UHCAF over
Cray SHMEM ~28% faster than Cray CAF and ~18% faster than UHCAF-GASNet.
"""

from benchmarks.conftest import run_once
from repro.bench import figures
from repro.util.stats import geomean


def test_fig9_dht(benchmark, show):
    fig = run_once(benchmark, figures.fig9, quick=True)
    show(fig)
    cray = fig.get("Cray-CAF").ys
    gasnet = fig.get("UHCAF-GASNet").ys
    shmem = fig.get("UHCAF-Cray-SHMEM").ys

    # Time grows with image count (more contention, more remote work).
    for ys in (cray, gasnet, shmem):
        assert ys == sorted(ys)

    # UHCAF-Cray-SHMEM is the fastest configuration throughout.
    for c, g, s in zip(cray, gasnet, shmem):
        assert s <= c and s <= g

    vs_cray = geomean(c / s for c, s in zip(cray, shmem))
    vs_gasnet = geomean(g / s for g, s in zip(gasnet, shmem))
    # Paper: 28% and 18%; accept a generous band around those.
    assert 1.05 < vs_cray < 1.6, vs_cray
    assert 1.03 < vs_gasnet < 1.5, vs_gasnet
