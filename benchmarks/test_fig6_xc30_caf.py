"""Figure 6: CAF put + strided put bandwidth on the Cray XC30.

Cray-CAF (the vendor compiler) vs UHCAF over Cray SHMEM, including the
naive and 2dim_strided multi-dimensional algorithms.
"""

from benchmarks.conftest import run_once
from repro.bench import figures
from repro.util.stats import geomean


def test_fig6_xc30(benchmark, show):
    figs = run_once(benchmark, figures.fig6, quick=True)
    show(*figs)
    contiguous = figs[0]
    strided = figs[1]

    # (a/b) Contiguous: UHCAF-Cray-SHMEM beats Cray-CAF by ~8% average.
    cray = contiguous.get("Cray-CAF").ys
    uhcaf = contiguous.get("UHCAF-Cray-SHMEM").ys
    gains = [u / c for u, c in zip(uhcaf, cray)]
    assert all(g > 1.0 for g in gains)
    assert 1.03 < geomean(gains) < 1.20  # paper: average ~8%

    # (c/d) Strided: 2dim ~9x over naive, ~3x over Cray-CAF.
    naive = strided.get("UHCAF-Cray-SHMEM-naive").ys
    twodim = strided.get("UHCAF-Cray-SHMEM-2dim").ys
    craycaf = strided.get("Cray-CAF").ys
    vs_naive = geomean(t / n for t, n in zip(twodim, naive))
    vs_cray = geomean(t / c for t, c in zip(twodim, craycaf))
    assert 5 < vs_naive < 20, vs_naive  # paper: ~9x
    assert 2 < vs_cray < 5, vs_cray  # paper: ~3x
