"""Figure 2: put latency — SHMEM vs GASNet vs MPI-3.0, two nodes."""

from benchmarks.conftest import run_once
from repro.bench import figures


def test_fig2_put_latency(benchmark, show):
    figs = run_once(benchmark, figures.fig2, quick=True)
    show(*figs)
    for fig in figs:
        shmem = fig.series[0].ys  # SHMEM is always the first series
        labels = [s.label for s in fig.series]
        gasnet = fig.get("GASNet").ys
        mpi = next(s for s in fig.series if "MPI" in s.label or "MPICH" in s.label).ys
        # Paper: without contention, SHMEM and GASNet beat MPI-3.0,
        # and SHMEM tracks at or below GASNet at every size.
        for s, g, m in zip(shmem, gasnet, mpi):
            assert s <= g * 1.02, (labels, s, g)
            assert s < m, (labels, s, m)
        # Latency grows with message size within each panel.
        assert shmem[-1] > shmem[0]
