"""Tables I-III: rendered and verified against the implementation."""

from benchmarks.conftest import run_once
from repro.caf import registry


def test_table1_caf_implementations(benchmark, show):
    table = run_once(benchmark, registry.table1)
    show(table)
    text = table.render()
    for impl in ("UHCAF", "CAF 2.0", "Cray-CAF", "Intel-CAF", "GFortran-CAF"):
        assert impl in text
    assert "OpenSHMEM" in text  # this work's row


def test_table2_feature_mapping(benchmark, show):
    table = run_once(benchmark, registry.table2)
    show(table)
    # Table II is backed by code: every mapping resolves.
    assert registry.verify_feature_map() == []
    text = table.render()
    assert "shmalloc" in text and "shmem_barrier_all" in text
    assert "2dim_strided" in text and "MCS" in text


def test_table3_machines(benchmark, show):
    table = run_once(benchmark, registry.table3)
    show(table)
    text = table.render()
    assert "Stampede" in text and "6400" in text
    assert "Cray XC30" in text and "Titan" in text and "18688" in text
