"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Quiet insertion** (paper Section IV-B): cost of restoring CAF's
   RMA ordering with a ``shmem_quiet`` after every put, vs a relaxed
   runtime that defers completion to synchronization points.
2. **Base-dimension policy** (Section IV-C): naive vs the paper's
   2dim (best of the two fastest dims) vs alldim (best of all dims,
   which minimizes calls but strides far through memory) vs lastdim
   (Cray CAF's fixed choice) — on a workload where the *slowest* axis
   holds the most elements, so the policies genuinely diverge.
3. **Lock algorithm** (Section IV-D): MCS vs central test-and-set
   contention time, plus the space argument against emulating per-image
   locks with OpenSHMEM's global locks (O(N) words per lock vs the MCS
   tail word + at most M+1 qnodes).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro import caf
from repro.bench.harness import BenchFigure
from repro.runtime.context import current
from repro.util.tables import Table


# ---------------------------------------------------------------------------
# 1. Ordering: caf vs relaxed
# ---------------------------------------------------------------------------


def _ordering_time(ordering: str, nbytes: int, iters: int) -> float:
    def kernel():
        me = caf.this_image()
        a = caf.coarray((nbytes,), np.uint8)
        caf.sync_all()
        t0 = current().clock.now
        if me == 1:
            data = np.zeros(nbytes, dtype=np.uint8)
            for _ in range(iters):
                a.on(18)[:] = data  # image on the second node
        caf.sync_all()
        return current().clock.now - t0

    return caf.launch(
        kernel,
        num_images=18,
        machine="stampede",
        backend="shmem",
        ordering=ordering,
        heap_bytes=max(1 << 22, 4 * nbytes),
    )[0]


def ordering_ablation() -> BenchFigure:
    fig = BenchFigure(
        title="Ablation: Section IV-B quiet insertion (18 images, Stampede)",
        x_label="message bytes",
        y_label="time for 10 puts (us)",
    )
    sizes = (256, 4096, 65536)
    for ordering in ("caf", "relaxed"):
        fig.add_series(
            f"ordering={ordering}",
            list(sizes),
            [_ordering_time(ordering, n, 10) for n in sizes],
        )
    return fig


def test_ordering_quiet_cost(benchmark, show):
    fig = run_once(benchmark, ordering_ablation)
    show(fig)
    strict = fig.get("ordering=caf").ys
    relaxed = fig.get("ordering=relaxed").ys
    for s, r in zip(strict, relaxed):
        assert s > r  # ordering always costs something
    # The penalty is latency-bound, so it matters most for small puts.
    small_ratio = strict[0] / relaxed[0]
    large_ratio = strict[-1] / relaxed[-1]
    assert small_ratio > large_ratio


# ---------------------------------------------------------------------------
# 2. Base-dimension policy
# ---------------------------------------------------------------------------

_POLICIES = ("naive", "2dim", "alldim", "lastdim")
_SHAPE = (64, 32, 16)
_KEY = (slice(0, 64, 2), slice(0, 32, 2), slice(0, 16, 4))  # counts 32, 16, 4


def _policy_run(policy: str) -> tuple[float, int]:
    """(virtual time, library calls) for one strided put under ``policy``."""

    def kernel():
        rt = caf.current_runtime()
        a = caf.coarray(_SHAPE, np.int32)
        a[...] = 0
        caf.sync_all()
        me = caf.this_image()
        if me != 1:
            caf.sync_all()
            return None
        payload = np.ones((32, 16, 4), dtype=np.int32)
        rt.reset_stats()
        t0 = current().clock.now
        for _ in range(3):
            a.on(18).put(_KEY, payload, algorithm=policy)
        dt = current().clock.now - t0
        calls = rt.my_stats["putmem_calls"] + rt.my_stats["iput_calls"]
        caf.sync_all()
        return (dt, calls)

    out = caf.launch(
        kernel,
        num_images=18,
        machine="cray-xc30",
        backend="shmem",
        profile="cray-shmem",
        heap_bytes=1 << 22,
    )
    return out[0]


def base_dim_ablation() -> Table:
    table = Table(
        "Ablation: base-dimension policy on section (::2, ::2, ::4) of (64,32,16)",
        ["policy", "library calls (3 puts)", "virtual time (us)"],
    )
    results = {}
    for policy in _POLICIES:
        dt, calls = _policy_run(policy)
        results[policy] = (dt, calls)
        table.add_row(policy, calls, round(dt, 1))
    table.results = results  # stash for assertions
    return table


def test_base_dimension_policy(benchmark, show):
    table = run_once(benchmark, base_dim_ablation)
    show(table)
    r = table.results
    # Call counts: alldim fewest, then 2dim, then naive (per element).
    assert r["alldim"][1] < r["2dim"][1] < r["naive"][1]
    # Time: the paper's 2dim wins — alldim's outer-dimension stride
    # walks far through memory (gather-gap penalty) despite fewer calls,
    # and naive pays per-element software overhead.
    assert r["2dim"][0] < r["alldim"][0]
    assert r["2dim"][0] < r["lastdim"][0]
    assert r["2dim"][0] < r["naive"][0]


# ---------------------------------------------------------------------------
# 3. Lock algorithm
# ---------------------------------------------------------------------------


def _lock_run(algo: str, num_images: int, acquires: int) -> tuple[float, int]:
    """(max elapsed us, AMO operations at the lock home's node).

    The AMO count is the measurable core of the MCS claim ("avoid
    spinning on non-local memory locations"): MCS issues exactly one
    swap per acquire and one cswap per release at the target; TAS
    hammers the target's atomic unit with retries under contention.
    """

    def kernel():
        ctx = current()
        lck = caf.lock_type()
        counter = caf.coarray((1,), np.int64)
        counter[:] = 0
        caf.sync_all()
        t0 = ctx.clock.now
        import time

        for _ in range(acquires):
            caf.lock(lck, 1)
            # a real critical section: remote read-modify-write that is
            # only safe under the lock; the short wall-clock hold gives
            # other images' functional attempts a window to collide, so
            # the test-and-set retry behaviour actually manifests
            v = int(counter.on(1)[0])
            time.sleep(0.0005)
            counter.on(1)[0] = v + 1
            caf.unlock(lck, 1)
        caf.sync_all()
        assert int(counter.on(1)[0]) == num_images * acquires
        home_node = ctx.job.topology.node_of(0)
        amo_ops = ctx.job.network.timelines()["amo"][home_node].reservations
        return (ctx.clock.now - t0, amo_ops)

    out = caf.launch(
        kernel,
        num_images=num_images,
        machine="titan",
        backend="shmem",
        profile="cray-shmem",
        lock_algorithm=algo,
    )
    return max(t for t, _ in out), max(a for _, a in out)


def lock_ablation() -> Table:
    table = Table(
        "Ablation: CAF lock algorithm (40 images x 3 acquires of lck[1], Titan)",
        ["algorithm", "time (us)", "AMO ops at lock home node"],
    )
    results = {}
    for label, algo in (("MCS (paper)", "mcs"), ("test-and-set", "tas")):
        t, amo = _lock_run(algo, 40, 3)
        results[algo] = (t, amo)
        table.add_row(label, round(t, 1), amo)
    table.results = results
    return table


def test_lock_algorithm(benchmark, show):
    table = run_once(benchmark, lock_ablation)
    show(table)
    r = table.results
    # MCS never spins remotely: exactly 2 AMOs per acquire/release pair
    # reach the lock's home node; TAS retry storms multiply that.
    mcs_amo, tas_amo = r["mcs"][1], r["tas"][1]
    assert mcs_amo == 40 * 3 * 2
    assert tas_amo > 2 * mcs_amo
    # And MCS costs no more time (this model resolves handoff races in
    # wall-clock order, so the timing comparison is parity-or-better;
    # Fig 8's Cray-CAF gap additionally reflects the vendor runtime's
    # heavier lock path).
    assert r["mcs"][0] <= r["tas"][0] * 1.10

    # Space argument (paper Section IV-D): emulating per-image locks via
    # OpenSHMEM's global lock needs an N-word symmetric array per lock;
    # MCS needs 1 tail word per lock plus <= M+1 transient qnodes.
    n_images, m_held = 1024, 4
    global_lock_words = n_images  # per declared lock
    mcs_words = 1 + 2 * (m_held + 1)  # tail + (M+1) two-word qnodes
    assert mcs_words < global_lock_words / 50


# ---------------------------------------------------------------------------
# 4. shmem_ptr intra-node fast path (paper Section VII future work)
# ---------------------------------------------------------------------------


def _intranode_strided_time(use_ptr: bool) -> float:
    def kernel():
        me = caf.this_image()
        a = caf.coarray((512, 64), np.float64)
        caf.sync_all()
        t0 = current().clock.now
        if me == 1:
            block = np.ones((256, 32))
            for _ in range(5):
                # image 2 shares my node on every Table III machine
                a.on(2)[0:512:2, 0:64:2] = block
        caf.sync_all()
        return current().clock.now - t0

    return caf.launch(
        kernel,
        num_images=4,
        machine="stampede",
        backend="shmem",
        use_shmem_ptr=use_ptr,
        heap_bytes=1 << 22,
    )[0]


def shmem_ptr_ablation() -> Table:
    table = Table(
        "Ablation: shmem_ptr fast path (intra-node 2-D strided puts)",
        ["configuration", "virtual time (us)"],
    )
    results = {}
    for label, flag in (("NIC RMA path", False), ("shmem_ptr load/store", True)):
        t = _intranode_strided_time(flag)
        results[flag] = t
        table.add_row(label, round(t, 2))
    table.results = results
    return table


def test_shmem_ptr_fast_path(benchmark, show):
    table = run_once(benchmark, shmem_ptr_ablation)
    show(table)
    # Direct load/store collapses the strided decomposition into one
    # memcpy-priced access: a large win for intra-node sections.
    assert table.results[True] < table.results[False] / 2
