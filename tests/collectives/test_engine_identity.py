"""Three-engine bit-identity of the collective library.

Every collective must produce bit-identical results AND bit-identical
virtual clocks / trace digests across the threaded, cooperative, and
event engines — the library prices its traffic through the closed-form
idle-lane model and keeps strict post/consume alternation per flag
word, so completion times are a pure function of the algorithm's
happens-before order (see ``repro/collectives/comm.py``).  A hypothesis
property drives random team shapes, dtypes, payload sizes, and forced
algorithms through the comparison, mirroring
``tests/caf/test_vector_invariance.py``; deterministic tests pin
schedule-independence across explorer random walks.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import (
    team_allgather_step,
    team_broadcast_step,
    team_reduce_step,
)
from repro.engine.steps import Done, drive
from repro.explore import RandomWalk, Scheduler, trace_digest
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.shmem import attach as shmem_attach
from repro.trace.events import attach as trace_attach

ENGINES = ("threaded", "cooperative", "event")


def _make_step(layer, members, kind, algo, dtype, nelems, cont):
    pe = current().pe
    data = (np.arange(1, nelems + 1) * 3 + pe * 7).astype(dtype)
    if kind == "reduce":
        return team_reduce_step(layer, members, data, np.add, cont,
                                root_rank=len(members) // 2, algorithm=algo)
    if kind == "bcast":
        return team_broadcast_step(layer, members, data, cont,
                                   root_rank=len(members) // 2, algorithm=algo)
    return team_allgather_step(layer, members, data, cont, algorithm=algo)


def _run_one(engine, num_pes, members, kind, algo, dtype, nelems, seed=11):
    kwargs = {}
    if engine == "cooperative":
        kwargs["scheduler"] = Scheduler(RandomWalk(seed=seed))
    job = Job(num_pes, "stampede", heap_bytes=1 << 15, engine=engine, **kwargs)
    layer = shmem_attach(job)
    tracer = trace_attach(job, capture_sync=True)

    if engine == "event":
        def body():
            if current().pe not in members:
                return Done((None, current().clock.now))
            fin = lambda res: Done((res, current().clock.now))
            return _make_step(layer, members, kind, algo, dtype, nelems, fin)
    else:
        def body():
            if current().pe not in members:
                return None, current().clock.now
            res = drive(_make_step(layer, members, kind, algo, dtype, nelems, Done))
            return res, current().clock.now

    results = job.run(body)
    return (
        [np.asarray(r[0]) if r[0] is not None else None for r in results],
        [r[1] for r in results],
        trace_digest(tracer),
    )


def _assert_identical(num_pes, members, kind, algo, dtype, nelems, seed=11):
    runs = {
        eng: _run_one(eng, num_pes, members, kind, algo, dtype, nelems, seed)
        for eng in ENGINES
    }
    vals0, clocks0, digest0 = runs["threaded"]
    for eng in ENGINES[1:]:
        vals, clocks, digest = runs[eng]
        for a, b in zip(vals0, vals):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert a.dtype == b.dtype and np.array_equal(a, b), (eng, a, b)
        assert clocks == clocks0, (eng, clocks, clocks0)
        assert digest == digest0, eng
    return runs


ALGOS = st.sampled_from(
    [("reduce", a) for a in ("linear", "binomial", "recdbl", "ring", "hier", None)]
    + [("bcast", a) for a in ("linear", "binomial", "hier", None)]
    + [("allgather", a) for a in ("linear", "ring", None)]
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.data(),
    num_pes=st.integers(min_value=2, max_value=14),
    kind_algo=ALGOS,
    dtype=st.sampled_from([np.int64, np.float64, np.int32]),
    nelems=st.integers(min_value=1, max_value=48),
)
def test_property_three_engine_identity(data, num_pes, kind_algo, dtype, nelems):
    kind, algo = kind_algo
    base = data.draw(st.integers(min_value=0, max_value=1), label="base")
    stride = data.draw(st.integers(min_value=1, max_value=3), label="stride")
    members = tuple(range(min(base, num_pes - 1), num_pes, stride))
    _assert_identical(num_pes, members, kind, algo, dtype, nelems)


@pytest.mark.parametrize("algo", ["linear", "binomial", "recdbl", "ring", "hier"])
def test_reduce_identity_multi_node(algo):
    """34 PEs over three stampede nodes, strided 12-member team."""
    _assert_identical(34, tuple(range(1, 34, 3)), "reduce", algo, np.int64, 8)


@pytest.mark.parametrize("algo", ["linear", "binomial", "recdbl", "ring", "hier"])
def test_explorer_schedule_independence(algo):
    """One canonical digest across cooperative random-walk schedules —
    the explorer's race-free contract."""
    digests = {
        _run_one("cooperative", 9, tuple(range(9)), "reduce", algo,
                 np.float64, 4, seed=seed)[2]
        for seed in (1, 2, 3)
    }
    assert len(digests) == 1
