"""The collective algorithm library: every algorithm, every kind.

Correctness on single-node and multi-node team shapes, forced-algorithm
overrides (parameter and ``REPRO_COLLECTIVE``), selector fallbacks,
zero-size short-circuits, and sanitizer cleanliness per algorithm.
"""

import os

import numpy as np
import pytest

from repro.collectives import (
    ALGORITHMS,
    FORCE_ENV,
    AlgorithmSelector,
    candidates_for,
    team_allgather_step,
    team_broadcast_step,
    team_reduce_step,
)
from repro.collectives.comm import get_team_comm
from repro.engine.steps import Done, drive
from repro.runtime.context import current
from repro.runtime.launcher import Job
from repro.shmem import attach as shmem_attach
from repro.trace.events import attach as trace_attach
from repro.trace.sanitizer import check_tracer

REDUCE_ALGOS = ("linear", "binomial", "recdbl", "ring", "hier")
BCAST_ALGOS = ("linear", "binomial", "hier")
ALLGATHER_ALGOS = ("linear", "ring")


def _run_collective(kind, algo, *, num_pes=13, members=None, dtype=np.float64,
                    nelems=4, root_rank=2, with_sanitizer=False, **kwargs):
    """Run one collective on the threaded engine; returns (per-rank
    results, sanitizer report or None)."""
    members = tuple(members) if members is not None else tuple(range(num_pes))
    job = Job(num_pes, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)
    tracer = trace_attach(job, capture_sync=True) if with_sanitizer else None

    def body():
        if current().pe not in members:
            return None
        data = (np.arange(nelems) + current().pe * 3 + 1).astype(dtype)
        if kind == "reduce":
            step = team_reduce_step(layer, members, data, np.add, Done,
                                    root_rank=root_rank, algorithm=algo, **kwargs)
        elif kind == "bcast":
            step = team_broadcast_step(layer, members, data, Done,
                                       root_rank=root_rank, algorithm=algo)
        else:
            step = team_allgather_step(layer, members, data, Done, algorithm=algo)
        return drive(step)

    results = job.run(body)
    report = check_tracer(tracer) if with_sanitizer else None
    return [results[p] for p in members], report


def _contributions(members, dtype, nelems=4):
    return [(np.arange(nelems) + pe * 3 + 1).astype(dtype) for pe in members]


SHAPES = {
    # 13 PEs on one stampede node (16 cores/node).
    "single-node": (13, tuple(range(13))),
    # 13-member strided subset of 40 PEs spanning three nodes.
    "multi-node": (40, tuple(range(1, 40, 3))),
}


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("algo", REDUCE_ALGOS)
def test_reduce_algorithms(algo, shape):
    num_pes, members = SHAPES[shape]
    vals, _ = _run_collective("reduce", algo, num_pes=num_pes, members=members,
                              dtype=np.int64)
    expect = np.sum(_contributions(members, np.int64), axis=0)
    for r, v in enumerate(vals):
        assert np.array_equal(v, expect), (algo, shape, r, v, expect)


@pytest.mark.parametrize("algo", REDUCE_ALGOS)
def test_reduce_float_bitwise_stable(algo):
    """Each algorithm has ONE combine order — float results are exact
    replicas across runs (and engines; see test_engine_identity)."""
    a, _ = _run_collective("reduce", algo, dtype=np.float64)
    b, _ = _run_collective("reduce", algo, dtype=np.float64)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("algo", BCAST_ALGOS)
def test_broadcast_algorithms(algo, shape):
    num_pes, members = SHAPES[shape]
    vals, _ = _run_collective("bcast", algo, num_pes=num_pes, members=members,
                              dtype=np.int64)
    expect = _contributions(members, np.int64)[2]  # root_rank=2
    for v in vals:
        assert np.array_equal(v, expect)


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("algo", ALLGATHER_ALGOS)
def test_allgather_algorithms(algo, shape):
    num_pes, members = SHAPES[shape]
    vals, _ = _run_collective("allgather", algo, num_pes=num_pes, members=members,
                              dtype=np.int64)
    expect = np.concatenate(_contributions(members, np.int64))
    for v in vals:
        assert np.array_equal(v, expect)


@pytest.mark.parametrize("algo", REDUCE_ALGOS)
def test_reduce_sanitizer_clean(algo):
    _, report = _run_collective("reduce", algo, with_sanitizer=True)
    assert report.ok, report.render()


@pytest.mark.parametrize("kind,algo", [("bcast", a) for a in BCAST_ALGOS]
                         + [("allgather", a) for a in ALLGATHER_ALGOS])
def test_other_kinds_sanitizer_clean(kind, algo):
    _, report = _run_collective(kind, algo, with_sanitizer=True)
    assert report.ok, report.render()


def test_noncommutative_reduce_keeps_rank_order():
    """commutative=False restricts to rank-ordered algorithms (linear,
    binomial) and preserves operand order.  Right-projection is
    associative but not commutative: a rank-ordered reduction returns
    the LAST rank's contribution, any swapped ordering something else."""
    def right(a, b):
        return b

    assert candidates_for("reduce", commutative=False) == ("linear", "binomial")
    members = tuple(range(6))
    job = Job(6, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)

    def body():
        data = np.array([float(current().pe) + 10.0])
        return drive(team_reduce_step(layer, members, data, right, Done,
                                      commutative=False, broadcast=True))

    results = job.run(body)
    expect = np.array([15.0])  # rank 5's contribution
    for v in results:
        assert np.array_equal(v, expect)


# ----------------------------------------------------------------------
# Forcing and selection
# ----------------------------------------------------------------------
def test_env_forces_algorithm(monkeypatch):
    monkeypatch.setenv(FORCE_ENV, "ring")
    job = Job(4, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)

    def body():
        comm = get_team_comm(layer, (0, 1, 2, 3))
        from repro.collectives.select import selector_for
        return selector_for(layer).choose("reduce", comm, 64)

    assert job.run(body) == ["ring"] * 4


def test_env_unknown_algorithm_rejected(monkeypatch):
    monkeypatch.setenv(FORCE_ENV, "quantum")
    job = Job(2, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)

    def body():
        data = np.ones(2)
        return drive(team_reduce_step(layer, (0, 1), data, np.add, Done))

    with pytest.raises(Exception, match="unknown collective algorithm"):
        job.run(body)


def test_forced_inapplicable_falls_back(monkeypatch):
    """A forced algorithm that does not apply to the call falls back to
    a generally-applicable candidate instead of erroring."""
    monkeypatch.setenv(FORCE_ENV, "recdbl")
    job = Job(4, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)

    def body():
        comm = get_team_comm(layer, (0, 1, 2, 3))
        from repro.collectives.select import selector_for
        sel = selector_for(layer)
        return (sel.choose("bcast", comm, 64),
                sel.choose("reduce", comm, 64, commutative=False))

    for bcast_pick, noncomm_pick in job.run(body):
        assert bcast_pick == "binomial"
        assert noncomm_pick == "binomial"


def test_selector_picks_cheapest_candidate():
    job = Job(8, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)

    def body():
        comm = get_team_comm(layer, tuple(range(8)))
        sel = AlgorithmSelector(job.network, layer.profile)
        for kind in ("reduce", "bcast", "allgather"):
            pick = sel.choose(kind, comm, 64)
            costs = {a: sel.cost(a, kind, comm, 64) for a in candidates_for(kind)}
            assert costs[pick] == min(costs.values()), (kind, pick, costs)
        return True

    assert all(job.run(body))


def test_all_algorithms_have_prices():
    job = Job(8, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)

    def body():
        comm = get_team_comm(layer, tuple(range(8)))
        sel = AlgorithmSelector(job.network, layer.profile)
        for algo in ALGORITHMS:
            c = sel.cost(algo, "reduce", comm, 4096)
            assert c > 0 and np.isfinite(c)
        return True

    assert all(job.run(body))


# ----------------------------------------------------------------------
# Degenerate cases (zero-size short-circuit satellite)
# ----------------------------------------------------------------------
def test_zero_size_and_singleton_short_circuit():
    """m == 1 and n == 0 return immediately: no scratch join, no flag
    traffic, no virtual time."""
    job = Job(3, "stampede", heap_bytes=1 << 15, engine="threaded")
    layer = shmem_attach(job)

    def body():
        t0 = current().clock.now
        empty = np.empty(0, dtype=np.float64)
        r1 = drive(team_reduce_step(layer, (0, 1, 2), empty, np.add, Done))
        r2 = drive(team_reduce_step(layer, (current().pe,),
                                    np.array([7.0]), np.add, Done))
        r3 = drive(team_broadcast_step(layer, (0, 1, 2), empty, Done))
        r4 = drive(team_allgather_step(layer, (0, 1, 2), empty, Done))
        assert r1.size == 0 and r3.size == 0 and r4.size == 0
        assert r2[0] == 7.0
        # No communication happened: the clock never moved.
        return current().clock.now == t0

    assert all(job.run(body))
