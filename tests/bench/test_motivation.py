"""Motivation suite (Figs 2-3 machinery) on tiny sweeps."""

import pytest

from repro.bench import motivation


def test_latency_positive_and_ordered():
    lat = {
        lib: motivation.put_latency("stampede", lib, 64, pairs=1, iters=4)
        for lib in motivation.LIBRARIES
    }
    assert all(v > 0 for v in lat.values())
    assert lat["shmem"] < lat["gasnet"] < lat["mpi3"]


def test_latency_grows_with_size():
    small = motivation.put_latency("stampede", "shmem", 8, iters=4)
    large = motivation.put_latency("stampede", "shmem", 1 << 20, iters=2)
    assert large > small


def test_bandwidth_shmem_beats_gasnet_large():
    bw = {
        lib: motivation.put_bandwidth("stampede", lib, 1 << 19, iters=4)
        for lib in ("shmem", "gasnet")
    }
    assert bw["shmem"] > bw["gasnet"]


def test_contention_reduces_per_pair_bandwidth():
    solo = motivation.put_bandwidth("stampede", "shmem", 1 << 18, pairs=1, iters=3)
    crowd = motivation.put_bandwidth("stampede", "shmem", 1 << 18, pairs=16, iters=3)
    assert crowd < solo / 8  # 16 pairs share one NIC


def test_titan_uses_cray_stack_labels():
    assert motivation.library_label("shmem", "titan") == "Cray SHMEM"
    assert motivation.library_label("mpi3", "titan") == "Cray MPICH"
    assert motivation.library_label("shmem", "stampede") == "MVAPICH2-X SHMEM"


def test_unknown_library_rejected():
    with pytest.raises((ValueError, KeyError)):
        motivation.put_latency("stampede", "ucx", 8)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        motivation._run_put_test("stampede", "shmem", 8, 1, 1, "throughput")


def test_atomic_latency_shmem_beats_gasnet():
    """Remote atomics: NIC-offloaded SHMEM vs AM-emulated GASNet — the
    Section III property the lock design exploits."""
    shmem_lat = motivation.atomic_latency("titan", "shmem", iters=8)
    gasnet_lat = motivation.atomic_latency("titan", "gasnet", iters=8)
    mpi_lat = motivation.atomic_latency("titan", "mpi3", iters=8)
    assert shmem_lat < gasnet_lat
    assert shmem_lat < mpi_lat


def test_atomic_latency_contention_serializes():
    solo = motivation.atomic_latency("titan", "shmem", pairs=1, iters=8)
    crowd = motivation.atomic_latency("titan", "shmem", pairs=16, iters=8)
    assert crowd >= solo  # shared target atomic units serialize
