"""Smoke tests for the wall-clock benchmark of the batched RMA engine."""

import json

import numpy as np

from repro.bench import wallclock
from repro.bench.harness import UHCAF_CRAY_SHMEM_NAIVE


def test_small_instance_matches_unbatched_oracle():
    """Stats counters and virtual clocks of a small naive-section run
    are identical with batching on and off."""
    case = wallclock.naive_section_case(quick=True)
    assert case.stats_identical
    assert case.virtual_identical
    assert case.batched_s > 0 and case.unbatched_s > 0
    # the quick instance is too small to promise a speedup, only sanity
    assert case.speedup > 0


def test_fingerprints_report_logical_call_counts():
    """The naive policy still counts one putmem per selected element."""
    shape, key = (20, 16, 20), np.s_[0:20:2, 0:16:2, 0:20:4]
    res = wallclock._section_put_fingerprints(shape, key, UHCAF_CRAY_SHMEM_NAIVE)
    initiator_stats = res[0][1]
    assert initiator_stats["putmem_calls"] == 10 * 8 * 5
    assert initiator_stats["put_elems"] == 10 * 8 * 5
    # every non-initiator image issued nothing
    assert all(not r[1] for r in res[1:])


def test_write_json_document_shape(tmp_path):
    case = wallclock.WallclockCase(
        name="x",
        description="d",
        batched_s=0.1,
        unbatched_s=0.9,
        speedup=9.0,
        virtual_identical=True,
        stats_identical=True,
    )
    out = wallclock.write_json([case], tmp_path / "BENCH_wallclock.json")
    doc = json.loads(out.read_text())
    assert doc["benchmark"] == "wallclock"
    assert doc["cases"][0]["speedup"] == 9.0
    assert doc["cases"][0]["virtual_identical"] is True
    assert "x" in wallclock.render([case])


def test_cli_quick_subset(tmp_path, capsys):
    out = tmp_path / "bw.json"
    rc = wallclock.main(["--quick", "--cases", "2dim", "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert [c["name"] for c in doc["cases"]] == ["2dim-sweep"]
    assert doc["cases"][0]["virtual_identical"] is True
    assert "2dim-sweep" in capsys.readouterr().out
