"""Distributed hash table: correctness under concurrency + benchmark."""

import numpy as np
import pytest

from repro import caf
from repro.bench import harness as H
from repro.bench.dht import DistributedHashTable, dht_benchmark


def test_update_and_lookup_single_image():
    def kernel():
        t = DistributedHashTable(slots_per_image=16)
        assert t.update(5) == 1
        assert t.update(5) == 2
        assert t.update(9, delta=10) == 10
        assert t.lookup(5) == 2
        assert t.lookup(9) == 10
        assert t.lookup(12345) is None
        return True

    assert all(caf.launch(kernel, num_images=1))


def test_concurrent_updates_sum_exactly():
    """Every image updates the same keys; grand total must be exact —
    the mutual-exclusion property the benchmark exists to test."""

    def kernel():
        n = caf.num_images()
        t = DistributedHashTable(slots_per_image=32)
        keys = [3, 17, 17, 99, 3, 3]
        for k in keys:
            t.update(k)
        caf.sync_all()
        if caf.this_image() == 1:
            assert t.lookup(3) == 3 * n
            assert t.lookup(17) == 2 * n
            assert t.lookup(99) == n
        caf.sync_all()
        occupied, total = t.local_totals()
        arr = np.array([total], dtype=np.float64)
        caf.co_sum(arr)
        return float(arr[0])

    out = caf.launch(kernel, num_images=5)
    assert all(v == 6 * 5 for v in out)


def test_distribution_across_images():
    def kernel():
        t = DistributedHashTable(slots_per_image=64)
        owners = {t.home(k)[0] for k in range(200)}
        return owners

    out = caf.launch(kernel, num_images=4)
    assert out[0] == {1, 2, 3, 4}  # hashing spreads keys over all images


def test_collision_probing():
    def kernel():
        t = DistributedHashTable(slots_per_image=8, locks_per_image=1)
        # force colliding keys by brute force: find two keys with the
        # same (image, slot) home
        seen = {}
        pair = None
        for k in range(1, 5000):
            home = t.home(k)
            if home in seen:
                pair = (seen[home], k)
                break
            seen[home] = k
        assert pair is not None
        a, b = pair
        t.update(a)
        t.update(b)
        assert t.lookup(a) == 1 and t.lookup(b) == 1
        return True

    assert all(caf.launch(kernel, num_images=1))


def test_full_bucket_raises():
    def kernel():
        t = DistributedHashTable(slots_per_image=4, locks_per_image=1)
        inserted = 0
        try:
            for k in range(1, 10000):
                t.update(k)
                inserted += 1
        except Exception as exc:
            assert "full" in str(exc)
            return inserted
        return -1

    out = caf.launch(kernel, num_images=1)
    assert 0 < out[0] <= 4


def test_full_bucket_reports_actual_span():
    """With uneven lock spans (5 slots, 2 locks -> spans 3 and 2) the
    DhtFullError must report the home bucket's real slot count, not the
    floor quotient (which would claim 2 for both buckets)."""
    from repro.bench.dht import DhtFullError, _mix

    def kernel():
        t = DistributedHashTable(slots_per_image=5, locks_per_image=2)
        assert [t._lock_span(b) for b in range(2)] == [3, 2]
        # Keys homed exactly at slot 0: inserts occupy slots 0-2 (bucket
        # 0's whole span), so the 4th exhausts its probe range.
        keys = [k for k in range(1, 50000) if (_mix(k) >> 20) % 5 == 0][:4]
        assert len(keys) == 4
        for k in keys[:3]:
            t.update(k)
        try:
            t.update(keys[3])
        except DhtFullError as exc:
            return str(exc)
        return None

    out = caf.launch(kernel, num_images=1)
    assert out[0] is not None and "(3 slots)" in out[0]


def test_reserved_key_rejected():
    def kernel():
        t = DistributedHashTable(slots_per_image=4)
        t.update(-1)

    with pytest.raises(RuntimeError, match="reserved"):
        caf.launch(kernel, num_images=1)


def test_constructor_validation():
    def kernel():
        DistributedHashTable(slots_per_image=2, locks_per_image=4)

    with pytest.raises(RuntimeError, match="more locks"):
        caf.launch(kernel, num_images=1)


def test_multiple_locks_reduce_false_sharing():
    def kernel():
        t = DistributedHashTable(slots_per_image=32, locks_per_image=4)
        for k in range(1, 20):
            t.update(k)
        caf.sync_all()
        _, total = t.local_totals()
        arr = np.array([float(total)])
        caf.co_sum(arr)
        return arr[0]

    out = caf.launch(kernel, num_images=3)
    assert all(v == 19 * 3 for v in out)


def test_benchmark_shape():
    """Fig 9 mechanism: time grows with images; UHCAF-SHMEM fastest."""
    t_small = dht_benchmark("titan", H.UHCAF_CRAY_SHMEM, 2, updates_per_image=6)
    t_big = dht_benchmark("titan", H.UHCAF_CRAY_SHMEM, 12, updates_per_image=6)
    assert 0 < t_small < t_big
    t_cray = dht_benchmark("titan", H.CRAY_CAF, 12, updates_per_image=6)
    t_gas = dht_benchmark("titan", H.UHCAF_GASNET, 12, updates_per_image=6)
    assert t_big < t_cray
    assert t_big < t_gas
