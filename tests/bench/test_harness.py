"""Benchmark harness helpers."""

import pytest

from repro.bench.harness import (
    BenchFigure,
    CafConfig,
    UHCAF_CRAY_SHMEM_2DIM,
    bandwidth_MBps,
    pair_partner,
    pair_world_size,
)


def test_pair_world_size():
    assert pair_world_size(1) == 17
    assert pair_world_size(16) == 32
    with pytest.raises(ValueError):
        pair_world_size(0)
    with pytest.raises(ValueError):
        pair_world_size(17)


def test_pair_partner_layout():
    # initiators 0..pairs-1 pair with 16..16+pairs-1 (different node)
    assert pair_partner(0, 4) == 16
    assert pair_partner(3, 4) == 19
    assert pair_partner(4, 4) is None
    assert pair_partner(16, 4) is None


def test_bandwidth_units():
    # 1000 bytes in 1 us == 1000 MB/s
    assert bandwidth_MBps(1000, 1.0) == pytest.approx(1000.0)
    with pytest.raises(ValueError):
        bandwidth_MBps(10, 0.0)


def test_config_launch_kwargs():
    kw = UHCAF_CRAY_SHMEM_2DIM.launch_kwargs()
    assert kw == {"backend": "shmem", "profile": "cray-shmem", "strided": "2dim"}
    plain = CafConfig("x", backend="gasnet").launch_kwargs()
    assert plain == {"backend": "gasnet"}


def test_bench_figure_accessors():
    fig = BenchFigure("t", "x", "y")
    fig.add_series("a", [1, 2], [3.0, 4.0])
    assert fig.get("a").ys == [3.0, 4.0]
    with pytest.raises(KeyError):
        fig.get("b")
    assert "t" in fig.render()
