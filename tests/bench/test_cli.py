"""The figure-runner CLI (python -m repro.bench)."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import TARGETS, main


def test_tables_target(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table III" in out
    assert "wall-clock" in out  # every target reports host time too


def test_unknown_target_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_all_targets_registered():
    assert TARGETS == (
        "tables", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
        "wallclock", "kvservice",
    )


def test_module_invocation():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "tables"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "Table II" in proc.stdout


def test_report_generation(tmp_path):
    from repro.bench.report import generate_report

    text = generate_report(targets=("tables", "fig8"), quick=True)
    assert "# Reproduction report" in text
    assert "Table II" in text
    assert "lock microbenchmark" in text
    assert "faster than Cray-CAF" in text


def test_report_flag_writes_file(tmp_path):
    out = tmp_path / "report.md"
    assert main(["tables", "--report", str(out)]) == 0
    text = out.read_text()
    assert "Reproduction report" in text and "Table III" in text
