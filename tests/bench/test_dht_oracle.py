"""DHT vs. a sequential dictionary oracle (property-based)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import caf
from repro.bench.dht import DistributedHashTable


@settings(max_examples=10, deadline=None)
@given(
    updates=st.lists(
        st.tuples(st.integers(0, 40), st.integers(-5, 5).filter(lambda d: d != 0)),
        max_size=30,
    ),
    images=st.integers(1, 4),
)
def test_dht_matches_dict_oracle(updates, images):
    """Any single-image update sequence produces exactly the counts a
    plain dict would (insert/update/delta semantics)."""

    def kernel():
        table = DistributedHashTable(slots_per_image=64)  # collective
        if caf.this_image() != 1:
            caf.sync_all()
            return None
        oracle: dict[int, int] = {}
        for key, delta in updates:
            got = table.update(key, delta)
            oracle[key] = oracle.get(key, 0) + delta
            assert got == oracle[key], (key, got, oracle[key])
        for key, count in oracle.items():
            assert table.lookup(key) == count
        caf.sync_all()
        return True

    out = caf.launch(kernel, num_images=images)
    assert out[0] is True or images > 1


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000))
def test_dht_concurrent_totals_match_oracle(seed):
    """Concurrent random updates: the global multiset of counts equals
    a sequential oracle applied to the union of all update streams."""
    n_images = 4
    per_image = 10

    def kernel():
        me = caf.this_image()
        table = DistributedHashTable(slots_per_image=64)
        rng = np.random.default_rng(seed * 100 + me)
        keys = [int(k) for k in rng.integers(0, 30, size=per_image)]
        for k in keys:
            table.update(k)
        caf.sync_all()
        # image 1 verifies against the union oracle
        if me == 1:
            oracle: dict[int, int] = {}
            for img in range(1, n_images + 1):
                r = np.random.default_rng(seed * 100 + img)
                for k in r.integers(0, 30, size=per_image):
                    oracle[int(k)] = oracle.get(int(k), 0) + 1
            for k, count in oracle.items():
                assert table.lookup(k) == count, (k, table.lookup(k), count)
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=n_images))
