"""Himeno: numerical correctness vs the serial reference + Fig 10 shape."""

import numpy as np
import pytest

from repro.bench import harness as H
from repro.bench.himeno import (
    GRID_SIZES,
    _initial_pressure,
    _jacobi_sweep,
    _split,
    himeno_caf,
    himeno_serial,
)


def test_split_covers_range_evenly():
    parts = _split(10, 3)
    assert parts == [(0, 4), (4, 7), (7, 10)]
    assert _split(6, 6) == [(i, i + 1) for i in range(6)]


def test_initial_pressure_profile():
    p = _initial_pressure(4, 5, 8)
    assert p.shape == (4, 5, 8)
    assert p[0, 0, 0] == 0.0
    assert p[3, 4, 7] == 1.0
    assert np.all(np.diff(p[0, 0, :]) > 0)


def test_jacobi_sweep_reduces_residual():
    p = _initial_pressure(10, 10, 10)
    _, g1 = _jacobi_sweep(p, 0.8)
    new, _ = _jacobi_sweep(p, 0.8)
    p[1:-1, 1:-1, 1:-1] = new
    _, g2 = _jacobi_sweep(p, 0.8)
    assert g2 < g1


def test_serial_solver_converges():
    _, gosa_few = himeno_serial((16, 16, 16), 2)
    _, gosa_many = himeno_serial((16, 16, 16), 10)
    assert gosa_many < gosa_few


@pytest.mark.parametrize("images", [1, 2, 3, 5])
def test_caf_gosa_matches_serial(images):
    """The decomposed solve is numerically identical to serial Jacobi
    regardless of the image count."""
    grid = (16, 18, 16)
    iters = 3
    _, serial_gosa = himeno_serial(grid, iters)
    result = himeno_caf("stampede", H.UHCAF_MV2X_SHMEM, images, grid=grid, iterations=iters)
    assert result.gosa == pytest.approx(serial_gosa, rel=1e-12)


def test_caf_gosa_backend_invariant():
    grid = (12, 14, 12)
    r1 = himeno_caf("stampede", H.UHCAF_MV2X_SHMEM, 3, grid=grid, iterations=2)
    r2 = himeno_caf("stampede", H.UHCAF_GASNET, 3, grid=grid, iterations=2)
    assert r1.gosa == pytest.approx(r2.gosa, rel=1e-12)


def test_mflops_scales_with_images():
    r2 = himeno_caf("stampede", H.UHCAF_MV2X_SHMEM, 2, grid="XS", iterations=2)
    r8 = himeno_caf("stampede", H.UHCAF_MV2X_SHMEM, 8, grid="XS", iterations=2)
    assert r8.mflops > 1.5 * r2.mflops


def test_shmem_beats_gasnet_past_one_node():
    """Fig 10: UHCAF over MVAPICH2-X SHMEM wins once halo traffic goes
    inter-node (>= 16 images, paper Section V-D)."""
    n = 24
    s = himeno_caf("stampede", H.UHCAF_MV2X_SHMEM, n, grid="XS", iterations=2)
    g = himeno_caf("stampede", H.UHCAF_GASNET, n, grid="XS", iterations=2)
    assert s.mflops > g.mflops


def test_too_many_images_rejected():
    with pytest.raises(ValueError, match="too many images"):
        himeno_caf("stampede", H.UHCAF_MV2X_SHMEM, 64, grid=(8, 8, 8))


def test_named_grids():
    assert GRID_SIZES["XS"] == (32, 32, 64)
    result = himeno_caf("stampede", H.UHCAF_MV2X_SHMEM, 2, grid="XS", iterations=1)
    assert result.iterations == 1 and result.mflops > 0


def _reference_sweep_loops(p, omega, coef):
    """Slow triple-loop 19-point reference for coefficient testing."""
    nx, ny, nz = p.shape
    new = p.copy()
    gosa = 0.0
    for i in range(1, nx - 1):
        for j in range(1, ny - 1):
            for k in range(1, nz - 1):
                s0 = (
                    coef.a0 * p[i + 1, j, k]
                    + coef.a1 * p[i, j + 1, k]
                    + coef.a2 * p[i, j, k + 1]
                    + coef.b0 * (p[i + 1, j + 1, k] - p[i + 1, j - 1, k]
                                 - p[i - 1, j + 1, k] + p[i - 1, j - 1, k])
                    + coef.b1 * (p[i, j + 1, k + 1] - p[i, j - 1, k + 1]
                                 - p[i, j + 1, k - 1] + p[i, j - 1, k - 1])
                    + coef.b2 * (p[i + 1, j, k + 1] - p[i - 1, j, k + 1]
                                 - p[i + 1, j, k - 1] + p[i - 1, j, k - 1])
                    + coef.c0 * p[i - 1, j, k]
                    + coef.c1 * p[i, j - 1, k]
                    + coef.c2 * p[i, j, k - 1]
                    + coef.wrk1
                )
                ss = (s0 * coef.a3 - p[i, j, k]) * coef.bnd
                gosa += ss * ss
                new[i, j, k] = p[i, j, k] + omega * ss
    return new, gosa


def test_full_stencil_matches_loop_reference():
    from repro.bench.himeno import HimenoCoefficients, _jacobi_sweep

    rng = np.random.default_rng(7)
    p = rng.random((6, 7, 8))
    coef = HimenoCoefficients(
        a0=1.1, a1=0.9, a2=1.05, a3=0.16,
        b0=0.02, b1=-0.03, b2=0.01,
        c0=0.95, c1=1.02, c2=0.98, wrk1=0.001, bnd=0.9,
    )
    vec_new, vec_gosa = _jacobi_sweep(p.copy(), 0.7, coef)
    ref, ref_gosa = _reference_sweep_loops(p.copy(), 0.7, coef)
    assert np.allclose(vec_new, ref[1:-1, 1:-1, 1:-1])
    assert vec_gosa == pytest.approx(ref_gosa, rel=1e-12)


def test_distributed_full_stencil_with_cross_terms():
    """Nonzero b coefficients touch the diagonal neighbours; the j-plane
    halos still carry everything the 19-point stencil needs."""
    from repro.bench.himeno import HimenoCoefficients

    coef = HimenoCoefficients(b0=0.05, b1=0.04, b2=0.03)
    grid = (10, 14, 12)
    _, serial_gosa = himeno_serial(grid, 3, coef=coef)
    result = himeno_caf(
        "stampede", H.UHCAF_MV2X_SHMEM, 4, grid=grid, iterations=3, coef=coef
    )
    assert result.gosa == pytest.approx(serial_gosa, rel=1e-12)
