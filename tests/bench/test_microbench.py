"""PGAS microbenchmark machinery (Figs 6-8) on tiny parameters."""

import pytest

from repro import caf
from repro.bench import harness as H
from repro.bench import microbench as B


def test_contiguous_bandwidth_positive_and_monotone_to_saturation():
    small = B.caf_put_bandwidth("cray-xc30", H.UHCAF_CRAY_SHMEM, 64, iters=3)
    large = B.caf_put_bandwidth("cray-xc30", H.UHCAF_CRAY_SHMEM, 1 << 18, iters=3)
    assert 0 < small < large


def test_uhcaf_shmem_beats_craycaf_contiguous():
    """Fig 6(a): ~8% average gain."""
    gains = []
    for size in (64, 4096, 1 << 17):
        cray = B.caf_put_bandwidth("cray-xc30", H.CRAY_CAF, size, iters=3)
        uh = B.caf_put_bandwidth("cray-xc30", H.UHCAF_CRAY_SHMEM, size, iters=3)
        gains.append((uh - cray) / cray * 100)
    avg = sum(gains) / len(gains)
    assert all(g > 0 for g in gains)
    assert 3 < avg < 20  # paper: average ~8%


def test_strided_2dim_beats_naive_and_cray_on_xc30():
    """Fig 6(c): ~9x vs naive, ~3x vs Cray CAF."""
    stride = 8
    naive = B.caf_strided_put_bandwidth("cray-xc30", H.UHCAF_CRAY_SHMEM_NAIVE, stride, iters=2)
    two = B.caf_strided_put_bandwidth("cray-xc30", H.UHCAF_CRAY_SHMEM_2DIM, stride, iters=2)
    cray = B.caf_strided_put_bandwidth("cray-xc30", H.CRAY_CAF, stride, iters=2)
    assert two / naive > 5  # paper: ~9x
    assert 2 < two / cray < 5  # paper: ~3x


def test_strided_naive_equals_2dim_on_mvapich2x():
    """Fig 7(c): MVAPICH2-X iput loops over putmem, so the algorithms
    tie — and both beat GASNet."""
    stride = 8
    naive = B.caf_strided_put_bandwidth("stampede", H.UHCAF_MV2X_SHMEM_NAIVE, stride, iters=2)
    two = B.caf_strided_put_bandwidth("stampede", H.UHCAF_MV2X_SHMEM_2DIM, stride, iters=2)
    gas = B.caf_strided_put_bandwidth("stampede", H.UHCAF_GASNET, stride, iters=2)
    assert naive == pytest.approx(two, rel=0.05)
    assert naive > gas


def test_call_counts_match_plan_theory():
    """The executed putmem/iput call counts equal the planner's."""

    def kernel():
        import numpy as np

        rt = caf.current_runtime()
        a = caf.coarray((16, 32), np.int32)
        a[:] = 0
        caf.sync_all()
        rt.reset_stats()
        a.on(1).put((slice(0, 16, 2), slice(0, 32, 4)), 7, algorithm="naive")
        naive_calls = rt.my_stats["putmem_calls"]
        a.on(1).put((slice(0, 16, 2), slice(0, 32, 4)), 7, algorithm="2dim")
        iput_calls = rt.my_stats["iput_calls"]
        return (naive_calls, iput_calls)

    out = caf.launch(kernel, num_images=1, profile="cray-shmem")
    assert out[0] == (8 * 8, 8)  # per-element vs one line per row


def test_lock_contention_grows_with_images():
    t2 = B.lock_contention_time("titan", H.UHCAF_CRAY_SHMEM, 2, acquires=3)
    t12 = B.lock_contention_time("titan", H.UHCAF_CRAY_SHMEM, 12, acquires=3)
    assert 0 < t2 < t12


def test_lock_shmem_beats_gasnet_and_craycaf():
    """Fig 8 ordering at a contended image count."""
    n = 24
    shmem_t = B.lock_contention_time("titan", H.UHCAF_CRAY_SHMEM, n, acquires=3)
    gasnet_t = B.lock_contention_time("titan", H.UHCAF_GASNET, n, acquires=3)
    cray_t = B.lock_contention_time("titan", H.CRAY_CAF, n, acquires=3)
    assert shmem_t < gasnet_t
    assert shmem_t < cray_t


def test_parameter_validation():
    with pytest.raises(ValueError):
        B.caf_strided_put_bandwidth("stampede", H.UHCAF_GASNET, stride=0)
    with pytest.raises(ValueError):
        B.lock_contention_time("titan", H.CRAY_CAF, 0)


def test_get_bandwidth_positive_and_below_put():
    """Gets are blocking round trips; statement bandwidth trails puts of
    the same size at small messages."""
    put_bw = B.caf_put_bandwidth("cray-xc30", H.UHCAF_CRAY_SHMEM, 4096, iters=3)
    get_bw = B.caf_get_bandwidth("cray-xc30", H.UHCAF_CRAY_SHMEM, 4096, iters=3)
    assert 0 < get_bw < put_bw


def test_strided_get_mirrors_put_algorithm_gap():
    naive = B.caf_strided_get_bandwidth(
        "cray-xc30", H.UHCAF_CRAY_SHMEM_NAIVE, 8, iters=2
    )
    two = B.caf_strided_get_bandwidth(
        "cray-xc30", H.UHCAF_CRAY_SHMEM_2DIM, 8, iters=2
    )
    assert two > 3 * naive
