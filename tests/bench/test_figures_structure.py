"""Structural contracts of the figure drivers (cheap subset).

The benchmark suite asserts the reproduced *shapes*; these tests pin the
drivers' structure — series labels match the paper's legends and every
series spans the same x-axis — using the cheapest figures only.
"""

from repro.bench import figures


def test_fig8_structure():
    fig = figures.fig8(quick=True)
    labels = [s.label for s in fig.series]
    assert labels == ["Cray-CAF", "UHCAF-GASNet", "UHCAF-Cray-SHMEM"]
    xs = fig.series[0].xs
    assert all(s.xs == xs for s in fig.series)
    assert fig.x_label == "images"
    assert all(len(s.ys) == len(xs) for s in fig.series)
    assert all(y > 0 for s in fig.series for y in s.ys)


def test_fig10_structure():
    fig = figures.fig10(quick=True)
    labels = [s.label for s in fig.series]
    assert labels == ["UHCAF-GASNet", "UHCAF-MVAPICH2-X-SHMEM"]
    assert fig.y_label == "MFLOPS"
    assert min(fig.series[0].xs) >= 2


def test_tables_driver_returns_all_three():
    tables = figures.tables()
    titles = [t.title for t in tables]
    assert any("Table I:" in t for t in titles)
    assert any("Table II:" in t for t in titles)
    assert any("Table III:" in t for t in titles)


def test_render_roundtrip():
    fig = figures.fig8(quick=True)
    text = fig.render()
    for s in fig.series:
        assert s.label in text
