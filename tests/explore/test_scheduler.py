"""The cooperative scheduler: determinism, replay, deadlock/livelock
detection, exhaustive enumeration, fault-plan composition."""

import numpy as np
import pytest

from repro import caf
from repro.explore import (
    DeadlockError,
    ExhaustiveEnumerator,
    ExploreProgram,
    GuidedPrefix,
    RandomWalk,
    ReplaySchedule,
    ScheduleLimitError,
    Scheduler,
    Strategy,
    make_strategy,
    run_schedule,
    spin_hint,
)
from repro.runtime.context import current
from repro.runtime.launcher import JobFailure, run_spmd
from repro.sim.faults import FaultPlan, InjectedCrash


def _sched(seed: int, **kw) -> Scheduler:
    return Scheduler(RandomWalk(seed), **kw)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def _counter_kernel():
    counter = caf.coarray((1,), np.int64)
    counter[:] = 0
    lck = caf.lock_type()
    caf.sync_all()
    for _ in range(2):
        caf.lock(lck, 1)
        counter.on(1)[0] = int(counter.on(1)[0]) + 1
        caf.unlock(lck, 1)
    caf.sync_all()
    return int(counter.on(1)[0])


def _conflict_kernel():
    me = caf.this_image()
    data = caf.coarray((2,), np.int64)
    data[:] = 0
    caf.sync_all()
    data.on(1)[0] = me
    caf.sync_all()
    return int(data.on(1)[0])


def _orphan_wait_kernel():
    me = caf.this_image()
    ev = caf.event_type()
    caf.sync_all()
    if me == 1:
        ev.wait()  # nobody ever posts
    return me


def _livelock_kernel():
    me = caf.this_image()
    flag = caf.coarray((1,), np.int64)
    flag[:] = 0
    caf.sync_all()
    if me == 1:
        while caf.atomic_ref(flag, 1) != 1:  # nobody ever defines it
            spin_hint()
    return me


# ---------------------------------------------------------------------------
# Determinism and replay
# ---------------------------------------------------------------------------


def test_same_seed_same_interleaving_and_result():
    runs = []
    for _ in range(2):
        sched = _sched(42)
        out = caf.launch(_counter_kernel, 3, scheduler=sched)
        runs.append((out, list(sched.trace), sched.steps))
    assert runs[0] == runs[1]
    assert runs[0][0] == [6, 6, 6]
    assert runs[0][2] > 0


def test_recorded_trace_replays_exactly():
    sched = _sched(7)
    out = caf.launch(_counter_kernel, 2, scheduler=sched)
    strategy = ReplaySchedule(sched.trace)
    replayed = Scheduler(strategy)
    out2 = caf.launch(_counter_kernel, 2, scheduler=replayed)
    assert out2 == out
    assert list(replayed.trace) == list(sched.trace)
    assert strategy.mismatches == 0


def test_different_seeds_reach_different_outcomes():
    # The conflict kernel is racy by construction: across seeds the
    # scheduler must expose more than one final value.
    finals = set()
    for seed in range(12):
        out = caf.launch(
            _conflict_kernel, 2, ordering="relaxed", scheduler=_sched(seed)
        )
        assert out[0] == out[1]  # read back after the closing barrier
        finals.add(out[0])
    assert finals == {1, 2}


def test_scheduler_is_single_use():
    sched = _sched(0)
    caf.launch(_counter_kernel, 2, scheduler=sched)
    with pytest.raises(RuntimeError, match="one-shot"):
        caf.launch(_counter_kernel, 2, scheduler=sched)


def test_guided_prefix_completes_nonpreemptively():
    sched = _sched(5)
    caf.launch(_counter_kernel, 2, scheduler=sched)
    cut = len(sched.trace) // 2
    guided = Scheduler(GuidedPrefix(sched.trace[:cut]))
    out = caf.launch(_counter_kernel, 2, scheduler=guided)
    assert out == [4, 4]  # race-free kernel: any completion is correct
    assert guided.trace[:cut] == sched.trace[:cut]


# ---------------------------------------------------------------------------
# Deadlock / livelock detection
# ---------------------------------------------------------------------------


def test_orphan_wait_is_reported_as_deadlock():
    with pytest.raises(JobFailure) as ei:
        caf.launch(_orphan_wait_kernel, 2, scheduler=_sched(3))
    kinds = [type(exc) for _, exc in ei.value.failures]
    assert DeadlockError in kinds
    deadlock = next(e for _, e in ei.value.failures if isinstance(e, DeadlockError))
    assert "PE 0 blocked" in str(deadlock)


def test_mismatched_barrier_is_reported_as_deadlock():
    def kernel():
        if caf.this_image() == 1:
            caf.sync_all()  # image 2 never arrives
        return caf.this_image()

    with pytest.raises(JobFailure) as ei:
        caf.launch(kernel, 2, scheduler=_sched(1))
    assert any(isinstance(e, DeadlockError) for _, e in ei.value.failures)


def test_spin_livelock_hits_step_limit():
    with pytest.raises(JobFailure) as ei:
        caf.launch(
            _livelock_kernel, 2,
            scheduler=Scheduler(RandomWalk(2), max_steps=800),
        )
    assert any(isinstance(e, ScheduleLimitError) for _, e in ei.value.failures)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def test_make_strategy_validation():
    with pytest.raises(ValueError, match="unknown strategy"):
        make_strategy("simulated-annealing", 0)


def test_bogus_strategy_choice_is_rejected():
    class Bogus(Strategy):
        name = "bogus"

        def choose(self, step, choices):
            return "p999"

    with pytest.raises(JobFailure) as ei:
        caf.launch(_counter_kernel, 2, scheduler=Scheduler(Bogus()))
    assert any(
        isinstance(e, RuntimeError) and "strategy returned" in str(e)
        for _, e in ei.value.failures
    )


def test_pct_depth_changes_schedules():
    traces = set()
    for depth in (1, 2, 4):
        sched = Scheduler(make_strategy("pct", 11, depth=depth))
        caf.launch(_counter_kernel, 3, scheduler=sched)
        traces.add(tuple(sched.trace))
    # Same seed, different depths: at least two distinct interleavings.
    assert len(traces) >= 2


def test_exhaustive_enumeration_covers_and_terminates():
    def runner(scheduler, *, images, machine, trace=False, faults=None):
        out = caf.launch(
            _barrier_only_kernel, images, machine, scheduler=scheduler
        )
        return repr(out), None

    prog = ExploreProgram("tiny", False, 2, "barrier-only", runner)
    enum = ExhaustiveEnumerator()
    digests = set()
    runs = 0
    while runs < 600:
        strat = enum.next_strategy()
        if strat is None:
            break
        outcome, _ = run_schedule(prog, strat)
        enum.advance(strat)
        digests.add(outcome.digest)
        runs += 1
    assert enum.exhausted, f"tree not exhausted after {runs} runs"
    assert runs >= 2  # there is more than one schedule of even this kernel
    assert digests == {repr([1, 2])}


def _barrier_only_kernel():
    caf.sync_all()
    return caf.this_image()


# ---------------------------------------------------------------------------
# Fault-plan composition
# ---------------------------------------------------------------------------


def test_fault_plan_composes_with_any_schedule():
    # Plan decisions are pure in (seed, pe, per-PE op index), so the
    # same plan must follow the program through any interleaving: a
    # race-free kernel keeps one digest across schedules under faults.
    plan = FaultPlan(seed=13, transient_rate=0.3, latency_rate=0.5)
    outs = []
    for seed in (1, 2, 3):
        outs.append(
            caf.launch(
                _counter_kernel, 2, faults=plan, scheduler=_sched(seed)
            )
        )
    assert outs[0] == outs[1] == outs[2] == [4, 4]


def test_injected_crash_is_schedule_independent():
    plan = FaultPlan(seed=5, crash_at={0: 2})
    kinds = set()
    for seed in (4, 9):
        with pytest.raises(JobFailure) as ei:
            caf.launch(_counter_kernel, 2, faults=plan, scheduler=_sched(seed))
        kinds.add(type(ei.value.failures[0][1]))
    assert kinds == {InjectedCrash}


# ---------------------------------------------------------------------------
# spin_hint on the threaded engine
# ---------------------------------------------------------------------------


def test_spin_hint_without_scheduler_is_a_sleep():
    def kernel():
        spin_hint()
        return current().pe

    assert run_spmd(kernel, 2) == [0, 1]
