"""Determinism regression (PR satellite): one seed, one execution.

Two identical scheduler-mode runs with the same seed must be
bit-identical end to end — same results, same recorded interleaving,
same trace digests, and the *same virtual times* (the trace digest
folds every event's ``t_start``/``t_end`` in, and Himeno's elapsed
virtual time is compared exactly).  The threaded engine can only
promise identical results for race-free programs; scheduler mode must
replay the whole execution."""

from repro.bench.harness import CafConfig
from repro.bench.himeno import himeno_caf
from repro.explore import RandomWalk, Scheduler, get_program, run_schedule, trace_digest


def test_dht_trace_and_times_bit_identical():
    prog = get_program("dht")
    seen = set()
    for _ in range(2):
        outcome, tracer = run_schedule(prog, RandomWalk(2015), trace=True)
        assert outcome.error is None
        seen.add(
            (outcome.digest, tuple(outcome.choices), trace_digest(tracer))
        )
    assert len(seen) == 1


def test_himeno_result_and_virtual_times_bit_identical():
    config = CafConfig("determinism-shmem", backend="shmem")
    runs = []
    for _ in range(2):
        res = himeno_caf(
            "stampede", config, 4, grid="XS", iterations=2,
            scheduler=Scheduler(RandomWalk(7)),
        )
        runs.append((res.gosa, res.elapsed_us, res.mflops))
    assert runs[0] == runs[1]
    assert runs[0][1] > 0.0
