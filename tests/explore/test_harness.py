"""The explorer: race-free/racy contracts, witnesses, replay, the CLI,
and the ``@schedules`` pytest decorator."""

import json

import numpy as np
import pytest

from repro import caf
from repro.explore import (
    RandomWalk,
    explore,
    get_program,
    replay,
    run_schedule,
    schedules,
    trace_diff,
    trace_digest,
)
from repro.explore.__main__ import main as explore_main


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["locks", "events"])
def test_race_free_programs_are_schedule_independent(name):
    report = explore(name, schedules=6, seed=3)
    assert report.ok
    assert not report.racy
    assert len(report.digests) == 1
    assert report.witness is None
    assert not report.errors
    assert report.schedules_run == 6


def test_dht_distinct_home_keys_have_distinct_homes():
    from repro.explore.programs import _dht_distinct_keys
    from repro.bench.dht import _mix

    keys = _dht_distinct_keys(3, 8, 6)
    homes = {(_mix(k) % 3 + 1, (_mix(k) >> 20) % 8) for k in keys}
    assert len(homes) == len(keys) == 6


def test_missing_quiet_yields_witness_within_budget():
    report = explore("missing_quiet", schedules=200, seed=2015)
    assert report.racy and report.ok
    assert report.diverged
    w = report.witness
    assert w is not None
    assert w.baseline_digest != w.divergent_digest
    assert 0 < len(w.minimized) <= len(w.choices)
    assert w.trace_diff
    # The full recording replays to the divergent digest...
    outcome, _ = replay("missing_quiet", w.choices)
    assert outcome.digest == w.divergent_digest
    # ...and the minimized prefix still diverges under guided completion.
    outcome_min, _ = replay("missing_quiet", w.minimized, guided=True)
    assert outcome_min.digest != w.baseline_digest


def test_unordered_conflict_yields_witness():
    report = explore("unordered_conflict", schedules=100, seed=1)
    assert report.ok and report.diverged
    w = report.witness
    outcome, _ = replay("unordered_conflict", w.choices)
    assert outcome.digest == w.divergent_digest


def test_exhaustive_strategy_finds_conflict():
    report = explore("unordered_conflict", schedules=400, strategy="exhaustive")
    assert report.ok and report.diverged


def test_unknown_program_rejected():
    with pytest.raises(KeyError, match="unknown explore program"):
        explore("hydra")


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


def test_trace_digest_replays_bit_identically():
    prog = get_program("locks")
    digests = set()
    for _ in range(2):
        outcome, tracer = run_schedule(prog, RandomWalk(19), trace=True)
        assert outcome.error is None
        digests.add((outcome.digest, trace_digest(tracer)))
    assert len(digests) == 1


def test_trace_diff_reports_first_divergence():
    class _FakeEvent:
        def __init__(self, op, target, nbytes):
            self.op, self.target, self.nbytes = op, target, nbytes

    class _FakeTracer:
        def __init__(self, streams):
            self.events = [
                [_FakeEvent(*e) for e in stream] for stream in streams
            ]

    base = _FakeTracer([[("put", 1, 8), ("quiet", -1, 0)]])
    div = _FakeTracer([[("put", 1, 8), ("get", 1, 8)]])
    lines = trace_diff(base, div)
    assert any("first differing op at #1" in line for line in lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_race_free_exit_zero(capsys):
    rc = explore_main(["--program", "locks", "--schedules", "3", "--seed", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "contracts hold" in out


def test_cli_json_document(capsys):
    rc = explore_main(
        ["--program", "locks", "--schedules", "3", "--seed", "1", "--json"]
    )
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["violations"] == 0
    (report,) = doc["reports"]
    assert report["program"] == "locks"
    assert report["ok"] is True
    assert len(report["digests"]) == 1


def test_cli_usage_errors(capsys):
    assert explore_main([]) == 2
    assert explore_main(["--program", "locks", "--schedules", "0"]) == 2
    assert explore_main(["--program", "not-a-program"]) == 2
    capsys.readouterr()


def test_cli_witness_replay_roundtrip(tmp_path, capsys):
    rc = explore_main(
        ["--program", "unordered_conflict", "--schedules", "100", "--json"]
    )
    assert rc == 0
    doc = capsys.readouterr().out
    witness_file = tmp_path / "witness.json"
    witness_file.write_text(doc)
    assert explore_main(["--replay", str(witness_file)]) == 0
    out = capsys.readouterr().out
    assert "reproduced" in out
    assert explore_main(["--replay", str(witness_file), "--minimized"]) == 0
    capsys.readouterr()


def test_cli_replay_rejects_witnessless_file(tmp_path, capsys):
    f = tmp_path / "empty.json"
    f.write_text(json.dumps({"reports": [{"witness": None}]}))
    assert explore_main(["--replay", str(f)]) == 2
    capsys.readouterr()


# ---------------------------------------------------------------------------
# @schedules decorator
# ---------------------------------------------------------------------------


def _accumulate_kernel():
    me = caf.this_image()
    acc = caf.coarray((1,), np.int64)
    acc[:] = 0
    caf.sync_all()
    caf.atomic_add(acc, 1, me)
    caf.sync_all()
    return int(acc.on(1)[0])


@schedules(n=5, seed=23)
def test_schedules_decorator_runs_fresh_schedulers(schedule):
    sched = schedule()
    out = caf.launch(_accumulate_kernel, 2, scheduler=sched)
    assert out == [3, 3]
    assert sched.steps > 0


@schedules(n=2, strategy="pct", seed=31)
def test_schedules_decorator_pct(schedule):
    out = caf.launch(_accumulate_kernel, 2, scheduler=schedule())
    assert out == [3, 3]
