"""MPI-3.0 RMA windows: epochs, RMA, atomics, completion."""

import numpy as np
import pytest

from repro import mpirma
from repro.runtime.context import current
from tests.conftest import TEST_MACHINE


def test_put_get_inside_lock_all():
    def kernel():
        me, n = mpirma.comm_rank(), mpirma.comm_size()
        a = mpirma.alloc_array((4,), np.float64)
        a.local[:] = me
        win = mpirma.win_create(a)
        mpirma.barrier()
        win.lock_all()
        got = win.get(4, (me + 1) % n)
        assert list(got) == [(me + 1) % n] * 4
        win.put(np.full(4, me + 0.5), (me + 1) % n)
        win.flush((me + 1) % n)
        win.unlock_all()
        mpirma.barrier()
        left = (me - 1) % n
        assert list(a.local) == [left + 0.5] * 4
        mpirma.win_free(win)
        return True

    assert all(mpirma.launch(kernel, num_pes=3))


def test_rma_outside_epoch_rejected():
    def kernel():
        a = mpirma.alloc_array((2,), np.float64)
        win = mpirma.win_create(a)
        win.put([1.0, 2.0], 0)

    with pytest.raises(RuntimeError, match="epoch"):
        mpirma.launch(kernel, num_pes=1)


def test_nested_lock_all_rejected():
    def kernel():
        a = mpirma.alloc_array((1,), np.float64)
        win = mpirma.win_create(a)
        win.lock_all()
        win.lock_all()

    with pytest.raises(RuntimeError, match="existing epoch"):
        mpirma.launch(kernel, num_pes=1)


def test_fence_opens_epoch_and_synchronizes():
    def kernel():
        me, n = mpirma.comm_rank(), mpirma.comm_size()
        a = mpirma.alloc_array((1,), np.float64)
        a.local[0] = -1.0
        win = mpirma.win_create(a)
        win.fence()
        win.put([float(me)], (me + 1) % n)
        win.fence()
        assert a.local[0] == float((me - 1) % n)
        mpirma.win_free(win)
        return True

    assert all(mpirma.launch(kernel, num_pes=4))


def test_accumulate_is_atomic_under_contention():
    def kernel():
        a = mpirma.alloc_array((4,), np.float64)
        win = mpirma.win_create(a)
        win.lock_all()
        for _ in range(25):
            win.accumulate(np.ones(4), rank=0)
        win.unlock_all()
        mpirma.barrier()
        if mpirma.comm_rank() == 0:
            return list(a.local)
        return None

    out = mpirma.launch(kernel, num_pes=4)
    assert out[0] == [100.0] * 4


@pytest.mark.parametrize(
    "op,start,operand,expect",
    [
        ("sum", 5.0, 2.0, 7.0),
        ("prod", 3.0, 4.0, 12.0),
        ("min", 5.0, 2.0, 2.0),
        ("max", 5.0, 9.0, 9.0),
        ("replace", 5.0, 8.0, 8.0),
    ],
)
def test_accumulate_ops(op, start, operand, expect):
    def kernel():
        a = mpirma.alloc_array((1,), np.float64)
        a.local[0] = start
        win = mpirma.win_create(a)
        win.fence()
        if mpirma.comm_rank() == 0:
            win.accumulate([operand], rank=0, op=op)
        win.fence()
        return float(a.local[0])

    out = mpirma.launch(kernel, num_pes=2)
    assert out[0] == pytest.approx(expect)


def test_bitwise_accumulate():
    def kernel():
        a = mpirma.alloc_array((1,), np.int64)
        a.local[0] = 0b1100
        win = mpirma.win_create(a)
        win.fence()
        if mpirma.comm_rank() == 0:
            win.accumulate([0b1010], rank=0, op="bxor")
        win.fence()
        return int(a.local[0])

    assert mpirma.launch(kernel, num_pes=1)[0] == 0b0110


def test_fetch_and_op_and_cas():
    def kernel():
        me = mpirma.comm_rank()
        a = mpirma.alloc_array((1,), np.int64)
        win = mpirma.win_create(a)
        win.lock_all()
        old = win.fetch_and_op(1, rank=0, op="sum")
        assert old >= 0
        win.unlock_all()
        mpirma.barrier()
        win.lock_all()
        if me == 0:
            prev = win.compare_and_swap(100, cond=4, rank=0)
            assert prev == 4  # all four increments landed
        win.unlock_all()
        mpirma.barrier()
        return int(a.local[0]) if me == 0 else None

    out = mpirma.launch(kernel, num_pes=4)
    assert out[0] == 100


def test_unknown_accumulate_op():
    def kernel():
        a = mpirma.alloc_array((1,), np.float64)
        win = mpirma.win_create(a)
        win.fence()
        win.accumulate([1.0], rank=0, op="median")

    with pytest.raises(RuntimeError, match="unknown accumulate"):
        mpirma.launch(kernel, num_pes=1)


def test_window_use_after_free_rejected():
    def kernel():
        a = mpirma.alloc_array((1,), np.float64)
        win = mpirma.win_create(a)
        mpirma.win_free(win)
        win.lock_all()

    with pytest.raises(RuntimeError, match="after win_free"):
        mpirma.launch(kernel, num_pes=1)


def test_win_create_requires_own_layer_memory():
    from repro import shmem
    from repro.runtime.launcher import Job

    def kernel():
        x = shmem.shmalloc_array((4,), np.float64)
        mpirma._layer().win_create(x)

    job = Job(1)
    shmem.attach(job)
    mpirma.attach(job)
    with pytest.raises(RuntimeError, match="this layer"):
        job.run(kernel)


def test_mpi_put_costs_more_than_shmem():
    """Fig 2's mechanism at the layer level."""
    from repro import shmem

    def mk():
        a = mpirma.alloc_array((64,), np.float64)
        win = mpirma.win_create(a)
        win.lock_all()
        t0 = current().clock.now
        win.put(np.zeros(64), rank=2)
        win.flush(2)
        dt = current().clock.now - t0
        win.unlock_all()
        return dt

    def sk():
        a = shmem.shmalloc_array((64,), np.float64)
        shmem.barrier_all()
        t0 = current().clock.now
        shmem.put(a, np.zeros(64), pe=2)
        shmem.quiet()
        return current().clock.now - t0

    m = mpirma.launch(mk, num_pes=4, machine=TEST_MACHINE)[0]
    s = shmem.launch(sk, num_pes=4, machine=TEST_MACHINE)[0]
    assert m > s
