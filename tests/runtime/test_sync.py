"""Virtual barrier and collective agreement."""

import threading

import pytest

from repro.runtime.context import PEContext, set_current
from repro.runtime.launcher import Job, JobAborted
from repro.runtime.sync import CollectiveMismatch, CollectiveState, VirtualBarrier


def _contexts(n: int) -> list[PEContext]:
    job = Job(n, "stampede")
    return [PEContext(job, pe) for pe in range(n)]


def test_barrier_reconciles_clocks():
    n = 4
    ctxs = _contexts(n)
    for i, c in enumerate(ctxs):
        c.clock.advance(float(i * 10))
    barrier = VirtualBarrier(n, aborted=lambda: False)
    results = [None] * n

    def worker(i):
        results[i] = barrier.wait(ctxs[i], cost=2.0)

    ts = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert all(r == pytest.approx(32.0) for r in results)  # max(30) + 2
    assert all(c.clock.now == pytest.approx(32.0) for c in ctxs)


def test_barrier_is_reusable():
    n = 3
    ctxs = _contexts(n)
    barrier = VirtualBarrier(n, aborted=lambda: False)
    outs = []

    def worker(i):
        barrier.wait(ctxs[i], cost=1.0)
        ctxs[i].clock.advance(5.0)
        outs.append(barrier.wait(ctxs[i], cost=1.0))

    ts = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert all(o == pytest.approx(7.0) for o in outs)  # 1 + 5 + 1


def test_barrier_abort_releases_waiters():
    ctxs = _contexts(2)
    flag = threading.Event()
    barrier = VirtualBarrier(2, aborted=flag.is_set)

    def worker():
        with pytest.raises(JobAborted):
            barrier.wait(ctxs[0])

    t = threading.Thread(target=worker)
    t.start()
    flag.set()
    t.join(timeout=5)
    assert not t.is_alive()


def test_barrier_validation():
    with pytest.raises(ValueError):
        VirtualBarrier(0, aborted=lambda: False)


def test_collective_agreement_first_arriver_wins():
    n = 4
    ctxs = _contexts(n)
    state = CollectiveState(n, aborted=lambda: False)
    calls = []
    results = [None] * n

    def worker(i):
        def compute():
            calls.append(i)
            return f"value-from-{i}"

        results[i] = state.agree(ctxs[i], "alloc:x", compute)

    ts = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert len(calls) == 1
    assert len(set(results)) == 1
    assert state._entries == {}  # garbage collected after all served


def test_collective_sequences_stay_aligned():
    n = 2
    ctxs = _contexts(n)
    state = CollectiveState(n, aborted=lambda: False)
    out = [[], []]

    def worker(i):
        for k in range(5):
            out[i].append(state.agree(ctxs[i], f"op{k}", lambda k=k: k * 100))

    ts = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert out[0] == out[1] == [0, 100, 200, 300, 400]


def test_collective_mismatch_detected():
    n = 2
    ctxs = _contexts(n)
    state = CollectiveState(n, aborted=lambda: False)
    state.agree(ctxs[0], "alloc:(4,)", lambda: 1)
    with pytest.raises(CollectiveMismatch):
        state.agree(ctxs[1], "alloc:(8,)", lambda: 2)


def test_single_pe_collective_short_circuits():
    ctxs = _contexts(1)
    state = CollectiveState(1, aborted=lambda: False)
    assert state.agree(ctxs[0], "x", lambda: 7) == 7
    assert state._entries == {}
