"""Batched scatter/gather (``write_at``/``read_at``) and the arithmetic
bounds checks of the strided paths."""

import numpy as np
import pytest

from repro.runtime.memory import PEMemory


def test_write_at_read_at_roundtrip_aligned():
    mem = PEMemory(4096)
    offsets = np.array([8, 64, 16, 1024, 40], dtype=np.int64)  # unsorted on purpose
    data = np.arange(5, dtype=np.int64)
    mem.write_at(offsets, 8, data, timestamp=1.5)
    got = mem.read_at(offsets, 8).view(np.int64)
    assert np.array_equal(got, data)
    # order preserved: element i landed at offsets[i]
    for off, val in zip(offsets, data):
        assert mem.read_scalar(int(off), np.int64) == val
    assert mem.last_write_time == 1.5


@pytest.mark.parametrize("elem_size", [1, 2, 3, 4, 8, 16])
def test_write_at_matches_per_element_writes(elem_size):
    rng = np.random.default_rng(elem_size)
    a, b = PEMemory(2048), PEMemory(2048)
    n = 37
    offsets = rng.choice(np.arange(0, 2048 - elem_size, elem_size), n, replace=False).astype(np.int64)
    payload = rng.integers(0, 256, n * elem_size, dtype=np.uint8)
    for i, off in enumerate(offsets):
        a.write(int(off), payload[i * elem_size : (i + 1) * elem_size], timestamp=2.0)
    b.write_at(offsets, elem_size, payload, timestamp=2.0)
    assert np.array_equal(a.local_view(0, 2048), b.local_view(0, 2048))
    assert a.last_write_time == b.last_write_time
    assert np.array_equal(b.read_at(offsets, elem_size), payload)


def test_write_at_unaligned_offsets_fall_back():
    mem = PEMemory(256)
    offsets = np.array([1, 9, 18], dtype=np.int64)  # not multiples of 4
    payload = np.arange(12, dtype=np.uint8)
    mem.write_at(offsets, 4, payload, timestamp=0.5)
    assert np.array_equal(mem.read_at(offsets, 4), payload)
    assert np.array_equal(mem.local_view(1, 4), payload[:4])


def test_write_at_bounds_and_validation():
    mem = PEMemory(128)
    with pytest.raises(IndexError):
        mem.write_at(np.array([124], dtype=np.int64), 8, np.zeros(8, np.uint8), 0.0)
    with pytest.raises(IndexError):
        mem.write_at(np.array([-8], dtype=np.int64), 8, np.zeros(8, np.uint8), 0.0)
    with pytest.raises(ValueError):
        mem.write_at(np.array([0, 8], dtype=np.int64), 8, np.zeros(8, np.uint8), 0.0)
    with pytest.raises(IndexError):
        mem.read_at(np.array([121], dtype=np.int64), 8)


def test_write_at_zero_elements_is_a_noop():
    mem = PEMemory(64)
    mem.write_at(np.empty(0, dtype=np.int64), 8, np.empty(0, np.uint8), timestamp=9.0)
    assert mem.last_write_time == 0.0  # no spurious timestamp publication
    assert mem.read_at(np.empty(0, dtype=np.int64), 8).size == 0


def test_write_at_wakes_waiters():
    import threading

    mem = PEMemory(64)
    seen = {}

    def waiter():
        ts = mem.wait_until(
            lambda: mem.read_scalar(8, np.int64) == 7, aborted=lambda: False
        )
        seen["ts"] = ts

    t = threading.Thread(target=waiter)
    t.start()
    mem.write_at(np.array([8], dtype=np.int64), 8, np.array([7], dtype=np.int64), 3.25)
    t.join(timeout=5)
    assert seen["ts"] == 3.25


# ---------------------------------------------------------------------------
# Aligned-view fast path at the ragged tail: heaps whose nbytes is not a
# multiple of elem_size must view only the usable prefix, and offsets
# touching the last usable element must round-trip exactly.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("elem_size", [2, 4, 8])
@pytest.mark.parametrize("aligned", [None, True])
def test_ragged_tail_last_usable_element(elem_size, aligned):
    """``nbytes % elem_size != 0``: the aligned view must cover exactly
    the usable prefix, and the last usable element must be writable and
    readable whether alignment is inferred (None) or asserted (True)."""
    nbytes = 131  # 131 % 2 == 1, % 4 == 3, % 8 == 3 — always ragged
    assert nbytes % elem_size != 0
    mem = PEMemory(nbytes)
    usable = nbytes - nbytes % elem_size
    last = usable - elem_size  # aligned offset of the last usable element
    offsets = np.array([0, last], dtype=np.int64)
    payload = np.arange(2 * elem_size, dtype=np.uint8) + 1
    mem.write_at(offsets, elem_size, payload, timestamp=1.0, aligned=aligned)
    got = mem.read_at(offsets, elem_size, aligned=aligned)
    assert np.array_equal(got, payload)
    # The bytes landed exactly where per-element writes would put them.
    assert np.array_equal(mem.local_view(last, elem_size), payload[elem_size:])
    # The ragged tail bytes beyond `usable` were never touched.
    assert not mem.local_view(usable, nbytes - usable).any()


@pytest.mark.parametrize("elem_size", [2, 4, 8])
def test_ragged_tail_matches_per_element_writes(elem_size):
    """Fast path vs write() oracle on a ragged heap, random aligned
    offsets including the last usable element."""
    nbytes = 1021  # prime: ragged for every elem_size of interest
    rng = np.random.default_rng(nbytes * elem_size)
    a, b = PEMemory(nbytes), PEMemory(nbytes)
    usable = nbytes - nbytes % elem_size
    pool = np.arange(0, usable, elem_size, dtype=np.int64)
    offsets = rng.choice(pool, 17, replace=False)
    offsets[0] = usable - elem_size  # always exercise the tail element
    payload = rng.integers(0, 256, offsets.size * elem_size, dtype=np.uint8)
    for i, off in enumerate(offsets):
        a.write(int(off), payload[i * elem_size : (i + 1) * elem_size], timestamp=2.0)
    b.write_at(offsets, elem_size, payload, timestamp=2.0, aligned=True)
    assert np.array_equal(a.local_view(0, nbytes), b.local_view(0, nbytes))
    assert np.array_equal(b.read_at(offsets, elem_size, aligned=True), payload)
    # Inferred alignment must pick the same fast path and same bytes.
    c = PEMemory(nbytes)
    c.write_at(offsets, elem_size, payload, timestamp=2.0)
    assert np.array_equal(a.local_view(0, nbytes), c.local_view(0, nbytes))


@pytest.mark.parametrize("elem_size", [2, 4, 8])
def test_ragged_tail_rejects_escape_into_tail(elem_size):
    """An element that would start past the last usable slot (overlapping
    the ragged tail) must be rejected by the bounds check, not silently
    clipped by the usable-prefix view."""
    nbytes = 131  # ragged for elem sizes 2/4/8
    assert nbytes % elem_size != 0
    mem = PEMemory(nbytes)
    usable = nbytes - nbytes % elem_size
    bad = np.array([usable], dtype=np.int64)  # starts inside the tail
    with pytest.raises(IndexError):
        mem.write_at(bad, elem_size, np.zeros(elem_size, np.uint8), 0.0)
    with pytest.raises(IndexError):
        mem.read_at(bad, elem_size)


# ---------------------------------------------------------------------------
# Strided paths: arithmetic bounds + as_strided fast path equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("stride_bytes,elem_size", [(8, 8), (24, 8), (3, 2), (5, 5)])
def test_write_strided_roundtrip(stride_bytes, elem_size):
    mem = PEMemory(1024)
    nelems = 11
    payload = np.arange(nelems * elem_size, dtype=np.uint8)
    mem.write_strided(16, stride_bytes, elem_size, payload, timestamp=1.0)
    got = mem.read_strided(16, stride_bytes, elem_size, nelems)
    assert np.array_equal(got, payload)


def test_strided_bounds_reject_escapes():
    mem = PEMemory(100)
    with pytest.raises(IndexError, match="escapes"):
        mem.write_strided(90, 8, 8, np.zeros(16, np.uint8), 0.0)  # 90+8+8 > 100
    with pytest.raises(IndexError, match="escapes"):
        mem.read_strided(96, 8, 8, 2)
    # exactly at the edge is fine
    mem.write_strided(84, 8, 8, np.zeros(16, np.uint8), 0.0)  # last byte = 99
    assert mem.read_strided(84, 8, 8, 2).size == 16


def test_strided_bounds_are_arithmetic_not_materialized():
    # A huge stride would need a gigantic index array if bounds were
    # computed by materializing indices; arithmetic bounds just reject.
    mem = PEMemory(1 << 16)
    with pytest.raises(IndexError, match="escapes"):
        mem.write_strided(0, 1 << 40, 8, np.zeros(64, np.uint8), 0.0)
